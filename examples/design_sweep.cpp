/**
 * @file
 * The payoff the paper's methodology exists for: evaluating a GPU
 * design space by detail-simulating only a representative subset.
 *
 * An architect wants to know how an application responds to EU count
 * and clock frequency. Full-program cycle-level simulation of every
 * design point is prohibitive; instead we profile once, select a
 * representative subset (Section V), and detail-simulate only the
 * selected intervals at each design point, extrapolating
 * whole-program performance with the representation ratios.
 *
 * Usage: design_sweep [workload]   (default cb-throughput-juliaset)
 */

#include <iostream>

#include "cfl/recorder.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "gpu/detailed_sim.hh"

using namespace gt;

namespace
{

/** Detail-simulate the selected intervals on one design point. */
double
projectedSpiOnDesign(const core::ProfiledApp &app,
                     const core::SubsetSelection &sel,
                     ocl::GpuDriver &driver,
                     const gpu::DeviceConfig &design, double freq_mhz,
                     uint64_t &instrs_walked)
{
    gpu::DetailedSimulator sim(design, freq_mhz);
    double spi = 0.0;
    for (size_t c = 0; c < sel.selected.size(); ++c) {
        const core::Interval &iv = sel.intervals[sel.selected[c]];
        uint64_t instrs = 0;
        double seconds = 0.0;
        for (uint64_t d = iv.firstDispatch; d <= iv.lastDispatch;
             ++d) {
            const auto &rec = app.db.profileAt(d);
            gpu::Dispatch dispatch;
            dispatch.binary = &driver.binary(rec.kernelId);
            dispatch.globalSize = rec.globalWorkSize;
            dispatch.simdWidth = 16;
            dispatch.args = rec.args;
            gpu::DetailedResult r =
                sim.simulate(driver.executor(), dispatch);
            instrs += rec.instrs;
            seconds += r.seconds;
            instrs_walked += r.simulatedInstrs;
        }
        spi += sel.ratios[c] * (seconds / (double)instrs);
    }
    return spi;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    std::string name =
        argc > 1 ? argv[1] : "cb-throughput-juliaset";
    const workloads::Workload *app_def = workloads::findWorkload(name);
    if (!app_def) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }

    std::cout << "Profiling " << name
              << " and selecting a simulation subset...\n";
    core::ProfiledApp app = core::profileApp(*app_def);
    core::Exploration ex = core::exploreConfigs(app.db);
    const core::SubsetSelection &sel =
        core::pickCoOptimized(ex, 3.0).selection;
    std::cout << "  subset: " << sel.selected.size()
              << " intervals, "
              << pct(sel.selectionFraction(), 2)
              << " of the program ("
              << fixed(sel.speedup(), 0) << "x faster to simulate)\n\n";

    // Re-materialize the device state (binaries + buffer contents)
    // by replaying the recording, so dispatches can be re-issued to
    // the detailed simulator.
    workloads::TemplateJit jit;
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit, trial);
    ocl::ClRuntime rt(driver);
    cfl::replay(app.recording, rt);

    // The design space: EU count x frequency around the HD4000.
    TextTable table({"design point", "freq", "projected SPI",
                     "vs. baseline"});
    double baseline = 0.0;
    uint64_t walked = 0;
    for (uint32_t eus : {8u, 16u, 24u, 32u}) {
        for (double freq : {800.0, 1150.0}) {
            gpu::DeviceConfig design = gpu::DeviceConfig::hd4000();
            design.name = std::to_string(eus) + " EUs";
            design.numEus = eus;
            double spi = projectedSpiOnDesign(app, sel, driver,
                                              design, freq, walked);
            if (baseline == 0.0)
                baseline = spi;
            table.addRow({design.name, fixed(freq, 0) + " MHz",
                          sci(spi, 3),
                          fixed(baseline / spi, 2) + "x"});
        }
    }
    table.print(std::cout,
                "Design sweep via subset simulation (8 design "
                "points)");

    double full_walk_estimate = (double)app.db.totalInstrs() * 8.0;
    std::cout << "\ninstructions detail-simulated: "
              << humanCount((double)walked) << " (full-program sweep "
              << "would walk ~" << humanCount(full_walk_estimate)
              << ", " << fixed(full_walk_estimate /
                                   (double)std::max<uint64_t>(1,
                                                              walked),
                               0)
              << "x more)\n";
    return 0;
}
