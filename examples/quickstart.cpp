/**
 * @file
 * Quickstart: profile an OpenCL application with GT-Pin.
 *
 * Runs one of the bundled workloads natively on the modeled Intel
 * HD 4000, with GT-Pin's built-in tools attached, and prints the
 * kind of report the paper's Section IV derives from such runs:
 * API-call breakdown, program structure, dynamic work, instruction
 * mixes, and memory activity.
 *
 * Usage: quickstart [workload-name|all]
 *        (default cb-throughput-juliaset; "all" profiles the whole
 *        25-app suite concurrently via profileSuite() — thread count
 *        honors GT_THREADS)
 *
 * With GT_SERVE=N set, the workload is instead recorded once and
 * submitted to N tenants of the streaming profiling service; the
 * report shows the shared-cache and incremental-refresh statistics.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/table.hh"
#include "core/pipeline.hh"
#include "serve/service.hh"

using namespace gt;

namespace
{

/** "all": profile the entire registry concurrently and summarize. */
int
profileWholeSuite()
{
    const std::vector<const workloads::Workload *> &apps =
        workloads::workloadSuite();
    std::cout << "Profiling all " << apps.size()
              << " applications concurrently on "
              << sched::ThreadPool::global().threadCount()
              << " threads (set GT_THREADS to change)...\n\n";

    std::vector<core::ProfiledApp> profiled =
        core::profileSuite(apps);

    TextTable table({"application", "invocations", "instructions",
                     "kernel time"});
    for (const core::ProfiledApp &app : profiled) {
        table.addRow({app.name,
                      std::to_string(app.db.numDispatches()),
                      humanCount((double)app.db.totalInstrs()),
                      fixed(app.db.totalSeconds(), 4) + " s"});
    }
    table.print(std::cout, "Suite profile (one native run per app)");
    return 0;
}

/** GT_SERVE=N: submit @p app's recording to N tenants of the
 * streaming profiling service and report the shared-cache and
 * incremental-selection statistics. */
int
serveDemo(unsigned tenants, const workloads::Workload &app)
{
    std::cout << "Recording " << app.info().name
              << " and submitting it to " << tenants << " tenant"
              << (tenants == 1 ? "" : "s")
              << " of the profiling service...\n\n";
    core::ProfiledApp profiled = core::profileApp(app);

    serve::ProfilingService service;
    std::vector<serve::ProfilingService::TenantId> ids;
    for (unsigned t = 0; t < tenants; ++t) {
        ids.push_back(
            service.openTenant("tenant-" + std::to_string(t)));
        service.submit(ids.back(), profiled.name,
                       profiled.recording);
    }
    service.drain();
    service.refreshAll();

    serve::ServiceStats st = service.stats();
    TextTable sharing({"metric", "value"});
    sharing.addRow({"tenants", std::to_string(st.tenants)});
    sharing.addRow({"workload sessions",
                    std::to_string(st.workloads)});
    sharing.addRow({"recordings replayed",
                    std::to_string(st.replays)});
    sharing.addRow({"replay-artifact hits",
                    std::to_string(st.artifactHits)});
    sharing.addRow({"kernel plans built",
                    std::to_string(st.planCache.builds)});
    sharing.addRow({"kernel plan hits",
                    std::to_string(st.planCache.hits)});
    sharing.addRow({"dispatches fed",
                    std::to_string(st.sessions.dispatches)});
    sharing.addRow({"configs re-clustered",
                    std::to_string(st.sessions.reclustered)});
    sharing.addRow({"selections memoized",
                    std::to_string(st.sessions.reusedSelections)});
    sharing.print(std::cout,
                  "Cross-tenant sharing (content-addressed)");
    std::cout << "\n";

    // Every tenant's selections are bitwise identical; show the
    // first one's.
    serve::WorkloadSession &session = service.session(ids[0], 0);
    const serve::ServiceConfig &cfg = service.config();
    TextTable sel({"scheme", "intervals", "selected", "sim fraction",
                   "speedup"});
    for (size_t c = 0; c < cfg.selections.size(); ++c) {
        core::SubsetSelection s = session.selection(c);
        sel.addRow({core::intervalSchemeName(s.scheme),
                    std::to_string(s.intervals.size()),
                    std::to_string(s.selected.size()),
                    pct(s.selectionFraction()),
                    fixed(s.speedup(), 1) + "x"});
    }
    sel.print(std::cout,
              "Incrementally refreshed selections (tenant-0, "
              "feature BB)");
    return 0;
}

void
printUsage(std::ostream &os)
{
    os << "Usage: quickstart [workload-name|all]\n"
          "\n"
          "Profiles one bundled OpenCL workload (default\n"
          "cb-throughput-juliaset) on the modeled Intel HD 4000 with\n"
          "GT-Pin attached, or the whole suite with \"all\".\n"
          "\n"
          "Environment:\n"
          "  GT_INTERP=switch|uops  GPU interpreter backend. \"uops\"\n"
          "                         (default) runs the predecoded\n"
          "                         micro-op interpreter with\n"
          "                         superblock chaining; \"switch\"\n"
          "                         selects the reference switch\n"
          "                         interpreter. Results are bitwise\n"
          "                         identical.\n"
          "  GT_EXEC=scalar|gang    Full-mode thread interleaving for\n"
          "                         the uop backend. \"gang\" (default)\n"
          "                         drives 8 threads in SoA lockstep\n"
          "                         through shared superblocks,\n"
          "                         falling back to scalar whenever\n"
          "                         lockstep ordering would be\n"
          "                         observable; \"scalar\" always runs\n"
          "                         one thread at a time. Results are\n"
          "                         bitwise identical.\n"
          "  GT_FEATURES=map|flat   Feature-extraction backend for\n"
          "                         subset selection. \"flat\"\n"
          "                         (default) runs the columnar\n"
          "                         engine with memoized projection;\n"
          "                         \"map\" selects the reference\n"
          "                         std::map extractor. Results are\n"
          "                         bitwise identical.\n"
          "  GT_MEMTRACE=callback|batch\n"
          "                         Memory-trace delivery for\n"
          "                         address-needing tools (cache\n"
          "                         simulation). \"batch\" (default)\n"
          "                         buffers accesses in SoA chunks\n"
          "                         and delivers them in bulk;\n"
          "                         \"callback\" invokes the\n"
          "                         per-access oracle. Results are\n"
          "                         bitwise identical.\n"
          "  GT_KMEANS=lloyd|pruned K-means backend for the SimPoint\n"
          "                         clusterer. \"pruned\" (default)\n"
          "                         skips k-way scans via triangle-\n"
          "                         inequality bounds and coincident-\n"
          "                         point memoization; \"lloyd\"\n"
          "                         selects the reference exact scan.\n"
          "                         Results are bitwise identical.\n"
          "  GT_DETAILED=serial|parallel\n"
          "                         Machine layer for the detailed\n"
          "                         cycle-level simulator. \"parallel\"\n"
          "                         (default) fans independent replay\n"
          "                         cells across the worker pool;\n"
          "                         \"serial\" selects the reference\n"
          "                         loop. Unknown values are rejected\n"
          "                         at startup. Results are bitwise\n"
          "                         identical.\n"
          "  GT_TRACEDB=mem|columnar\n"
          "                         Trace-database storage backend.\n"
          "                         \"columnar\" (default) spills the\n"
          "                         joined trace to a compressed\n"
          "                         on-disk columnar file, mapped\n"
          "                         read-only and decoded block-wise\n"
          "                         through a per-thread cache;\n"
          "                         \"mem\" keeps the fully-resident\n"
          "                         reference form. Unknown values\n"
          "                         are rejected at startup. Results\n"
          "                         are bitwise identical.\n"
          "  GT_SERVE=N             Instead of one batch profile,\n"
          "                         record the workload and submit it\n"
          "                         to N tenants of the streaming\n"
          "                         profiling service: replays share\n"
          "                         kernel plans and replay artifacts\n"
          "                         by content hash, and selections\n"
          "                         are refreshed incrementally —\n"
          "                         bitwise identical to a one-shot\n"
          "                         batch selection.\n"
          "  GT_THREADS=N           Worker threads for \"all\" and for\n"
          "                         service replays (default:\n"
          "                         hardware concurrency).\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                     std::strcmp(argv[1], "-h") == 0)) {
        printUsage(std::cout);
        return 0;
    }
    std::string name =
        argc > 1 ? argv[1] : "cb-throughput-juliaset";
    if (name == "all")
        return profileWholeSuite();
    const workloads::Workload *app = workloads::findWorkload(name);
    if (!app) {
        std::cerr << "unknown workload '" << name << "'; available:\n";
        for (const auto *w : workloads::workloadSuite())
            std::cerr << "  " << w->info().name << "\n";
        return 1;
    }

    if (const char *serve_env = std::getenv("GT_SERVE")) {
        int tenants = std::atoi(serve_env);
        if (tenants <= 0) {
            std::cerr << "GT_SERVE must be a positive tenant "
                         "count, got '" << serve_env << "'\n";
            return 1;
        }
        return serveDemo((unsigned)tenants, *app);
    }

    std::cout << "Profiling " << name << " ("
              << app->info().suite << ", " << app->info().domain
              << ") on the modeled Intel HD 4000...\n\n";

    core::ProfiledApp profiled = core::profileApp(*app);
    const core::AppCharacterization &st = profiled.stats;

    TextTable calls({"metric", "value"});
    calls.addRow({"total API calls",
                  std::to_string(st.totalApiCalls)});
    calls.addRow({"kernel calls", pct(st.fracKernel)});
    calls.addRow({"synchronization calls", pct(st.fracSync)});
    calls.addRow({"other calls", pct(st.fracOther)});
    calls.print(std::cout, "OpenCL API calls (host, CoFluent)");
    std::cout << "\n";

    TextTable work({"metric", "value"});
    work.addRow({"unique kernels",
                 std::to_string(st.uniqueKernels)});
    work.addRow({"unique basic blocks",
                 std::to_string(st.uniqueBlocks)});
    work.addRow({"kernel invocations",
                 std::to_string(st.kernelInvocations)});
    work.addRow({"basic block executions",
                 humanCount((double)st.blockExecs)});
    work.addRow({"dynamic instructions",
                 humanCount((double)st.dynInstrs)});
    work.addRow({"bytes read", humanBytes((double)st.bytesRead)});
    work.addRow({"bytes written",
                 humanBytes((double)st.bytesWritten)});
    work.addRow({"kernel time",
                 fixed(profiled.db.totalSeconds(), 4) + " s"});
    work.print(std::cout, "GPU work (device, GT-Pin)");
    std::cout << "\n";

    TextTable mix({"class", "share"});
    uint64_t total = 0;
    for (uint64_t c : st.classCounts)
        total += c;
    for (int c = 0; c < isa::numOpClasses; ++c) {
        if ((isa::OpClass)c == isa::OpClass::Instrumentation)
            continue;
        mix.addRow({isa::opClassName((isa::OpClass)c),
                    pct((double)st.classCounts[c] /
                        (double)total)});
    }
    mix.print(std::cout, "Instruction mix");
    std::cout << "\n";

    TextTable simd({"SIMD width", "share"});
    uint64_t stotal = 0;
    for (uint64_t c : st.simdCounts)
        stotal += c;
    for (int b = 0; b < 5; ++b) {
        simd.addRow({std::to_string(1 << b),
                     pct((double)st.simdCounts[b] /
                         (double)stotal)});
    }
    simd.print(std::cout, "SIMD widths");

    return 0;
}
