/**
 * @file
 * End-to-end simulation subset selection (the paper's Section V).
 *
 * Profiles an application once with the GT-Pin selection tool, then
 * with no further native runs evaluates all 30 interval/feature
 * configurations, picks a selection under the requested policy, and
 * validates it: against the profiling trial itself and against a
 * freshly replayed second trial.
 *
 * Usage: subset_selection [workload] [error-threshold-%]
 *        (default cb-physics-ocean-surf; no threshold = min error)
 */

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/pipeline.hh"

using namespace gt;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    std::string name =
        argc > 1 ? argv[1] : "cb-physics-ocean-surf";
    double threshold = argc > 2 ? std::stod(argv[2]) : 0.0;

    const workloads::Workload *app = workloads::findWorkload(name);
    if (!app) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }

    std::cout << "1. Profiling " << name
              << " natively with GT-Pin (one run)...\n";
    core::ProfiledApp profiled = core::profileApp(*app);
    std::cout << "   " << profiled.db.numDispatches()
              << " kernel invocations, "
              << humanCount((double)profiled.db.totalInstrs())
              << " instructions, "
              << profiled.db.numSyncEpochs() << " sync epochs\n\n";

    std::cout << "2. Evaluating all 30 interval/feature "
                 "configurations (no simulation needed)...\n";
    core::Exploration ex = core::exploreConfigs(profiled.db);

    const core::ConfigResult &chosen = threshold > 0.0
        ? core::pickCoOptimized(ex, threshold)
        : core::pickMinError(ex);
    const core::SubsetSelection &sel = chosen.selection;

    std::cout << "   policy: "
              << (threshold > 0.0
                      ? "smallest selection under " +
                          fixed(threshold, 1) + "% error"
                      : std::string("minimize error"))
              << "\n   chosen: "
              << core::intervalSchemeName(sel.scheme)
              << " intervals + " << core::featureKindName(sel.feature)
              << " features\n\n";

    TextTable table({"representative interval", "dispatches",
                     "instructions", "ratio"});
    for (size_t c = 0; c < sel.selected.size(); ++c) {
        const core::Interval &iv = sel.intervals[sel.selected[c]];
        table.addRow({"[" + std::to_string(iv.firstDispatch) + ", " +
                          std::to_string(iv.lastDispatch) + "]",
                      std::to_string(iv.numDispatches()),
                      humanCount((double)iv.instrs),
                      fixed(sel.ratios[c], 4)});
    }
    table.print(std::cout, "3. Selected simulation subset");
    std::cout << "   simulate "
              << pct(sel.selectionFraction(), 2)
              << " of the program => "
              << fixed(sel.speedup(), 0) << "x faster simulation\n\n";

    std::cout << "4. Validation\n";
    std::cout << "   self (profiling trial): error "
              << pct(chosen.errorPct / 100.0, 2) << "\n";

    gpu::TrialConfig trial2;
    trial2.noiseSeed = 20260707;
    core::TraceDatabase db2 = core::replayTrial(
        profiled.recording, gpu::DeviceConfig::hd4000(), trial2);
    std::cout << "   replayed second trial:  error "
              << pct(core::selectionErrorPct(db2, sel) / 100.0, 2)
              << "\n";

    core::TraceDatabase hsw = core::replayTrial(
        profiled.recording, gpu::DeviceConfig::hd4600(), trial2);
    std::cout << "   Haswell HD4600 replay:  error "
              << pct(core::selectionErrorPct(hsw, sel) / 100.0, 2)
              << "\n";
    return 0;
}
