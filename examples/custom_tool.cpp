/**
 * @file
 * Writing a custom GT-Pin tool.
 *
 * Section III-B: "users may collect only the desired subset of these
 * statistics by writing custom profiling tools." This example builds
 * a tool the library does not ship: a per-kernel hot-block profiler
 * that finds the basic blocks where an application spends its
 * instructions (the classic 90/10 question), plus a memory-intensity
 * report (bytes per instruction per kernel).
 *
 * Usage: custom_tool [workload]   (default sandra-crypt-aes128)
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "common/logging.hh"
#include "common/table.hh"
#include "gtpin/gtpin.hh"
#include "ocl/runtime.hh"
#include "workloads/workload.hh"

using namespace gt;

namespace
{

/** A user-written GT-Pin tool: hot blocks + memory intensity. */
class HotBlockTool : public gtpin::GtPinTool
{
  public:
    std::string name() const override { return "hotblocks"; }

    void
    onKernelBuild(uint32_t kernel_id,
                  gtpin::Instrumenter &instrumenter) override
    {
        const isa::KernelBinary &bin = instrumenter.binary();
        KernelData &kd = kernels[kernel_id];
        kd.name = bin.name;
        kd.firstSlot = instrumenter.allocSlot(
            (uint32_t)bin.blocks.size());
        kd.weights.assign(bin.blocks.size(), 0);
        kd.lens.resize(bin.blocks.size());
        kd.bytes.resize(bin.blocks.size());
        for (const auto &block : bin.blocks) {
            // One counter per block: the paper's minimal-insertion
            // idiom.
            instrumenter.countBlockEntry(
                block.id, kd.firstSlot + block.id, 1);
            kd.lens[block.id] = (uint32_t)block.appInstrCount();
            uint32_t bytes = 0;
            for (const auto &ins : block.instrs) {
                if (ins.op == isa::Opcode::Send) {
                    bytes += (uint32_t)ins.send.bytesPerLane *
                        ins.simdWidth;
                }
            }
            kd.bytes[block.id] = bytes;
        }
    }

    void
    onDispatchComplete(const ocl::DispatchResult &result,
                       const gtpin::SlotReader &slots) override
    {
        KernelData &kd = kernels.at(result.kernelId);
        for (size_t b = 0; b < kd.weights.size(); ++b) {
            uint64_t execs = slots(kd.firstSlot + (uint32_t)b);
            kd.weights[b] += execs * kd.lens[b];
            kd.memBytes += execs * kd.bytes[b];
            kd.instrs += execs * kd.lens[b];
        }
    }

    void
    report(std::ostream &os) const
    {
        // Hot blocks across the whole application.
        struct Hot
        {
            std::string kernel;
            size_t block;
            uint64_t weight;
        };
        std::vector<Hot> hot;
        uint64_t total = 0;
        for (const auto &[id, kd] : kernels) {
            for (size_t b = 0; b < kd.weights.size(); ++b) {
                hot.push_back({kd.name, b, kd.weights[b]});
                total += kd.weights[b];
            }
        }
        std::sort(hot.begin(), hot.end(),
                  [](const Hot &a, const Hot &b) {
                      return a.weight > b.weight;
                  });

        TextTable t({"kernel", "block", "instructions", "share",
                     "cumulative"});
        double cum = 0.0;
        for (size_t i = 0; i < hot.size() && i < 10; ++i) {
            double share = (double)hot[i].weight / (double)total;
            cum += share;
            t.addRow({hot[i].kernel,
                      "bb" + std::to_string(hot[i].block),
                      humanCount((double)hot[i].weight), pct(share),
                      pct(cum)});
        }
        t.print(os, "Top 10 hottest basic blocks");

        TextTable m({"kernel", "instructions", "bytes",
                     "bytes/instr"});
        for (const auto &[id, kd] : kernels) {
            if (kd.instrs == 0)
                continue;
            m.addRow({kd.name, humanCount((double)kd.instrs),
                      humanBytes((double)kd.memBytes),
                      fixed((double)kd.memBytes /
                                (double)kd.instrs,
                            3)});
        }
        os << "\n";
        m.print(os, "Memory intensity per kernel");
    }

  private:
    struct KernelData
    {
        std::string name;
        uint32_t firstSlot = 0;
        std::vector<uint64_t> weights;
        std::vector<uint32_t> lens;
        std::vector<uint32_t> bytes;
        uint64_t memBytes = 0;
        uint64_t instrs = 0;
    };

    std::map<uint32_t, KernelData> kernels;
};

} // anonymous namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    std::string name = argc > 1 ? argv[1] : "sandra-crypt-aes128";
    const workloads::Workload *app = workloads::findWorkload(name);
    if (!app) {
        std::cerr << "unknown workload '" << name << "'\n";
        return 1;
    }

    // The standard GT-Pin setup: build the tool, attach the
    // framework to the driver, run the unmodified application.
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(gpu::DeviceConfig::hd4000(), jit);
    HotBlockTool tool;
    gtpin::GtPin pin;
    pin.addTool(&tool);
    pin.attach(driver);

    ocl::ClRuntime rt(driver);
    std::cout << "Profiling " << name
              << " with the custom hot-block tool...\n\n";
    app->run(rt);
    pin.detach();

    tool.report(std::cout);
    return 0;
}
