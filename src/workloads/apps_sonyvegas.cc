/**
 * @file
 * The 7 Sony Vegas Pro 2013 press-project regions. Each region
 * renders a different span of the same video project, demonstrating
 * different effect stacks (crossfades, gaussian blurs, color
 * grading, title compositing). They are the suite's heavy writers:
 * the paper measures write volumes up to 525x the read volume for
 * region 5.
 */

#include "workloads/apps.hh"

namespace gt::workloads
{

using isa::KernelSource;
using ocl::ClRuntime;
using ocl::Kernel;
using ocl::Mem;
using ocl::Program;

namespace
{

/**
 * One render region of the press project. Regions share the video
 * pipeline (decode-like read, effect stack, encode-like writes) but
 * differ in length, effect mix, and write amplification.
 */
class VegasRegion : public AppBase
{
  public:
    VegasRegion(int region, int frames, int writes_per_read,
                int blur_radius, bool title_overlay, int sync_period)
        : AppBase("sonyvegas-proj-r" + std::to_string(region),
                  "Sony Vegas Pro 2013", "video rendering"),
          frames(frames), writesPerRead(writes_per_read),
          blurRadius(blur_radius), titleOverlay(title_overlay),
          syncPeriod(sync_period)
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        std::vector<KernelSource> sources = {
            {"veg_decode", "stream", {24, 0xffff, 16}},
            {"veg_scale", "effect", {8, writesPerRead, 0xffff, 16}},
            {"veg_grade", "lut", {10, 0xff, 0xffff, 16}},
            {"veg_crossfade", "blend", {12, 0xffff, 16}},
            {"veg_blur_h", "blur", {blurRadius, 6, 0xffff, 16}},
            {"veg_blur_v", "blur", {blurRadius, 6, 0xffff, 16}},
            {"veg_encode", "effect",
             {6, writesPerRead * 2, 0xffff, 8}},
        };
        sources.push_back({"veg_fx_chain", "deep",
                           {160 + 40 * (frames % 7),
                            (int64_t)(0x7531u + frames), 0xffff,
                            8}});
        if (titleOverlay) {
            sources.push_back({"veg_title", "shader",
                               {10, 0xffff, 16}});
            sources.push_back({"veg_alpha", "blend",
                               {8, 0xffff, 8}});
        }
        Program prog = rt.createProgramWithSource(s.ctx, sources);
        rt.buildProgram(prog);

        Kernel decode = rt.createKernel(prog, "veg_decode");
        Kernel scale = rt.createKernel(prog, "veg_scale");
        Kernel grade = rt.createKernel(prog, "veg_grade");
        Kernel crossfade = rt.createKernel(prog, "veg_crossfade");
        Kernel blur_h = rt.createKernel(prog, "veg_blur_h");
        Kernel blur_v = rt.createKernel(prog, "veg_blur_v");
        Kernel encode = rt.createKernel(prog, "veg_encode");
        Kernel fx_chain = rt.createKernel(prog, "veg_fx_chain");
        Kernel title{}, alpha{};
        if (titleOverlay) {
            title = rt.createKernel(prog, "veg_title");
            alpha = rt.createKernel(prog, "veg_alpha");
        }

        Mem frame_a = makeBuffer(s, 1 << 16);
        Mem frame_b = makeBuffer(s, 1 << 16);
        Mem work = makeBuffer(s, 1 << 16);
        Mem lut = makeBuffer(s, 1 << 8);
        Mem out = makeBuffer(s, 1 << 16);

        for (int f = 0; f < frames; ++f) {
            int segment = (f / 16) % 3;
            rt.setKernelArg(decode, 0, frame_a);
            rt.setKernelArg(decode, 1, work);
            rt.setKernelArg(decode, 2, 0x3f800000u);
            rt.setKernelArg(decode, 3,
                            (uint32_t)(segment * 4 + f * 8192));
            rt.enqueueNDRangeKernel(s.queue, decode, 262144, 16);

            rt.setKernelArg(scale, 0, work);
            rt.setKernelArg(scale, 1, out);
            rt.setKernelArg(scale, 2, (uint32_t)(segment * 2));
            rt.setKernelArg(scale, 3, (uint32_t)f);
            rt.enqueueNDRangeKernel(s.queue, scale, 262144, 16);

            rt.setKernelArg(grade, 0, out);
            rt.setKernelArg(grade, 1, lut);
            rt.setKernelArg(grade, 2, work);
            rt.setKernelArg(grade, 3,
                            (uint32_t)(segment * 3 + f * 1024));
            rt.enqueueNDRangeKernel(s.queue, grade, 262144, 16);

            // Crossfade segments happen in bursts mid-region.
            if ((f / 16) % 3 == 1) {
                rt.setKernelArg(crossfade, 0, frame_a);
                rt.setKernelArg(crossfade, 1, frame_b);
                rt.setKernelArg(crossfade, 2, work);
                rt.setKernelArg(crossfade, 3,
                                0x3c000000u + (uint32_t)(f % 16));
                rt.enqueueNDRangeKernel(s.queue, crossfade, 262144,
                                        16);
            }
            if (blurRadius > 0 && (f / 16) % 3 == 2) {
                rt.setKernelArg(blur_h, 0, work);
                rt.setKernelArg(blur_h, 1, frame_b);
                rt.setKernelArg(blur_h, 2, 0x3df5c28fu);
                rt.setKernelArg(blur_h, 3, (uint32_t)(f % 16));
                rt.enqueueNDRangeKernel(s.queue, blur_h, 262144, 16);
                rt.setKernelArg(blur_v, 0, frame_b);
                rt.setKernelArg(blur_v, 1, work);
                rt.setKernelArg(blur_v, 2, 0x3df5c28fu);
                rt.setKernelArg(blur_v, 3, (uint32_t)(f % 16));
                rt.enqueueNDRangeKernel(s.queue, blur_v, 262144, 16);
            }
            if (titleOverlay && f % 4 == 0) {
                rt.setKernelArg(title, 0, lut);
                rt.setKernelArg(title, 1, work);
                rt.setKernelArg(title, 2, 0x3f400000u);
                rt.enqueueNDRangeKernel(s.queue, title, 16384, 16);
                rt.setKernelArg(alpha, 0, work);
                rt.setKernelArg(alpha, 1, out);
                rt.setKernelArg(alpha, 2, work);
                rt.setKernelArg(alpha, 3, 0x3f000000u);
                rt.enqueueNDRangeKernel(s.queue, alpha, 16384, 8);
            }

            if (f % 2 == 0) {
                rt.setKernelArg(fx_chain, 0, work);
                rt.setKernelArg(fx_chain, 1, out);
                rt.setKernelArg(fx_chain, 2,
                                (uint32_t)(0x1111u << segment));
                rt.setKernelArg(fx_chain, 3, (uint32_t)f);
                rt.enqueueNDRangeKernel(s.queue, fx_chain, 65536,
                                        8);
            }

            rt.setKernelArg(encode, 0, work);
            rt.setKernelArg(encode, 1, out);
            rt.setKernelArg(encode, 2,
                            (uint32_t)(segment == 1 ? 5 : 1));
            rt.setKernelArg(encode, 3, (uint32_t)f);
            rt.enqueueNDRangeKernel(s.queue, encode, 262144, 8);

            if (f % syncPeriod == syncPeriod - 1)
                rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, out, 0, 16384);
        rt.releaseMemObject(frame_a);
        rt.releaseMemObject(frame_b);
        rt.releaseMemObject(work);
        rt.releaseMemObject(lut);
        rt.releaseMemObject(out);
        end(s);
    }

  private:
    int frames;
    int writesPerRead;
    int blurRadius;
    bool titleOverlay;
    int syncPeriod;
};

} // anonymous namespace

std::vector<const Workload *>
sonyVegasApps()
{
    // Region parameters: length, write amplification, blur radius,
    // title overlay, sync period. Region 4 is the longest render;
    // region 5 has the extreme write skew the paper calls out.
    static VegasRegion r1(1, 600, 6, 2, false, 3);
    static VegasRegion r2(2, 800, 8, 0, true, 3);
    static VegasRegion r3(3, 1000, 10, 3, false, 2);
    static VegasRegion r4(4, 2200, 8, 2, true, 8);
    static VegasRegion r5(5, 1200, 40, 0, false, 3);
    static VegasRegion r6(6, 900, 12, 4, true, 3);
    static VegasRegion r7(7, 700, 16, 2, false, 2);
    return {&r1, &r2, &r3, &r4, &r5, &r6, &r7};
}

} // namespace gt::workloads
