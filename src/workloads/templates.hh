/**
 * @file
 * The kernel template library and its JIT compiler.
 *
 * Real OpenCL applications ship kernel source that the GPU driver
 * JIT-compiles at clBuildProgram time. Our synthetic workloads ship
 * KernelSources that name a template here plus compile parameters
 * (trip counts, radii, unroll factors, SIMD widths). TemplateJit is
 * the isa::JitCompiler the driver uses: it instantiates the template
 * through KernelBuilder, producing a verified binary — the artifact
 * GT-Pin's rewriter then instruments.
 *
 * The templates span the paper's workload domains: streaming and
 * image filters, histogramming, cryptography (SHA-style and
 * AES-style rounds), physics (n-body, particles), fractals,
 * ray-traced ambient occlusion, video effects, shaders, prefix
 * scans, deep multi-block pipelines, and cascade classifiers with
 * thread-dependent control flow.
 */

#ifndef GT_WORKLOADS_TEMPLATES_HH
#define GT_WORKLOADS_TEMPLATES_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "isa/builder.hh"

namespace gt::workloads
{

/** Instantiates one kernel template. */
using TemplateFn = std::function<isa::KernelBinary(
    const std::string &name, const std::vector<int64_t> &params)>;

/** Name -> template function map with the built-in library loaded. */
class KernelTemplateRegistry
{
  public:
    /** Registry preloaded with the built-in template library. */
    KernelTemplateRegistry();

    /** Register or replace a template (user extension point). */
    void add(const std::string &template_name, TemplateFn fn);

    bool has(const std::string &template_name) const;

    /** Instantiate; throws FatalError for unknown templates. */
    isa::KernelBinary instantiate(
        const std::string &template_name, const std::string &name,
        const std::vector<int64_t> &params) const;

    std::vector<std::string> templateNames() const;

  private:
    std::map<std::string, TemplateFn> templates;
};

/** The process-wide registry instance. */
const KernelTemplateRegistry &builtinTemplates();

/** JIT compiler backed by a template registry. */
class TemplateJit : public isa::JitCompiler
{
  public:
    explicit TemplateJit(
        const KernelTemplateRegistry &registry = builtinTemplates())
        : reg(registry)
    {}

    isa::KernelBinary
    compile(const isa::KernelSource &source) const override;

  private:
    const KernelTemplateRegistry &reg;
};

} // namespace gt::workloads

#endif // GT_WORKLOADS_TEMPLATES_HH
