/**
 * @file
 * The 15 CompuBench CL 1.2 applications (desktop and mobile suites),
 * spanning graphics, physics, image processing, throughput, and
 * computer vision. Each host program mirrors its real counterpart's
 * published shape: kernel/sync/other API mix (Fig. 3a), unique
 * kernel and basic-block counts (Fig. 3b), invocation counts
 * (Fig. 3c), and instruction/memory character (Fig. 4).
 */

#include "workloads/apps.hh"

#include "isa/kernel.hh"

namespace gt::workloads
{

using isa::KernelSource;
using ocl::ClRuntime;
using ocl::CommandQueue;
using ocl::Kernel;
using ocl::Mem;
using ocl::Program;

namespace
{

/**
 * GFXBench-style T-Rex chase scene: many distinct shader passes
 * (geometry, shadow, lighting, post) per frame with per-frame
 * synchronization.
 */
class TRex : public AppBase
{
  public:
    TRex()
        : AppBase("cb-graphics-t-rex", "CompuBench CL 1.2 Desktop",
                  "graphics")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        std::vector<KernelSource> sources;
        for (int i = 0; i < 8; ++i) {
            sources.push_back({"trex_shade" + std::to_string(i),
                               "shader",
                               {8 + i, 0xffff, i % 2 ? 8 : 16}});
        }
        for (int i = 0; i < 4; ++i) {
            sources.push_back({"trex_geom" + std::to_string(i),
                               "deep",
                               {600 + 200 * i,
                                (int64_t)0xc3a5c85cu + i, 0xffff, 8}});
        }
        for (int i = 0; i < 4; ++i) {
            sources.push_back({"trex_post" + std::to_string(i),
                               "blend", {10 + 4 * i, 0xffff, 16}});
        }
        for (int i = 0; i < 4; ++i) {
            sources.push_back({"trex_tex" + std::to_string(i), "lut",
                               {12, 0xff, 0xffff, 16}});
        }
        for (int i = 0; i < 4; ++i) {
            sources.push_back({"trex_stream" + std::to_string(i),
                               "stream", {40 + 8 * i, 0xffff, 16}});
        }
        Program prog = rt.createProgramWithSource(s.ctx, sources);
        rt.buildProgram(prog);

        std::vector<Kernel> shade, geom, post, tex, stream;
        for (int i = 0; i < 8; ++i)
            shade.push_back(rt.createKernel(
                prog, "trex_shade" + std::to_string(i)));
        for (int i = 0; i < 4; ++i)
            geom.push_back(rt.createKernel(
                prog, "trex_geom" + std::to_string(i)));
        for (int i = 0; i < 4; ++i)
            post.push_back(rt.createKernel(
                prog, "trex_post" + std::to_string(i)));
        for (int i = 0; i < 4; ++i)
            tex.push_back(rt.createKernel(
                prog, "trex_tex" + std::to_string(i)));
        for (int i = 0; i < 4; ++i)
            stream.push_back(rt.createKernel(
                prog, "trex_stream" + std::to_string(i)));

        Mem vb = makeBuffer(s, 1 << 16);
        Mem fb = makeBuffer(s, 1 << 16);
        Mem texels = makeBuffer(s, 1 << 16);
        Mem lut = makeBuffer(s, 1 << 8);

        const int frames = 280;
        for (int f = 0; f < frames; ++f) {
            // Scene phases: intro (geometry heavy), chase (shading
            // heavy), finale (post heavy).
            int phase = f < 40 ? 0 : (f < 120 ? 1 : 2);

            uint32_t scene_sel = phase == 0 ? 0x0f0fu
                : (phase == 1 ? 0x3333u : 0x7f00u);
            for (int i = 0; i < 4; ++i) {
                Kernel k = geom[(f + i) % 4];
                rt.setKernelArg(k, 0, vb);
                rt.setKernelArg(k, 1, fb);
                rt.setKernelArg(k, 2, scene_sel);
                rt.setKernelArg(k, 3, (uint32_t)f);
                rt.enqueueNDRangeKernel(
                    s.queue, k, phase == 0 ? 32768 : 16384, 8);
            }
            int shade_passes = phase == 1 ? 8 : 4;
            for (int i = 0; i < shade_passes; ++i) {
                Kernel k = shade[(f + i) % 8];
                rt.setKernelArg(k, 0, texels);
                rt.setKernelArg(k, 1, fb);
                rt.setKernelArg(k, 2, 0x3f000000u + (uint32_t)f);
                rt.enqueueNDRangeKernel(s.queue, k, 524288,
                                        i % 2 ? 8 : 16);
            }
            for (int i = 0; i < 2; ++i) {
                Kernel k = tex[(f + i) % 4];
                rt.setKernelArg(k, 0, texels);
                rt.setKernelArg(k, 1, lut);
                rt.setKernelArg(k, 2, fb);
                rt.setKernelArg(k, 3,
                                (uint32_t)(phase * 3 + f * 65536));
                rt.enqueueNDRangeKernel(s.queue, k, 16384, 16);
            }
            int post_passes = phase == 2 ? 4 : 2;
            for (int i = 0; i < post_passes; ++i) {
                Kernel k = post[(f + i) % 4];
                rt.setKernelArg(k, 0, fb);
                rt.setKernelArg(k, 1, texels);
                rt.setKernelArg(k, 2, fb);
                rt.setKernelArg(k, 3, 0x3e800000u);
                rt.enqueueNDRangeKernel(s.queue, k, 524288, 16);
            }
            Kernel k = stream[f % 4];
            rt.setKernelArg(k, 0, vb);
            rt.setKernelArg(k, 1, fb);
            rt.setKernelArg(k, 2, 0x3f800000u);
            rt.setKernelArg(k, 3,
                            (uint32_t)(phase * 5 + f * 4096));
            rt.enqueueNDRangeKernel(s.queue, k, 16384, 16);

            rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, fb, 0, 4096);
        rt.releaseMemObject(vb);
        rt.releaseMemObject(fb);
        rt.releaseMemObject(texels);
        rt.releaseMemObject(lut);
        end(s);
    }
};

/**
 * Ocean-surface physics: FFT synthesis stages plus an n-body-style
 * wave interaction step per simulated frame.
 */
class OceanSurf : public AppBase
{
  public:
    OceanSurf()
        : AppBase("cb-physics-ocean-surf",
                  "CompuBench CL 1.2 Desktop", "physics")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        std::vector<KernelSource> sources;
        for (int i = 0; i < 8; ++i) {
            sources.push_back({"ocean_fft" + std::to_string(i), "fft",
                               {12 + 2 * i, 0xffff, 16}});
        }
        sources.push_back({"ocean_interact", "nbody",
                           {96, 0xffff, 8}});
        sources.push_back({"ocean_spray", "particle",
                           {24, 0xffff, 8}});
        sources.push_back({"ocean_normals", "stream",
                           {48, 0xffff, 16}});
        sources.push_back({"ocean_pack", "stream",
                           {24, 0xffff, 8}});
        Program prog = rt.createProgramWithSource(s.ctx, sources);
        rt.buildProgram(prog);

        std::vector<Kernel> fft;
        for (int i = 0; i < 8; ++i)
            fft.push_back(rt.createKernel(
                prog, "ocean_fft" + std::to_string(i)));
        Kernel interact = rt.createKernel(prog, "ocean_interact");
        Kernel spray = rt.createKernel(prog, "ocean_spray");
        Kernel normals = rt.createKernel(prog, "ocean_normals");
        Kernel pack = rt.createKernel(prog, "ocean_pack");

        Mem spectrum = makeBuffer(s, 1 << 16);
        Mem heights = makeBuffer(s, 1 << 16);
        Mem velocity = makeBuffer(s, 1 << 16);

        const int frames = 320;
        for (int f = 0; f < frames; ++f) {
            // Rows then columns: two FFT sweeps of 4 stages each.
            for (int sweep = 0; sweep < 2; ++sweep) {
                for (int st = 0; st < 4; ++st) {
                    Kernel k = fft[sweep * 4 + st];
                    rt.setKernelArg(k, 0, spectrum);
                    rt.setKernelArg(k, 1, (uint32_t)(1 << st));
                    rt.setKernelArg(k, 2, heights);
                    rt.enqueueNDRangeKernel(s.queue, k, 524288, 16);
                }
            }
            rt.setKernelArg(interact, 0, heights);
            rt.setKernelArg(interact, 1, velocity);
            rt.setKernelArg(interact, 2,
                            0x3c23d70au + (uint32_t)(f & 15));
            rt.enqueueNDRangeKernel(s.queue, interact, 524288, 8);
            if (f % 2 == 0) {
                rt.setKernelArg(spray, 0, heights);
                rt.setKernelArg(spray, 1, velocity);
                rt.setKernelArg(spray, 2, 0x3c23d70au);
                rt.enqueueNDRangeKernel(s.queue, spray, 262144, 8);
            }
            rt.setKernelArg(normals, 0, heights);
            rt.setKernelArg(normals, 1, spectrum);
            rt.setKernelArg(normals, 2, 0x3f800000u);
            rt.setKernelArg(normals, 3,
                            (uint32_t)((f / 48) * 7 + f * 256));
            rt.enqueueNDRangeKernel(s.queue, normals, 524288, 16);
            rt.setKernelArg(pack, 0, heights);
            rt.setKernelArg(pack, 1, spectrum);
            rt.setKernelArg(pack, 2, 0x3f000000u);
            rt.setKernelArg(pack, 3, (uint32_t)(f * 31));
            rt.enqueueNDRangeKernel(s.queue, pack, 16384, 8);
            rt.finish(s.queue);
            if (f % 16 == 15)
                rt.enqueueReadBuffer(s.queue, heights, 0, 8192);
        }
        rt.releaseMemObject(spectrum);
        rt.releaseMemObject(heights);
        rt.releaseMemObject(velocity);
        end(s);
    }
};

/**
 * Bitcoin mining throughput: two SHA-style kernels re-dispatched
 * over nonce batches. Kernel calls are a very small fraction of the
 * API stream (the paper reports 4.5%) — argument updates and result
 * polls dominate.
 */
class Bitcoin : public AppBase
{
  public:
    Bitcoin()
        : AppBase("cb-throughput-bitcoin",
                  "CompuBench CL 1.2 Desktop", "throughput")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx, {{"btc_sha_first", "hash", {64, 8}},
                    {"btc_sha_second", "hash", {80, 8}}});
        rt.buildProgram(prog);
        Kernel first = rt.createKernel(prog, "btc_sha_first");
        Kernel second = rt.createKernel(prog, "btc_sha_second");

        Mem header = makeBuffer(s, 1 << 12);
        Mem results = makeBuffer(s, 1 << 12);

        const int batches = 700;
        for (int b = 0; b < batches; ++b) {
            Kernel k = b % 2 ? second : first;
            // The miner re-seeds the midstate words one by one, then
            // polls timing — many "other" calls per kernel call.
            for (uint32_t word = 0; word < 8; ++word) {
                rt.setKernelArg(k, 0, header);
                rt.setKernelArg(k, 1, results);
                rt.setKernelArg(k, 2, (uint32_t)(b * 0x10000 + word));
            }
            ocl::Event ev = rt.enqueueNDRangeKernel(
                s.queue, k, 1 << 20, 8);
            rt.getKernelWorkGroupInfo(k);
            rt.getEventProfilingInfo(ev);
            if (b % 16 == 15)
                rt.flush(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, results, 0, 4096);
        rt.releaseMemObject(header);
        rt.releaseMemObject(results);
        end(s);
    }
};

/** Sliding-window cascade face detection over an image pyramid. */
class FaceDetect : public AppBase
{
  public:
    FaceDetect(std::string name, std::string suite, int num_cascades,
               int frames, int base_stages)
        : AppBase(std::move(name), std::move(suite), "vision"),
          numCascades(num_cascades), frames(frames),
          baseStages(base_stages)
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        std::vector<KernelSource> sources;
        for (int i = 0; i < numCascades; ++i) {
            sources.push_back({"fd_cascade" + std::to_string(i),
                               "cascade",
                               {baseStages * 2 + 5 * i, 0xffff, 8}});
        }
        sources.push_back({"fd_pyrdown", "blur", {2, 10, 0xffff, 16}});
        sources.push_back({"fd_integral", "stream",
                           {32, 0xffff, 16}});
        sources.push_back({"fd_norm", "lut", {8, 0xff, 0xffff, 16}});
        Program prog = rt.createProgramWithSource(s.ctx, sources);
        rt.buildProgram(prog);

        std::vector<Kernel> cascades;
        for (int i = 0; i < numCascades; ++i)
            cascades.push_back(rt.createKernel(
                prog, "fd_cascade" + std::to_string(i)));
        Kernel pyrdown = rt.createKernel(prog, "fd_pyrdown");
        Kernel integral = rt.createKernel(prog, "fd_integral");
        Kernel norm = rt.createKernel(prog, "fd_norm");

        Mem image = makeBuffer(s, 1 << 16);
        Mem pyramid = makeBuffer(s, 1 << 16);
        Mem hits = makeBuffer(s, 1 << 14);
        Mem lut = makeBuffer(s, 1 << 8);

        for (int f = 0; f < frames; ++f) {
            rt.setKernelArg(integral, 0, image);
            rt.setKernelArg(integral, 1, pyramid);
            rt.setKernelArg(integral, 2, 0x3f800000u);
            rt.setKernelArg(integral, 3,
                            (uint32_t)((f / 40) * 9 + f * 512));
            rt.enqueueNDRangeKernel(s.queue, integral, 524288, 16);
            rt.setKernelArg(norm, 0, pyramid);
            rt.setKernelArg(norm, 1, lut);
            rt.setKernelArg(norm, 2, pyramid);
            rt.setKernelArg(norm, 3, (uint32_t)(f * 128));
            rt.enqueueNDRangeKernel(s.queue, norm, 524288, 16);
            // Pyramid levels: smaller windows as we descend.
            uint64_t gws = 16384;
            for (int level = 0; level < 4; ++level) {
                rt.setKernelArg(pyrdown, 0, pyramid);
                rt.setKernelArg(pyrdown, 1, pyramid);
                rt.setKernelArg(pyrdown, 2, 0x3e000000u);
                rt.setKernelArg(pyrdown, 3,
                                (uint32_t)(level * 2 + f * 1024));
                rt.enqueueNDRangeKernel(s.queue, pyrdown, gws, 16);
                Kernel k = cascades[(f + level) % numCascades];
                rt.setKernelArg(k, 0, pyramid);
                rt.setKernelArg(k, 1, hits);
                rt.setKernelArg(k, 2, (uint32_t)level);
                rt.setKernelArg(k, 3, (uint32_t)f);
                rt.enqueueNDRangeKernel(s.queue, k, gws, 8);
                gws /= 2;
            }
            rt.finish(s.queue);
            if (f % 24 == 23)
                rt.enqueueReadBuffer(s.queue, hits, 0, 2048);
        }
        rt.releaseMemObject(image);
        rt.releaseMemObject(pyramid);
        rt.releaseMemObject(hits);
        rt.releaseMemObject(lut);
        end(s);
    }

  private:
    int numCascades;
    int frames;
    int baseStages;
};

/** TV-L1 optical flow: warp/update iterations between frame pairs. */
class TvL1Flow : public AppBase
{
  public:
    TvL1Flow()
        : AppBase("cb-vision-tv-l1-of", "CompuBench CL 1.2 Desktop",
                  "vision")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        std::vector<KernelSource> sources;
        for (int i = 0; i < 4; ++i) {
            sources.push_back({"of_update" + std::to_string(i),
                               "flow", {6 + 2 * i, 0xffff, 16}});
        }
        sources.push_back({"of_smooth0", "blur", {2, 8, 0xffff, 16}});
        sources.push_back({"of_smooth1", "blur", {3, 6, 0xffff, 8}});
        sources.push_back({"of_warp", "stream", {24, 0xffff, 16}});
        sources.push_back({"of_residual", "reduce",
                           {64, 0xffff, 16}});
        Program prog = rt.createProgramWithSource(s.ctx, sources);
        rt.buildProgram(prog);

        std::vector<Kernel> update;
        for (int i = 0; i < 4; ++i)
            update.push_back(rt.createKernel(
                prog, "of_update" + std::to_string(i)));
        Kernel smooth0 = rt.createKernel(prog, "of_smooth0");
        Kernel smooth1 = rt.createKernel(prog, "of_smooth1");
        Kernel warp = rt.createKernel(prog, "of_warp");
        Kernel residual = rt.createKernel(prog, "of_residual");

        Mem prev = makeBuffer(s, 1 << 16);
        Mem next = makeBuffer(s, 1 << 16);
        Mem field = makeBuffer(s, 1 << 16);

        const int frames = 240;
        for (int f = 0; f < frames; ++f) {
            for (int iter = 0; iter < 3; ++iter) {
                rt.setKernelArg(warp, 0, prev);
                rt.setKernelArg(warp, 1, field);
                rt.setKernelArg(warp, 2, 0x3f000000u);
                rt.setKernelArg(
                    warp, 3, (uint32_t)(iter * 4 + f * 2048));
                rt.enqueueNDRangeKernel(s.queue, warp, 524288, 16);
                Kernel k = update[(f + iter) % 4];
                rt.setKernelArg(k, 0, prev);
                rt.setKernelArg(k, 1, next);
                rt.setKernelArg(k, 2, field);
                rt.enqueueNDRangeKernel(s.queue, k, 524288, 16);
                Kernel sm = iter % 2 ? smooth1 : smooth0;
                rt.setKernelArg(sm, 0, field);
                rt.setKernelArg(sm, 1, field);
                rt.setKernelArg(sm, 2, 0x3e4ccccdu);
                rt.setKernelArg(
                    sm, 3, (uint32_t)((f / 30) * 3 + f * 64));
                rt.enqueueNDRangeKernel(s.queue, sm, 524288,
                                        iter % 2 ? 8 : 16);
            }
            rt.setKernelArg(residual, 0, field);
            rt.setKernelArg(residual, 1, next);
            rt.enqueueNDRangeKernel(s.queue, residual, 16384, 16);
            rt.waitForEvents({});
        }
        rt.enqueueReadBuffer(s.queue, field, 0, 8192);
        rt.releaseMemObject(prev);
        rt.releaseMemObject(next);
        rt.releaseMemObject(field);
        end(s);
    }
};

/** Particle simulation (64K particles, desktop variant). */
class PartSim64k : public AppBase
{
  public:
    PartSim64k()
        : AppBase("cb-physics-part-sim-64k",
                  "CompuBench CL 1.2 Desktop", "physics")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx, {{"ps_forces", "nbody", {80, 0xffff, 8}},
                    {"ps_integrate", "particle", {20, 0xffff, 8}},
                    {"ps_collide", "stream", {32, 0xffff, 16}}});
        rt.buildProgram(prog);
        Kernel forces = rt.createKernel(prog, "ps_forces");
        Kernel integrate = rt.createKernel(prog, "ps_integrate");
        Kernel collide = rt.createKernel(prog, "ps_collide");

        Mem pos = makeBuffer(s, 1 << 16);
        Mem vel = makeBuffer(s, 1 << 16);

        const int steps = 840;
        for (int t = 0; t < steps; ++t) {
            rt.setKernelArg(forces, 0, pos);
            rt.setKernelArg(forces, 1, vel);
            rt.setKernelArg(forces, 2, 0x3a83126fu);
            rt.enqueueNDRangeKernel(s.queue, forces, 524288, 8);
            rt.setKernelArg(integrate, 0, pos);
            rt.setKernelArg(integrate, 1, vel);
            rt.setKernelArg(integrate, 2, 0x3a83126fu);
            rt.enqueueNDRangeKernel(s.queue, integrate, 524288, 8);
            if (t % 4 == 3) {
                rt.setKernelArg(collide, 0, pos);
                rt.setKernelArg(collide, 1, vel);
                rt.setKernelArg(collide, 2, 0x3f800000u);
                rt.setKernelArg(collide, 3, (uint32_t)t);
                rt.enqueueNDRangeKernel(s.queue, collide, 524288, 16);
            }
            if (t % 8 == 7)
                rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, pos, 0, 4096);
        rt.releaseMemObject(pos);
        rt.releaseMemObject(vel);
        end(s);
    }
};

/** Provence scene render (mobile graphics). */
class Provence : public AppBase
{
  public:
    Provence()
        : AppBase("cb-graphics-provence",
                  "CompuBench CL 1.2 Mobile", "graphics")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        std::vector<KernelSource> sources;
        for (int i = 0; i < 10; ++i) {
            sources.push_back({"prov_shade" + std::to_string(i),
                               "shader",
                               {6 + i, 0xffff, i % 3 ? 16 : 8}});
        }
        for (int i = 0; i < 3; ++i) {
            sources.push_back({"prov_tone" + std::to_string(i), "lut",
                               {10 + 2 * i, 0xff, 0xffff, 16}});
        }
        for (int i = 0; i < 3; ++i) {
            sources.push_back({"prov_mix" + std::to_string(i),
                               "blend", {8 + 4 * i, 0xffff, 16}});
        }
        sources.push_back({"prov_cull0", "deep",
                           {340, (int64_t)0x12345u, 0xffff, 8}});
        sources.push_back({"prov_cull1", "deep",
                           {520, (int64_t)0xabcdeu, 0xffff, 8}});
        Program prog = rt.createProgramWithSource(s.ctx, sources);
        rt.buildProgram(prog);

        std::vector<Kernel> shade, tone, mix, cull;
        for (int i = 0; i < 10; ++i)
            shade.push_back(rt.createKernel(
                prog, "prov_shade" + std::to_string(i)));
        for (int i = 0; i < 3; ++i)
            tone.push_back(rt.createKernel(
                prog, "prov_tone" + std::to_string(i)));
        for (int i = 0; i < 3; ++i)
            mix.push_back(rt.createKernel(
                prog, "prov_mix" + std::to_string(i)));
        cull.push_back(rt.createKernel(prog, "prov_cull0"));
        cull.push_back(rt.createKernel(prog, "prov_cull1"));

        Mem gbuf = makeBuffer(s, 1 << 16);
        Mem fb = makeBuffer(s, 1 << 16);
        Mem lut = makeBuffer(s, 1 << 8);

        const int frames = 260;
        for (int f = 0; f < frames; ++f) {
            Kernel c = cull[f % 2];
            rt.setKernelArg(c, 0, gbuf);
            rt.setKernelArg(c, 1, fb);
            rt.setKernelArg(c, 2, f < 65 ? 0x00ffu : 0x5aa5u);
            rt.setKernelArg(c, 3, (uint32_t)f);
            rt.enqueueNDRangeKernel(s.queue, c, 16384, 8);
            int passes = f < 65 ? 6 : 8;
            for (int i = 0; i < passes; ++i) {
                Kernel k = shade[(f + i) % 10];
                rt.setKernelArg(k, 0, gbuf);
                rt.setKernelArg(k, 1, fb);
                rt.setKernelArg(k, 2, 0x3f19999au);
                rt.enqueueNDRangeKernel(s.queue, k, 262144,
                                        i % 3 ? 16 : 8);
            }
            for (int i = 0; i < 2; ++i) {
                Kernel k = tone[(f + i) % 3];
                rt.setKernelArg(k, 0, fb);
                rt.setKernelArg(k, 1, lut);
                rt.setKernelArg(k, 2, fb);
                rt.setKernelArg(k, 3,
                                (uint32_t)((f / 65) * 5 + f * 32));
                rt.enqueueNDRangeKernel(s.queue, k, 262144, 16);
            }
            Kernel m = mix[f % 3];
            rt.setKernelArg(m, 0, fb);
            rt.setKernelArg(m, 1, gbuf);
            rt.setKernelArg(m, 2, fb);
            rt.setKernelArg(m, 3, 0x3f000000u);
            rt.enqueueNDRangeKernel(s.queue, m, 262144, 16);
            rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, fb, 0, 4096);
        rt.releaseMemObject(gbuf);
        rt.releaseMemObject(fb);
        rt.releaseMemObject(lut);
        end(s);
    }
};

/** Separable gaussian filter on buffers (or images). */
class Gaussian : public AppBase
{
  public:
    Gaussian(std::string name, bool use_image, int frames)
        : AppBase(std::move(name), "CompuBench CL 1.2 Mobile",
                  "image processing"),
          useImage(use_image), frames(frames)
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx,
            {{"gauss_h", "blur", {4, 12, 0xffff, 16}},
             {"gauss_v", "blur", {4, 12, 0xffff, 16}},
             {"gauss_pack", "stream", {16, 0xffff, 8}}});
        rt.buildProgram(prog);
        Kernel h = rt.createKernel(prog, "gauss_h");
        Kernel v = rt.createKernel(prog, "gauss_v");
        Kernel pack = rt.createKernel(prog, "gauss_pack");

        Mem src = makeBuffer(s, 1 << 16);
        Mem tmp = makeBuffer(s, 1 << 16);
        ocl::Mem image;
        if (useImage)
            image = s.rt.createImage2D(s.ctx, 256, 256, 4);

        for (int f = 0; f < frames; ++f) {
            rt.setKernelArg(h, 0, src);
            rt.setKernelArg(h, 1, tmp);
            rt.setKernelArg(h, 2, 0x3df5c28fu);
            rt.setKernelArg(h, 3, (uint32_t)((f / 32) * 3));
            rt.enqueueNDRangeKernel(s.queue, h, 262144, 16);
            rt.setKernelArg(v, 0, tmp);
            rt.setKernelArg(v, 1, src);
            rt.setKernelArg(v, 2, 0x3df5c28fu);
            rt.setKernelArg(v, 3, (uint32_t)((f / 32) * 3));
            rt.enqueueNDRangeKernel(s.queue, v, 262144, 16);
            if (f % 4 == 3) {
                rt.setKernelArg(pack, 0, src);
                rt.setKernelArg(pack, 1, tmp);
                rt.setKernelArg(pack, 2, 0x3f800000u);
                rt.setKernelArg(pack, 3, (uint32_t)f);
                rt.enqueueNDRangeKernel(s.queue, pack, 524288, 8);
            }
            if (useImage && f % 8 == 7)
                rt.enqueueCopyImageToBuffer(s.queue, image, src);
            else
                rt.finish(s.queue);
        }
        if (useImage)
            rt.enqueueReadImage(s.queue, image);
        else
            rt.enqueueReadBuffer(s.queue, src, 0, 8192);
        rt.releaseMemObject(src);
        rt.releaseMemObject(tmp);
        if (useImage)
            rt.releaseMemObject(image);
        end(s);
    }

  private:
    bool useImage;
    int frames;
};

/** 256-bin histogramming over buffers or images. */
class HistogramApp : public AppBase
{
  public:
    HistogramApp(std::string name, bool use_image, int frames)
        : AppBase(std::move(name), "CompuBench CL 1.2 Mobile",
                  "image processing"),
          useImage(use_image), frames(frames)
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx,
            {{"hist_count", "histogram", {96, 24, 0xffff, 16}},
             {"hist_count_fine", "histogram", {48, 22, 0xffff, 8}},
             {"hist_merge", "reduce", {32, 0xffff, 16}},
             {"hist_equalize", "lut", {12, 0xff, 0xffff, 16}}});
        rt.buildProgram(prog);
        Kernel count = rt.createKernel(prog, "hist_count");
        Kernel fine = rt.createKernel(prog, "hist_count_fine");
        Kernel merge = rt.createKernel(prog, "hist_merge");
        Kernel equalize = rt.createKernel(prog, "hist_equalize");

        Mem pixels = makeBuffer(s, 1 << 16);
        Mem hist = makeBuffer(s, 1 << 10);
        Mem out = makeBuffer(s, 1 << 16);
        ocl::Mem image;
        if (useImage)
            image = s.rt.createImage2D(s.ctx, 512, 128, 4);

        for (int f = 0; f < frames; ++f) {
            // Alternating coarse/fine passes form two phases.
            Kernel k = (f / 24) % 2 ? fine : count;
            rt.setKernelArg(k, 0, pixels);
            rt.setKernelArg(k, 1, hist);
            rt.enqueueNDRangeKernel(s.queue, k, 524288,
                                    (f / 24) % 2 ? 8 : 16);
            rt.setKernelArg(merge, 0, hist);
            rt.setKernelArg(merge, 1, hist);
            rt.enqueueNDRangeKernel(s.queue, merge, 4096, 16);
            rt.setKernelArg(equalize, 0, pixels);
            rt.setKernelArg(equalize, 1, hist);
            rt.setKernelArg(equalize, 2, out);
            rt.setKernelArg(equalize, 3,
                            (uint32_t)((f / 24) * 2 + f * 16));
            rt.enqueueNDRangeKernel(s.queue, equalize, 524288, 16);
            if (useImage && f % 6 == 5)
                rt.enqueueCopyImageToBuffer(s.queue, image, pixels);
            rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, hist, 0, 1024);
        rt.releaseMemObject(pixels);
        rt.releaseMemObject(hist);
        rt.releaseMemObject(out);
        if (useImage)
            rt.releaseMemObject(image);
        end(s);
    }

  private:
    bool useImage;
    int frames;
};

/**
 * Particle simulation, 32K mobile variant. The paper reports 76.5%
 * of its API calls are kernel invocations — arguments are set once
 * and the integration kernel is re-enqueued relentlessly.
 */
class PartSim32k : public AppBase
{
  public:
    PartSim32k()
        : AppBase("cb-physics-part-sim-32k",
                  "CompuBench CL 1.2 Mobile", "physics")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx, {{"ps32_step", "particle", {16, 0xffff, 8}},
                    {"ps32_sort", "stream", {24, 0xffff, 16}}});
        rt.buildProgram(prog);
        Kernel step = rt.createKernel(prog, "ps32_step");
        Kernel sort = rt.createKernel(prog, "ps32_sort");

        Mem pos = makeBuffer(s, 1 << 15);
        Mem vel = makeBuffer(s, 1 << 15);

        rt.setKernelArg(step, 0, pos);
        rt.setKernelArg(step, 1, vel);
        rt.setKernelArg(step, 2, 0x3a83126fu);
        rt.setKernelArg(sort, 0, pos);
        rt.setKernelArg(sort, 1, vel);
        rt.setKernelArg(sort, 2, 0x3f800000u);
        rt.setKernelArg(sort, 3, 0u);

        const int steps = 4200;
        for (int t = 0; t < steps; ++t) {
            rt.enqueueNDRangeKernel(s.queue, step, 262144, 8);
            if (t % 8 == 7)
                rt.enqueueNDRangeKernel(s.queue, sort, 262144, 16);
            if (t % 16 == 15)
                rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, pos, 0, 4096);
        rt.releaseMemObject(pos);
        rt.releaseMemObject(vel);
        end(s);
    }
};

/** Ambient-occlusion raycasting throughput benchmark. */
class ThroughputAo : public AppBase
{
  public:
    ThroughputAo()
        : AppBase("cb-throughput-ao", "CompuBench CL 1.2 Mobile",
                  "throughput")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx, {{"ao_primary", "ao", {40, 0xffff, 16}},
                    {"ao_secondary", "ao", {16, 0xffff, 8}},
                    {"ao_resolve", "reduce", {48, 0xffff, 16}}});
        rt.buildProgram(prog);
        Kernel primary = rt.createKernel(prog, "ao_primary");
        Kernel secondary = rt.createKernel(prog, "ao_secondary");
        Kernel resolve = rt.createKernel(prog, "ao_resolve");

        Mem scene = makeBuffer(s, 1 << 16);
        Mem occl = makeBuffer(s, 1 << 16);

        const int tiles = 520;
        for (int t = 0; t < tiles; ++t) {
            uint32_t quality = (uint32_t)((t / 80) * 5);
            rt.setKernelArg(primary, 0, scene);
            rt.setKernelArg(primary, 1, occl);
            rt.setKernelArg(primary, 2, quality);
            rt.setKernelArg(primary, 3, (uint32_t)t);
            rt.enqueueNDRangeKernel(s.queue, primary, 524288, 16);
            rt.setKernelArg(secondary, 0, scene);
            rt.setKernelArg(secondary, 1, occl);
            rt.setKernelArg(secondary, 2, quality / 2);
            rt.setKernelArg(secondary, 3, (uint32_t)t);
            rt.enqueueNDRangeKernel(s.queue, secondary, 262144, 8);
            rt.setKernelArg(resolve, 0, occl);
            rt.setKernelArg(resolve, 1, scene);
            rt.enqueueNDRangeKernel(s.queue, resolve, 8192, 16);
            if (t % 2 == 1)
                rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, occl, 0, 8192);
        rt.releaseMemObject(scene);
        rt.releaseMemObject(occl);
        end(s);
    }
};

/**
 * Julia-set fractal rendering: the fewest API calls of any program
 * (the paper counts 703 total) with the highest synchronization
 * share (25.7%) — every frame is computed, flushed, and read back.
 */
class JuliaSet : public AppBase
{
  public:
    JuliaSet()
        : AppBase("cb-throughput-juliaset",
                  "CompuBench CL 1.2 Mobile", "throughput")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx, {{"julia_render", "julia", {160, 16}},
                    {"julia_aa", "julia", {48, 8}}});
        rt.buildProgram(prog);
        Kernel render = rt.createKernel(prog, "julia_render");
        Kernel aa = rt.createKernel(prog, "julia_aa");

        Mem fb = makeBuffer(s, 1 << 16);

        const int frames = 88;
        for (int f = 0; f < frames; ++f) {
            Kernel k = f % 4 == 3 ? aa : render;
            rt.setKernelArg(k, 0, fb);
            rt.setKernelArg(k, 1, 0x3ec00000u + (uint32_t)f * 16);
            rt.setKernelArg(k, 2, 0x3e4ccccdu);
            rt.enqueueNDRangeKernel(s.queue, k, 1 << 20, 16);
            rt.flush(s.queue);
            rt.enqueueReadBuffer(s.queue, fb, 0, 16384);
        }
        rt.releaseMemObject(fb);
        end(s);
    }
};

} // anonymous namespace

std::vector<const Workload *>
compubenchApps()
{
    static TRex trex;
    static OceanSurf ocean;
    static Bitcoin bitcoin;
    static FaceDetect facedetect_desktop(
        "cb-vision-facedetect", "CompuBench CL 1.2 Desktop", 6, 300,
        14);
    static TvL1Flow tvl1;
    static PartSim64k part64k;
    static Provence provence;
    static Gaussian gauss_buffer("cb-gaussian-buffer", false, 300);
    static Gaussian gauss_image("cb-gaussian-image", true, 26);
    static HistogramApp hist_buffer("cb-histogram-buffer", false,
                                    380);
    static HistogramApp hist_image("cb-histogram-image", true, 340);
    static PartSim32k part32k;
    static ThroughputAo ao;
    static JuliaSet julia;
    static FaceDetect facedetect_mobile(
        "cb-vision-facedetect-mobile", "CompuBench CL 1.2 Mobile", 5,
        420, 10);

    return {
        &trex,         &ocean,       &bitcoin,
        &facedetect_desktop,         &tvl1,
        &part64k,      &provence,    &gauss_buffer,
        &gauss_image,  &hist_buffer, &hist_image,
        &part32k,      &ao,          &julia,
        &facedetect_mobile,
    };
}

} // namespace gt::workloads
