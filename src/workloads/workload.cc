#include "workloads/workload.hh"

namespace gt::workloads
{

AppBase::Session
AppBase::begin(ocl::ClRuntime &rt) const
{
    rt.getPlatformIds();
    rt.getDeviceIds();
    ocl::Context ctx = rt.createContext();
    ocl::CommandQueue queue = rt.createCommandQueue(ctx);
    return Session{rt, ctx, queue};
}

void
AppBase::end(Session &s) const
{
    s.rt.finish(s.queue);
    s.rt.releaseCommandQueue(s.queue);
    s.rt.releaseContext(s.ctx);
}

ocl::Mem
AppBase::makeBuffer(Session &s, uint64_t elems, uint32_t fill) const
{
    // +64 bytes of slack so sends with up to 16 bytes/lane stay in
    // bounds after the templates' element masking.
    ocl::Mem mem = s.rt.createBuffer(s.ctx, elems * 4 + 64);
    s.rt.enqueueFillBuffer(s.queue, mem, fill, 0, elems * 4 + 64);
    return mem;
}

} // namespace gt::workloads
