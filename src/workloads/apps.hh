/**
 * @file
 * Internal registration hooks for the per-suite application files.
 */

#ifndef GT_WORKLOADS_APPS_HH
#define GT_WORKLOADS_APPS_HH

#include <vector>

#include "workloads/workload.hh"

namespace gt::workloads
{

/** The 15 CompuBench CL 1.2 desktop+mobile applications. */
std::vector<const Workload *> compubenchApps();

/** The 3 SiSoftware Sandra 2014 applications. */
std::vector<const Workload *> sandraApps();

/** The 7 Sony Vegas Pro press-project regions. */
std::vector<const Workload *> sonyVegasApps();

} // namespace gt::workloads

#endif // GT_WORKLOADS_APPS_HH
