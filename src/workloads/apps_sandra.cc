/**
 * @file
 * The 3 SiSoftware Sandra 2014 applications: two cryptography
 * benchmarks (the heaviest readers in the suite — the paper measures
 * 624 GB and 2174 GB read) and the "Processor GPU" stress benchmark,
 * whose instruction stream is 91% computation.
 */

#include "workloads/apps.hh"

namespace gt::workloads
{

using isa::KernelSource;
using ocl::ClRuntime;
using ocl::Kernel;
using ocl::Mem;
using ocl::Program;

namespace
{

/** AES encryption throughput (table-lookup heavy, read dominated). */
class CryptAes : public AppBase
{
  public:
    CryptAes(std::string name, int rounds, int batches)
        : AppBase(std::move(name), "SiSoftware Sandra 2014",
                  "cryptography"),
          rounds(rounds), batches(batches)
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx,
            {{"aes_encrypt", "aes", {rounds, 0x3ff, 16}},
             {"aes_decrypt", "aes", {rounds, 0x3ff, 16}},
             {"aes_expand_key", "hash", {rounds * 4, 8}},
             {"aes_xts_tweak", "stream", {16, 0xffff, 16}}});
        rt.buildProgram(prog);
        Kernel encrypt = rt.createKernel(prog, "aes_encrypt");
        Kernel decrypt = rt.createKernel(prog, "aes_decrypt");
        Kernel expand = rt.createKernel(prog, "aes_expand_key");
        Kernel tweak = rt.createKernel(prog, "aes_xts_tweak");

        Mem plain = makeBuffer(s, 1 << 17);
        Mem cipher = makeBuffer(s, 1 << 17);
        Mem tables = makeBuffer(s, 1 << 11);
        Mem keys = makeBuffer(s, 1 << 12);

        for (int b = 0; b < batches; ++b) {
            if (b % 32 == 0) {
                rt.setKernelArg(expand, 0, keys);
                rt.setKernelArg(expand, 1, keys);
                rt.setKernelArg(expand, 2, (uint32_t)b);
                rt.enqueueNDRangeKernel(s.queue, expand, 4096, 8);
            }
            rt.setKernelArg(tweak, 0, plain);
            rt.setKernelArg(tweak, 1, cipher);
            rt.setKernelArg(tweak, 2, 0x3f800000u);
            rt.setKernelArg(tweak, 3, (uint32_t)b);
            rt.enqueueNDRangeKernel(s.queue, tweak, 65536, 16);
            Kernel k = b % 2 ? decrypt : encrypt;
            rt.setKernelArg(k, 0, plain);
            rt.setKernelArg(k, 1, tables);
            rt.setKernelArg(k, 2, cipher);
            rt.enqueueNDRangeKernel(s.queue, k, 262144, 16);
            if (b % 8 == 7)
                rt.finish(s.queue);
            if (b % 64 == 63)
                rt.enqueueReadBuffer(s.queue, cipher, 0, 16384);
        }
        rt.releaseMemObject(plain);
        rt.releaseMemObject(cipher);
        rt.releaseMemObject(tables);
        rt.releaseMemObject(keys);
        end(s);
    }

  private:
    int rounds;
    int batches;
};

/**
 * Processor GPU performance stress test — long FMA chains designed
 * to saturate the EUs (the paper measures 91% computation
 * instructions for this application).
 */
class ProcGpu : public AppBase
{
  public:
    ProcGpu()
        : AppBase("sandra-proc-gpu", "SiSoftware Sandra 2014",
                  "gpu performance")
    {}

    void
    run(ClRuntime &rt) const override
    {
        Session s = begin(rt);
        Program prog = rt.createProgramWithSource(
            s.ctx,
            {{"proc_fma32", "stress", {96, 32, 16}},
             {"proc_fma64", "stress", {64, 48, 16}},
             {"proc_fma_short", "stress", {48, 24, 8}},
             {"proc_mandel", "julia", {200, 16}},
             {"proc_mandel_aa", "julia", {100, 8}},
             {"proc_bandwidth", "stream", {64, 0xffff, 16}}});
        rt.buildProgram(prog);
        Kernel fma32 = rt.createKernel(prog, "proc_fma32");
        Kernel fma64 = rt.createKernel(prog, "proc_fma64");
        Kernel fma_short = rt.createKernel(prog, "proc_fma_short");
        Kernel mandel = rt.createKernel(prog, "proc_mandel");
        Kernel mandel_aa = rt.createKernel(prog, "proc_mandel_aa");
        Kernel bandwidth = rt.createKernel(prog, "proc_bandwidth");

        Mem scratch = makeBuffer(s, 1 << 16);
        Mem out = makeBuffer(s, 1 << 16);

        const int passes = 700;
        for (int p = 0; p < passes; ++p) {
            Kernel fma = p % 3 == 0 ? fma32
                       : (p % 3 == 1 ? fma64 : fma_short);
            rt.setKernelArg(fma, 0, scratch);
            rt.enqueueNDRangeKernel(s.queue, fma, 524288,
                                    p % 3 == 2 ? 8 : 16);
            Kernel m = p % 5 == 4 ? mandel_aa : mandel;
            rt.setKernelArg(m, 0, out);
            rt.setKernelArg(m, 1, 0x3e99999au);
            rt.setKernelArg(m, 2, 0x3dcccccdu);
            rt.enqueueNDRangeKernel(s.queue, m, 524288, 16);
            if (p % 24 == 23) {
                rt.setKernelArg(bandwidth, 0, scratch);
                rt.setKernelArg(bandwidth, 1, out);
                rt.setKernelArg(bandwidth, 2, 0x3f800000u);
                rt.setKernelArg(bandwidth, 3, (uint32_t)p);
                rt.enqueueNDRangeKernel(s.queue, bandwidth, 524288,
                                        16);
            }
            if (p % 6 == 5)
                rt.finish(s.queue);
        }
        rt.enqueueReadBuffer(s.queue, out, 0, 8192);
        rt.releaseMemObject(scratch);
        rt.releaseMemObject(out);
        end(s);
    }
};

} // anonymous namespace

std::vector<const Workload *>
sandraApps()
{
    static CryptAes aes128("sandra-crypt-aes128", 10, 820);
    static CryptAes aes256("sandra-crypt-aes256", 14, 1000);
    static ProcGpu proc;
    return {&aes128, &aes256, &proc};
}

} // namespace gt::workloads
