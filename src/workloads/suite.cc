#include "workloads/apps.hh"
#include "workloads/workload.hh"

namespace gt::workloads
{

const std::vector<const Workload *> &
workloadSuite()
{
    static const std::vector<const Workload *> suite = [] {
        std::vector<const Workload *> all;
        for (const Workload *w : compubenchApps())
            all.push_back(w);
        for (const Workload *w : sandraApps())
            all.push_back(w);
        for (const Workload *w : sonyVegasApps())
            all.push_back(w);
        return all;
    }();
    return suite;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload *w : workloadSuite()) {
        if (w->info().name == name)
            return w;
    }
    return nullptr;
}

} // namespace gt::workloads
