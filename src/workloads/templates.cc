#include "workloads/templates.hh"

#include "common/logging.hh"

namespace gt::workloads
{

using isa::CmpOp;
using isa::Flag;
using isa::KernelBinary;
using isa::KernelBuilder;
using isa::Operand;
using isa::Reg;
using isa::fimm;
using isa::imm;

namespace
{

/** @return params[i], or @p def when absent. */
int64_t
param(const std::vector<int64_t> &p, size_t i, int64_t def)
{
    return i < p.size() ? p[i] : def;
}

/**
 * Emit address computation dst = base + ((index & mask) << 2), the
 * standard bounds-safe element addressing all templates use.
 */
Reg
laneAddr(KernelBuilder &b, Reg base, Operand index, uint32_t mask,
         int w)
{
    Reg a = b.reg();
    b.and_(a, index, imm(mask), w);
    b.shl(a, a, imm(2), w);
    b.add(a, a, base, w);
    return a;
}

/**
 * stream: per-thread strided copy-and-scale loop.
 * params: [trips, mask, width]   args: [src, dst, scale]
 */
KernelBinary
tmplStream(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 64);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);
    int64_t unroll = param(p, 3, 3);

    KernelBuilder b(name, 4);
    Reg idx = b.reg(), c = b.reg();
    Reg i2 = b.reg(), v = b.reg(), v2 = b.reg(), out = b.reg();
    Reg src_addr = b.reg(), dst_addr = b.reg();
    b.mov(idx, b.globalIds(), w);
    // The trip count combines the compile-time base with a runtime
    // intensity argument, so the same binary does phase-dependent
    // amounts of work.
    Reg trips_r = b.reg();
    b.and_(trips_r, b.arg(3), imm(15), 1);
    b.add(trips_r, trips_r, imm((uint32_t)trips), 1);
    b.beginLoop(c, trips_r);
    for (int64_t k = 0; k < unroll; ++k) {
        b.add(i2, idx, c, w);
        b.add(i2, i2, imm((uint32_t)(k * 97)), w);
        b.and_(src_addr, i2, imm(mask), w);
        b.shl(src_addr, src_addr, imm(2), w);
        b.add(src_addr, src_addr, b.arg(0), w);
        b.load(v, src_addr, 4, w);
        b.mov(v2, v, w);
        b.fmad(v2, v2, b.arg(2), v, w);
        b.mov(out, v2, w);
        b.and_(dst_addr, i2, imm(mask), w);
        b.shl(dst_addr, dst_addr, imm(2), w);
        b.add(dst_addr, dst_addr, b.arg(1), w);
        b.store(out, dst_addr, 4, w);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * blur: 1D gaussian-style filter, radius taps per output element.
 * params: [radius, trips, mask, width]   args: [src, dst, norm]
 */
KernelBinary
tmplBlur(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t radius = param(p, 0, 3);
    int64_t trips = param(p, 1, 16);
    auto mask = (uint32_t)param(p, 2, 0xffff);
    int w = (int)param(p, 3, 16);

    KernelBuilder b(name, 4);
    Reg c = b.reg();
    Reg trips_r = b.reg();
    b.and_(trips_r, b.arg(3), imm(7), 1);
    b.add(trips_r, trips_r, imm((uint32_t)trips), 1);
    b.beginLoop(c, trips_r);
    {
        Reg pos = b.reg();
        b.mul(pos, c, imm(17), w);
        b.add(pos, pos, b.globalIds(), w);
        Reg acc = b.reg();
        b.mov(acc, fimm(0.0f), w);
        // Unrolled taps: each is a gather plus a weighted add.
        for (int64_t t = -radius; t <= radius; ++t) {
            Reg tp = b.reg();
            b.add(tp, pos, imm((uint32_t)(int32_t)t), w);
            Reg a = laneAddr(b, b.arg(0), tp, mask, w);
            Reg v = b.reg();
            b.load(v, a, 4, w);
            b.fmad(acc, v, b.arg(2), acc, w);
        }
        Reg out_addr = laneAddr(b, b.arg(1), pos, mask, w);
        b.store(acc, out_addr, 4, w);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * histogram: bin computation with local-memory accumulation and a
 * final flush.
 * params: [trips, binShift, mask, width]   args: [src, hist]
 */
KernelBinary
tmplHistogram(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 64);
    auto bin_shift = (uint32_t)param(p, 1, 24);
    auto mask = (uint32_t)param(p, 2, 0xffff);
    int w = (int)param(p, 3, 16);

    KernelBuilder b(name, 2);
    Reg c = b.reg();
    b.beginLoop(c, imm((uint32_t)trips));
    {
        Reg i2 = b.reg();
        b.mad(i2, c, imm(251), b.globalIds(), w);
        Reg a = laneAddr(b, b.arg(0), i2, mask, w);
        Reg v = b.reg();
        b.load(v, a, 4, w);
        Reg bin = b.reg();
        b.shr(bin, v, imm(bin_shift), w);
        b.shl(bin, bin, imm(2), w);
        Reg cur = b.reg();
        b.load(cur, bin, 4, w, 0, isa::AddrSpace::Local);
        Reg inc = b.reg();
        b.add(inc, cur, imm(1), w);
        b.store(inc, bin, 4, w, 0, isa::AddrSpace::Local);
    }
    b.endLoop();
    // Flush the local histogram to the global one.
    Reg f = b.reg();
    b.beginLoop(f, imm(16));
    {
        Reg la = b.reg();
        b.shl(la, f, imm(2), 1);
        Reg v = b.reg();
        b.load(v, la, 4, 1, 0, isa::AddrSpace::Local);
        Reg ga = laneAddr(b, b.arg(1), f, 0xff, 1);
        b.store(v, ga, 4, 1);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * hash: SHA-style compression rounds — logic-dominated, almost no
 * memory traffic (throughput bitcoin).
 * params: [rounds, width]   args: [in, out, nonceBase]
 */
KernelBinary
tmplHash(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t rounds = param(p, 0, 64);
    int w = (int)param(p, 1, 8);

    KernelBuilder b(name, 3);
    Reg s0 = b.reg(), s1 = b.reg(), s2 = b.reg(), s3 = b.reg();
    Reg a0 = laneAddr(b, b.arg(0), b.globalIds(), 0xfff, w);
    b.load(s0, a0, 4, w);
    b.add(s1, b.globalIds(), b.arg(2), w);
    b.mov(s2, imm(0x6a09e667), w);
    b.mov(s3, imm(0xbb67ae85), w);
    Reg c = b.reg();
    Reg t0 = b.reg(), t1 = b.reg(), t2 = b.reg();
    b.beginLoop(c, imm((uint32_t)rounds));
    for (int k = 0; k < 3; ++k) {
        b.shr(t0, s0, imm(7), w);
        b.shl(t1, s0, imm(25), w);
        b.or_(t0, t0, t1, w);
        b.mov(t2, s1, w);
        b.xor_(s1, t2, t0, w);
        b.and_(t1, s1, s2, w);
        b.not_(t0, s2, w);
        b.and_(t0, t0, s3, w);
        b.xor_(t0, t0, t1, w);
        b.add(s2, s2, t0, w);
        b.shr(t1, s2, imm(11), w);
        b.xor_(s3, s3, t1, w);
        b.mov(t2, s3, w);
        b.add(s0, s0, t2, w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(1), b.globalIds(), 0xfff, w);
    b.store(s0, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * aes: table-lookup rounds — the read-heaviest template (Sandra
 * crypto): four T-table gathers plus xors per round.
 * params: [rounds, tblMask, width]   args: [in, tbl, out]
 */
KernelBinary
tmplAes(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t rounds = param(p, 0, 10);
    auto tbl_mask = (uint32_t)param(p, 1, 0x3ff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 3);
    Reg state = b.reg();
    Reg ia = laneAddr(b, b.arg(0), b.globalIds(), 0xffff, w);
    b.load(state, ia, 4, w);
    Reg c = b.reg();
    Reg acc = b.reg(), idx = b.reg(), ta = b.reg(), tv = b.reg();
    b.beginLoop(c, imm((uint32_t)rounds));
    for (int k = 0; k < 2; ++k) {
        b.mov(acc, imm(0), w);
        for (int t = 0; t < 4; ++t) {
            b.shr(idx, state, imm((uint32_t)(8 * t)), w);
            b.and_(idx, idx, imm(0xff), w);
            b.add(idx, idx, imm((uint32_t)(t * 256)), w);
            b.and_(ta, idx, imm(tbl_mask), w);
            b.shl(ta, ta, imm(2), w);
            b.add(ta, ta, b.arg(1), w);
            b.load(tv, ta, 16, w);
            b.xor_(acc, acc, tv, w);
        }
        b.mov(tv, acc, w);
        b.xor_(state, tv, c, w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(2), b.globalIds(), 0xffff, w);
    b.store(state, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * nbody: O(bodies) force accumulation per thread with rsqrt — the
 * physics-ocean/part-sim compute pattern.
 * params: [bodies, mask, width]   args: [pos, vel, dt]
 */
KernelBinary
tmplNbody(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t bodies = param(p, 0, 64);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 8);

    KernelBuilder b(name, 3);
    Reg my_addr = laneAddr(b, b.arg(0), b.globalIds(), mask, w);
    Reg my_pos = b.reg();
    b.load(my_pos, my_addr, 4, w);
    Reg force = b.reg();
    b.mov(force, fimm(0.0f), w);
    Reg c = b.reg();
    Reg oa = b.reg(), other = b.reg(), d = b.reg(), d2 = b.reg();
    Reg inv = b.reg(), inv3 = b.reg(), tmp = b.reg();
    // Interaction count varies with the timestep argument's low
    // bits (adaptive neighbour pruning).
    Reg bodies_r = b.reg();
    b.shr(bodies_r, b.arg(2), imm(2), 1);
    b.and_(bodies_r, bodies_r, imm(15), 1);
    b.add(bodies_r, bodies_r, imm((uint32_t)bodies), 1);
    b.beginLoop(c, bodies_r);
    for (int k = 0; k < 3; ++k) {
        b.add(tmp, c, imm((uint32_t)(k * 63 + 1)), w);
        b.and_(oa, tmp, imm(mask), w);
        b.shl(oa, oa, imm(2), w);
        b.add(oa, oa, b.arg(0), w);
        b.load(other, oa, 4, w);
        b.mov(tmp, other, w);
        b.fadd(d, tmp, my_pos, w);
        b.fmad(d2, d, d, fimm(0.01f), w);
        b.rsqrt(inv, d2, w);
        b.fmul(inv3, inv, inv, w);
        b.fmul(inv3, inv3, inv, w);
        b.fmad(force, d, inv3, force, w);
    }
    b.endLoop();
    Reg va = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    Reg vel = b.reg();
    b.load(vel, va, 4, w);
    b.fmad(vel, force, b.arg(2), vel, w);
    b.store(vel, va, 4, w);
    b.halt();
    return b.finish();
}

/**
 * julia: escape-time fractal iteration — compute-dominated with one
 * store per thread (throughput juliaset).
 * params: [iters, width]   args: [out, cr, ci]
 */
KernelBinary
tmplJulia(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t iters = param(p, 0, 128);
    int w = (int)param(p, 1, 16);

    KernelBuilder b(name, 3);
    Reg zr = b.reg(), zi = b.reg();
    b.mov(zr, b.globalIds(), w);
    b.mov(zi, b.arg(2), w);
    Reg c = b.reg();
    Reg r2 = b.reg(), i2 = b.reg(), ri = b.reg(), nr = b.reg();
    Reg stage = b.reg();
    // Convergence depends on the seed constant: iteration depth
    // varies with the c-parameter argument's low mantissa bits.
    Reg iters_r = b.reg();
    b.shr(iters_r, b.arg(1), imm(4), 1);
    b.and_(iters_r, iters_r, imm(7), 1);
    b.add(iters_r, iters_r, imm((uint32_t)iters), 1);
    b.beginLoop(c, iters_r);
    for (int k = 0; k < 4; ++k) {
        b.fmul(r2, zr, zr, w);
        b.fmul(i2, zi, zi, w);
        b.fmul(ri, zr, zi, w);
        b.fadd(nr, r2, i2, w);
        b.mov(stage, nr, w);
        b.fmad(zr, stage, fimm(-1.0f), b.arg(1), w);
        b.fmad(zi, ri, fimm(2.0f), b.arg(2), w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(0), b.globalIds(), 0xffff, w);
    b.store(zr, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * ao: ambient-occlusion ray sampling — mixed compute/gather with
 * dp4 (one of the few SIMD-4 users).
 * params: [samples, mask, width]   args: [scene, out]
 */
KernelBinary
tmplAo(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t samples = param(p, 0, 32);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 4);
    Reg occl = b.reg();
    b.mov(occl, fimm(0.0f), w);
    Reg c = b.reg();
    // Sample count scales with the quality argument (arg 2); arg 3
    // is an unread frame tag.
    Reg samples_r = b.reg();
    b.and_(samples_r, b.arg(2), imm(15), 1);
    b.add(samples_r, samples_r, imm((uint32_t)samples), 1);
    b.beginLoop(c, samples_r);
    {
        Reg dir = b.reg();
        b.mad(dir, c, imm(97), b.globalIds(), w);
        Reg sa = laneAddr(b, b.arg(0), dir, mask, w);
        Reg tri = b.reg();
        b.load(tri, sa, 4, w);
        Reg d = b.reg();
        b.dp4(d, tri, tri, 4);
        Reg inv = b.reg();
        b.rsqrt(inv, d, w);
        Reg hit = b.reg();
        b.fmul(hit, tri, inv, w);
        b.max_(hit, hit, imm(0), w);
        b.fadd(occl, occl, hit, w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    b.store(occl, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * blend: two-source linear interpolation (crossfades).
 * params: [trips, mask, width]   args: [a, b, out, alpha]
 */
KernelBinary
tmplBlend(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 16);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 4);
    Reg c = b.reg();
    Reg i2 = b.reg(), va = b.reg(), vb = b.reg(), mix = b.reg();
    Reg aa = b.reg(), ab = b.reg(), oa = b.reg(), stage = b.reg();
    b.beginLoop(c, imm((uint32_t)trips));
    for (int k = 0; k < 3; ++k) {
        b.mad(i2, c, imm(131), b.globalIds(), w);
        b.add(i2, i2, imm((uint32_t)(k * 53)), w);
        b.and_(aa, i2, imm(mask), w);
        b.shl(aa, aa, imm(2), w);
        b.add(aa, aa, b.arg(0), w);
        b.load(va, aa, 4, w);
        b.and_(ab, i2, imm(mask), w);
        b.shl(ab, ab, imm(2), w);
        b.add(ab, ab, b.arg(1), w);
        b.load(vb, ab, 4, w);
        b.mov(stage, va, w);
        b.lrp(mix, b.arg(3), stage, vb, w);
        b.mov(stage, mix, w);
        b.and_(oa, i2, imm(mask), w);
        b.shl(oa, oa, imm(2), w);
        b.add(oa, oa, b.arg(2), w);
        b.store(stage, oa, 4, w);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * effect: video rendering effect — reads once, writes an expanded
 * set of outputs (the Sony write-skew pattern: up to hundreds of
 * bytes written per byte read).
 * params: [trips, writesPerRead, mask, width]   args: [in, out]
 */
KernelBinary
tmplEffect(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 16);
    int64_t writes = param(p, 1, 8);
    auto mask = (uint32_t)param(p, 2, 0xffff);
    int w = (int)param(p, 3, 16);

    KernelBuilder b(name, 4);
    Reg c = b.reg();
    Reg trips_r = b.reg();
    b.and_(trips_r, b.arg(2), imm(7), 1);
    b.add(trips_r, trips_r, imm((uint32_t)trips), 1);
    b.beginLoop(c, trips_r);
    {
        Reg i2 = b.reg();
        b.mad(i2, c, imm(173), b.globalIds(), w);
        Reg ia = laneAddr(b, b.arg(0), i2, mask, w);
        Reg v = b.reg();
        b.load(v, ia, 4, w);
        Reg lum = b.reg();
        b.fmul(lum, v, fimm(0.7152f), w);
        Reg shifted = b.reg(), oa = b.reg(), px = b.reg();
        for (int64_t k = 0; k < writes; ++k) {
            b.mad(shifted, i2, imm(7), imm((uint32_t)(k * 37)), w);
            b.and_(oa, shifted, imm(mask), w);
            b.shl(oa, oa, imm(2), w);
            b.add(oa, oa, b.arg(1), w);
            b.fmad(px, lum, fimm(1.0f / 255.0f), v, w);
            b.store(px, oa, 16, w);
        }
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * reduce: read-heavy strided accumulation with a single result
 * store per thread.
 * params: [trips, mask, width]   args: [in, out]
 */
KernelBinary
tmplReduce(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 128);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 2);
    Reg acc = b.reg();
    b.mov(acc, imm(0), w);
    Reg c = b.reg();
    Reg i2 = b.reg(), a = b.reg(), v = b.reg();
    b.beginLoop(c, imm((uint32_t)trips));
    for (int k = 0; k < 3; ++k) {
        b.mad(i2, c, imm(61), b.globalIds(), w);
        b.add(i2, i2, imm((uint32_t)(k * 31)), w);
        b.and_(a, i2, imm(mask), w);
        b.shl(a, a, imm(2), w);
        b.add(a, a, b.arg(0), w);
        b.load(v, a, 16, w);
        b.mov(i2, v, w);
        b.add(acc, acc, i2, w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    b.store(acc, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * matmul: k-dimension dot-product loop over two streamed inputs.
 * params: [kdim, mask, width]   args: [a, b, c]
 */
KernelBinary
tmplMatmul(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t kdim = param(p, 0, 64);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 8);

    KernelBuilder b(name, 3);
    Reg acc = b.reg();
    b.mov(acc, fimm(0.0f), w);
    Reg c = b.reg();
    b.beginLoop(c, imm((uint32_t)kdim));
    {
        Reg ra = b.reg();
        b.mad(ra, b.globalIds(), imm((uint32_t)kdim), c, w);
        Reg aa = laneAddr(b, b.arg(0), ra, mask, w);
        Reg va = b.reg();
        b.load(va, aa, 4, w);
        Reg rb = b.reg();
        b.mad(rb, c, imm(511), b.globalIds(), w);
        Reg ab = laneAddr(b, b.arg(1), rb, mask, w);
        Reg vb = b.reg();
        b.load(vb, ab, 4, w);
        b.fmad(acc, va, vb, acc, w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(2), b.globalIds(), mask, w);
    b.store(acc, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * flow: TV-L1-style optical-flow update — neighbor differences and
 * clamping between two frames.
 * params: [iters, mask, width]   args: [prev, next, out]
 */
KernelBinary
tmplFlow(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t iters = param(p, 0, 8);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 3);
    Reg u = b.reg();
    b.mov(u, fimm(0.0f), w);
    Reg c = b.reg();
    Reg pa = b.reg(), vp = b.reg(), shifted = b.reg();
    Reg na = b.reg(), vn = b.reg(), grad = b.reg();
    Reg mag = b.reg(), damp = b.reg();
    b.beginLoop(c, imm((uint32_t)iters));
    for (int k = 0; k < 2; ++k) {
        b.and_(pa, b.globalIds(), imm(mask), w);
        b.shl(pa, pa, imm(2), w);
        b.add(pa, pa, b.arg(0), w);
        b.load(vp, pa, 4, w);
        b.add(shifted, b.globalIds(), c, w);
        b.add(shifted, shifted, imm((uint32_t)(k * 19)), w);
        b.and_(na, shifted, imm(mask), w);
        b.shl(na, na, imm(2), w);
        b.add(na, na, b.arg(1), w);
        b.load(vn, na, 4, w);
        b.mov(grad, vn, w);
        b.sub(grad, grad, vp, w);
        b.asr(mag, grad, imm(4), w);
        b.min_(mag, mag, imm(255), w);
        b.max_(mag, mag, imm(0), w);
        b.add(u, u, mag, w);
        b.mov(damp, u, w);
        b.shr(damp, damp, imm(1), w);
        b.sub(u, u, damp, w);
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(2), b.globalIds(), mask, w);
    b.store(u, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * cascade: classifier cascade with per-thread early exit — the one
 * template whose control flow depends on the work item, exercising
 * heterogeneous-thread execution (vision face detection).
 * params: [stages, mask, width]   args: [img, out]
 */
KernelBinary
tmplCascade(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t stages = param(p, 0, 8);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 8);

    KernelBuilder b(name, 4);
    Reg score = b.reg();
    b.mov(score, imm(0), 1);
    Reg key = b.reg();
    // Per-thread key drives stage survival: mix the thread id.
    b.mul(key, b.dispatchInfo(), imm(0x9e37), 1);
    b.xor_(key, key, imm(0x5bd1), 1);
    // The rejection threshold is a runtime argument (classifier
    // sensitivity per pyramid level); arg 3 is an unread frame tag.
    Reg thr = b.reg();
    b.and_(thr, b.arg(2), imm(3), 1);
    Reg gate = b.reg(), fa = b.reg(), v = b.reg(), wsum = b.reg();
    for (int64_t s = 0; s < stages; ++s) {
        Flag f = b.flag();
        b.shr(gate, key, imm((uint32_t)s), 1);
        b.and_(gate, gate, imm(7), 1);
        b.cmp(CmpOp::Le, f, gate, thr, 1);
        b.brc(f, "reject");
        // Stage body: a few feature taps and a threshold update.
        b.and_(fa, b.globalIds(), imm(mask), w);
        b.shl(fa, fa, imm(2), w);
        b.add(fa, fa, b.arg(0), w);
        b.load(v, fa, 4, w);
        b.mad(wsum, v, imm((uint32_t)(s + 3)), v, w);
        b.add(score, score, wsum, 1);
    }
    b.label("reject");
    Reg oa = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    b.store(score, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * shader: graphics-style vertex/pixel work — plane equations,
 * interpolants, texture gathers, heavy on moves (T-Rex, Provence).
 * params: [trips, mask, width]   args: [tex, out, t]
 */
KernelBinary
tmplShader(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 16);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 3);
    Reg c = b.reg();
    b.beginLoop(c, imm((uint32_t)trips));
    {
        Reg uv = b.reg();
        b.mad(uv, c, imm(29), b.globalIds(), w);
        Reg bary = b.reg();
        b.pln(bary, b.arg(2), uv, b.arg(2), w);
        Reg ta = laneAddr(b, b.arg(0), uv, mask, w);
        Reg texel = b.reg();
        b.load(texel, ta, 4, w);
        Reg r0 = b.reg(), r1 = b.reg(), r2 = b.reg();
        b.mov(r0, texel, w);
        b.mov(r1, bary, w);
        b.lrp(r2, b.arg(2), r0, r1, w);
        Reg lit = b.reg();
        b.mov(lit, r2, w);
        b.fmad(lit, lit, b.arg(2), r0, w);
        Reg shade = b.reg();
        b.mov(shade, lit, w);
        Reg oa = laneAddr(b, b.arg(1), uv, mask, w);
        b.store(shade, oa, 4, w);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * stress: the Sandra "Processor GPU" stress pattern — long FMA
 * dependency chains, ~90% computation instructions.
 * params: [trips, chain, width]   args: [out]
 */
KernelBinary
tmplStress(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 64);
    int64_t chain = param(p, 1, 24);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 1);
    Reg x = b.reg(), y = b.reg();
    b.mov(x, fimm(1.5f), w);
    b.mov(y, fimm(0.25f), w);
    Reg c = b.reg();
    b.beginLoop(c, imm((uint32_t)trips));
    {
        for (int64_t k = 0; k < chain; ++k) {
            b.fmad(x, x, y, x, w);
            b.fmul(y, y, fimm(0.9995f), w);
            b.fadd(x, x, fimm(-0.125f), w);
        }
    }
    b.endLoop();
    Reg oa = laneAddr(b, b.arg(0), b.globalIds(), 0xffff, w);
    b.store(x, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * scan: log-step prefix scan through local memory (subroutine call
 * included, exercising Call/Ret).
 * params: [levels, mask, width]   args: [in, out]
 */
KernelBinary
tmplScan(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t levels = param(p, 0, 8);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 2);
    Reg ia = laneAddr(b, b.arg(0), b.globalIds(), mask, w);
    Reg v = b.reg();
    b.load(v, ia, 4, w);
    Reg la = b.reg();
    b.and_(la, b.globalIds(), imm(0x3ff), w);
    b.shl(la, la, imm(2), w);
    b.store(v, la, 4, w, 0, isa::AddrSpace::Local);
    Reg c = b.reg();
    b.beginLoop(c, imm((uint32_t)levels));
    {
        b.call("scan_step");
    }
    b.endLoop();
    Reg res = b.reg();
    b.load(res, la, 4, w, 0, isa::AddrSpace::Local);
    Reg oa = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    b.store(res, oa, 4, w);
    b.halt();

    // Subroutine: one scan level over local memory.
    b.label("scan_step");
    Reg off = b.reg();
    b.shl(off, c, imm(2), w);
    Reg pa = b.reg();
    b.add(pa, la, off, w);
    b.and_(pa, pa, imm(0xfff), w);
    Reg other = b.reg();
    b.load(other, pa, 4, w, 0, isa::AddrSpace::Local);
    Reg cur = b.reg();
    b.load(cur, la, 4, w, 0, isa::AddrSpace::Local);
    b.add(cur, cur, other, w);
    b.store(cur, la, 4, w, 0, isa::AddrSpace::Local);
    b.ret();
    return b.finish();
}

/**
 * deep: a long chain of small conditionally-skipped blocks — gives
 * kernels with very large static basic-block counts (the paper sees
 * up to 11,500 unique blocks per application).
 * params: [stages, seed, mask, width]   args: [in, out]
 */
KernelBinary
tmplDeep(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t stages = param(p, 0, 64);
    auto seed = (uint32_t)param(p, 1, 0xa5a5a5a5u);
    auto mask = (uint32_t)param(p, 2, 0xffff);
    int w = (int)param(p, 3, 8);

    KernelBuilder b(name, 4);
    Reg acc = b.reg();
    Reg ia = laneAddr(b, b.arg(0), b.globalIds(), mask, w);
    b.load(acc, ia, 4, w);
    // Stage survival is steered by a runtime selector argument
    // (arg 2); arg 3 is a frame tag the kernel never reads — real
    // applications pass such incidental values too, and they make
    // argument hashes vary without changing behaviour.
    Reg sel = b.reg();
    b.mov(sel, b.arg(2), 1);
    b.xor_(sel, sel, imm(seed), 1);
    Reg bit = b.reg();
    Reg ma = b.reg(), mv = b.reg();
    for (int64_t s = 0; s < stages; ++s) {
        Flag f = b.flag();
        b.shr(bit, sel, imm((uint32_t)(s % 17)), 1);
        b.and_(bit, bit, imm(1), 1);
        b.cmp(CmpOp::Eq, f, bit, imm(0), 1);
        std::string skip = "skip" + std::to_string(s);
        b.brc(f, skip);
        if (s % 3 == 2) {
            // Memory-heavy stage: a wide gather and scatter.
            b.mad(ma, acc, imm(13), b.globalIds(), w);
            b.and_(ma, ma, imm(mask), w);
            b.shl(ma, ma, imm(2), w);
            b.add(ma, ma, b.arg(0), w);
            b.load(mv, ma, 16, w);
            b.xor_(acc, acc, mv, w);
            b.add(ma, ma, b.arg(1), w);
            b.and_(ma, ma, imm(mask), w);
            b.shl(ma, ma, imm(2), w);
            b.add(ma, ma, b.arg(1), w);
            b.store(acc, ma, 16, w);
        } else {
            // Compute stage.
            b.mad(acc, acc, imm((uint32_t)(s * 2 + 3)), acc, w);
            b.xor_(acc, acc, imm(seed + (uint32_t)s), w);
        }
        b.label(skip);
        b.add(sel, sel, imm(0x9e3779b9u), 1);
    }
    Reg oa = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    b.store(acc, oa, 4, w);
    b.halt();
    return b.finish();
}

/**
 * particle: forces with transcendental math (sin/cos) — particle
 * simulations' per-step update.
 * params: [steps, mask, width]   args: [pos, vel, dt]
 */
KernelBinary
tmplParticle(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t steps = param(p, 0, 32);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 8);

    KernelBuilder b(name, 3);
    Reg pa = laneAddr(b, b.arg(0), b.globalIds(), mask, w);
    Reg pos = b.reg();
    b.load(pos, pa, 4, w);
    Reg va = laneAddr(b, b.arg(1), b.globalIds(), mask, w);
    Reg vel = b.reg();
    b.load(vel, va, 4, w);
    Reg c = b.reg();
    Reg fx = b.reg(), fy = b.reg(), force = b.reg();
    Reg stage = b.reg();
    b.beginLoop(c, imm((uint32_t)steps));
    for (int k = 0; k < 4; ++k) {
        b.sin(fx, pos, w);
        b.cos(fy, pos, w);
        b.mov(stage, fx, w);
        b.fmad(force, stage, fy, fx, w);
        b.fmad(vel, force, b.arg(2), vel, w);
        b.fmad(pos, vel, b.arg(2), pos, w);
        b.mov(stage, pos, w);
        b.fadd(pos, stage, fimm(0.0009765625f), w);
    }
    b.endLoop();
    b.store(pos, pa, 4, w);
    b.store(vel, va, 4, w);
    b.halt();
    return b.finish();
}

/**
 * lut: load / table-lookup / store transform (tone mapping, color
 * conversion in image pipelines).
 * params: [trips, lutMask, mask, width]   args: [in, lut, out]
 */
KernelBinary
tmplLut(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t trips = param(p, 0, 16);
    auto lut_mask = (uint32_t)param(p, 1, 0xff);
    auto mask = (uint32_t)param(p, 2, 0xffff);
    int w = (int)param(p, 3, 16);

    KernelBuilder b(name, 4);
    Reg c = b.reg();
    Reg i2 = b.reg(), v = b.reg(), key = b.reg(), tv = b.reg();
    Reg ia = b.reg(), ta = b.reg(), oa = b.reg(), out = b.reg();
    Reg trips_r = b.reg();
    b.and_(trips_r, b.arg(3), imm(7), 1);
    b.add(trips_r, trips_r, imm((uint32_t)trips), 1);
    b.beginLoop(c, trips_r);
    for (int k = 0; k < 3; ++k) {
        b.mad(i2, c, imm(89), b.globalIds(), w);
        b.add(i2, i2, imm((uint32_t)(k * 41)), w);
        b.and_(ia, i2, imm(mask), w);
        b.shl(ia, ia, imm(2), w);
        b.add(ia, ia, b.arg(0), w);
        b.load(v, ia, 4, w);
        b.shr(key, v, imm(8), w);
        b.and_(ta, key, imm(lut_mask), w);
        b.shl(ta, ta, imm(2), w);
        b.add(ta, ta, b.arg(1), w);
        b.load(tv, ta, 4, w);
        b.mov(out, v, w);
        b.avg(out, out, tv, w);
        b.and_(oa, i2, imm(mask), w);
        b.shl(oa, oa, imm(2), w);
        b.add(oa, oa, b.arg(2), w);
        b.store(out, oa, 4, w);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

/**
 * fft: butterfly stage with twiddle factors (ocean-surface FFT
 * synthesis).
 * params: [butterflies, mask, width]   args: [data, stage, out]
 */
KernelBinary
tmplFft(const std::string &name, const std::vector<int64_t> &p)
{
    int64_t butterflies = param(p, 0, 16);
    auto mask = (uint32_t)param(p, 1, 0xffff);
    int w = (int)param(p, 2, 16);

    KernelBuilder b(name, 3);
    Reg c = b.reg();
    b.beginLoop(c, imm((uint32_t)butterflies));
    {
        Reg i0 = b.reg();
        b.mad(i0, c, imm(2), b.globalIds(), w);
        Reg stride = b.reg();
        b.shl(stride, b.arg(1), imm(1), w);
        Reg i1 = b.reg();
        b.add(i1, i0, stride, w);
        Reg a0 = laneAddr(b, b.arg(0), i0, mask, w);
        Reg v0 = b.reg();
        b.load(v0, a0, 8, w);
        Reg a1 = laneAddr(b, b.arg(0), i1, mask, w);
        Reg v1 = b.reg();
        b.load(v1, a1, 8, w);
        Reg ang = b.reg();
        b.fmul(ang, v1, fimm(0.19635f), w);
        Reg tw_r = b.reg(), tw_i = b.reg();
        b.cos(tw_r, ang, w);
        b.sin(tw_i, ang, w);
        Reg rot = b.reg();
        b.fmad(rot, v1, tw_r, tw_i, w);
        Reg hi = b.reg(), lo = b.reg();
        b.fadd(hi, v0, rot, w);
        b.fadd(lo, v0, rot, w);
        Reg oa0 = laneAddr(b, b.arg(2), i0, mask, w);
        b.store(hi, oa0, 8, w);
        Reg oa1 = laneAddr(b, b.arg(2), i1, mask, w);
        b.store(lo, oa1, 8, w);
    }
    b.endLoop();
    b.halt();
    return b.finish();
}

} // anonymous namespace

KernelTemplateRegistry::KernelTemplateRegistry()
{
    add("stream", tmplStream);
    add("blur", tmplBlur);
    add("histogram", tmplHistogram);
    add("hash", tmplHash);
    add("aes", tmplAes);
    add("nbody", tmplNbody);
    add("julia", tmplJulia);
    add("ao", tmplAo);
    add("blend", tmplBlend);
    add("effect", tmplEffect);
    add("reduce", tmplReduce);
    add("matmul", tmplMatmul);
    add("flow", tmplFlow);
    add("cascade", tmplCascade);
    add("shader", tmplShader);
    add("stress", tmplStress);
    add("scan", tmplScan);
    add("deep", tmplDeep);
    add("particle", tmplParticle);
    add("lut", tmplLut);
    add("fft", tmplFft);
}

void
KernelTemplateRegistry::add(const std::string &template_name,
                            TemplateFn fn)
{
    GT_ASSERT(fn, "null template function");
    templates[template_name] = std::move(fn);
}

bool
KernelTemplateRegistry::has(const std::string &template_name) const
{
    return templates.count(template_name) > 0;
}

isa::KernelBinary
KernelTemplateRegistry::instantiate(
    const std::string &template_name, const std::string &name,
    const std::vector<int64_t> &params) const
{
    auto it = templates.find(template_name);
    if (it == templates.end())
        fatal("unknown kernel template '", template_name, "'");
    isa::KernelBinary bin = it->second(name, params);
    isa::verify(bin);
    return bin;
}

std::vector<std::string>
KernelTemplateRegistry::templateNames() const
{
    std::vector<std::string> names;
    names.reserve(templates.size());
    for (const auto &[name, fn] : templates)
        names.push_back(name);
    return names;
}

const KernelTemplateRegistry &
builtinTemplates()
{
    static const KernelTemplateRegistry registry;
    return registry;
}

isa::KernelBinary
TemplateJit::compile(const isa::KernelSource &source) const
{
    std::string name = source.name;
    if (name.empty()) {
        name = source.templateName;
        for (int64_t p : source.params)
            name += "_" + std::to_string(p);
    }
    return reg.instantiate(source.templateName, name, source.params);
}

} // namespace gt::workloads
