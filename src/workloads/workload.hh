/**
 * @file
 * The synthetic application suite standing in for Table I.
 *
 * The paper characterizes 25 commercial and benchmark OpenCL
 * applications from CompuBench CL 1.2 (desktop and mobile), the
 * SiSoftware Sandra 2014 suite, and the Sony Vegas Pro 2013 test
 * project. None of those are redistributable, so each is replaced
 * by a synthetic host program tuned to its published per-app
 * characteristics: API-call mix, unique kernel and basic-block
 * counts, invocation counts, instruction mixes, SIMD usage, and
 * read/write skew (Figs. 3 and 4). A workload's run() is an
 * ordinary OpenCL-style host program; everything downstream (GT-Pin,
 * CoFluent tracing, subset selection) treats it exactly like a real
 * application.
 */

#ifndef GT_WORKLOADS_WORKLOAD_HH
#define GT_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "ocl/runtime.hh"
#include "workloads/templates.hh"

namespace gt::workloads
{

/** Table I metadata for one application. */
struct WorkloadInfo
{
    std::string name;    //!< e.g. "cb-physics-ocean-surf"
    std::string suite;   //!< e.g. "CompuBench CL 1.2 Desktop"
    std::string domain;  //!< e.g. "physics"
};

/** One application: metadata plus a host program. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const WorkloadInfo &info() const = 0;

    /** Execute the host program against @p runtime. */
    virtual void run(ocl::ClRuntime &runtime) const = 0;
};

/**
 * Common host-program plumbing shared by the applications: the
 * platform/context/queue prologue, slack-padded buffer creation, and
 * the cleanup epilogue. Derived classes write only their distinctive
 * frame/phase logic.
 */
class AppBase : public Workload
{
  public:
    const WorkloadInfo &info() const override { return meta; }

  protected:
    AppBase(std::string name, std::string suite, std::string domain)
        : meta{std::move(name), std::move(suite), std::move(domain)}
    {}

    /** Open handles of a running session. */
    struct Session
    {
        ocl::ClRuntime &rt;
        ocl::Context ctx;
        ocl::CommandQueue queue;
    };

    /** Standard prologue: platform, device, context, queue. */
    Session begin(ocl::ClRuntime &rt) const;

    /** Standard epilogue: final finish plus releases. */
    void end(Session &s) const;

    /**
     * Create a buffer holding @p elems 32-bit elements (plus slack
     * for wide send payloads) and fill it with a pattern.
     */
    ocl::Mem makeBuffer(Session &s, uint64_t elems,
                        uint32_t fill = 0x01020304u) const;

    WorkloadInfo meta;
};

/** All 25 applications in the paper's presentation order. */
const std::vector<const Workload *> &workloadSuite();

/** @return the workload named @p name, or null. */
const Workload *findWorkload(const std::string &name);

} // namespace gt::workloads

#endif // GT_WORKLOADS_WORKLOAD_HH
