/**
 * @file
 * A small dependency-graph layer over ThreadPool.
 *
 * Build a graph of tasks with explicit dependency edges, then run()
 * it: every task executes exactly once, no task starts before all
 * of its predecessors finished, and independent tasks run
 * concurrently on the pool. Used where a fan-out has real structure
 * — e.g. fig8 validation profiles an application, then fans 15
 * replay trials out behind that profile's completion.
 *
 * Determinism: ready tasks are released in creation (id) order, and
 * when tasks fail, run() rethrows the exception of the
 * lowest-numbered failed task after the whole graph has drained
 * (successors of a failed task are cancelled, i.e. never run).
 */

#ifndef GT_SCHED_TASK_GRAPH_HH
#define GT_SCHED_TASK_GRAPH_HH

#include <cstdint>

#include "sched/thread_pool.hh"

namespace gt::sched
{

/** A one-shot dependency graph of tasks. */
class TaskGraph
{
  public:
    using TaskId = uint32_t;

    /** Add a task; @p deps must all be ids returned earlier. */
    TaskId add(std::function<void()> fn,
               const std::vector<TaskId> &deps = {});

    /** Declare that @p before must finish before @p after starts. */
    void addEdge(TaskId before, TaskId after);

    /** Number of tasks added so far. */
    size_t size() const { return nodes.size(); }

    /**
     * Execute the graph on @p pool and block until every task has
     * either run or been cancelled by a failed predecessor. A graph
     * can only be run once. Rethrows the lowest-id failure, if any.
     */
    void run(ThreadPool &pool = ThreadPool::global());

  private:
    struct Node
    {
        std::function<void()> fn;
        std::vector<TaskId> successors;
        uint32_t numDeps = 0;
    };

    std::vector<Node> nodes;
    bool ran = false;
};

} // namespace gt::sched

#endif // GT_SCHED_TASK_GRAPH_HH
