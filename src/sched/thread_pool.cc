#include "sched/thread_pool.hh"

#include <chrono>
#include <cstdlib>

#include "common/logging.hh"

namespace gt::sched
{

namespace
{

/** Identifies the pool (and worker slot) the current thread runs in,
 * so submissions from inside a task land on the worker's own deque. */
struct WorkerIdentity
{
    ThreadPool *pool = nullptr;
    unsigned index = 0;
};

thread_local WorkerIdentity tlsWorker;

} // anonymous namespace

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("GT_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return (unsigned)v;
        warn("ignoring invalid GT_THREADS value '", env, "'");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
    : numThreads(threads > 0 ? threads : 1)
{
    if (numThreads == 1)
        return; // serial fallback: no workers, everything inline
    queues.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    if (numThreads == 1)
        return;
    {
        std::lock_guard<std::mutex> lock(injectorMutex);
        stopping.store(true);
    }
    wakeup.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::enqueue(std::function<void()> fn)
{
    if (numThreads == 1) {
        fn(); // inline serial execution
        return;
    }
    pendingTasks.fetch_add(1);
    if (tlsWorker.pool == this) {
        WorkerQueue &q = *queues[tlsWorker.index];
        std::lock_guard<std::mutex> lock(q.mutex);
        q.deque.push_back(std::move(fn));
    } else {
        std::lock_guard<std::mutex> lock(injectorMutex);
        injector.push_back(std::move(fn));
    }
    wakeup.notify_one();
}

bool
ThreadPool::tryRunOne(unsigned self)
{
    std::function<void()> task;

    // 1. Own deque, LIFO (locality: newest subtask first).
    {
        WorkerQueue &q = *queues[self];
        std::lock_guard<std::mutex> lock(q.mutex);
        if (!q.deque.empty()) {
            task = std::move(q.deque.back());
            q.deque.pop_back();
        }
    }
    // 2. Shared injector, FIFO.
    if (!task) {
        std::lock_guard<std::mutex> lock(injectorMutex);
        if (!injector.empty()) {
            task = std::move(injector.front());
            injector.pop_front();
        }
    }
    // 3. Steal FIFO from a sibling (oldest task: likely the largest).
    if (!task) {
        for (unsigned off = 1; off < numThreads && !task; ++off) {
            WorkerQueue &q = *queues[(self + off) % numThreads];
            std::lock_guard<std::mutex> lock(q.mutex);
            if (!q.deque.empty()) {
                task = std::move(q.deque.front());
                q.deque.pop_front();
                steals.fetch_add(1);
            }
        }
    }
    if (!task)
        return false;
    // pendingTasks counts *unclaimed* tasks: decrement at claim time
    // so idle siblings can sleep while a long task runs.
    pendingTasks.fetch_sub(1);
    task();
    return true;
}

void
ThreadPool::workerLoop(unsigned index)
{
    tlsWorker = {this, index};
    for (;;) {
        if (tryRunOne(index))
            continue;
        std::unique_lock<std::mutex> lock(injectorMutex);
        if (stopping.load() && pendingTasks.load() == 0)
            return;
        if (pendingTasks.load() > 0) {
            // Work exists somewhere (possibly mid-enqueue); retry.
            lock.unlock();
            std::this_thread::yield();
            continue;
        }
        wakeup.wait_for(lock, std::chrono::milliseconds(1));
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &body,
                        size_t grain)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = defaultGrain(n);
    size_t num_chunks = (n + grain - 1) / grain;

    if (numThreads == 1 || num_chunks == 1) {
        // Serial fallback: identical traversal order, same chunking.
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    /** Shared loop state; helpers hold a reference via shared_ptr so
     * a helper scheduled after the loop finished finds no work and
     * exits without touching freed memory. */
    struct LoopState
    {
        std::atomic<size_t> next{0};
        std::atomic<size_t> done{0};
        size_t numChunks;
        std::mutex mutex;
        std::condition_variable cv;
        std::vector<std::exception_ptr> errors;
    };
    auto state = std::make_shared<LoopState>();
    state->numChunks = num_chunks;
    state->errors.assign(num_chunks, nullptr);

    auto run_chunks = [state, &body, n, grain, num_chunks] {
        for (;;) {
            size_t c = state->next.fetch_add(1);
            if (c >= num_chunks)
                return;
            size_t begin = c * grain;
            size_t end = std::min(n, begin + grain);
            try {
                for (size_t i = begin; i < end; ++i)
                    body(i);
            } catch (...) {
                state->errors[c] = std::current_exception();
            }
            size_t finished = state->done.fetch_add(1) + 1;
            if (finished == num_chunks) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->cv.notify_all();
            }
        }
    };

    // Helpers share the claim loop. They capture only the shared
    // state plus the body by reference — safe because the caller
    // cannot return before done == numChunks, and any helper running
    // after that observes next >= numChunks without touching body.
    unsigned helpers =
        (unsigned)std::min<size_t>(numThreads - 1, num_chunks - 1);
    for (unsigned h = 0; h < helpers; ++h)
        enqueue(run_chunks);

    // The caller participates, which guarantees progress even when
    // every worker is occupied (nested loops).
    run_chunks();

    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->cv.wait(lock, [&] {
            return state->done.load() == num_chunks;
        });
    }

    // Lowest-index-first exception propagation keeps failure
    // behavior deterministic too.
    for (size_t c = 0; c < num_chunks; ++c) {
        if (state->errors[c])
            std::rethrow_exception(state->errors[c]);
    }
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

namespace
{

/** Admission slots the current thread holds, per handle. A flat
 * vector because a thread holds slots of at most a couple of handles
 * at a time. */
struct HeldSlot
{
    const PoolHandle *handle;
    unsigned depth;
};

thread_local std::vector<HeldSlot> heldSlots;

void
noteAcquired(const PoolHandle *handle)
{
    for (HeldSlot &held : heldSlots) {
        if (held.handle == handle) {
            ++held.depth;
            return;
        }
    }
    heldSlots.push_back({handle, 1});
}

void
noteReleased(const PoolHandle *handle)
{
    for (size_t i = 0; i < heldSlots.size(); ++i) {
        if (heldSlots[i].handle != handle)
            continue;
        if (--heldSlots[i].depth == 0) {
            heldSlots[i] = heldSlots.back();
            heldSlots.pop_back();
        }
        return;
    }
}

bool
threadHoldsSlot(const PoolHandle *handle)
{
    for (const HeldSlot &held : heldSlots) {
        if (held.handle == handle)
            return true;
    }
    return false;
}

} // anonymous namespace

PoolHandle::Slot
PoolHandle::acquire()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        freed.wait(lock, [this] { return running < cap; });
        ++running;
    }
    noteAcquired(this);
    return Slot(this);
}

PoolHandle::Slot
PoolHandle::acquireReentrant()
{
    if (threadHoldsSlot(this))
        return Slot(nullptr);
    return acquire();
}

void
PoolHandle::release()
{
    noteReleased(this);
    {
        std::lock_guard<std::mutex> lock(mutex);
        --running;
    }
    freed.notify_one();
}

} // namespace gt::sched
