/**
 * @file
 * Work-stealing thread pool and deterministic data-parallel loops.
 *
 * Every compute layer of the library (suite profiling, the 30-config
 * explorer, SimPoint k-means, cross-trial validation) fans its work
 * out through one of these pools. The design goals, in order:
 *
 *  1. **Determinism.** Results must be bit-identical to the serial
 *     path regardless of thread count. The pool itself never makes a
 *     value-affecting decision: parallelFor() assigns loop chunks by
 *     index, parallelReduce() combines per-chunk partials in chunk
 *     order with a caller-fixed grain (so the floating-point
 *     reduction tree is a function of the problem size only, never
 *     of the thread count or of scheduling luck), and exceptions
 *     propagate lowest-index-first.
 *  2. **No deadlock under nesting.** Layers nest (exploreConfigs
 *     tasks call cluster(), which runs parallelFor internally), so
 *     blocking loops are executed cooperatively: the calling thread
 *     claims chunks itself while pool workers help, which guarantees
 *     forward progress even when every worker is busy.
 *  3. **Serial fallback.** A pool constructed with one thread spawns
 *     no workers at all; submit() and the loops execute inline on
 *     the caller, reproducing the pre-scheduler behavior exactly.
 *
 * Thread count resolution: explicit constructor argument, else the
 * GT_THREADS environment variable (a positive integer), else
 * std::thread::hardware_concurrency().
 *
 * Work stealing: each worker owns a deque; tasks submitted from a
 * worker push to its own deque (popped LIFO for locality), external
 * submissions land in a shared injector queue, and an idle worker
 * that finds both empty steals FIFO from a sibling. stealCount()
 * exposes the steal counter for tests.
 */

#ifndef GT_SCHED_THREAD_POOL_HH
#define GT_SCHED_THREAD_POOL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gt::sched
{

/**
 * Threads a default-constructed pool uses: GT_THREADS if set to a
 * positive integer, otherwise hardware_concurrency(), never 0.
 */
unsigned defaultThreadCount();

/** Work-stealing thread pool. */
class ThreadPool
{
  public:
    /**
     * @param threads total concurrency. 1 means fully inline
     *        (serial) execution with no worker threads; N > 1 spawns
     *        N workers.
     */
    explicit ThreadPool(unsigned threads = defaultThreadCount());

    /** Drains queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Concurrency this pool was built with (>= 1). */
    unsigned threadCount() const { return numThreads; }

    /** Total successful steals since construction (for tests). */
    uint64_t stealCount() const { return steals.load(); }

    /**
     * Schedule @p fn and return a future for its result. On a
     * 1-thread pool the task runs inline before submit() returns.
     * Exceptions thrown by @p fn surface from future::get().
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run @p body(i) for every i in [0, n), cooperatively: the
     * caller claims chunks alongside the workers, so the call is
     * safe from within pool tasks (no deadlock under nesting).
     * Iteration-to-chunk assignment depends only on @p n and
     * @p grain (0 = a size-derived default), never on the thread
     * count, and each index is executed exactly once, so any
     * per-index output is deterministic. Blocks until every
     * iteration has finished. If bodies throw, the exception of the
     * lowest-numbered throwing chunk is rethrown.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body,
                     size_t grain = 0);

    /**
     * Deterministic reduction: partials are computed per chunk of
     * exactly @p grain indices ([begin, end) passed to @p chunk_fn)
     * and combined **in ascending chunk order** with @p combine.
     * Because the chunk layout is fixed by @p n and @p grain alone,
     * the floating-point combination tree — and therefore the result,
     * bit for bit — is independent of the thread count.
     */
    template <typename T>
    T
    parallelReduce(size_t n, size_t grain, T identity,
                   const std::function<T(size_t, size_t)> &chunk_fn,
                   const std::function<T(T &&, T &&)> &combine)
    {
        if (n == 0)
            return identity;
        if (grain == 0)
            grain = defaultGrain(n);
        size_t num_chunks = (n + grain - 1) / grain;
        std::vector<T> partials(num_chunks, identity);
        parallelFor(
            num_chunks,
            [&](size_t c) {
                size_t begin = c * grain;
                size_t end = std::min(n, begin + grain);
                partials[c] = chunk_fn(begin, end);
            },
            1);
        T acc = std::move(partials[0]);
        for (size_t c = 1; c < num_chunks; ++c)
            acc = combine(std::move(acc), std::move(partials[c]));
        return acc;
    }

    /** The process-wide pool, sized by defaultThreadCount(). */
    static ThreadPool &global();

  private:
    friend class TaskGraph;

    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> deque;
    };

    /** Chunk size heuristic when the caller does not care: enough
     * chunks for balance, few enough to keep dispatch cheap. */
    size_t
    defaultGrain(size_t n) const
    {
        size_t pieces = (size_t)numThreads * 8;
        return std::max<size_t>(1, (n + pieces - 1) / pieces);
    }

    void enqueue(std::function<void()> fn);
    void workerLoop(unsigned index);
    bool tryRunOne(unsigned self);

    unsigned numThreads;
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    std::mutex injectorMutex;
    std::deque<std::function<void()>> injector;
    std::condition_variable wakeup;
    std::atomic<bool> stopping{false};
    std::atomic<uint64_t> steals{0};
    std::atomic<uint64_t> pendingTasks{0};
};

/**
 * Non-owning view of a shared pool with a width cap: the
 * oversubscription guard for layers that replay many independent
 * jobs concurrently (the profiling service's tenants). Without it,
 * each job is tempted to size its own pool from GT_THREADS, so N
 * jobs stack N x GT_THREADS runnable threads on the same cores; with
 * it, every job threads the *same* pool through its options (nested
 * parallelFor work executes cooperatively there) and the handle
 * admits at most width() top-level jobs at a time via RAII slots.
 *
 * Admission order does not affect results: everything a job computes
 * is deterministic for any schedule (see the pool's determinism
 * contract), so the cap changes wall clock and footprint only.
 */
class PoolHandle
{
  public:
    /** @param width top-level job cap; 0 = the pool's thread count. */
    explicit PoolHandle(ThreadPool &shared_pool, unsigned width = 0)
        : target(shared_pool),
          cap(width ? width : shared_pool.threadCount())
    {
    }

    PoolHandle(const PoolHandle &) = delete;
    PoolHandle &operator=(const PoolHandle &) = delete;

    /** The shared pool every admitted job must run its work on. */
    ThreadPool &pool() const { return target; }

    /** Maximum concurrently admitted jobs. */
    unsigned width() const { return cap; }

    /** Jobs currently admitted (for tests and stats). */
    unsigned
    active() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return running;
    }

    /** An admission slot; holding one is the license to run a job. */
    class Slot
    {
      public:
        Slot(Slot &&other) noexcept : owner(other.owner)
        {
            other.owner = nullptr;
        }

        Slot(const Slot &) = delete;
        Slot &operator=(const Slot &) = delete;
        Slot &operator=(Slot &&) = delete;

        ~Slot()
        {
            if (owner)
                owner->release();
        }

      private:
        friend class PoolHandle;
        explicit Slot(PoolHandle *handle) : owner(handle) {}
        PoolHandle *owner;
    };

    /** Block until a slot is free, then take it. */
    Slot acquire();

    /**
     * Like acquire(), but if the *calling thread* already holds one
     * of this handle's slots, return an empty slot immediately
     * instead of blocking. This is how work that can start either
     * standalone or from inside an admitted job (the service's
     * session rehydration) throttles the standalone case without
     * deadlocking the nested one — a thread waiting on its own
     * admission would wait forever at width 1. Slots taken through
     * either entry point must be released on the acquiring thread
     * (they are RAII locals in practice).
     */
    Slot acquireReentrant();

  private:
    void release();

    ThreadPool &target;
    unsigned cap;
    mutable std::mutex mutex;
    std::condition_variable freed;
    unsigned running = 0;
};

} // namespace gt::sched

#endif // GT_SCHED_THREAD_POOL_HH
