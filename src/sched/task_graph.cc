#include "sched/task_graph.hh"

#include <chrono>

#include "common/logging.hh"

namespace gt::sched
{

TaskGraph::TaskId
TaskGraph::add(std::function<void()> fn,
               const std::vector<TaskId> &deps)
{
    GT_ASSERT(!ran, "TaskGraph::add after run()");
    TaskId id = (TaskId)nodes.size();
    nodes.push_back(Node{std::move(fn), {}, 0});
    for (TaskId d : deps)
        addEdge(d, id);
    return id;
}

void
TaskGraph::addEdge(TaskId before, TaskId after)
{
    GT_ASSERT(!ran, "TaskGraph::addEdge after run()");
    GT_ASSERT(before < nodes.size() && after < nodes.size(),
              "TaskGraph edge references unknown task");
    GT_ASSERT(before < after,
              "TaskGraph edges must point forward (", before, " -> ",
              after, "); add() tasks in dependency order");
    nodes[before].successors.push_back(after);
    nodes[after].numDeps++;
}

void
TaskGraph::run(ThreadPool &pool)
{
    GT_ASSERT(!ran, "TaskGraph::run called twice");
    ran = true;
    size_t n = nodes.size();
    if (n == 0)
        return;

    struct ExecState
    {
        std::vector<std::atomic<uint32_t>> remaining;
        std::vector<std::exception_ptr> errors;
        /** Atomic: multiple failed predecessors may set a successor's
         * flag concurrently. */
        std::vector<std::atomic<char>> cancelled;
        std::atomic<size_t> settled{0};
        std::mutex mutex;
        std::condition_variable cv;

        explicit ExecState(size_t n)
            : remaining(n), errors(n), cancelled(n)
        {}
    };
    auto state = std::make_shared<ExecState>(n);
    for (size_t i = 0; i < n; ++i) {
        state->remaining[i].store(nodes[i].numDeps);
        state->cancelled[i].store(0);
    }

    // settle() marks a node finished (run, failed, or cancelled) and
    // releases or cancels its successors. Cancellation cascades
    // iteratively; release order follows the successor lists, which
    // are in edge-creation order, keeping scheduling deterministic.
    std::function<void(TaskId)> execute; // forward declaration
    auto settle = [this, state, &execute](TaskId id, bool failed) {
        std::vector<TaskId> work{id};
        std::vector<char> parent_failed{(char)failed};
        while (!work.empty()) {
            TaskId cur = work.back();
            bool cur_failed = parent_failed.back();
            work.pop_back();
            parent_failed.pop_back();
            size_t done = state->settled.fetch_add(1) + 1;
            for (TaskId s : nodes[cur].successors) {
                if (cur_failed)
                    state->cancelled[s].store(1);
                if (state->remaining[s].fetch_sub(1) == 1) {
                    if (state->cancelled[s].load()) {
                        work.push_back(s);
                        parent_failed.push_back(1);
                    } else {
                        execute(s);
                    }
                }
            }
            if (done == nodes.size()) {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->cv.notify_all();
            }
        }
    };

    execute = [this, state, &pool, &settle](TaskId id) {
        pool.enqueue([this, state, &settle, id] {
            bool failed = false;
            try {
                nodes[id].fn();
            } catch (...) {
                state->errors[id] = std::current_exception();
                failed = true;
            }
            settle(id, failed);
        });
    };

    // Release the roots in id order.
    for (TaskId id = 0; id < n; ++id) {
        if (nodes[id].numDeps == 0)
            execute(id);
    }

    // Wait for the graph to drain; on a multi-thread pool the caller
    // helps execute tasks so run() is safe from inside a pool task.
    if (pool.threadCount() > 1) {
        while (state->settled.load() < n) {
            if (!pool.tryRunOne(0)) {
                std::unique_lock<std::mutex> lock(state->mutex);
                state->cv.wait_for(
                    lock, std::chrono::milliseconds(1), [&] {
                        return state->settled.load() >= n;
                    });
            }
        }
    }
    GT_ASSERT(state->settled.load() == n,
              "task graph stalled: cycle or unreachable task");

    for (TaskId id = 0; id < n; ++id) {
        if (state->errors[id])
            std::rethrow_exception(state->errors[id]);
    }
}

} // namespace gt::sched
