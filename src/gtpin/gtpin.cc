#include "gtpin/gtpin.hh"

#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace gt::gtpin
{

GtPin::~GtPin()
{
    if (drv)
        detach();
}

GtPin::MemTraceMode
GtPin::defaultMemTraceMode()
{
    static const MemTraceMode selected = [] {
        MemTraceMode m = MemTraceMode::Batch;
        if (const char *env = std::getenv("GT_MEMTRACE");
            env && *env != '\0') {
            std::string value(env);
            if (value == "callback") {
                m = MemTraceMode::Callback;
            } else if (value != "batch") {
                warn("ignoring invalid GT_MEMTRACE value '", value,
                     "' (expected 'callback' or 'batch')");
            }
        }
        inform("gtpin: ", memTraceModeName(m), " memory-trace "
               "delivery (override with GT_MEMTRACE=callback|batch)");
        return m;
    }();
    return selected;
}

const char *
GtPin::memTraceModeName(MemTraceMode m)
{
    return m == MemTraceMode::Callback ? "callback" : "batch";
}

void
GtPin::setMemTraceMode(MemTraceMode m)
{
    GT_ASSERT(!drv, "trace mode must be selected before attach()");
    traceMode = m;
}

void
GtPin::addTool(GtPinTool *tool)
{
    GT_ASSERT(tool, "null tool");
    GT_ASSERT(!drv, "tools must be registered before attach()");
    tools.push_back(tool);
}

void
GtPin::attach(ocl::GpuDriver &driver)
{
    GT_ASSERT(!drv, "GtPin is already attached");
    // Register with the driver first: if another observer is already
    // attached this throws and we remain cleanly detached.
    driver.setObserver(this);
    drv = &driver;
    // Baseline the snapshot on this device's current trace buffer:
    // a fresh device starts from zero, and re-attaching to a device
    // with history must not report that history as a delta.
    snapshot = driver.traceBuffer().raw();

    inform("GT-Pin attached (", tools.size(), " tool",
           tools.size() == 1 ? "" : "s", ", ",
           gpu::Executor::backendName(driver.executor().backend()),
           " interpreter backend, ",
           gpu::Executor::execModeName(driver.executor().execMode()),
           " execution mode, ", memTraceModeName(traceMode),
           " memory-trace delivery)");

    // The initialization hook of Fig. 1: allocate the CPU/GPU-shared
    // trace buffer and, if any tool simulates caches from memory
    // traces, ask the driver for trace visibility. The address-needing
    // tool list is filtered here, once, so delivery never re-scans the
    // full tool list per access or per chunk.
    drv->traceBuffer().reserveSlots(slots.allocated());
    addrTools.clear();
    for (GtPinTool *tool : tools) {
        if (tool->needsAddresses())
            addrTools.push_back(tool);
    }
    if (!addrTools.empty()) {
        drv->setExecMode(gpu::Executor::Mode::Full);
        if (traceMode == MemTraceMode::Batch) {
            drv->setMemBatchCallback([this](const gpu::MemBatch &b) {
                for (GtPinTool *tool : addrTools)
                    tool->onMemBatch(b);
            });
        } else {
            drv->setMemAccessCallback(
                [this](uint64_t addr, uint32_t bytes, bool is_write) {
                    for (GtPinTool *tool : addrTools)
                        tool->onMemAccess(addr, bytes, is_write);
                });
        }
    }
}

void
GtPin::detach()
{
    GT_ASSERT(drv, "GtPin is not attached");
    // Drop the trace plumbing: both callbacks capture `this` and must
    // not outlive the attachment.
    if (!addrTools.empty()) {
        drv->setMemAccessCallback(nullptr);
        drv->setMemBatchCallback(nullptr);
    }
    drv->setObserver(nullptr);
    drv = nullptr;
}

isa::KernelBinary
GtPin::onKernelJit(const isa::KernelSource &source,
                   isa::KernelBinary binary)
{
    (void)source;
    uint32_t kernel_id = drv->numKernels();
    Instrumenter instrumenter(binary, slots);
    for (GtPinTool *tool : tools)
        tool->onKernelBuild(kernel_id, instrumenter);
    inserted += instrumenter.requestCount();
    isa::KernelBinary rewritten = instrumenter.apply();
    drv->traceBuffer().reserveSlots(slots.allocated());
    return rewritten;
}

void
GtPin::onDispatchComplete(const ocl::DispatchResult &result,
                          gpu::TraceBuffer &trace)
{
    // CPU post-processing: diff the trace buffer against the last
    // snapshot to obtain this dispatch's contribution.
    const std::vector<uint64_t> &raw = trace.raw();
    if (snapshot.size() < raw.size())
        snapshot.resize(raw.size(), 0);
    deltas.assign(raw.size(), 0);
    for (size_t s = 0; s < raw.size(); ++s) {
        GT_ASSERT(raw[s] >= snapshot[s],
                  "trace buffer slot went backwards");
        deltas[s] = raw[s] - snapshot[s];
        snapshot[s] = raw[s];
    }

    SlotReader reader(deltas);
    for (GtPinTool *tool : tools)
        tool->onDispatchComplete(result, reader);
}

} // namespace gt::gtpin
