#include "gtpin/gtpin.hh"

#include "common/logging.hh"

namespace gt::gtpin
{

GtPin::~GtPin()
{
    if (drv)
        detach();
}

void
GtPin::addTool(GtPinTool *tool)
{
    GT_ASSERT(tool, "null tool");
    GT_ASSERT(!drv, "tools must be registered before attach()");
    tools.push_back(tool);
}

void
GtPin::attach(ocl::GpuDriver &driver)
{
    GT_ASSERT(!drv, "GtPin is already attached");
    // Register with the driver first: if another observer is already
    // attached this throws and we remain cleanly detached.
    driver.setObserver(this);
    drv = &driver;
    // Baseline the snapshot on this device's current trace buffer:
    // a fresh device starts from zero, and re-attaching to a device
    // with history must not report that history as a delta.
    snapshot = driver.traceBuffer().raw();

    inform("GT-Pin attached (", tools.size(), " tool",
           tools.size() == 1 ? "" : "s", ", ",
           gpu::Executor::backendName(driver.executor().backend()),
           " interpreter backend)");

    // The initialization hook of Fig. 1: allocate the CPU/GPU-shared
    // trace buffer and, if any tool simulates caches from memory
    // traces, ask the driver for per-access visibility.
    drv->traceBuffer().reserveSlots(slots.allocated());
    bool want_addresses = false;
    for (GtPinTool *tool : tools)
        want_addresses = want_addresses || tool->needsAddresses();
    if (want_addresses) {
        drv->setExecMode(gpu::Executor::Mode::Full);
        drv->setMemAccessCallback(
            [this](uint64_t addr, uint32_t bytes, bool is_write) {
                for (GtPinTool *tool : tools) {
                    if (tool->needsAddresses())
                        tool->onMemAccess(addr, bytes, is_write);
                }
            });
    }
}

void
GtPin::detach()
{
    GT_ASSERT(drv, "GtPin is not attached");
    drv->setObserver(nullptr);
    drv = nullptr;
}

isa::KernelBinary
GtPin::onKernelJit(const isa::KernelSource &source,
                   isa::KernelBinary binary)
{
    (void)source;
    uint32_t kernel_id = drv->numKernels();
    Instrumenter instrumenter(binary, slots);
    for (GtPinTool *tool : tools)
        tool->onKernelBuild(kernel_id, instrumenter);
    inserted += instrumenter.requestCount();
    isa::KernelBinary rewritten = instrumenter.apply();
    drv->traceBuffer().reserveSlots(slots.allocated());
    return rewritten;
}

void
GtPin::onDispatchComplete(const ocl::DispatchResult &result,
                          gpu::TraceBuffer &trace)
{
    // CPU post-processing: diff the trace buffer against the last
    // snapshot to obtain this dispatch's contribution.
    const std::vector<uint64_t> &raw = trace.raw();
    if (snapshot.size() < raw.size())
        snapshot.resize(raw.size(), 0);
    deltas.assign(raw.size(), 0);
    for (size_t s = 0; s < raw.size(); ++s) {
        GT_ASSERT(raw[s] >= snapshot[s],
                  "trace buffer slot went backwards");
        deltas[s] = raw[s] - snapshot[s];
        snapshot[s] = raw[s];
    }

    SlotReader reader(deltas);
    for (GtPinTool *tool : tools)
        tool->onDispatchComplete(result, reader);
}

} // namespace gt::gtpin
