/**
 * @file
 * Built-in GT-Pin tools.
 *
 * These cover the data kinds Section III-B lists: static and dynamic
 * instruction counts, opcode distributions, SIMD width counts, basic
 * block counts, kernel thread cycles, and memory bytes read/written
 * per instruction. Each tool inserts only what it needs — a block
 * counter per basic block, a byte accumulator per send, a timer pair
 * per kernel — mirroring the paper's overhead-minimization strategy.
 */

#ifndef GT_GTPIN_TOOLS_HH
#define GT_GTPIN_TOOLS_HH

#include <array>
#include <map>

#include "gtpin/gtpin.hh"

namespace gt::gtpin
{

/**
 * Counts basic-block executions (one counter inserted per block) and
 * derives dynamic instruction counts from the static block lengths,
 * the paper's one-increment-per-block technique.
 */
class BasicBlockCounterTool : public GtPinTool
{
  public:
    std::string name() const override { return "bbcount"; }

    void onKernelBuild(uint32_t kernel_id,
                       Instrumenter &instrumenter) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            const SlotReader &slots) override;

    /** Static program structure: unique basic blocks per kernel. */
    uint64_t staticBlocks(uint32_t kernel_id) const;
    uint64_t totalStaticBlocks() const;
    uint64_t totalStaticInstrs() const;

    /** Dynamic totals across all dispatches seen. */
    uint64_t totalBlockExecs() const { return dynBlocks; }
    uint64_t totalDynInstrs() const { return dynInstrs; }

    /** Per-dispatch values of the most recent dispatch. */
    const std::vector<uint64_t> &lastBlockCounts() const
    {
        return lastCounts;
    }
    uint64_t lastDynInstrs() const { return lastInstrs; }

  private:
    struct KernelInfo
    {
        uint32_t firstSlot = 0;
        bool built = false; //!< instrumented by onKernelBuild
        std::vector<uint32_t> blockLens; //!< app instrs per block
    };

    /** Indexed by kernel id — driver ids are dense and sequential,
     * so a vector replaces the former std::map lookup per dispatch. */
    std::vector<KernelInfo> kernels;
    uint64_t dynBlocks = 0;
    uint64_t dynInstrs = 0;
    uint64_t staticInstrs = 0;
    std::vector<uint64_t> lastCounts;
    uint64_t lastInstrs = 0;
};

/**
 * Dynamic opcode-class and SIMD-width distributions (Figs. 4a/4b):
 * per-block counters plus static per-block histograms.
 */
class OpcodeMixTool : public GtPinTool
{
  public:
    std::string name() const override { return "opcodemix"; }

    void onKernelBuild(uint32_t kernel_id,
                       Instrumenter &instrumenter) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            const SlotReader &slots) override;

    /** Dynamic totals per opcode class. */
    const std::array<uint64_t, isa::numOpClasses> &
    classCounts() const
    {
        return dynClasses;
    }

    /** Dynamic totals per opcode. */
    const std::array<uint64_t, isa::numOpcodes> &
    opcodeCounts() const
    {
        return dynOpcodes;
    }

    /** Dynamic totals per SIMD width bin (1,2,4,8,16). */
    const std::array<uint64_t, 5> &simdCounts() const
    {
        return dynSimd;
    }

    uint64_t totalInstrs() const;

  private:
    struct BlockMix
    {
        std::array<uint32_t, isa::numOpcodes> opcodes{};
        std::array<uint32_t, 5> simd{};
    };

    struct KernelInfo
    {
        uint32_t firstSlot = 0;
        bool built = false; //!< instrumented by onKernelBuild
        std::vector<BlockMix> blocks;
    };

    /** Indexed by kernel id (dense, see BasicBlockCounterTool). */
    std::vector<KernelInfo> kernels;
    std::array<uint64_t, isa::numOpcodes> dynOpcodes{};
    std::array<uint64_t, isa::numOpClasses> dynClasses{};
    std::array<uint64_t, 5> dynSimd{};
};

/**
 * Bytes read and written per kernel (Fig. 4c): one accumulator pair
 * per kernel, fed by a ProfMem insertion after every send.
 */
class MemBytesTool : public GtPinTool
{
  public:
    std::string name() const override { return "membytes"; }

    void onKernelBuild(uint32_t kernel_id,
                       Instrumenter &instrumenter) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            const SlotReader &slots) override;

    uint64_t totalBytesRead() const { return bytesRead; }
    uint64_t totalBytesWritten() const { return bytesWritten; }

    /** Per-kernel dynamic byte totals. */
    uint64_t kernelBytesRead(uint32_t kernel_id) const;
    uint64_t kernelBytesWritten(uint32_t kernel_id) const;

  private:
    struct KernelInfo
    {
        uint32_t readSlot = 0;
        uint32_t writeSlot = 0;
        uint64_t read = 0;
        uint64_t written = 0;
    };

    std::map<uint32_t, KernelInfo> kernels;
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
};

/**
 * Utilization of per-EU SIMD channels (Section III-B's last listed
 * statistic): the fraction of the 16 physical channels a kernel's
 * dynamic instructions actually drive, derived from per-block
 * counters and the static width of each instruction.
 */
class SimdUtilizationTool : public GtPinTool
{
  public:
    std::string name() const override { return "simdutil"; }

    void onKernelBuild(uint32_t kernel_id,
                       Instrumenter &instrumenter) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            const SlotReader &slots) override;

    /** Average active-channel fraction for one kernel (0..1). */
    double kernelUtilization(uint32_t kernel_id) const;

    /** Average active-channel fraction across all kernels. */
    double overallUtilization() const;

  private:
    struct KernelInfo
    {
        uint32_t firstSlot = 0;
        /** Static sum of instruction widths per block. */
        std::vector<uint64_t> blockLanes;
        /** Static application-instruction count per block. */
        std::vector<uint32_t> blockLens;
        uint64_t activeLanes = 0;
        uint64_t instrs = 0;
    };

    std::map<uint32_t, KernelInfo> kernels;
    uint64_t totalActiveLanes = 0;
    uint64_t totalInstrs = 0;
};

/**
 * Thread cycles spent in each kernel, via timer-register reads at
 * entry and before every thread exit.
 */
class KernelTimerTool : public GtPinTool
{
  public:
    std::string name() const override { return "ktimer"; }

    void onKernelBuild(uint32_t kernel_id,
                       Instrumenter &instrumenter) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            const SlotReader &slots) override;

    /** Accumulated thread cycles per kernel. */
    uint64_t kernelCycles(uint32_t kernel_id) const;
    uint64_t totalCycles() const { return cycles; }

  private:
    std::map<uint32_t, std::pair<uint32_t, uint64_t>> kernels;
    uint64_t cycles = 0;
};

} // namespace gt::gtpin

#endif // GT_GTPIN_TOOLS_HH
