#include "gtpin/kernel_profile.hh"

#include "common/logging.hh"

namespace gt::gtpin
{

void
DispatchProfile::checkShape() const
{
    GT_ASSERT(blockLens.size() == blockCounts.size() &&
                  blockReadBytes.size() == blockCounts.size() &&
                  blockWriteBytes.size() == blockCounts.size(),
              "dispatch ", seq, " has ragged per-block arrays: ",
              blockCounts.size(), " counts, ", blockLens.size(),
              " lens, ", blockReadBytes.size(), " read, ",
              blockWriteBytes.size(), " write");
}

void
KernelProfileTool::onKernelBuild(uint32_t kernel_id,
                                 Instrumenter &instrumenter)
{
    const isa::KernelBinary &bin = instrumenter.binary();
    KernelInfo info;
    info.firstSlot =
        instrumenter.allocSlot((uint32_t)bin.blocks.size());
    info.blockLens.resize(bin.blocks.size());
    info.blockReadBytes.resize(bin.blocks.size());
    info.blockWriteBytes.resize(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        instrumenter.countBlockEntry(
            block.id, info.firstSlot + block.id, 1);
        info.blockLens[block.id] = (uint32_t)block.appInstrCount();
        uint32_t reads = 0, writes = 0;
        for (const auto &ins : block.instrs) {
            if (ins.op != isa::Opcode::Send)
                continue;
            uint32_t bytes =
                (uint32_t)ins.send.bytesPerLane * ins.simdWidth;
            if (ins.send.isWrite)
                writes += bytes;
            else
                reads += bytes;
        }
        info.blockReadBytes[block.id] = reads;
        info.blockWriteBytes[block.id] = writes;
    }
    kernels[kernel_id] = std::move(info);
}

void
KernelProfileTool::onDispatchComplete(
    const ocl::DispatchResult &result, const SlotReader &slots)
{
    auto it = kernels.find(result.kernelId);
    GT_ASSERT(it != kernels.end(),
              "dispatch of a kernel kernelprofile never saw");
    const KernelInfo &info = it->second;

    DispatchProfile rec;
    rec.seq = result.seq;
    rec.kernelId = result.kernelId;
    rec.kernelName = result.kernelName;
    rec.globalWorkSize = result.globalSize;
    rec.argsHash = result.argsHash;
    rec.args = result.args;
    rec.blockLens = info.blockLens;
    rec.blockReadBytes = info.blockReadBytes;
    rec.blockWriteBytes = info.blockWriteBytes;
    rec.blockCounts.resize(info.blockLens.size());

    for (size_t b = 0; b < info.blockLens.size(); ++b) {
        uint64_t count = slots(info.firstSlot + (uint32_t)b);
        rec.blockCounts[b] = count;
        rec.instrs += count * info.blockLens[b];
        rec.bytesRead += count * info.blockReadBytes[b];
        rec.bytesWritten += count * info.blockWriteBytes[b];
    }

    instrTotal += rec.instrs;
    records.push_back(std::move(rec));
}

std::vector<DispatchProfile>
KernelProfileTool::takeProfiles()
{
    std::vector<DispatchProfile> out;
    out.swap(records);
    return out;
}

} // namespace gt::gtpin
