#include "gtpin/kernel_profile.hh"

#include "common/logging.hh"

namespace gt::gtpin
{

void
DispatchProfile::checkShape() const
{
    GT_ASSERT(blockLens.size() == blockCounts.size() &&
                  blockReadBytes.size() == blockCounts.size() &&
                  blockWriteBytes.size() == blockCounts.size(),
              "dispatch ", seq, " has ragged per-block arrays: ",
              blockCounts.size(), " counts, ", blockLens.size(),
              " lens, ", blockReadBytes.size(), " read, ",
              blockWriteBytes.size(), " write");
}

uint64_t
DispatchProfile::footprintBytes() const
{
    return sizeof(DispatchProfile) + kernelName.size() +
           args.size() * sizeof(uint32_t) +
           blockCounts.size() * sizeof(uint64_t) +
           blockLens.size() * sizeof(uint32_t) +
           blockReadBytes.size() * sizeof(uint32_t) +
           blockWriteBytes.size() * sizeof(uint32_t);
}

void
encodeProfilePayload(const DispatchProfile &profile,
                     uint32_t name_id, std::vector<uint8_t> &out)
{
    profile.checkShape();
    putVarint(out, profile.seq);
    putVarint(out, profile.kernelId);
    putVarint(out, name_id);
    putVarint(out, profile.globalWorkSize);
    putVarint(out, profile.argsHash);
    putVarint(out, profile.args.size());
    for (uint32_t a : profile.args)
        putVarint(out, a);
    putVarint(out, profile.instrs);
    putVarint(out, profile.blockCounts.size());
    for (uint64_t c : profile.blockCounts)
        putVarint(out, c);
    for (uint32_t l : profile.blockLens)
        putVarint(out, l);
    for (uint32_t r : profile.blockReadBytes)
        putVarint(out, r);
    for (uint32_t w : profile.blockWriteBytes)
        putVarint(out, w);
    putVarint(out, profile.bytesRead);
    putVarint(out, profile.bytesWritten);
}

DispatchProfile
decodeProfilePayload(ByteReader &reader,
                     const std::vector<std::string> &names)
{
    DispatchProfile p;
    p.seq = reader.getVarint();
    p.kernelId = (uint32_t)reader.getVarint();
    uint64_t name_id = reader.getVarint();
    if (name_id >= names.size())
        fatal("trace store: profile names kernel ", name_id,
              " but the name table holds ", names.size());
    p.kernelName = names[name_id];
    p.globalWorkSize = reader.getVarint();
    p.argsHash = reader.getVarint();
    uint64_t num_args = reader.getCount(1 << 20);
    p.args.resize(num_args);
    for (uint64_t i = 0; i < num_args; ++i)
        p.args[i] = (uint32_t)reader.getVarint();
    p.instrs = reader.getVarint();
    uint64_t num_blocks = reader.getCount(1 << 26);
    p.blockCounts.resize(num_blocks);
    for (uint64_t i = 0; i < num_blocks; ++i)
        p.blockCounts[i] = reader.getVarint();
    p.blockLens.resize(num_blocks);
    for (uint64_t i = 0; i < num_blocks; ++i)
        p.blockLens[i] = (uint32_t)reader.getVarint();
    p.blockReadBytes.resize(num_blocks);
    for (uint64_t i = 0; i < num_blocks; ++i)
        p.blockReadBytes[i] = (uint32_t)reader.getVarint();
    p.blockWriteBytes.resize(num_blocks);
    for (uint64_t i = 0; i < num_blocks; ++i)
        p.blockWriteBytes[i] = (uint32_t)reader.getVarint();
    p.bytesRead = reader.getVarint();
    p.bytesWritten = reader.getVarint();
    return p;
}

void
KernelProfileTool::onKernelBuild(uint32_t kernel_id,
                                 Instrumenter &instrumenter)
{
    const isa::KernelBinary &bin = instrumenter.binary();
    KernelInfo info;
    info.firstSlot =
        instrumenter.allocSlot((uint32_t)bin.blocks.size());
    info.blockLens.resize(bin.blocks.size());
    info.blockReadBytes.resize(bin.blocks.size());
    info.blockWriteBytes.resize(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        instrumenter.countBlockEntry(
            block.id, info.firstSlot + block.id, 1);
        info.blockLens[block.id] = (uint32_t)block.appInstrCount();
        uint32_t reads = 0, writes = 0;
        for (const auto &ins : block.instrs) {
            if (ins.op != isa::Opcode::Send)
                continue;
            uint32_t bytes =
                (uint32_t)ins.send.bytesPerLane * ins.simdWidth;
            if (ins.send.isWrite)
                writes += bytes;
            else
                reads += bytes;
        }
        info.blockReadBytes[block.id] = reads;
        info.blockWriteBytes[block.id] = writes;
    }
    kernels[kernel_id] = std::move(info);
}

void
KernelProfileTool::onDispatchComplete(
    const ocl::DispatchResult &result, const SlotReader &slots)
{
    auto it = kernels.find(result.kernelId);
    GT_ASSERT(it != kernels.end(),
              "dispatch of a kernel kernelprofile never saw");
    const KernelInfo &info = it->second;

    DispatchProfile rec;
    rec.seq = result.seq;
    rec.kernelId = result.kernelId;
    rec.kernelName = result.kernelName;
    rec.globalWorkSize = result.globalSize;
    rec.argsHash = result.argsHash;
    rec.args = result.args;
    rec.blockLens = info.blockLens;
    rec.blockReadBytes = info.blockReadBytes;
    rec.blockWriteBytes = info.blockWriteBytes;
    rec.blockCounts.resize(info.blockLens.size());

    for (size_t b = 0; b < info.blockLens.size(); ++b) {
        uint64_t count = slots(info.firstSlot + (uint32_t)b);
        rec.blockCounts[b] = count;
        rec.instrs += count * info.blockLens[b];
        rec.bytesRead += count * info.blockReadBytes[b];
        rec.bytesWritten += count * info.blockWriteBytes[b];
    }

    instrTotal += rec.instrs;
    records.push_back(std::move(rec));
}

std::vector<DispatchProfile>
KernelProfileTool::takeProfiles()
{
    std::vector<DispatchProfile> out;
    out.swap(records);
    return out;
}

} // namespace gt::gtpin
