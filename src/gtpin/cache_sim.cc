#include "gtpin/cache_sim.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace gt::gtpin
{

CacheModel::CacheModel(uint64_t size_bytes, uint32_t ways_,
                       uint32_t line_bytes)
    : ways(ways_)
{
    GT_ASSERT(line_bytes >= 4 && std::has_single_bit(line_bytes),
              "line size must be a power of two >= 4");
    GT_ASSERT(ways > 0, "associativity must be positive");
    GT_ASSERT(size_bytes >= (uint64_t)ways * line_bytes,
              "cache smaller than one set");
    lineShift = (uint32_t)std::countr_zero(line_bytes);
    uint64_t num_lines = size_bytes / line_bytes;
    sets = (uint32_t)(num_lines / ways);
    GT_ASSERT(sets > 0 && std::has_single_bit(sets),
              "set count must be a power of two (size ", size_bytes,
              ", ways ", ways, ", line ", line_bytes, ")");
    setShift = (uint32_t)std::countr_zero(sets);
    lines.resize((size_t)sets * ways);
    llb.resize(llbSize);
    setGen.resize(sets, 0);
}

CacheModel::Line &
CacheModel::probeLine(uint64_t line_addr, bool is_write)
{
    uint32_t set = (uint32_t)(line_addr & (sets - 1));
    uint64_t tag = line_addr >> setShift;
    Line *base = &lines[(size_t)set * ways];
    ++useClock;

    Line *victim = base;
    for (uint32_t w = 0; w < ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            line.dirty = line.dirty || is_write;
            ++hitCount;
            return line;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid &&
                   line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    ++missCount;
    ++setGen[set]; // the refill below invalidates LLB entries here
    if (victim->valid && victim->dirty)
        ++writebackCount;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    victim->dirty = is_write;
    return *victim;
}

bool
CacheModel::access(uint64_t addr, uint32_t bytes, bool is_write)
{
    GT_ASSERT(bytes > 0, "zero-byte access");
    uint64_t first = addr >> lineShift;
    uint64_t last = (addr + bytes - 1) >> lineShift;
    bool all_hit = true;
    for (uint64_t line = first; line <= last; ++line) {
        uint64_t hits_before = hitCount;
        probeLine(line, is_write);
        all_hit = all_hit && hitCount != hits_before;
    }
    return all_hit;
}

void
CacheModel::accessBatch(const gpu::MemBatch &batch)
{
    for (size_t i = 0; i < batch.count; ++i) {
        uint64_t addr = batch.addrs[i];
        uint32_t meta = batch.metas[i];
        bool is_write = gpu::MemBatch::isWrite(meta);
        uint64_t first = addr >> lineShift;
        uint64_t last =
            (addr + gpu::MemBatch::bytes(meta) - 1) >> lineShift;
        uint64_t line = first;
        do {
            LlbEntry &e = llb[line & (llbSize - 1)];
            uint32_t set = (uint32_t)(line & (sets - 1));
            if (e.lineAddr == line && e.gen == setGen[set]) {
                // Still resident: apply exactly a probe hit's
                // effects without scanning the set.
                ++useClock;
                ++hitCount;
                e.line->lastUse = useClock;
                e.line->dirty = e.line->dirty || is_write;
            } else {
                Line &ln = probeLine(line, is_write);
                e.lineAddr = line;
                e.line = &ln;
                e.gen = setGen[set]; // read after a possible bump
            }
        } while (++line <= last);
    }
}

void
CacheModel::reset()
{
    for (auto &line : lines)
        line = Line{};
    for (auto &e : llb)
        e = LlbEntry{};
    std::fill(setGen.begin(), setGen.end(), 0u);
    useClock = 0;
    hitCount = 0;
    missCount = 0;
    writebackCount = 0;
}

CacheSimTool::CacheSimTool(uint64_t size_bytes, uint32_t ways,
                           uint32_t line_bytes)
    : model(size_bytes, ways, line_bytes)
{
}

void
CacheSimTool::onMemAccess(uint64_t addr, uint32_t bytes,
                          bool is_write)
{
    model.access(addr, bytes, is_write);
}

} // namespace gt::gtpin
