/**
 * @file
 * The GT-Pin binary rewriter.
 *
 * Fig. 1's "GT-Pin Binary Rewriter" box: after the driver JIT
 * compiles a kernel, the binary is diverted here and profiling
 * instructions are injected into its basic blocks before the device
 * ever sees it. Tools describe what they want through the
 * Instrumenter request API (count a block, record a send's bytes,
 * time the kernel, sample a register); apply() materializes all
 * requests into a new binary in one pass, preserving the original
 * instructions and control flow.
 *
 * As in the real tool, inserted work is minimized: counting dynamic
 * instructions costs one counter update per basic block, not per
 * instruction, and timing uses timer-register reads of bounded cost.
 */

#ifndef GT_GTPIN_REWRITER_HH
#define GT_GTPIN_REWRITER_HH

#include <cstdint>
#include <vector>

#include "isa/kernel.hh"

namespace gt::gtpin
{

/** Allocates trace-buffer slots; owned by the GtPin framework. */
class SlotAllocator
{
  public:
    /** Allocate @p count consecutive slots; returns the first. */
    uint32_t
    alloc(uint32_t count = 1)
    {
        uint32_t first = next;
        next += count;
        return first;
    }

    /** Total slots allocated so far. */
    uint32_t allocated() const { return next; }

  private:
    uint32_t next = 0;
};

/**
 * Collects instrumentation requests against one kernel binary and
 * applies them. Tools receive an Instrumenter in their
 * onKernelBuild() hook.
 */
class Instrumenter
{
  public:
    Instrumenter(const isa::KernelBinary &binary,
                 SlotAllocator &slots);

    /** The binary being instrumented (pre-rewrite). */
    const isa::KernelBinary &binary() const { return bin; }

    /** Allocate fresh trace-buffer slots. */
    uint32_t allocSlot(uint32_t count = 1) { return slots.alloc(count); }

    /**
     * At each entry to block @p block_id, add @p arg to @p slot
     * (arg = 1 counts executions; arg = block length counts dynamic
     * instructions with a single insertion per block).
     */
    void countBlockEntry(uint32_t block_id, uint32_t slot,
                         uint32_t arg = 1);

    /**
     * After the Send at (@p block_id, @p instr_idx), add the bytes it
     * moves per execution to @p slot.
     */
    void recordSendBytes(uint32_t block_id, uint32_t instr_idx,
                         uint32_t slot);

    /**
     * Accumulate the kernel's per-thread cycles into @p slot: a
     * timer read on entry and one before every thread exit.
     */
    void timeKernel(uint32_t slot);

    /**
     * Before instruction (@p block_id, @p instr_idx), add lane 0 of
     * @p reg to @p slot (for custom value-profiling tools).
     */
    void addRegLane0(uint32_t block_id, uint32_t instr_idx,
                     uint16_t reg, uint32_t slot);

    /** Number of insertion requests collected. */
    size_t requestCount() const { return requests.size(); }

    /**
     * Materialize all requests into a rewritten binary. The result
     * passes isa::verify() and executes identically to the original
     * apart from trace-buffer side effects.
     */
    isa::KernelBinary apply() const;

  private:
    struct Request
    {
        uint32_t block;
        /** insertion point: instruction index the op goes before */
        uint32_t before;
        isa::Instruction ins;
    };

    void checkBlock(uint32_t block_id) const;

    const isa::KernelBinary &bin;
    SlotAllocator &slots;
    std::vector<Request> requests;
};

} // namespace gt::gtpin

#endif // GT_GTPIN_REWRITER_HH
