/**
 * @file
 * The custom GT-Pin tool behind the paper's subset selection.
 *
 * Section III-B: "for the simulation subset selection in Section V,
 * we wrote a custom GT-Pin tool that collected only instruction
 * counts and opcodes, basic block counts, and memory bytes read and
 * written per instruction." This tool is that collector: it emits
 * one DispatchProfile per kernel invocation containing everything
 * the interval builder and feature extractor need, and nothing more.
 */

#ifndef GT_GTPIN_KERNEL_PROFILE_HH
#define GT_GTPIN_KERNEL_PROFILE_HH

#include <map>

#include "common/varint.hh"
#include "gtpin/gtpin.hh"

namespace gt::gtpin
{

/** Selection-relevant data for one kernel invocation. */
struct DispatchProfile
{
    uint64_t seq = 0;          //!< dispatch sequence number
    uint32_t kernelId = 0;
    std::string kernelName;
    uint64_t globalWorkSize = 0;
    uint64_t argsHash = 0;

    /** Kernel argument values (buffer args carry device addresses),
     * so selected intervals can later be re-dispatched for detailed
     * simulation. */
    std::vector<uint32_t> args;

    /** Dynamic application instructions in this invocation. */
    uint64_t instrs = 0;

    /** Execution count per basic block of the kernel. */
    std::vector<uint64_t> blockCounts;

    /** Static application-instruction length per basic block. */
    std::vector<uint32_t> blockLens;

    /** Static bytes read/written per execution, per basic block. */
    std::vector<uint32_t> blockReadBytes;
    std::vector<uint32_t> blockWriteBytes;

    /** Dynamic bytes moved by this invocation. */
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;

    /** Basic blocks in this invocation's kernel. */
    size_t numBlocks() const { return blockCounts.size(); }

    /** Assert the four per-block arrays agree in length — the shape
     * contract every indexed consumer (feature lowering, the BB
     * extractors) relies on. */
    void checkShape() const;

    /** Deep resident size: the struct plus every heap allocation
     * (name, args, the four per-block arrays), by element size. The
     * trace database's memory-footprint accounting sums this. */
    uint64_t footprintBytes() const;
};

/**
 * Columnar extraction of one profile into a varint payload — the
 * per-dispatch record format of core/trace_store. Every integer
 * field is LEB128; the kernel name is replaced by @p name_id, an
 * index into the store's interned name table (names repeat across
 * thousands of dispatches of the same kernel, so they are stored
 * once). The layout is positional: seq, kernelId, nameId, gws,
 * argsHash, args, instrs, the four per-block arrays, bytes R/W.
 */
void encodeProfilePayload(const DispatchProfile &profile,
                          uint32_t name_id,
                          std::vector<uint8_t> &out);

/**
 * Inverse of encodeProfilePayload(): decode one profile from
 * @p reader, resolving the interned name through @p names. All
 * integer fields round-trip exactly, and the rebuilt string equals
 * the encoded one, so the result is bitwise identical to the
 * profile that was packed.
 */
DispatchProfile
decodeProfilePayload(ByteReader &reader,
                     const std::vector<std::string> &names);

/** Collects DispatchProfiles for every kernel invocation. */
class KernelProfileTool : public GtPinTool
{
  public:
    std::string name() const override { return "kernelprofile"; }

    void onKernelBuild(uint32_t kernel_id,
                       Instrumenter &instrumenter) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            const SlotReader &slots) override;

    /** All profiles collected so far, in dispatch order. */
    const std::vector<DispatchProfile> &profiles() const
    {
        return records;
    }

    /** Total dynamic application instructions across dispatches. */
    uint64_t totalInstrs() const { return instrTotal; }

    /** Release collected profiles (keeps instrumentation state). */
    std::vector<DispatchProfile> takeProfiles();

  private:
    struct KernelInfo
    {
        uint32_t firstSlot = 0;
        std::vector<uint32_t> blockLens;
        std::vector<uint32_t> blockReadBytes;
        std::vector<uint32_t> blockWriteBytes;
    };

    std::map<uint32_t, KernelInfo> kernels;
    std::vector<DispatchProfile> records;
    uint64_t instrTotal = 0;
};

} // namespace gt::gtpin

#endif // GT_GTPIN_KERNEL_PROFILE_HH
