/**
 * @file
 * The GT-Pin framework.
 *
 * GtPin reproduces the workflow of the paper's Section III. When
 * attached to a GPU driver it (1) allocates the CPU/GPU-shared trace
 * buffer, (2) diverts every JIT-compiled kernel binary through the
 * binary rewriter, letting each registered tool inject the profiling
 * instructions it needs, and (3) after every dispatch, reads the
 * trace buffer's per-dispatch deltas on the CPU and hands them to
 * the tools for post-processing. No application source changes or
 * recompilation are involved, and the injected instructions do not
 * perturb the application's architectural state.
 *
 * Users write tools against the GtPinTool interface, exactly like
 * the paper's users write custom tools that collect only the
 * statistics they need to keep overheads low.
 */

#ifndef GT_GTPIN_GTPIN_HH
#define GT_GTPIN_GTPIN_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/memtrace.hh"
#include "gtpin/rewriter.hh"
#include "ocl/driver.hh"

namespace gt::gtpin
{

/** Read-only view of one dispatch's trace-buffer deltas. */
class SlotReader
{
  public:
    explicit SlotReader(const std::vector<uint64_t> &deltas)
        : data(deltas)
    {}

    /** @return the value slot @p slot accumulated this dispatch. */
    uint64_t
    operator()(uint32_t slot) const
    {
        return slot < data.size() ? data[slot] : 0;
    }

  private:
    const std::vector<uint64_t> &data;
};

/** Base class for GT-Pin profiling tools. */
class GtPinTool
{
  public:
    virtual ~GtPinTool() = default;

    /** Short tool name for reports. */
    virtual std::string name() const = 0;

    /**
     * Inject instrumentation for a freshly JIT-compiled kernel.
     * @p kernel_id is the driver kernel id later seen in dispatches.
     */
    virtual void onKernelBuild(uint32_t kernel_id,
                               Instrumenter &instrumenter) = 0;

    /** Post-process one dispatch's trace-buffer deltas. */
    virtual void
    onDispatchComplete(const ocl::DispatchResult &result,
                       const SlotReader &slots)
    {
        (void)result;
        (void)slots;
    }

    /**
     * Tools that simulate caches from memory traces need per-access
     * addresses, which forces full (per-lane) device execution.
     */
    virtual bool needsAddresses() const { return false; }

    /**
     * Per-access memory trace, delivered only to tools that return
     * true from needsAddresses().
     */
    virtual void
    onMemAccess(uint64_t addr, uint32_t bytes, bool is_write)
    {
        (void)addr;
        (void)bytes;
        (void)is_write;
    }

    /**
     * Bulk memory trace (GT_MEMTRACE=batch, the default): one call
     * per flushed SoA chunk, chunks and records in execution order.
     * The default implementation replays the chunk through
     * onMemAccess(), so tools written against the per-access hook
     * work unchanged under either delivery mode; trace-hungry tools
     * override this for a native bulk consumer (see CacheSimTool).
     */
    virtual void
    onMemBatch(const gpu::MemBatch &batch)
    {
        for (size_t i = 0; i < batch.count; ++i) {
            uint32_t meta = batch.metas[i];
            onMemAccess(batch.addrs[i], gpu::MemBatch::bytes(meta),
                        gpu::MemBatch::isWrite(meta));
        }
    }
};

/** The framework: attach to a driver, register tools, profile. */
class GtPin : public ocl::DriverObserver
{
  public:
    /** How the memory-access trace reaches address-needing tools. */
    enum class MemTraceMode
    {
        Callback, //!< one onMemAccess call per access (the oracle)
        Batch,    //!< SoA chunks through onMemBatch (the default)
    };

    GtPin() = default;
    ~GtPin() override;

    GtPin(const GtPin &) = delete;
    GtPin &operator=(const GtPin &) = delete;

    /** Process-wide default: GT_MEMTRACE=callback|batch, else Batch. */
    static MemTraceMode defaultMemTraceMode();

    /** @return "callback" or "batch". */
    static const char *memTraceModeName(MemTraceMode m);

    /** Override the trace delivery mode; call before attach(). */
    void setMemTraceMode(MemTraceMode m);

    MemTraceMode memTraceMode() const { return traceMode; }

    /**
     * Register @p tool before attaching. The framework keeps a
     * non-owning pointer; the tool must outlive the GtPin object.
     */
    void addTool(GtPinTool *tool);

    /** Hook the driver (runtime-initialization interception). */
    void attach(ocl::GpuDriver &driver);

    /** Unhook; the driver reverts to un-instrumented JIT output. */
    void detach();

    bool attached() const { return drv != nullptr; }

    /** Trace-buffer slots allocated across all tools. */
    uint32_t slotsAllocated() const { return slots.allocated(); }

    /** Instrumentation instructions inserted across all kernels. */
    uint64_t instructionsInserted() const { return inserted; }

    // DriverObserver interface -------------------------------------
    isa::KernelBinary onKernelJit(const isa::KernelSource &source,
                                  isa::KernelBinary binary) override;
    void onDispatchComplete(const ocl::DispatchResult &result,
                            gpu::TraceBuffer &trace) override;

  private:
    ocl::GpuDriver *drv = nullptr;
    std::vector<GtPinTool *> tools;
    /** Tools needing addresses, filtered once at attach so trace
     * delivery never re-scans the full tool list. */
    std::vector<GtPinTool *> addrTools;
    MemTraceMode traceMode = defaultMemTraceMode();
    SlotAllocator slots;
    std::vector<uint64_t> snapshot;
    std::vector<uint64_t> deltas;
    uint64_t inserted = 0;
};

} // namespace gt::gtpin

#endif // GT_GTPIN_GTPIN_HH
