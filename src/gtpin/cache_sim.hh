/**
 * @file
 * Trace-driven cache simulation, one of the GT-Pin capabilities the
 * paper lists ("cache simulation through the use of memory traces").
 *
 * CacheModel is a classic set-associative, write-allocate LRU cache.
 * CacheSimTool feeds it the device's memory-access trace, which
 * requires full (per-lane) execution — the expensive profiling
 * configuration users opt into only when they need it.
 */

#ifndef GT_GTPIN_CACHE_SIM_HH
#define GT_GTPIN_CACHE_SIM_HH

#include <cstdint>
#include <vector>

#include "gtpin/gtpin.hh"

namespace gt::gtpin
{

/** Set-associative LRU cache over 64-bit addresses. */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways       associativity
     * @param line_bytes cache-line size (power of two)
     */
    CacheModel(uint64_t size_bytes, uint32_t ways,
               uint32_t line_bytes = 64);

    /**
     * Access @p bytes starting at @p addr; lines are touched
     * individually.
     * @return true if every touched line hit.
     */
    bool access(uint64_t addr, uint32_t bytes, bool is_write);

    uint64_t hits() const { return hitCount; }
    uint64_t misses() const { return missCount; }
    uint64_t accesses() const { return hitCount + missCount; }

    double
    hitRate() const
    {
        uint64_t n = accesses();
        return n == 0 ? 0.0 : (double)hitCount / (double)n;
    }

    /** Lines written back (dirty evictions). */
    uint64_t writebacks() const { return writebackCount; }

    void reset();

    uint32_t numSets() const { return sets; }
    uint32_t numWays() const { return ways; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    bool accessLine(uint64_t line_addr, bool is_write);

    uint32_t sets;
    uint32_t ways;
    uint32_t lineShift;
    std::vector<Line> lines;
    uint64_t useClock = 0;
    uint64_t hitCount = 0;
    uint64_t missCount = 0;
    uint64_t writebackCount = 0;
};

/**
 * GT-Pin tool driving a CacheModel from the memory trace. Models the
 * shared LLC slice of Fig. 2 by default.
 */
class CacheSimTool : public GtPinTool
{
  public:
    CacheSimTool(uint64_t size_bytes = 4ull << 20, uint32_t ways = 16,
                 uint32_t line_bytes = 64);

    std::string name() const override { return "cachesim"; }
    bool needsAddresses() const override { return true; }

    void
    onKernelBuild(uint32_t kernel_id, Instrumenter &instrumenter)
        override
    {
        (void)kernel_id;
        (void)instrumenter;
        // Purely trace-driven: no injected instructions needed.
    }

    void onMemAccess(uint64_t addr, uint32_t bytes,
                     bool is_write) override;

    const CacheModel &cache() const { return model; }
    CacheModel &cache() { return model; }

  private:
    CacheModel model;
};

} // namespace gt::gtpin

#endif // GT_GTPIN_CACHE_SIM_HH
