/**
 * @file
 * Trace-driven cache simulation, one of the GT-Pin capabilities the
 * paper lists ("cache simulation through the use of memory traces").
 *
 * CacheModel is a classic set-associative, write-allocate LRU cache.
 * CacheSimTool feeds it the device's memory-access trace, which
 * requires full (per-lane) execution — the expensive profiling
 * configuration users opt into only when they need it.
 */

#ifndef GT_GTPIN_CACHE_SIM_HH
#define GT_GTPIN_CACHE_SIM_HH

#include <cstdint>
#include <vector>

#include "gpu/memtrace.hh"
#include "gtpin/gtpin.hh"

namespace gt::gtpin
{

/** Set-associative LRU cache over 64-bit addresses. */
class CacheModel
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways       associativity
     * @param line_bytes cache-line size (power of two)
     */
    CacheModel(uint64_t size_bytes, uint32_t ways,
               uint32_t line_bytes = 64);

    /**
     * Access @p bytes starting at @p addr; lines are touched
     * individually.
     * @return true if every touched line hit.
     */
    bool access(uint64_t addr, uint32_t bytes, bool is_write);

    /**
     * Consume one SoA trace chunk, record by record in order,
     * producing hit/miss/writeback counts and final cache state
     * bitwise identical to calling access() per record. Lines found
     * in the lookaside buffer (recently probed and still resident)
     * skip the associative set scan: a hit on any resident line has
     * exactly the probe's effects — bump the use clock and hit
     * count, refresh lastUse, and set the dirty bit — so the
     * shortcut preserves state and counters bit for bit.
     */
    void accessBatch(const gpu::MemBatch &batch);

    uint64_t hits() const { return hitCount; }
    uint64_t misses() const { return missCount; }
    uint64_t accesses() const { return hitCount + missCount; }

    double
    hitRate() const
    {
        uint64_t n = accesses();
        return n == 0 ? 0.0 : (double)hitCount / (double)n;
    }

    /** Lines written back (dirty evictions). */
    uint64_t writebacks() const { return writebackCount; }

    void reset();

    uint32_t numSets() const { return sets; }
    uint32_t numWays() const { return ways; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    /** Full set probe; @return the line holding @p line_addr after
     * the access (the hit line, or the refilled victim on a miss). */
    Line &probeLine(uint64_t line_addr, bool is_write);

    /**
     * Line lookaside buffer: a direct-mapped table of lines recently
     * returned by probeLine(), used by accessBatch() to turn repeat
     * hits into a table lookup instead of an associative scan. An
     * entry is trustworthy only while no miss has refilled its set
     * since insertion — a refill may evict any way — so entries
     * carry the set's generation count, which probeLine() bumps on
     * every miss.
     */
    struct LlbEntry
    {
        uint64_t lineAddr = ~0ull;
        Line *line = nullptr;
        uint32_t gen = 0;
    };
    static constexpr size_t llbSize = 1024; //!< power of two

    uint32_t sets;
    uint32_t ways;
    uint32_t lineShift;
    uint32_t setShift; //!< log2(sets), hoisted out of the probe
    std::vector<Line> lines;
    std::vector<LlbEntry> llb;
    std::vector<uint32_t> setGen; //!< misses seen per set
    uint64_t useClock = 0;
    uint64_t hitCount = 0;
    uint64_t missCount = 0;
    uint64_t writebackCount = 0;
};

/**
 * GT-Pin tool driving a CacheModel from the memory trace. Models the
 * shared LLC slice of Fig. 2 by default.
 */
class CacheSimTool : public GtPinTool
{
  public:
    CacheSimTool(uint64_t size_bytes = 4ull << 20, uint32_t ways = 16,
                 uint32_t line_bytes = 64);

    std::string name() const override { return "cachesim"; }
    bool needsAddresses() const override { return true; }

    /** Native bulk consumer (GT_MEMTRACE=batch). */
    void
    onMemBatch(const gpu::MemBatch &batch) override
    {
        model.accessBatch(batch);
    }

    void
    onKernelBuild(uint32_t kernel_id, Instrumenter &instrumenter)
        override
    {
        (void)kernel_id;
        (void)instrumenter;
        // Purely trace-driven: no injected instructions needed.
    }

    void onMemAccess(uint64_t addr, uint32_t bytes,
                     bool is_write) override;

    const CacheModel &cache() const { return model; }
    CacheModel &cache() { return model; }

  private:
    CacheModel model;
};

} // namespace gt::gtpin

#endif // GT_GTPIN_CACHE_SIM_HH
