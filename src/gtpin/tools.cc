#include "gtpin/tools.hh"

#include "common/logging.hh"
#include "gpu/exec_profile.hh"

namespace gt::gtpin
{

// --- BasicBlockCounterTool ------------------------------------------

void
BasicBlockCounterTool::onKernelBuild(uint32_t kernel_id,
                                     Instrumenter &instrumenter)
{
    const isa::KernelBinary &bin = instrumenter.binary();
    KernelInfo info;
    info.firstSlot =
        instrumenter.allocSlot((uint32_t)bin.blocks.size());
    info.blockLens.reserve(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        instrumenter.countBlockEntry(
            block.id, info.firstSlot + block.id, 1);
        info.blockLens.push_back((uint32_t)block.appInstrCount());
        staticInstrs += block.appInstrCount();
    }
    info.built = true;
    if (kernel_id >= kernels.size())
        kernels.resize(kernel_id + 1);
    kernels[kernel_id] = std::move(info);
}

void
BasicBlockCounterTool::onDispatchComplete(
    const ocl::DispatchResult &result, const SlotReader &slots)
{
    GT_ASSERT(result.kernelId < kernels.size() &&
                  kernels[result.kernelId].built,
              "dispatch of a kernel bbcount never instrumented");
    const KernelInfo &info = kernels[result.kernelId];

    lastCounts.assign(info.blockLens.size(), 0);
    lastInstrs = 0;
    for (size_t b = 0; b < info.blockLens.size(); ++b) {
        uint64_t count = slots(info.firstSlot + (uint32_t)b);
        lastCounts[b] = count;
        dynBlocks += count;
        lastInstrs += count * info.blockLens[b];
    }
    dynInstrs += lastInstrs;
}

uint64_t
BasicBlockCounterTool::staticBlocks(uint32_t kernel_id) const
{
    return kernel_id < kernels.size()
               ? kernels[kernel_id].blockLens.size()
               : 0;
}

uint64_t
BasicBlockCounterTool::totalStaticBlocks() const
{
    uint64_t n = 0;
    for (const KernelInfo &info : kernels)
        n += info.blockLens.size();
    return n;
}

uint64_t
BasicBlockCounterTool::totalStaticInstrs() const
{
    return staticInstrs;
}

// --- OpcodeMixTool --------------------------------------------------

void
OpcodeMixTool::onKernelBuild(uint32_t kernel_id,
                             Instrumenter &instrumenter)
{
    const isa::KernelBinary &bin = instrumenter.binary();
    KernelInfo info;
    info.firstSlot =
        instrumenter.allocSlot((uint32_t)bin.blocks.size());
    info.blocks.resize(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        instrumenter.countBlockEntry(
            block.id, info.firstSlot + block.id, 1);
        BlockMix &mix = info.blocks[block.id];
        for (const auto &ins : block.instrs) {
            if (ins.cls() == isa::OpClass::Instrumentation)
                continue;
            ++mix.opcodes[(int)ins.op];
            ++mix.simd[gpu::simdBin(ins.simdWidth)];
        }
    }
    info.built = true;
    if (kernel_id >= kernels.size())
        kernels.resize(kernel_id + 1);
    kernels[kernel_id] = std::move(info);
}

void
OpcodeMixTool::onDispatchComplete(const ocl::DispatchResult &result,
                                  const SlotReader &slots)
{
    GT_ASSERT(result.kernelId < kernels.size() &&
                  kernels[result.kernelId].built,
              "dispatch of a kernel opcodemix never instrumented");
    const KernelInfo &info = kernels[result.kernelId];

    for (size_t b = 0; b < info.blocks.size(); ++b) {
        uint64_t count = slots(info.firstSlot + (uint32_t)b);
        if (count == 0)
            continue;
        const BlockMix &mix = info.blocks[b];
        for (int op = 0; op < isa::numOpcodes; ++op) {
            if (mix.opcodes[op]) {
                uint64_t n = count * mix.opcodes[op];
                dynOpcodes[op] += n;
                dynClasses[(int)isa::opClass((isa::Opcode)op)] += n;
            }
        }
        for (int s = 0; s < 5; ++s)
            dynSimd[s] += count * mix.simd[s];
    }
}

uint64_t
OpcodeMixTool::totalInstrs() const
{
    uint64_t n = 0;
    for (uint64_t c : dynClasses)
        n += c;
    return n;
}

// --- MemBytesTool ---------------------------------------------------

void
MemBytesTool::onKernelBuild(uint32_t kernel_id,
                            Instrumenter &instrumenter)
{
    const isa::KernelBinary &bin = instrumenter.binary();
    KernelInfo info;
    info.readSlot = instrumenter.allocSlot();
    info.writeSlot = instrumenter.allocSlot();
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            const auto &ins = block.instrs[i];
            if (ins.op != isa::Opcode::Send)
                continue;
            instrumenter.recordSendBytes(
                block.id, i,
                ins.send.isWrite ? info.writeSlot : info.readSlot);
        }
    }
    kernels[kernel_id] = info;
}

void
MemBytesTool::onDispatchComplete(const ocl::DispatchResult &result,
                                 const SlotReader &slots)
{
    auto it = kernels.find(result.kernelId);
    GT_ASSERT(it != kernels.end(),
              "dispatch of a kernel membytes never instrumented");
    KernelInfo &info = it->second;
    uint64_t r = slots(info.readSlot);
    uint64_t w = slots(info.writeSlot);
    info.read += r;
    info.written += w;
    bytesRead += r;
    bytesWritten += w;
}

uint64_t
MemBytesTool::kernelBytesRead(uint32_t kernel_id) const
{
    auto it = kernels.find(kernel_id);
    return it == kernels.end() ? 0 : it->second.read;
}

uint64_t
MemBytesTool::kernelBytesWritten(uint32_t kernel_id) const
{
    auto it = kernels.find(kernel_id);
    return it == kernels.end() ? 0 : it->second.written;
}

// --- SimdUtilizationTool ----------------------------------------------

void
SimdUtilizationTool::onKernelBuild(uint32_t kernel_id,
                                   Instrumenter &instrumenter)
{
    const isa::KernelBinary &bin = instrumenter.binary();
    KernelInfo info;
    info.firstSlot =
        instrumenter.allocSlot((uint32_t)bin.blocks.size());
    info.blockLanes.resize(bin.blocks.size());
    info.blockLens.resize(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        instrumenter.countBlockEntry(
            block.id, info.firstSlot + block.id, 1);
        uint64_t lanes = 0;
        uint32_t len = 0;
        for (const auto &ins : block.instrs) {
            if (ins.cls() == isa::OpClass::Instrumentation)
                continue;
            lanes += ins.simdWidth;
            ++len;
        }
        info.blockLanes[block.id] = lanes;
        info.blockLens[block.id] = len;
    }
    kernels[kernel_id] = std::move(info);
}

void
SimdUtilizationTool::onDispatchComplete(
    const ocl::DispatchResult &result, const SlotReader &slots)
{
    auto it = kernels.find(result.kernelId);
    GT_ASSERT(it != kernels.end(),
              "dispatch of a kernel simdutil never instrumented");
    KernelInfo &info = it->second;
    for (size_t b = 0; b < info.blockLanes.size(); ++b) {
        uint64_t count = slots(info.firstSlot + (uint32_t)b);
        info.activeLanes += count * info.blockLanes[b];
        info.instrs += count * info.blockLens[b];
    }
    totalActiveLanes = 0;
    totalInstrs = 0;
    for (const auto &[id, kd] : kernels) {
        totalActiveLanes += kd.activeLanes;
        totalInstrs += kd.instrs;
    }
}

double
SimdUtilizationTool::kernelUtilization(uint32_t kernel_id) const
{
    auto it = kernels.find(kernel_id);
    if (it == kernels.end() || it->second.instrs == 0)
        return 0.0;
    return (double)it->second.activeLanes /
        ((double)it->second.instrs * isa::maxSimdWidth);
}

double
SimdUtilizationTool::overallUtilization() const
{
    if (totalInstrs == 0)
        return 0.0;
    return (double)totalActiveLanes /
        ((double)totalInstrs * isa::maxSimdWidth);
}

// --- KernelTimerTool ------------------------------------------------

void
KernelTimerTool::onKernelBuild(uint32_t kernel_id,
                               Instrumenter &instrumenter)
{
    uint32_t slot = instrumenter.allocSlot();
    instrumenter.timeKernel(slot);
    kernels[kernel_id] = {slot, 0};
}

void
KernelTimerTool::onDispatchComplete(const ocl::DispatchResult &result,
                                    const SlotReader &slots)
{
    auto it = kernels.find(result.kernelId);
    GT_ASSERT(it != kernels.end(),
              "dispatch of a kernel ktimer never instrumented");
    uint64_t c = slots(it->second.first);
    it->second.second += c;
    cycles += c;
}

uint64_t
KernelTimerTool::kernelCycles(uint32_t kernel_id) const
{
    auto it = kernels.find(kernel_id);
    return it == kernels.end() ? 0 : it->second.second;
}

} // namespace gt::gtpin
