#include "gtpin/rewriter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gt::gtpin
{

using isa::Instruction;
using isa::Opcode;

Instrumenter::Instrumenter(const isa::KernelBinary &binary,
                           SlotAllocator &slot_allocator)
    : bin(binary), slots(slot_allocator)
{
}

void
Instrumenter::checkBlock(uint32_t block_id) const
{
    GT_ASSERT(block_id < bin.blocks.size(),
              bin.name, ": instrumentation of invalid block ",
              block_id);
}

void
Instrumenter::countBlockEntry(uint32_t block_id, uint32_t slot,
                              uint32_t arg)
{
    checkBlock(block_id);
    Instruction ins;
    ins.op = Opcode::ProfCount;
    ins.simdWidth = 1;
    ins.profSlot = slot;
    ins.profArg = arg;
    requests.push_back({block_id, 0, ins});
}

void
Instrumenter::recordSendBytes(uint32_t block_id, uint32_t instr_idx,
                              uint32_t slot)
{
    checkBlock(block_id);
    const auto &instrs = bin.blocks[block_id].instrs;
    GT_ASSERT(instr_idx < instrs.size(),
              bin.name, ": instrumentation of invalid instruction");
    const Instruction &send = instrs[instr_idx];
    GT_ASSERT(send.op == Opcode::Send,
              bin.name, ": recordSendBytes target is not a send");

    Instruction ins;
    ins.op = Opcode::ProfMem;
    ins.simdWidth = 1;
    ins.profSlot = slot;
    ins.profArg = (uint32_t)send.send.bytesPerLane * send.simdWidth;
    requests.push_back({block_id, instr_idx + 1, ins});
}

void
Instrumenter::timeKernel(uint32_t slot)
{
    auto timer = [&]() {
        Instruction ins;
        ins.op = Opcode::ProfTimer;
        ins.simdWidth = 1;
        ins.profSlot = slot;
        return ins;
    };

    // Entry read establishes the baseline...
    requests.push_back({0, 0, timer()});
    // ...and a read before every Halt captures the elapsed cycles.
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            if (block.instrs[i].op == Opcode::Halt)
                requests.push_back({block.id, i, timer()});
        }
    }
}

void
Instrumenter::addRegLane0(uint32_t block_id, uint32_t instr_idx,
                          uint16_t reg, uint32_t slot)
{
    checkBlock(block_id);
    GT_ASSERT(instr_idx <= bin.blocks[block_id].instrs.size(),
              bin.name, ": instrumentation point out of range");
    Instruction ins;
    ins.op = Opcode::ProfAdd;
    ins.simdWidth = 1;
    ins.src0 = isa::Operand::fromReg(reg);
    ins.profSlot = slot;
    requests.push_back({block_id, instr_idx, ins});
}

isa::KernelBinary
Instrumenter::apply() const
{
    isa::KernelBinary out;
    out.name = bin.name;
    out.numArgs = bin.numArgs;
    out.maxReg = bin.maxReg;
    out.blocks.resize(bin.blocks.size());

    // Group requests by (block, insertion point), stable order.
    std::vector<Request> sorted = requests;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Request &a, const Request &b) {
                         if (a.block != b.block)
                             return a.block < b.block;
                         return a.before < b.before;
                     });

    size_t r = 0;
    for (const auto &block : bin.blocks) {
        isa::BasicBlock &nb = out.blocks[block.id];
        nb.id = block.id;
        nb.instrs.reserve(block.instrs.size());
        for (uint32_t i = 0; i <= block.instrs.size(); ++i) {
            while (r < sorted.size() && sorted[r].block == block.id &&
                   sorted[r].before == i) {
                nb.instrs.push_back(sorted[r].ins);
                ++r;
            }
            if (i < block.instrs.size())
                nb.instrs.push_back(block.instrs[i]);
        }
        // Keep the terminator in tail position: move any
        // instrumentation that landed after it to just before it.
        if (nb.instrs.size() >= 2) {
            const Instruction *term = block.terminator();
            if (term) {
                // Find the terminator (it is unique and was last in
                // the original block).
                size_t t = nb.instrs.size();
                for (size_t k = 0; k < nb.instrs.size(); ++k) {
                    if (isa::isTerminator(nb.instrs[k].op)) {
                        t = k;
                        break;
                    }
                }
                if (t + 1 < nb.instrs.size()) {
                    Instruction tins = nb.instrs[t];
                    nb.instrs.erase(nb.instrs.begin() + (long)t);
                    nb.instrs.push_back(tins);
                }
            }
        }
    }

    isa::verify(out);
    return out;
}

} // namespace gt::gtpin
