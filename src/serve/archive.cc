#include "serve/archive.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <sys/types.h>

#include "common/logging.hh"

namespace gt::serve
{

namespace
{

void
makeDirs(const std::string &path)
{
    std::string prefix;
    prefix.reserve(path.size());
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            prefix.push_back(path[i]);
            continue;
        }
        if (!prefix.empty() &&
            ::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
            fatal("cannot create archive directory '", prefix,
                  "': ", std::strerror(errno));
        }
        if (i < path.size())
            prefix.push_back('/');
    }
}

/** File-name-safe form of a workload name. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.';
        out.push_back(ok ? c : '_');
    }
    return out.empty() ? std::string("session") : out;
}

std::string
baseName(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

} // namespace

SessionArchive::SessionArchive(std::string directory)
    : dir(std::move(directory))
{
    makeDirs(dir);
    rows = readCatalog(dir);
}

std::string
SessionArchive::pathFor(size_t tenant, size_t id,
                        const std::string &workload) const
{
    std::ostringstream path;
    path << dir << "/t" << tenant << "-w" << id << "-"
         << sanitize(workload) << ".gtar";
    return path.str();
}

void
SessionArchive::record(const std::string &workload,
                       const std::string &path, uint64_t dispatches)
{
    std::string file = baseName(path);
    std::lock_guard<std::mutex> lock(mu);
    for (Entry &row : rows) {
        if (row.file == file) {
            row.workload = workload;
            row.dispatches = dispatches;
            writeCatalogLocked();
            return;
        }
    }
    rows.push_back(Entry{workload, file, dispatches});
    writeCatalogLocked();
}

std::vector<SessionArchive::Entry>
SessionArchive::entries() const
{
    std::lock_guard<std::mutex> lock(mu);
    return rows;
}

std::string
SessionArchive::catalogPath() const
{
    return dir + "/catalog.tsv";
}

void
SessionArchive::writeCatalogLocked() const
{
    std::string tmp = catalogPath() + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            fatal("cannot write archive catalog '", tmp, "'");
        for (const Entry &row : rows) {
            out << row.file << '\t' << row.dispatches << '\t'
                << row.workload << '\n';
        }
    }
    if (std::rename(tmp.c_str(), catalogPath().c_str()) != 0) {
        fatal("cannot publish archive catalog '", catalogPath(),
              "': ", std::strerror(errno));
    }
}

std::vector<SessionArchive::Entry>
SessionArchive::readCatalog(const std::string &directory)
{
    std::vector<Entry> entries;
    std::ifstream in(directory + "/catalog.tsv");
    if (!in)
        return entries;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        size_t tab1 = line.find('\t');
        size_t tab2 =
            tab1 == std::string::npos ? tab1 : line.find('\t', tab1 + 1);
        if (tab1 == std::string::npos || tab2 == std::string::npos) {
            fatal("malformed archive catalog line '", line, "' in '",
                  directory, "'");
        }
        Entry entry;
        entry.file = line.substr(0, tab1);
        entry.dispatches = (uint64_t)std::stoull(
            line.substr(tab1 + 1, tab2 - tab1 - 1));
        entry.workload = line.substr(tab2 + 1);
        entries.push_back(std::move(entry));
    }
    return entries;
}

} // namespace gt::serve
