#include "serve/service.hh"

#include <algorithm>

#include "common/logging.hh"
#include "gtpin/tools.hh"
#include "workloads/templates.hh"

namespace gt::serve
{

using core::simpoint::Point;
using core::simpoint::UniqueIndex;

WorkloadSession::WorkloadSession(std::string workload_name,
                                 const ServiceConfig &config,
                                 sched::ThreadPool &shared_pool)
    : workloadName(std::move(workload_name)), pool(shared_pool),
      clusterOptions(config.cluster)
{
    clusterOptions.pool = &pool;
    configs.reserve(config.selections.size());
    for (const SelectionConfig &sc : config.selections) {
        uint64_t target = config.targetInstrs;
        configs.push_back(ConfigState{
            sc, core::IncrementalIntervals(sc.scheme, target),
            {}, 0, {}, {}, 0, false});
    }
}

void
WorkloadSession::observeCall(const ocl::ApiCallRecord &call)
{
    std::lock_guard<std::mutex> lock(mutex);
    builder.observeCall(call);
}

void
WorkloadSession::addDispatch(const gtpin::DispatchProfile &profile,
                             const cfl::KernelTiming &timing)
{
    std::lock_guard<std::mutex> lock(mutex);
    builder.append(profile, timing);
    features.appendDispatch(profile);
    uint64_t i = builder.numAppended() - 1;
    uint64_t epoch = builder.syncEpoch(i);
    for (ConfigState &cs : configs)
        cs.intervals.append(epoch, profile.instrs, timing.seconds);
    ++counters.dispatches;
}

void
WorkloadSession::refresh()
{
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.refreshes;
    for (ConfigState &cs : configs)
        refreshConfig(cs);
}

void
WorkloadSession::refreshConfig(ConfigState &cs)
{
    uint64_t now = builder.numAppended();
    if (now == 0)
        return; // nothing to select from yet
    if (cs.hasSelection && cs.selectionAt == now) {
        // The population gained no dispatches: the memoized
        // selection is still exact.
        ++counters.reusedSelections;
        return;
    }

    // Grow the shared query-side state to the current key universe.
    // Projection rows are pure per-key, so the extended table agrees
    // bitwise with a fresh build — and with every cached point.
    features.refreshColumns();
    if (table.size() != features.numKeys()) {
        table = core::simpoint::ProjectionTable::build(
            features.uniqueKeys(), table);
    }

    std::vector<core::Interval> intervals = cs.intervals.snapshot();
    size_t total = intervals.size();
    size_t completed =
        std::min(cs.intervals.numCompleted(), total);
    GT_ASSERT(cs.stable <= completed,
              "stable point prefix shrank: ", cs.stable, " > ",
              completed);

    // Completed intervals are final: their cached points are the
    // bits a fresh projectAll would produce. Only the boundary-fresh
    // intervals and the open tail project anew.
    cs.points.resize(total);
    core::DispatchFeatureCache::Scratch scratch;
    for (size_t i = cs.stable; i < total; ++i) {
        cs.points[i] = features.projectInto(
            intervals[i], cs.config.feature, scratch, table);
    }
    counters.reusedPoints += cs.stable;
    counters.projectedPoints += total - cs.stable;

    // Extend the unique-value index over the newly completed prefix
    // (cached for the next refresh), then over the volatile tail
    // (per-refresh only: the open interval's point changes as more
    // dispatches accumulate into it).
    const double *flat =
        cs.points.empty() ? nullptr : cs.points.front().data();
    cs.uniq = core::simpoint::extendUniqueIndex(cs.uniq, flat,
                                                cs.stable, completed);
    cs.stable = completed;
    UniqueIndex full = core::simpoint::extendUniqueIndex(
        cs.uniq, flat, completed, total);

    core::simpoint::ClusterOptions options = clusterOptions;
    options.uniqueIndex = &full;
    cs.selection = core::selectFromProjected(
        cs.config.scheme, cs.config.feature, std::move(intervals),
        cs.points, builder.totalInstrs(), options);
    cs.selectionAt = now;
    cs.hasSelection = true;
    ++counters.reclustered;
}

core::SubsetSelection
WorkloadSession::selection(size_t config) const
{
    std::lock_guard<std::mutex> lock(mutex);
    GT_ASSERT(config < configs.size(), "selection config ", config,
              " out of range (", configs.size(), " configured)");
    GT_ASSERT(configs[config].hasSelection,
              "no refresh() has run since dispatches arrived");
    return configs[config].selection;
}

uint64_t
WorkloadSession::numDispatches() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return builder.numAppended();
}

core::TraceDatabase
WorkloadSession::sealDatabase(core::TraceDbBackend backend) const
{
    std::lock_guard<std::mutex> lock(mutex);
    return builder.seal(backend);
}

SessionStats
WorkloadSession::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

ProfilingService::ProfilingService(ServiceConfig config)
    : cfg(std::move(config)),
      pool(cfg.pool ? *cfg.pool : sched::ThreadPool::global()),
      admission(pool, cfg.replayWidth), plans(cfg.device)
{
}

ProfilingService::~ProfilingService()
{
    std::vector<std::future<void>> work;
    {
        std::lock_guard<std::mutex> lock(mutex);
        work.swap(pendingReplays);
    }
    for (std::future<void> &f : work) {
        try {
            f.get();
        } catch (...) {
            // drain() is the reporting path; the destructor only
            // guarantees no replay outlives the service.
        }
    }
}

ProfilingService::TenantId
ProfilingService::openTenant(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex);
    tenants.push_back(std::make_unique<Tenant>());
    tenants.back()->name = std::move(name);
    return tenants.size() - 1;
}

ProfilingService::WorkloadId
ProfilingService::submit(TenantId tenant, std::string workload_name,
                         cfl::Recording recording)
{
    Workload *wl = nullptr;
    WorkloadId id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        GT_ASSERT(tenant < tenants.size(), "unknown tenant ",
                  tenant);
        Tenant &t = *tenants[tenant];
        auto workload = std::make_unique<Workload>();
        workload->recording = std::move(recording);
        workload->session = std::make_unique<WorkloadSession>(
            std::move(workload_name), cfg, pool);
        t.workloads.push_back(std::move(workload));
        wl = t.workloads.back().get();
        id = t.workloads.size() - 1;
    }
    // Schedule outside the service lock: on a 1-thread pool submit()
    // runs the replay inline, and the replay takes the lock-free
    // feed path into the session.
    std::future<void> fut =
        pool.submit([this, wl] { runReplay(*wl); });
    {
        std::lock_guard<std::mutex> lock(mutex);
        pendingReplays.push_back(std::move(fut));
    }
    return id;
}

void
ProfilingService::drain()
{
    std::vector<std::future<void>> work;
    {
        std::lock_guard<std::mutex> lock(mutex);
        work.swap(pendingReplays);
    }
    for (std::future<void> &f : work)
        f.get();
}

void
ProfilingService::refreshAll()
{
    std::vector<WorkloadSession *> sessions;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &t : tenants) {
            for (const auto &w : t->workloads)
                sessions.push_back(w->session.get());
        }
    }
    for (WorkloadSession *s : sessions)
        s->refresh();
}

WorkloadSession &
ProfilingService::session(TenantId tenant, WorkloadId workload)
{
    std::lock_guard<std::mutex> lock(mutex);
    GT_ASSERT(tenant < tenants.size(), "unknown tenant ", tenant);
    Tenant &t = *tenants[tenant];
    GT_ASSERT(workload < t.workloads.size(), "unknown workload ",
              workload, " for tenant '", t.name, "'");
    return *t.workloads[workload]->session;
}

ServiceStats
ProfilingService::stats() const
{
    ServiceStats st;
    {
        std::lock_guard<std::mutex> lock(mutex);
        st.tenants = tenants.size();
        for (const auto &t : tenants) {
            st.workloads += t->workloads.size();
            for (const auto &w : t->workloads) {
                SessionStats s = w->session->stats();
                st.sessions.dispatches += s.dispatches;
                st.sessions.refreshes += s.refreshes;
                st.sessions.reclustered += s.reclustered;
                st.sessions.reusedSelections += s.reusedSelections;
                st.sessions.reusedPoints += s.reusedPoints;
                st.sessions.projectedPoints += s.projectedPoints;
            }
        }
    }
    st.replays = replayCount.load();
    st.artifactHits = artifactHitCount.load();
    st.planCache = plans.stats();
    st.checkpointCache = ckpts.stats();
    return st;
}

void
ProfilingService::runReplay(Workload &workload)
{
    // The oversubscription guard: every replay runs on the one
    // shared pool, and at most admission.width() run concurrently.
    sched::PoolHandle::Slot slot = admission.acquire();

    uint64_t key = cfl::recordingContentHash(workload.recording);
    std::shared_ptr<const ReplayArtifact> artifact;
    {
        std::lock_guard<std::mutex> lock(artifactMutex);
        auto it = artifacts.find(key);
        if (it != artifacts.end())
            artifact = it->second;
    }
    if (artifact) {
        artifactHitCount.fetch_add(1, std::memory_order_relaxed);
        feedFromArtifact(*workload.session, *artifact);
        return;
    }

    replayCount.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<ReplayArtifact> built = replayStreaming(workload);
    {
        // First insert wins; a racing duplicate replay fed its own
        // session identically, so dropping its artifact loses
        // nothing.
        std::lock_guard<std::mutex> lock(artifactMutex);
        artifacts.emplace(key, std::move(built));
    }
}

std::shared_ptr<ReplayArtifact>
ProfilingService::replayStreaming(Workload &workload)
{
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(cfg.device, jit, cfg.trial);
    driver.setSharedCaches(&plans, &ckpts);

    // The replayTrial tool set: instrumentation load shifts relative
    // SPI, so service replays carry the same instrumentation the
    // batch pipeline does or selections would be biased against it.
    gtpin::KernelProfileTool profile_tool;
    gtpin::BasicBlockCounterTool bb_tool;
    gtpin::OpcodeMixTool mix_tool;
    gtpin::MemBytesTool mem_tool;
    gtpin::GtPin pin;
    pin.addTool(&profile_tool);
    pin.addTool(&bb_tool);
    pin.addTool(&mix_tool);
    pin.addTool(&mem_tool);
    pin.attach(driver);

    ocl::ClRuntime runtime(driver);
    cfl::ApiTracer tracer;
    runtime.addObserver(&tracer);

    // Stream the replay: calls feed the session's epoch walk as they
    // issue; dispatch rows feed as they drain (kernels execute at
    // host/device alignment points, so rows arrive in sync-epoch
    // bursts — exactly the granularity the incremental interval
    // builder closes intervals at).
    cfl::StreamingReplay stream(workload.recording, runtime);
    WorkloadSession &session = *workload.session;
    size_t calls_fed = 0;
    size_t rows_fed = 0;
    auto feed = [&] {
        const std::vector<ocl::ApiCallRecord> &calls =
            tracer.callStream();
        for (; calls_fed < calls.size(); ++calls_fed)
            session.observeCall(calls[calls_fed]);
        const std::vector<gtpin::DispatchProfile> &profiles =
            profile_tool.profiles();
        const std::vector<cfl::KernelTiming> &timings =
            tracer.kernelTimings();
        size_t avail = std::min(profiles.size(), timings.size());
        for (; rows_fed < avail; ++rows_fed)
            session.addDispatch(profiles[rows_fed],
                                timings[rows_fed]);
    };
    while (stream.nextDispatch())
        feed();
    stream.drain();
    feed();
    pin.detach();

    auto artifact = std::make_shared<ReplayArtifact>();
    artifact->calls = tracer.callStream();
    artifact->profiles = profile_tool.takeProfiles();
    artifact->timings = tracer.kernelTimings();
    return artifact;
}

void
ProfilingService::feedFromArtifact(WorkloadSession &session,
                                   const ReplayArtifact &artifact)
{
    // Epoch assignment depends only on calls issued before each
    // dispatch's own Kernel call, so feeding the whole call stream
    // first and the rows after reproduces the streamed session state
    // bit for bit.
    for (const ocl::ApiCallRecord &call : artifact.calls)
        session.observeCall(call);
    GT_ASSERT(artifact.profiles.size() == artifact.timings.size(),
              "artifact profile/timing count mismatch");
    for (size_t i = 0; i < artifact.profiles.size(); ++i)
        session.addDispatch(artifact.profiles[i],
                            artifact.timings[i]);
}

} // namespace gt::serve
