#include "serve/service.hh"

#include <algorithm>
#include <cstdlib>

#include <unistd.h>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/trace_store.hh"
#include "gtpin/tools.hh"
#include "workloads/templates.hh"

namespace gt::serve
{

using core::simpoint::Point;
using core::simpoint::UniqueIndex;

namespace
{

/** GT_SERVE_* environment defaults, parsed and logged once. They
 * fill ServiceConfig fields the caller left at their defaults — an
 * explicitly configured value always wins. */
struct ServeEnv
{
    bool haveMaxSessions = false;
    size_t maxSessions = 0;
    bool haveMaxBytes = false;
    uint64_t maxBytes = 0;
    bool haveEvict = false;
    bool evict = false;
    std::string archiveDir;
};

uint64_t
parseEnvCount(const char *name, const char *value)
{
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        fatal(name, "='", value, "' is not a non-negative integer");
    return (uint64_t)parsed;
}

const ServeEnv &
serveEnv()
{
    static const ServeEnv parsed = [] {
        ServeEnv e;
        if (const char *v = std::getenv("GT_SERVE_MAX_SESSIONS");
            v && *v != '\0') {
            e.haveMaxSessions = true;
            e.maxSessions =
                (size_t)parseEnvCount("GT_SERVE_MAX_SESSIONS", v);
        }
        if (const char *v = std::getenv("GT_SERVE_MAX_BYTES");
            v && *v != '\0') {
            e.haveMaxBytes = true;
            e.maxBytes = parseEnvCount("GT_SERVE_MAX_BYTES", v);
        }
        if (const char *v = std::getenv("GT_SERVE_EVICT");
            v && *v != '\0') {
            std::string value(v);
            if (value != "0" && value != "1") {
                fatal("GT_SERVE_EVICT='", value,
                      "' is not a flag (expected '0' or '1')");
            }
            e.haveEvict = true;
            e.evict = value == "1";
        }
        if (const char *v = std::getenv("GT_SERVE_ARCHIVE_DIR");
            v && *v != '\0') {
            e.archiveDir = v;
        }
        if (e.haveMaxSessions || e.haveMaxBytes || e.haveEvict ||
            !e.archiveDir.empty()) {
            inform("serve: lifecycle env overrides:",
                   e.haveMaxSessions
                       ? " max-sessions=" +
                             std::to_string(e.maxSessions)
                       : "",
                   e.haveMaxBytes
                       ? " max-bytes=" + std::to_string(e.maxBytes)
                       : "",
                   e.haveEvict
                       ? std::string(" evict-on-drain=") +
                             (e.evict ? "1" : "0")
                       : "",
                   e.archiveDir.empty()
                       ? ""
                       : " archive-dir=" + e.archiveDir);
        }
        return e;
    }();
    return parsed;
}

/** Apply the env defaults to fields left unset, then resolve the
 * archive directory fallback chain. */
ServiceConfig
resolveConfig(ServiceConfig cfg)
{
    const ServeEnv &env = serveEnv();
    if (env.haveMaxSessions && cfg.maxResidentSessions == SIZE_MAX)
        cfg.maxResidentSessions = env.maxSessions;
    if (env.haveMaxBytes && cfg.maxResidentBytes == UINT64_MAX)
        cfg.maxResidentBytes = env.maxBytes;
    if (env.haveEvict && !cfg.evictOnDrain)
        cfg.evictOnDrain = env.evict;
    if (cfg.archiveDir.empty())
        cfg.archiveDir = env.archiveDir;
    if (cfg.archiveDir.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        std::string base = tmp && *tmp != '\0' ? tmp : "/tmp";
        cfg.archiveDir =
            base + "/gt-serve-" + std::to_string(::getpid());
    }
    return cfg;
}

} // namespace

uint64_t
ReplayArtifact::memoryBytes() const
{
    uint64_t bytes = sizeof(*this);
    bytes += calls.size() * sizeof(ocl::ApiCallRecord);
    for (const ocl::ApiCallRecord &call : calls) {
        bytes += call.kernelName.size() +
                 call.uargs.size() * sizeof(uint64_t) +
                 call.payload.size();
    }
    bytes += profiles.size() * sizeof(gtpin::DispatchProfile);
    for (const gtpin::DispatchProfile &profile : profiles) {
        bytes += profile.footprintBytes() -
                 sizeof(gtpin::DispatchProfile);
    }
    bytes += timings.size() * sizeof(cfl::KernelTiming);
    bytes += epochs.size() * sizeof(std::pair<uint64_t, uint64_t>);
    return bytes;
}

WorkloadSession::WorkloadSession(std::string workload_name,
                                 const ServiceConfig &config,
                                 sched::ThreadPool &shared_pool)
    : workloadName(std::move(workload_name)), pool(shared_pool),
      clusterOptions(config.cluster),
      targetInstrs(config.targetInstrs)
{
    clusterOptions.pool = &pool;
    configs.reserve(config.selections.size());
    for (const SelectionConfig &sc : config.selections) {
        configs.push_back(ConfigState{
            sc, core::IncrementalIntervals(sc.scheme, targetInstrs),
            {}, 0, {}, {}, 0, false});
    }
}

void
WorkloadSession::observeCall(const ocl::ApiCallRecord &call)
{
    std::lock_guard<std::mutex> lock(mutex);
    builder.observeCall(call);
}

void
WorkloadSession::addDispatch(const gtpin::DispatchProfile &profile,
                             const cfl::KernelTiming &timing)
{
    std::lock_guard<std::mutex> lock(mutex);
    rehydrateLocked();
    builder.append(profile, timing);
    features.appendDispatch(profile);
    uint64_t i = builder.numAppended() - 1;
    uint64_t epoch = builder.syncEpoch(i);
    for (ConfigState &cs : configs)
        cs.intervals.append(epoch, profile.instrs, timing.seconds);
    ++fed;
    ++counters.dispatches;
}

void
WorkloadSession::addDispatches(
    const std::vector<gtpin::DispatchProfile> &profiles,
    const std::vector<cfl::KernelTiming> &timings,
    const std::vector<std::pair<uint64_t, uint64_t>> &epochs)
{
    GT_ASSERT(profiles.size() == timings.size() &&
                  profiles.size() == epochs.size(),
              "bulk append stream mismatch: ", profiles.size(),
              " profiles, ", timings.size(), " timings, ",
              epochs.size(), " epoch assignments");
    std::lock_guard<std::mutex> lock(mutex);
    rehydrateLocked();
    for (size_t i = 0; i < profiles.size(); ++i) {
        const gtpin::DispatchProfile &profile = profiles[i];
        GT_ASSERT(profile.seq == timings[i].seq,
                  "profile/timing sequence mismatch at bulk row ", i);
        GT_ASSERT(epochs[i].first == profile.seq,
                  "epoch assignment misaligned at bulk row ", i);
        builder.appendJoined(profile, timings[i].seconds,
                             epochs[i].second);
        features.appendDispatch(profile);
        for (ConfigState &cs : configs) {
            cs.intervals.append(epochs[i].second, profile.instrs,
                                timings[i].seconds);
        }
    }
    fed += profiles.size();
    counters.dispatches += profiles.size();
}

void
WorkloadSession::refresh()
{
    std::lock_guard<std::mutex> lock(mutex);
    ++counters.refreshes;
    if (evicted) {
        // Evictions memoize every selection first, so the common
        // evicted refresh is a pure memo sweep. Only a selection
        // that is genuinely stale (a direct evict() racing new rows
        // is impossible — both hold the session lock — but a caller
        // may evict, feed, and refresh) forces rehydration.
        bool stale = false;
        for (const ConfigState &cs : configs) {
            stale |= fed > 0 &&
                (!cs.hasSelection || cs.selectionAt != fed);
        }
        if (stale)
            rehydrateLocked();
    }
    for (ConfigState &cs : configs)
        refreshConfig(cs);
}

void
WorkloadSession::refreshConfig(ConfigState &cs)
{
    uint64_t now = fed;
    if (now == 0)
        return; // nothing to select from yet
    if (cs.hasSelection && cs.selectionAt == now) {
        // The population gained no dispatches: the memoized
        // selection is still exact. This is also the evicted steady
        // state — answering from the memo is what keeps refresh()
        // from rehydrating every archived session.
        ++counters.reusedSelections;
        return;
    }
    GT_ASSERT(!evicted, "recluster on an evicted session (refresh() "
                        "should have rehydrated)");

    // Grow the shared query-side state to the current key universe.
    // Projection rows are pure per-key, so the extended table agrees
    // bitwise with a fresh build — and with every cached point.
    features.refreshColumns();
    if (table.size() != features.numKeys()) {
        table = core::simpoint::ProjectionTable::build(
            features.uniqueKeys(), table);
    }

    std::vector<core::Interval> intervals = cs.intervals.snapshot();
    size_t total = intervals.size();
    size_t completed =
        std::min(cs.intervals.numCompleted(), total);
    GT_ASSERT(cs.stable <= completed,
              "stable point prefix shrank: ", cs.stable, " > ",
              completed);

    // Completed intervals are final: their cached points are the
    // bits a fresh projectAll would produce. Only the boundary-fresh
    // intervals and the open tail project anew.
    cs.points.resize(total);
    core::DispatchFeatureCache::Scratch scratch;
    for (size_t i = cs.stable; i < total; ++i) {
        cs.points[i] = features.projectInto(
            intervals[i], cs.config.feature, scratch, table);
    }
    counters.reusedPoints += cs.stable;
    counters.projectedPoints += total - cs.stable;

    // Extend the unique-value index over the newly completed prefix
    // (cached for the next refresh), then over the volatile tail
    // (per-refresh only: the open interval's point changes as more
    // dispatches accumulate into it).
    const double *flat =
        cs.points.empty() ? nullptr : cs.points.front().data();
    cs.uniq = core::simpoint::extendUniqueIndex(cs.uniq, flat,
                                                cs.stable, completed);
    cs.stable = completed;
    UniqueIndex full = core::simpoint::extendUniqueIndex(
        cs.uniq, flat, completed, total);

    core::simpoint::ClusterOptions options = clusterOptions;
    options.uniqueIndex = &full;
    cs.selection = core::selectFromProjected(
        cs.config.scheme, cs.config.feature, std::move(intervals),
        cs.points, builder.totalInstrs(), options);
    cs.selectionAt = now;
    cs.hasSelection = true;
    ++counters.reclustered;
}

core::SubsetSelection
WorkloadSession::selection(size_t config) const
{
    std::lock_guard<std::mutex> lock(mutex);
    GT_ASSERT(config < configs.size(), "selection config ", config,
              " out of range (", configs.size(), " configured)");
    GT_ASSERT(configs[config].hasSelection,
              "no refresh() has run since dispatches arrived");
    return configs[config].selection;
}

uint64_t
WorkloadSession::numDispatches() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return fed;
}

core::TraceDatabase
WorkloadSession::sealDatabase(core::TraceDbBackend backend) const
{
    std::lock_guard<std::mutex> lock(mutex);
    if (evicted && !archivePath.empty()) {
        // The archive *is* a columnar database of exactly the fed
        // rows; reopening it reproduces the sealed totals bit for
        // bit. For the mem backend, re-feed a throwaway builder in
        // the original append order.
        core::TraceDatabase db =
            core::TraceDatabase::openColumnarFile(archivePath);
        if (backend == core::TraceDbBackend::Columnar)
            return db;
        core::TraceDatabase::Builder rebuilt;
        for (uint64_t i = 0; i < db.numDispatches(); ++i) {
            rebuilt.appendJoined(db.profileAt(i), db.seconds(i),
                                 db.syncEpoch(i));
        }
        return std::move(rebuilt).seal(backend);
    }
    return builder.seal(backend);
}

void
WorkloadSession::evict(const std::string &archive_path)
{
    std::lock_guard<std::mutex> lock(mutex);
    if (evicted)
        return;
    // Memoize every selection at the current prefix first: an
    // evicted session keeps answering refresh()/selection() from the
    // memo, so draining a fleet and refreshing it stays cheap and
    // never re-reads the archives.
    for (ConfigState &cs : configs)
        refreshConfig(cs);
    if (builder.numAppended() > 0) {
        builder.writeArchive(archive_path);
        archivePath = archive_path;
    }
    // Keep only the epoch-walk restart state (O(in-flight), tiny);
    // everything else is reclaimed and reproducible from the
    // archive.
    core::TraceDatabase::Builder::EpochWalk walk = builder.walkState();
    builder = core::TraceDatabase::Builder();
    builder.restoreWalk(std::move(walk));
    features = core::DispatchFeatureCache();
    table = core::simpoint::ProjectionTable();
    for (ConfigState &cs : configs) {
        cs.intervals = core::IncrementalIntervals(cs.config.scheme,
                                                  targetInstrs);
        cs.points.clear();
        cs.points.shrink_to_fit();
        cs.stable = 0;
        cs.uniq = UniqueIndex();
    }
    evicted = true;
    ++counters.evictions;
}

bool
WorkloadSession::isEvicted() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return evicted;
}

void
WorkloadSession::rehydrateLocked()
{
    if (!evicted)
        return;
    evicted = false;
    ++counters.rehydrations;
    if (archivePath.empty())
        return; // the session was empty when evicted
    core::TraceDatabase db =
        core::TraceDatabase::openColumnarFile(archivePath);
    for (uint64_t i = 0; i < db.numDispatches(); ++i) {
        // Copy out of the thread's decode cache before feeding: the
        // reference is only stable across a few block touches.
        gtpin::DispatchProfile profile = db.profileAt(i);
        double secs = db.seconds(i);
        uint64_t epoch = db.syncEpoch(i);
        uint64_t instrs = profile.instrs;
        features.appendDispatch(profile);
        builder.appendJoined(std::move(profile), secs, epoch);
        for (ConfigState &cs : configs)
            cs.intervals.append(epoch, instrs, secs);
    }
    GT_ASSERT(builder.numAppended() == fed,
              "rehydrated ", builder.numAppended(),
              " rows but the session had fed ", fed);
    // Points, the unique index, and the projection table rebuild
    // from scratch on the next refresh; per-key purity makes the
    // recomputed selections bitwise equal to a never-evicted
    // session's (pinned by the eviction differential tests).
}

uint64_t
WorkloadSession::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mutex);
    uint64_t bytes = sizeof(*this) + workloadName.size() +
                     archivePath.size();
    bytes += builder.memoryBytes();
    bytes += features.memoryBytes();
    bytes += table.size() * (sizeof(uint64_t) + sizeof(Point));
    for (const ConfigState &cs : configs) {
        bytes += sizeof(ConfigState);
        bytes += cs.intervals.memoryBytes();
        bytes += cs.points.size() * sizeof(Point);
        bytes += (cs.uniq.uid.size() + cs.uniq.rep.size() +
                  cs.uniq.count.size()) *
                 sizeof(uint32_t);
    }
    return bytes;
}

uint64_t
WorkloadSession::memoBytes() const
{
    std::lock_guard<std::mutex> lock(mutex);
    uint64_t bytes = 0;
    for (const ConfigState &cs : configs) {
        bytes += cs.selection.intervals.size() *
                     sizeof(core::Interval) +
                 cs.selection.selected.size() * sizeof(uint64_t) +
                 cs.selection.ratios.size() * sizeof(double);
    }
    return bytes;
}

SessionStats
WorkloadSession::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

ProfilingService::ProfilingService(ServiceConfig config)
    : cfg(resolveConfig(std::move(config))),
      pool(cfg.pool ? *cfg.pool : sched::ThreadPool::global()),
      admission(pool, cfg.replayWidth), plans(cfg.device),
      archiveRoot(cfg.archiveDir)
{
}

ProfilingService::~ProfilingService()
{
    std::vector<std::future<void>> work;
    {
        std::lock_guard<std::mutex> lock(mutex);
        work.swap(pendingReplays);
    }
    for (std::future<void> &f : work) {
        try {
            f.get();
        } catch (...) {
            // drain() is the reporting path; the destructor only
            // guarantees no replay outlives the service.
        }
    }
}

ProfilingService::TenantId
ProfilingService::openTenant(std::string name)
{
    std::lock_guard<std::mutex> lock(mutex);
    tenants.push_back(std::make_unique<Tenant>());
    tenants.back()->name = std::move(name);
    return tenants.size() - 1;
}

ProfilingService::WorkloadId
ProfilingService::submit(TenantId tenant, std::string workload_name,
                         cfl::Recording recording)
{
    uint64_t key = cfl::recordingContentHash(recording);
    Workload *wl = nullptr;
    WorkloadId id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        GT_ASSERT(tenant < tenants.size(), "unknown tenant ",
                  tenant);
        Tenant &t = *tenants[tenant];
        auto workload = std::make_unique<Workload>();
        workload->tenant = tenant;
        workload->recording = std::move(recording);
        workload->session = std::make_unique<WorkloadSession>(
            std::move(workload_name), cfg, pool);
        workload->id = t.workloads.size();
        t.workloads.push_back(std::move(workload));
        wl = t.workloads.back().get();
        id = wl->id;
    }

    // The warm admission fast path: a known recording needs no
    // replay, no admission slot, and no pool hop — the cached rows
    // bulk-append synchronously on the calling thread, so warm
    // submission cost is O(rows) and independent of replay cost.
    if (std::shared_ptr<const ReplayArtifact> artifact =
            findArtifact(key)) {
        artifactHitCount.fetch_add(1, std::memory_order_relaxed);
        feedFromArtifact(*wl->session, *artifact);
        wl->lastUse.store(useTicket.fetch_add(1),
                          std::memory_order_relaxed);
        wl->drained.store(true, std::memory_order_release);
        enforceBudget();
        return id;
    }

    // Schedule outside the service lock: on a 1-thread pool submit()
    // runs the replay inline, and the replay takes the lock-free
    // feed path into the session.
    std::future<void> fut =
        pool.submit([this, wl] { runReplay(*wl); });
    {
        std::lock_guard<std::mutex> lock(mutex);
        pendingReplays.push_back(std::move(fut));
    }
    return id;
}

void
ProfilingService::drain()
{
    std::vector<std::future<void>> work;
    {
        std::lock_guard<std::mutex> lock(mutex);
        work.swap(pendingReplays);
    }
    for (std::future<void> &f : work)
        f.get();
}

void
ProfilingService::refreshAll()
{
    std::vector<Workload *> work;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &t : tenants) {
            for (const auto &w : t->workloads)
                work.push_back(w.get());
        }
    }
    for (Workload *w : work) {
        w->session->refresh();
        w->lastUse.store(useTicket.fetch_add(1),
                         std::memory_order_relaxed);
    }
}

WorkloadSession &
ProfilingService::session(TenantId tenant, WorkloadId workload)
{
    std::lock_guard<std::mutex> lock(mutex);
    GT_ASSERT(tenant < tenants.size(), "unknown tenant ", tenant);
    Tenant &t = *tenants[tenant];
    GT_ASSERT(workload < t.workloads.size(), "unknown workload ",
              workload, " for tenant '", t.name, "'");
    return *t.workloads[workload]->session;
}

ServiceStats
ProfilingService::stats() const
{
    ServiceStats st;
    {
        std::lock_guard<std::mutex> lock(mutex);
        st.tenants = tenants.size();
        for (const auto &t : tenants) {
            st.workloads += t->workloads.size();
            for (const auto &w : t->workloads) {
                SessionStats s = w->session->stats();
                st.sessions.dispatches += s.dispatches;
                st.sessions.refreshes += s.refreshes;
                st.sessions.reclustered += s.reclustered;
                st.sessions.reusedSelections += s.reusedSelections;
                st.sessions.reusedPoints += s.reusedPoints;
                st.sessions.projectedPoints += s.projectedPoints;
                st.sessions.evictions += s.evictions;
                st.sessions.rehydrations += s.rehydrations;
            }
        }
    }
    st.replays = replayCount.load();
    st.artifactHits = artifactHitCount.load();
    st.planCache = plans.stats();
    st.checkpointCache = ckpts.stats();
    return st;
}

std::shared_ptr<const ReplayArtifact>
ProfilingService::findArtifact(uint64_t key)
{
    ArtifactShard &shard = artifactShards[gpu::cacheShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    return it == shard.map.end() ? nullptr : it->second;
}

void
ProfilingService::insertArtifact(
    uint64_t key, std::shared_ptr<const ReplayArtifact> artifact)
{
    // First insert wins; a racing duplicate replay fed its own
    // session identically, so dropping its artifact loses nothing.
    ArtifactShard &shard = artifactShards[gpu::cacheShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(key, std::move(artifact));
}

void
ProfilingService::runReplay(Workload &workload)
{
    {
        // The oversubscription guard: every replay runs on the one
        // shared pool, and at most admission.width() run
        // concurrently. Re-entrant: a replay submitted from inside
        // an already-admitted task (inline execution on a 1-thread
        // pool) must not wait on its own slot.
        sched::PoolHandle::Slot slot = admission.acquireReentrant();

        uint64_t key = cfl::recordingContentHash(workload.recording);
        if (std::shared_ptr<const ReplayArtifact> artifact =
                findArtifact(key)) {
            artifactHitCount.fetch_add(1, std::memory_order_relaxed);
            feedFromArtifact(*workload.session, *artifact);
        } else {
            replayCount.fetch_add(1, std::memory_order_relaxed);
            insertArtifact(key, replayStreaming(workload));
        }
    }
    workload.lastUse.store(useTicket.fetch_add(1),
                           std::memory_order_relaxed);
    workload.drained.store(true, std::memory_order_release);
    enforceBudget();
}

std::shared_ptr<ReplayArtifact>
ProfilingService::replayStreaming(Workload &workload)
{
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(cfg.device, jit, cfg.trial);
    driver.setSharedCaches(&plans, &ckpts);

    // The replayTrial tool set: instrumentation load shifts relative
    // SPI, so service replays carry the same instrumentation the
    // batch pipeline does or selections would be biased against it.
    gtpin::KernelProfileTool profile_tool;
    gtpin::BasicBlockCounterTool bb_tool;
    gtpin::OpcodeMixTool mix_tool;
    gtpin::MemBytesTool mem_tool;
    gtpin::GtPin pin;
    pin.addTool(&profile_tool);
    pin.addTool(&bb_tool);
    pin.addTool(&mix_tool);
    pin.addTool(&mem_tool);
    pin.attach(driver);

    ocl::ClRuntime runtime(driver);
    cfl::ApiTracer tracer;
    runtime.addObserver(&tracer);

    // Stream the replay: calls feed the session's epoch walk as they
    // issue; dispatch rows feed as they drain (kernels execute at
    // host/device alignment points, so rows arrive in sync-epoch
    // bursts — exactly the granularity the incremental interval
    // builder closes intervals at).
    cfl::StreamingReplay stream(workload.recording, runtime);
    WorkloadSession &session = *workload.session;
    size_t calls_fed = 0;
    size_t rows_fed = 0;
    auto feed = [&] {
        const std::vector<ocl::ApiCallRecord> &calls =
            tracer.callStream();
        for (; calls_fed < calls.size(); ++calls_fed)
            session.observeCall(calls[calls_fed]);
        const std::vector<gtpin::DispatchProfile> &profiles =
            profile_tool.profiles();
        const std::vector<cfl::KernelTiming> &timings =
            tracer.kernelTimings();
        size_t avail = std::min(profiles.size(), timings.size());
        for (; rows_fed < avail; ++rows_fed)
            session.addDispatch(profiles[rows_fed],
                                timings[rows_fed]);
    };
    while (stream.nextDispatch())
        feed();
    stream.drain();
    feed();
    pin.detach();

    auto artifact = std::make_shared<ReplayArtifact>();
    artifact->calls = tracer.callStream();
    artifact->profiles = profile_tool.takeProfiles();
    artifact->timings = tracer.kernelTimings();
    // Run the epoch walk once here so every warm submission can
    // bulk-append without it.
    artifact->epochs =
        core::TraceDatabase::Builder::assignEpochs(artifact->calls);
    GT_ASSERT(artifact->epochs.size() == artifact->profiles.size(),
              "artifact epoch walk assigned ",
              artifact->epochs.size(), " dispatches but the replay "
              "profiled ", artifact->profiles.size());
    return artifact;
}

void
ProfilingService::feedFromArtifact(WorkloadSession &session,
                                   const ReplayArtifact &artifact)
{
    // Epoch assignment depends only on calls issued before each
    // dispatch's own Kernel call, and the artifact carries the
    // complete walk's assignments — so the bulk append reproduces
    // the streamed session state bit for bit, one lock for the
    // whole batch.
    GT_ASSERT(artifact.profiles.size() == artifact.timings.size(),
              "artifact profile/timing count mismatch");
    session.addDispatches(artifact.profiles, artifact.timings,
                          artifact.epochs);
}

SessionArchive &
ProfilingService::archiveCatalog()
{
    std::lock_guard<std::mutex> lock(archiveMutex);
    if (!archiveStore)
        archiveStore = std::make_unique<SessionArchive>(archiveRoot);
    return *archiveStore;
}

void
ProfilingService::enforceBudget()
{
    if (cfg.maxResidentSessions == SIZE_MAX &&
        cfg.maxResidentBytes == UINT64_MAX && !cfg.evictOnDrain)
        return;

    // Snapshot resident state under the service lock; the sessions
    // themselves are locked one at a time (service -> session lock
    // order, never the reverse).
    struct Candidate
    {
        Workload *workload;
        uint64_t lastUse;
        uint64_t bytes;
    };
    std::vector<Candidate> evictable;
    uint64_t residentBytes = 0;
    size_t residentCount = 0;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &t : tenants) {
            for (const auto &w : t->workloads) {
                if (!w->session || w->session->isEvicted())
                    continue;
                uint64_t bytes = w->session->memoryBytes();
                residentBytes += bytes;
                ++residentCount;
                if (w->drained.load(std::memory_order_acquire)) {
                    evictable.push_back(
                        {w.get(),
                         w->lastUse.load(std::memory_order_relaxed),
                         bytes});
                }
            }
        }
    }
    std::sort(evictable.begin(), evictable.end(),
              [](const Candidate &a, const Candidate &b) {
                  return a.lastUse < b.lastUse;
              });

    for (const Candidate &cand : evictable) {
        bool over = residentCount > cfg.maxResidentSessions ||
                    residentBytes > cfg.maxResidentBytes;
        if (!cfg.evictOnDrain && !over)
            break;
        Workload &wl = *cand.workload;
        SessionArchive &catalog = archiveCatalog();
        std::string path = catalog.pathFor(wl.tenant, wl.id,
                                           wl.session->name());
        wl.session->evict(path);
        catalog.record(wl.session->name(), path,
                       wl.session->numDispatches());
        residentBytes -= std::min(cand.bytes, residentBytes);
        --residentCount;
        inform("serve: evicted '", wl.session->name(), "' (",
               humanBytes(cand.bytes), ") to ", path, "; ",
               residentCount, " sessions / ",
               humanBytes(residentBytes), " resident");
    }
}

ServiceFootprint
ProfilingService::memoryFootprint() const
{
    ServiceFootprint fp;
    {
        std::lock_guard<std::mutex> lock(mutex);
        for (const auto &t : tenants) {
            for (const auto &w : t->workloads) {
                if (!w->session)
                    continue;
                uint64_t bytes = w->session->memoryBytes();
                if (w->session->isEvicted())
                    fp.evictedResidueBytes += bytes;
                else
                    fp.sessionBytes += bytes;
                fp.memoBytes += w->session->memoBytes();
            }
        }
    }
    fp.planCacheBytes = plans.memoryBytes();
    fp.checkpointCacheBytes = ckpts.memoryBytes();
    for (const ArtifactShard &shard : artifactShards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[key, artifact] : shard.map) {
            (void)key;
            fp.artifactBytes += artifact->memoryBytes();
        }
    }
    fp.traceCacheBytes = core::trace_store::threadCacheResidentBytes();
    fp.totalBytes = fp.sessionBytes + fp.evictedResidueBytes +
                    fp.memoBytes + fp.planCacheBytes +
                    fp.checkpointCacheBytes + fp.artifactBytes +
                    fp.traceCacheBytes;
    return fp;
}

} // namespace gt::serve
