/**
 * @file
 * Named on-disk archives for evicted workload sessions.
 *
 * When the profiling service seals an idle session's joined rows to
 * disk (see ProfilingService's lifecycle in service.hh), the bytes
 * must outlive the session object — a late dispatch, a post-hoc
 * sealDatabase(), or a service restart has to find them again. A
 * spill-and-unlink file (the columnar backend's default) cannot do
 * that, so evictions write *named* archive files through this
 * catalog:
 *
 *  - each archived session gets a stable file name derived from its
 *    (tenant, workload, name) identity inside one archive directory;
 *  - a small text catalog (catalog.tsv: file, dispatch count,
 *    workload name) is rewritten atomically (temp file + rename) on
 *    every change, so the directory is self-describing;
 *  - an existing catalog is loaded on construction, so a new service
 *    pointed at an old directory can enumerate what a previous run
 *    archived.
 *
 * The archive files themselves are ordinary GTCOLDB columnar trace
 * files (TraceDatabase::Builder::writeArchive /
 * TraceDatabase::openColumnarFile) — the catalog never parses them,
 * it only names them.
 *
 * Thread safety: all methods are internally locked; concurrent
 * evictions from different service threads may record entries at
 * once.
 */

#ifndef GT_SERVE_ARCHIVE_HH
#define GT_SERVE_ARCHIVE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gt::serve
{

/** Catalog of archived sessions in one directory (see file
 * comment). */
class SessionArchive
{
  public:
    /** One catalog row. */
    struct Entry
    {
        std::string workload; //!< session name (informational)
        std::string file;     //!< archive file name inside dir
        uint64_t dispatches = 0;
    };

    /** Create (mkdir -p) @p directory and load any existing
     * catalog. */
    explicit SessionArchive(std::string directory);

    SessionArchive(const SessionArchive &) = delete;
    SessionArchive &operator=(const SessionArchive &) = delete;

    const std::string &directory() const { return dir; }

    /** Full path an archive of (tenant @p tenant, workload @p id,
     * named @p workload) is written to. Pure function of the
     * identity — re-evicting the same session overwrites its own
     * file. */
    std::string pathFor(size_t tenant, size_t id,
                        const std::string &workload) const;

    /** Record (or update) the catalog row for @p path and rewrite
     * the catalog file atomically. */
    void record(const std::string &workload, const std::string &path,
                uint64_t dispatches);

    /** Snapshot of the catalog rows. */
    std::vector<Entry> entries() const;

    /** Catalog rows of @p directory without constructing an archive
     * (empty when no catalog exists). */
    static std::vector<Entry> readCatalog(const std::string &directory);

  private:
    std::string catalogPath() const;
    void writeCatalogLocked() const;

    std::string dir;
    mutable std::mutex mu;
    std::vector<Entry> rows;
};

} // namespace gt::serve

#endif // GT_SERVE_ARCHIVE_HH
