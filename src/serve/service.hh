/**
 * @file
 * Streaming multi-tenant profiling service.
 *
 * The paper's pipeline is batch-shaped: profile one application,
 * build its database, divide intervals, extract features, cluster,
 * select. This service turns that pipeline into a long-running
 * facility the way GT-Pin is deployed inside a design team: N
 * tenants (users, CI jobs, sweep drivers) each submit recorded API
 * streams (cfl::Recording), the service replays them on per-tenant
 * driver stacks sharing one thread pool, and each workload's
 * intervals, feature columns, and subset selections are maintained
 * *incrementally* as dispatches drain — a refresh() at any moment
 * answers with selections bitwise identical to a one-shot
 * selectSubset() over everything fed so far.
 *
 * Cross-tenant sharing is content-addressed and immutable:
 *
 *  - gpu::SharedPlanCache — kernel execution plans (decoded uop
 *    programs, block cycle tables, gang verdicts) keyed on
 *    isa::contentHash, shared by every tenant driver;
 *  - gpu::SharedCheckpointCache — detailed-mode warm checkpoints
 *    keyed on (binary hash, dispatch shape);
 *  - the replay-artifact cache here — full replay outcomes (call
 *    stream, dispatch profiles, timings) keyed on
 *    cfl::recordingContentHash, so the second tenant submitting an
 *    identical recording streams the cached rows instead of
 *    re-executing kernels. On a single-core host this dedup, not
 *    thread parallelism, is what makes aggregate throughput scale
 *    with tenant count (bench/service_throughput gates it).
 *
 * All caches follow the repo's "fully built => const, shareable"
 * contract: artifacts are inserted only once complete, never mutated
 * afterwards, first insert wins, and lookups hand out
 * shared_ptr<const> (or stable const references) safe to read from
 * any thread.
 *
 * Incremental selection refresh reuses three invariants, each pinned
 * by differential tests:
 *
 *  1. closed intervals are final (core::IncrementalIntervals), so
 *     per-interval projected points for the completed prefix never
 *     change;
 *  2. projection rows are pure per-key
 *     (simpoint::ProjectionTable::build-with-reuse), so cached
 *     prefix points stay bitwise valid as the key universe grows;
 *  3. the unique-value index is a pure function of the point
 *     multiset (simpoint::extendUniqueIndex), so the pruned k-means
 *     index extends instead of re-sorting.
 *
 * A population is re-clustered only when its workload gained
 * dispatches since the last refresh; untouched configurations are
 * answered from the memoized selection.
 *
 * At hundreds of tenants the remaining scaling hazards are resident
 * session state (every drained workload used to keep its joined
 * records, feature columns, and interval state in memory forever)
 * and global cache mutexes. Three mechanisms close them:
 *
 *  - **Session eviction.** When a workload drains — or the
 *    configured resident-session / resident-byte budget is exceeded
 *    (LRU order) — its session is *evicted*: selections are
 *    memoized, the joined rows are written to a named columnar
 *    archive file under a small catalog (serve/archive.hh), and the
 *    builder, feature cache, and interval state are dropped. While
 *    evicted, refresh() and selection() answer from the memo at
 *    near-zero cost; a late dispatch (or a non-memo refresh)
 *    *rehydrates* by re-feeding the archived rows, after which every
 *    selection is bitwise identical to a never-evicted session's
 *    (the eviction differential tests pin this across budget
 *    thresholds).
 *  - **Warm admission.** A submit() whose recording content hash
 *    already has a replay artifact skips replay scheduling entirely:
 *    the cached rows bulk-append into the new session through
 *    WorkloadSession::addDispatches() using the artifact's
 *    precomputed epoch assignments — one lock, no per-dispatch epoch
 *    walk, no admission slot, no pool hop. Warm submission is an
 *    O(rows) append on the calling thread, which is what the
 *    warm-vs-cold latency gate in bench/service_throughput measures.
 *  - **Sharded caches.** The plan, checkpoint (gpu/plan_cache.hh),
 *    and replay-artifact caches are striped by content hash, so
 *    tenants contend per stripe, never on one global mutex; stats
 *    remain exact.
 */

#ifndef GT_SERVE_SERVICE_HH
#define GT_SERVE_SERVICE_HH

#include <array>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cfl/recorder.hh"
#include "cfl/tracer.hh"
#include "core/feature_engine.hh"
#include "core/interval.hh"
#include "core/selection.hh"
#include "gpu/plan_cache.hh"
#include "ocl/driver.hh"
#include "sched/thread_pool.hh"
#include "serve/archive.hh"

namespace gt::serve
{

/** One (interval scheme, feature kind) selection configuration a
 * session keeps refreshed. */
struct SelectionConfig
{
    core::IntervalScheme scheme = core::IntervalScheme::SyncBounded;
    core::FeatureKind feature = core::FeatureKind::BB;
};

/** Service-wide configuration, fixed at construction. */
struct ServiceConfig
{
    gpu::DeviceConfig device = gpu::DeviceConfig::hd4000();
    gpu::TrialConfig trial = {};

    /** Selections maintained per workload (default: the paper's BB
     * feature under all three interval schemes). */
    std::vector<SelectionConfig> selections = {
        {core::IntervalScheme::SyncBounded, core::FeatureKind::BB},
        {core::IntervalScheme::ApproxInstructions,
         core::FeatureKind::BB},
        {core::IntervalScheme::SingleKernel, core::FeatureKind::BB},
    };

    /** Clustering options shared by every refresh; the service
     * threads its own pool and unique index through per call. */
    core::simpoint::ClusterOptions cluster = {};

    /** ApproxInstructions chunk size (0 = derive from the final
     * total, see buildIntervals()). */
    uint64_t targetInstrs = 0;

    /**
     * Concurrent-replay admission cap (0 = the pool's thread
     * count). This is the oversubscription guard: every tenant
     * replay runs on the one shared pool below, and at most this
     * many run at a time — no per-tenant pools sized from
     * GT_THREADS.
     */
    unsigned replayWidth = 0;

    /** Shared pool for replays and refresh clustering (null = the
     * process-wide pool). */
    sched::ThreadPool *pool = nullptr;

    /**
     * Resident-session cap: when more than this many sessions hold
     * live builder/feature state, drained sessions are evicted to
     * the archive in LRU order. SIZE_MAX = never evict by count;
     * 0 = evict every drained session. Defaults from
     * GT_SERVE_MAX_SESSIONS when the field is left unset.
     */
    size_t maxResidentSessions = SIZE_MAX;

    /**
     * Resident-byte budget over the summed per-session state
     * (builders, feature caches, interval/point state — see
     * WorkloadSession::memoryBytes). Exceeding it evicts drained
     * sessions LRU-first until back under. UINT64_MAX = unbounded.
     * Defaults from GT_SERVE_MAX_BYTES when left unset.
     */
    uint64_t maxResidentBytes = UINT64_MAX;

    /** Evict every workload the moment its replay drains (the
     * most aggressive setting; selections stay answerable from the
     * memo). Defaults from GT_SERVE_EVICT=1. */
    bool evictOnDrain = false;

    /** Directory for session archives and their catalog. Empty =
     * GT_SERVE_ARCHIVE_DIR, else TMPDIR (or /tmp) +
     * "/gt-serve-<pid>". Created on first eviction. */
    std::string archiveDir;
};

/**
 * One complete replay outcome, cached across tenants by recording
 * content hash. Immutable once built (const members only through the
 * shared_ptr), so any number of sessions may stream from it
 * concurrently.
 */
struct ReplayArtifact
{
    std::vector<ocl::ApiCallRecord> calls;
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;

    /** Precomputed (dispatch seq, sync epoch) assignments of the
     * call stream, ascending by seq (one entry per profile) — what
     * lets warm submissions bulk-append without re-running the
     * per-dispatch epoch walk
     * (core::TraceDatabase::Builder::assignEpochs). */
    std::vector<std::pair<uint64_t, uint64_t>> epochs;

    uint64_t dispatchCount() const { return profiles.size(); }

    /** Approximate resident bytes of the cached outcome. */
    uint64_t memoryBytes() const;
};

/** Per-session work counters (monotone; see stats()). */
struct SessionStats
{
    uint64_t dispatches = 0;       //!< rows fed into the session
    uint64_t refreshes = 0;        //!< refresh() calls
    uint64_t reclustered = 0;      //!< config refreshes that ran k-means
    uint64_t reusedSelections = 0; //!< answered from the memo
    uint64_t reusedPoints = 0;     //!< cached prefix points kept
    uint64_t projectedPoints = 0;  //!< points (re)computed
    uint64_t evictions = 0;        //!< sessions sealed to the archive
    uint64_t rehydrations = 0;     //!< archives re-fed into builders
};

/**
 * Per-(tenant, workload) incremental selection state: a streaming
 * TraceDatabase::Builder, the flat feature columns, one
 * IncrementalIntervals per configured scheme, and the memoized
 * refresh artifacts (points, unique index, projection table,
 * selection). Thread-safe: every method locks the session, so the
 * service's replay task may feed while another thread refreshes or
 * reads selections.
 */
class WorkloadSession
{
  public:
    WorkloadSession(std::string workload_name,
                    const ServiceConfig &config,
                    sched::ThreadPool &pool);

    /** Advance the sync-epoch walk over one host API call (must be
     * fed in call order, before the dispatches it precedes). */
    void observeCall(const ocl::ApiCallRecord &call);

    /** Feed one drained dispatch: joins the builder, lowers the
     * feature columns, and advances every interval scheme. */
    void addDispatch(const gtpin::DispatchProfile &profile,
                     const cfl::KernelTiming &timing);

    /**
     * Bulk-append already-epoch-assigned rows (the warm admission
     * path): one session lock for the whole batch, and the joined
     * rows bypass the per-dispatch epoch walk because @p epochs
     * carries the artifact's precomputed (seq, epoch) assignments
     * (parallel to @p profiles). Bitwise identical session state to
     * feeding the same rows through observeCall()/addDispatch().
     */
    void addDispatches(
        const std::vector<gtpin::DispatchProfile> &profiles,
        const std::vector<cfl::KernelTiming> &timings,
        const std::vector<std::pair<uint64_t, uint64_t>> &epochs);

    /**
     * Seal this session's joined rows to the named columnar archive
     * at @p archive_path and drop the builder records, feature
     * columns, and interval/point state — everything except the
     * memoized selections (refreshed here first, so an evicted
     * session answers refresh()/selection() from the memo without
     * touching the archive) and the tiny epoch-walk restart state. A
     * later dispatch rehydrates transparently by re-feeding the
     * archived rows; selections afterwards are bitwise identical to
     * a never-evicted session's. Idempotent.
     */
    void evict(const std::string &archive_path);

    /** Whether the session is currently evicted (state on disk). */
    bool isEvicted() const;

    /**
     * Approximate resident bytes of this session's *reclaimable*
     * state: the streaming builder (joined records + profile heap),
     * the lowered feature columns, the projection table, and
     * per-config interval/point/unique-index state. What evict()
     * reclaims; the service's byte-budget eviction and
     * memoryFootprint() sum this. The memoized selections are
     * excluded — they survive eviction by contract (selection()
     * stays answerable) and are reported by memoBytes().
     */
    uint64_t memoryBytes() const;

    /** Approximate bytes of the memoized selections (the one
     * per-workload cost that outlives eviction). */
    uint64_t memoBytes() const;

    /**
     * Incremental selection refresh over everything fed so far.
     * Configurations whose population gained no dispatches since
     * their last refresh are answered from the memoized selection;
     * the rest re-cluster, reusing the completed-prefix points, the
     * extended unique-value index, and the grown projection table.
     * The result is bitwise identical — selections, chosen k,
     * ratios — to a one-shot selectSubset() over a database sealed
     * at this prefix (the service differential tests pin this at
     * multiple arrival orders and granularities).
     */
    void refresh();

    /** Latest refreshed selection of configuration @p config (index
     * into ServiceConfig::selections). refresh() must have run since
     * the first dispatch arrived. */
    core::SubsetSelection selection(size_t config) const;

    uint64_t numDispatches() const;

    /** Seal a TraceDatabase over everything fed so far — the oracle
     * the differential tests and SPI projections run against. */
    core::TraceDatabase
    sealDatabase(core::TraceDbBackend backend =
                     core::defaultTraceDbBackend()) const;

    SessionStats stats() const;

    const std::string &name() const { return workloadName; }

  private:
    struct ConfigState
    {
        SelectionConfig config;
        core::IncrementalIntervals intervals;
        /** Cached per-interval projected points; [0, stable) cover
         * completed (final) intervals and are reused verbatim. */
        std::vector<core::simpoint::Point> points;
        size_t stable = 0;
        /** Unique-value index over the stable prefix. */
        core::simpoint::UniqueIndex uniq;
        core::SubsetSelection selection;
        uint64_t selectionAt = 0; //!< dispatch count at last cluster
        bool hasSelection = false;
    };

    void refreshConfig(ConfigState &state);

    /** Re-feed the archived rows into fresh builder/feature/interval
     * state (no-op unless evicted). Caller holds the mutex. */
    void rehydrateLocked();

    std::string workloadName;
    sched::ThreadPool &pool;
    core::simpoint::ClusterOptions clusterOptions;
    uint64_t targetInstrs;

    mutable std::mutex mutex;
    core::TraceDatabase::Builder builder;
    core::DispatchFeatureCache features;
    core::simpoint::ProjectionTable table;
    std::vector<ConfigState> configs;
    SessionStats counters;

    /** Rows ever fed (survives eviction; builder.numAppended() drops
     * to 0 while evicted, so the memo check keys on this). */
    uint64_t fed = 0;
    bool evicted = false;
    /** Archive file holding the joined rows while evicted (empty if
     * the session was empty at eviction). */
    std::string archivePath;
};

/** Service-wide counters and cache statistics. */
struct ServiceStats
{
    uint64_t tenants = 0;
    uint64_t workloads = 0;
    uint64_t replays = 0;      //!< recordings actually re-executed
    uint64_t artifactHits = 0; //!< recordings served from the cache
    SessionStats sessions;     //!< summed over every session
    gpu::SharedCacheStats planCache;
    gpu::SharedCacheStats checkpointCache;
};

/** Where the service's resident bytes live (approximate,
 * deterministic sums — see memoryFootprint()). */
struct ServiceFootprint
{
    /** Builder/feature/interval state of the *resident*
     * (non-evicted) sessions. This is what the byte-budget eviction
     * bounds: it stays under ServiceConfig::maxResidentBytes no
     * matter how many workloads accumulate. */
    uint64_t sessionBytes = 0;
    /** Residual object bytes of evicted sessions (the session
     * object, empty column/interval shells, the epoch-walk restart
     * state — a few KB each, everything heavy is on disk). */
    uint64_t evictedResidueBytes = 0;
    /** Memoized selections, summed over every session. Retained
     * across eviction (selection()/refresh() answer from them), so
     * this grows with workload count — but by O(selected intervals)
     * per workload, not O(dispatches). */
    uint64_t memoBytes = 0;
    uint64_t planCacheBytes = 0;       //!< shared execution plans
    uint64_t checkpointCacheBytes = 0; //!< adopted checkpoints
    uint64_t artifactBytes = 0;        //!< cached replay outcomes
    /** Decoded-block bytes the calling thread's trace-store cache
     * holds for live stores. */
    uint64_t traceCacheBytes = 0;
    uint64_t totalBytes = 0; //!< sum of the above
};

/**
 * The multi-tenant profiling service (see the file comment).
 * Tenants are opened, recordings submitted (asynchronously replayed
 * on the shared pool), drain() joins the outstanding replays, and
 * refreshAll()/session() expose the incrementally maintained
 * selections.
 */
class ProfilingService
{
  public:
    using TenantId = size_t;
    using WorkloadId = size_t;

    explicit ProfilingService(ServiceConfig config = {});

    /** Joins outstanding replays (failures are swallowed here; call
     * drain() first to observe them). */
    ~ProfilingService();

    ProfilingService(const ProfilingService &) = delete;
    ProfilingService &operator=(const ProfilingService &) = delete;

    TenantId openTenant(std::string name);

    /**
     * Submit one recorded workload for @p tenant. The replay is
     * scheduled on the shared pool and streams into the workload's
     * session as dispatches drain; identical recordings (by content
     * hash) from any tenant are served from the replay-artifact
     * cache without re-executing kernels.
     */
    WorkloadId submit(TenantId tenant, std::string workload_name,
                      cfl::Recording recording);

    /** Wait for every outstanding replay; rethrows the first
     * failure. */
    void drain();

    /** refresh() every session (see WorkloadSession::refresh). */
    void refreshAll();

    /** The incremental state of one submitted workload. */
    WorkloadSession &session(TenantId tenant, WorkloadId workload);

    gpu::SharedPlanCache &planCache() { return plans; }

    gpu::SharedCheckpointCache &checkpointCache() { return ckpts; }

    const ServiceConfig &config() const { return cfg; }

    ServiceStats stats() const;

    /**
     * Approximate resident bytes of the service: every session's
     * state (WorkloadSession::memoryBytes) plus the three shared
     * caches and the calling thread's trace-store decode cache.
     * Logged at eviction decisions; the eviction tests assert it
     * stays bounded as tenants accumulate.
     */
    ServiceFootprint memoryFootprint() const;

    /** Directory evicted sessions archive to (catalog inside). */
    const std::string &archiveDirectory() const { return archiveRoot; }

  private:
    struct Workload
    {
        TenantId tenant = 0;
        WorkloadId id = 0;
        cfl::Recording recording;
        std::unique_ptr<WorkloadSession> session;
        /** Replay finished and every row is fed — the precondition
         * for eviction. */
        std::atomic<bool> drained{false};
        /** LRU ticket (monotone service-wide counter, not wall
         * time), refreshed on feed completion and refreshAll(). */
        std::atomic<uint64_t> lastUse{0};
    };

    struct Tenant
    {
        std::string name;
        std::vector<std::unique_ptr<Workload>> workloads;
    };

    void runReplay(Workload &workload);
    std::shared_ptr<ReplayArtifact> replayStreaming(Workload &workload);
    static void feedFromArtifact(WorkloadSession &session,
                                 const ReplayArtifact &artifact);

    std::shared_ptr<const ReplayArtifact> findArtifact(uint64_t key);
    void insertArtifact(uint64_t key,
                        std::shared_ptr<const ReplayArtifact> artifact);

    /** The archive catalog, created (with its directory) on first
     * use. */
    SessionArchive &archiveCatalog();

    /** Evict drained sessions (LRU-first) until the resident-session
     * and resident-byte budgets hold; no-op when unbounded. Called
     * after every workload drains. */
    void enforceBudget();

    ServiceConfig cfg;
    sched::ThreadPool &pool;
    sched::PoolHandle admission;
    gpu::SharedPlanCache plans;
    gpu::SharedCheckpointCache ckpts;

    /** Replay-artifact cache, striped like the gpu caches. */
    struct ArtifactShard
    {
        mutable std::mutex mu;
        std::unordered_map<uint64_t,
                           std::shared_ptr<const ReplayArtifact>>
            map;
    };
    std::array<ArtifactShard, gpu::numCacheShards> artifactShards;
    std::atomic<uint64_t> replayCount{0};
    std::atomic<uint64_t> artifactHitCount{0};

    std::string archiveRoot;
    std::mutex archiveMutex;
    std::unique_ptr<SessionArchive> archiveStore;
    std::atomic<uint64_t> useTicket{1};

    mutable std::mutex mutex; //!< tenants + pending futures
    std::vector<std::unique_ptr<Tenant>> tenants;
    std::vector<std::future<void>> pendingReplays;
};

} // namespace gt::serve

#endif // GT_SERVE_SERVICE_HH
