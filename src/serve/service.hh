/**
 * @file
 * Streaming multi-tenant profiling service.
 *
 * The paper's pipeline is batch-shaped: profile one application,
 * build its database, divide intervals, extract features, cluster,
 * select. This service turns that pipeline into a long-running
 * facility the way GT-Pin is deployed inside a design team: N
 * tenants (users, CI jobs, sweep drivers) each submit recorded API
 * streams (cfl::Recording), the service replays them on per-tenant
 * driver stacks sharing one thread pool, and each workload's
 * intervals, feature columns, and subset selections are maintained
 * *incrementally* as dispatches drain — a refresh() at any moment
 * answers with selections bitwise identical to a one-shot
 * selectSubset() over everything fed so far.
 *
 * Cross-tenant sharing is content-addressed and immutable:
 *
 *  - gpu::SharedPlanCache — kernel execution plans (decoded uop
 *    programs, block cycle tables, gang verdicts) keyed on
 *    isa::contentHash, shared by every tenant driver;
 *  - gpu::SharedCheckpointCache — detailed-mode warm checkpoints
 *    keyed on (binary hash, dispatch shape);
 *  - the replay-artifact cache here — full replay outcomes (call
 *    stream, dispatch profiles, timings) keyed on
 *    cfl::recordingContentHash, so the second tenant submitting an
 *    identical recording streams the cached rows instead of
 *    re-executing kernels. On a single-core host this dedup, not
 *    thread parallelism, is what makes aggregate throughput scale
 *    with tenant count (bench/service_throughput gates it).
 *
 * All caches follow the repo's "fully built => const, shareable"
 * contract: artifacts are inserted only once complete, never mutated
 * afterwards, first insert wins, and lookups hand out
 * shared_ptr<const> (or stable const references) safe to read from
 * any thread.
 *
 * Incremental selection refresh reuses three invariants, each pinned
 * by differential tests:
 *
 *  1. closed intervals are final (core::IncrementalIntervals), so
 *     per-interval projected points for the completed prefix never
 *     change;
 *  2. projection rows are pure per-key
 *     (simpoint::ProjectionTable::build-with-reuse), so cached
 *     prefix points stay bitwise valid as the key universe grows;
 *  3. the unique-value index is a pure function of the point
 *     multiset (simpoint::extendUniqueIndex), so the pruned k-means
 *     index extends instead of re-sorting.
 *
 * A population is re-clustered only when its workload gained
 * dispatches since the last refresh; untouched configurations are
 * answered from the memoized selection.
 */

#ifndef GT_SERVE_SERVICE_HH
#define GT_SERVE_SERVICE_HH

#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cfl/recorder.hh"
#include "cfl/tracer.hh"
#include "core/feature_engine.hh"
#include "core/interval.hh"
#include "core/selection.hh"
#include "gpu/plan_cache.hh"
#include "ocl/driver.hh"
#include "sched/thread_pool.hh"

namespace gt::serve
{

/** One (interval scheme, feature kind) selection configuration a
 * session keeps refreshed. */
struct SelectionConfig
{
    core::IntervalScheme scheme = core::IntervalScheme::SyncBounded;
    core::FeatureKind feature = core::FeatureKind::BB;
};

/** Service-wide configuration, fixed at construction. */
struct ServiceConfig
{
    gpu::DeviceConfig device = gpu::DeviceConfig::hd4000();
    gpu::TrialConfig trial = {};

    /** Selections maintained per workload (default: the paper's BB
     * feature under all three interval schemes). */
    std::vector<SelectionConfig> selections = {
        {core::IntervalScheme::SyncBounded, core::FeatureKind::BB},
        {core::IntervalScheme::ApproxInstructions,
         core::FeatureKind::BB},
        {core::IntervalScheme::SingleKernel, core::FeatureKind::BB},
    };

    /** Clustering options shared by every refresh; the service
     * threads its own pool and unique index through per call. */
    core::simpoint::ClusterOptions cluster = {};

    /** ApproxInstructions chunk size (0 = derive from the final
     * total, see buildIntervals()). */
    uint64_t targetInstrs = 0;

    /**
     * Concurrent-replay admission cap (0 = the pool's thread
     * count). This is the oversubscription guard: every tenant
     * replay runs on the one shared pool below, and at most this
     * many run at a time — no per-tenant pools sized from
     * GT_THREADS.
     */
    unsigned replayWidth = 0;

    /** Shared pool for replays and refresh clustering (null = the
     * process-wide pool). */
    sched::ThreadPool *pool = nullptr;
};

/**
 * One complete replay outcome, cached across tenants by recording
 * content hash. Immutable once built (const members only through the
 * shared_ptr), so any number of sessions may stream from it
 * concurrently.
 */
struct ReplayArtifact
{
    std::vector<ocl::ApiCallRecord> calls;
    std::vector<gtpin::DispatchProfile> profiles;
    std::vector<cfl::KernelTiming> timings;

    uint64_t dispatchCount() const { return profiles.size(); }
};

/** Per-session work counters (monotone; see stats()). */
struct SessionStats
{
    uint64_t dispatches = 0;       //!< rows fed into the session
    uint64_t refreshes = 0;        //!< refresh() calls
    uint64_t reclustered = 0;      //!< config refreshes that ran k-means
    uint64_t reusedSelections = 0; //!< answered from the memo
    uint64_t reusedPoints = 0;     //!< cached prefix points kept
    uint64_t projectedPoints = 0;  //!< points (re)computed
};

/**
 * Per-(tenant, workload) incremental selection state: a streaming
 * TraceDatabase::Builder, the flat feature columns, one
 * IncrementalIntervals per configured scheme, and the memoized
 * refresh artifacts (points, unique index, projection table,
 * selection). Thread-safe: every method locks the session, so the
 * service's replay task may feed while another thread refreshes or
 * reads selections.
 */
class WorkloadSession
{
  public:
    WorkloadSession(std::string workload_name,
                    const ServiceConfig &config,
                    sched::ThreadPool &pool);

    /** Advance the sync-epoch walk over one host API call (must be
     * fed in call order, before the dispatches it precedes). */
    void observeCall(const ocl::ApiCallRecord &call);

    /** Feed one drained dispatch: joins the builder, lowers the
     * feature columns, and advances every interval scheme. */
    void addDispatch(const gtpin::DispatchProfile &profile,
                     const cfl::KernelTiming &timing);

    /**
     * Incremental selection refresh over everything fed so far.
     * Configurations whose population gained no dispatches since
     * their last refresh are answered from the memoized selection;
     * the rest re-cluster, reusing the completed-prefix points, the
     * extended unique-value index, and the grown projection table.
     * The result is bitwise identical — selections, chosen k,
     * ratios — to a one-shot selectSubset() over a database sealed
     * at this prefix (the service differential tests pin this at
     * multiple arrival orders and granularities).
     */
    void refresh();

    /** Latest refreshed selection of configuration @p config (index
     * into ServiceConfig::selections). refresh() must have run since
     * the first dispatch arrived. */
    core::SubsetSelection selection(size_t config) const;

    uint64_t numDispatches() const;

    /** Seal a TraceDatabase over everything fed so far — the oracle
     * the differential tests and SPI projections run against. */
    core::TraceDatabase
    sealDatabase(core::TraceDbBackend backend =
                     core::defaultTraceDbBackend()) const;

    SessionStats stats() const;

    const std::string &name() const { return workloadName; }

  private:
    struct ConfigState
    {
        SelectionConfig config;
        core::IncrementalIntervals intervals;
        /** Cached per-interval projected points; [0, stable) cover
         * completed (final) intervals and are reused verbatim. */
        std::vector<core::simpoint::Point> points;
        size_t stable = 0;
        /** Unique-value index over the stable prefix. */
        core::simpoint::UniqueIndex uniq;
        core::SubsetSelection selection;
        uint64_t selectionAt = 0; //!< dispatch count at last cluster
        bool hasSelection = false;
    };

    void refreshConfig(ConfigState &state);

    std::string workloadName;
    sched::ThreadPool &pool;
    core::simpoint::ClusterOptions clusterOptions;

    mutable std::mutex mutex;
    core::TraceDatabase::Builder builder;
    core::DispatchFeatureCache features;
    core::simpoint::ProjectionTable table;
    std::vector<ConfigState> configs;
    SessionStats counters;
};

/** Service-wide counters and cache statistics. */
struct ServiceStats
{
    uint64_t tenants = 0;
    uint64_t workloads = 0;
    uint64_t replays = 0;      //!< recordings actually re-executed
    uint64_t artifactHits = 0; //!< recordings served from the cache
    SessionStats sessions;     //!< summed over every session
    gpu::SharedCacheStats planCache;
    gpu::SharedCacheStats checkpointCache;
};

/**
 * The multi-tenant profiling service (see the file comment).
 * Tenants are opened, recordings submitted (asynchronously replayed
 * on the shared pool), drain() joins the outstanding replays, and
 * refreshAll()/session() expose the incrementally maintained
 * selections.
 */
class ProfilingService
{
  public:
    using TenantId = size_t;
    using WorkloadId = size_t;

    explicit ProfilingService(ServiceConfig config = {});

    /** Joins outstanding replays (failures are swallowed here; call
     * drain() first to observe them). */
    ~ProfilingService();

    ProfilingService(const ProfilingService &) = delete;
    ProfilingService &operator=(const ProfilingService &) = delete;

    TenantId openTenant(std::string name);

    /**
     * Submit one recorded workload for @p tenant. The replay is
     * scheduled on the shared pool and streams into the workload's
     * session as dispatches drain; identical recordings (by content
     * hash) from any tenant are served from the replay-artifact
     * cache without re-executing kernels.
     */
    WorkloadId submit(TenantId tenant, std::string workload_name,
                      cfl::Recording recording);

    /** Wait for every outstanding replay; rethrows the first
     * failure. */
    void drain();

    /** refresh() every session (see WorkloadSession::refresh). */
    void refreshAll();

    /** The incremental state of one submitted workload. */
    WorkloadSession &session(TenantId tenant, WorkloadId workload);

    gpu::SharedPlanCache &planCache() { return plans; }

    gpu::SharedCheckpointCache &checkpointCache() { return ckpts; }

    const ServiceConfig &config() const { return cfg; }

    ServiceStats stats() const;

  private:
    struct Workload
    {
        cfl::Recording recording;
        std::unique_ptr<WorkloadSession> session;
    };

    struct Tenant
    {
        std::string name;
        std::vector<std::unique_ptr<Workload>> workloads;
    };

    void runReplay(Workload &workload);
    std::shared_ptr<ReplayArtifact> replayStreaming(Workload &workload);
    static void feedFromArtifact(WorkloadSession &session,
                                 const ReplayArtifact &artifact);

    ServiceConfig cfg;
    sched::ThreadPool &pool;
    sched::PoolHandle admission;
    gpu::SharedPlanCache plans;
    gpu::SharedCheckpointCache ckpts;

    mutable std::mutex artifactMutex;
    std::unordered_map<uint64_t, std::shared_ptr<const ReplayArtifact>>
        artifacts;
    std::atomic<uint64_t> replayCount{0};
    std::atomic<uint64_t> artifactHitCount{0};

    mutable std::mutex mutex; //!< tenants + pending futures
    std::vector<std::unique_ptr<Tenant>> tenants;
    std::vector<std::future<void>> pendingReplays;
};

} // namespace gt::serve

#endif // GT_SERVE_SERVICE_HH
