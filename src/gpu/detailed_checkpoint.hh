/**
 * @file
 * Functional artifacts for detailed simulation: checkpoints.
 *
 * A DetailedCheckpoint is everything the cycle-level machine layer
 * needs from the *functional* world to replay one dispatch: the
 * representative thread's basic-block trace, the Fast-mode profile
 * facts (thread count, dynamic instructions), and the derived
 * truncation scaling. It is produced once per distinct dispatch by
 * the executor's checkpoint() hook — a Fast-mode (uops backend) run
 * plus one control-slice trace walk — and is then valid for *every*
 * design point, frequency, and latency setting, because none of its
 * fields depend on machine parameters. This is what lets a
 * validation sweep fast-forward the functional work: non-selected
 * intervals are never walked cycle-by-cycle, and selected intervals
 * pay the functional pre-pass once instead of once per design point.
 *
 * CheckpointStore is the memo table over dispatch identity
 * (kernel id, ND-range, SIMD width, argument hash) that the driver
 * exposes (GpuDriver::checkpoint) so figure benches and the
 * DetailedValidator share one functional pre-pass per distinct
 * dispatch. Its thread-safety contract is the "fully built ⇒ const,
 * shareable" rule: get() builds through the (stateful) executor and
 * must run single-threaded — callers populate the store from one
 * thread — but once a checkpoint is in the table it is never
 * mutated, so the warm store is safely shared. findWarm() is the
 * concurrent read path (const, no executor, no insertion) the
 * machine layer's parallel fan-out and the profiling service use
 * after warm-up; the hit/build counters are atomic so stats stay
 * exact when warm lookups race.
 */

#ifndef GT_GPU_DETAILED_CHECKPOINT_HH
#define GT_GPU_DETAILED_CHECKPOINT_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>

#include "isa/kernel.hh"

namespace gt::gpu
{

class Executor;
struct Dispatch;

/** Per-dispatch functional artifact, reused across design points. */
struct DetailedCheckpoint
{
    const isa::KernelBinary *binary = nullptr;

    /** The representative thread's basic-block trace (Fast mode),
     * truncated at the recording cap it was built with. */
    std::vector<uint32_t> trace;

    /** Application instructions along the recorded trace. */
    uint64_t tracedInstrs = 0;

    /** Hardware threads of the dispatch (ceil(globalSize/simd)). */
    uint64_t numThreads = 0;

    /** Dynamic application instructions of the whole dispatch. */
    uint64_t dynInstrs = 0;

    /** Per-thread dynamic instructions incl. instrumentation. */
    double perThreadInstrs = 0.0;

    /** Cycle scale-up for the untraced remainder (>= 1; exactly 1
     * when the trace covers the whole per-thread execution). */
    double truncation = 1.0;
};

/**
 * Memo table of checkpoints keyed by dispatch identity. References
 * returned by get() stay valid for the store's lifetime.
 */
class CheckpointStore
{
  public:
    /**
     * The checkpoint for @p dispatch, building it through @p exec
     * (one Fast run + one trace walk) on the first request only.
     * @p kernel_id disambiguates binaries; @p trace_cap is the
     * block-trace recording cap and participates in the identity, so
     * differently-capped requests do not alias.
     */
    const DetailedCheckpoint &get(Executor &exec,
                                  const Dispatch &dispatch,
                                  uint32_t kernel_id,
                                  uint64_t trace_cap = 4'000'000);

    /**
     * Concurrent read path: the memoized checkpoint for the dispatch
     * identity, or null if it has not been built. Never builds and
     * never mutates the table, so any number of threads may call it
     * while no thread is inside get() — the contract the service's
     * TSan tests pin down.
     */
    const DetailedCheckpoint *findWarm(const Dispatch &dispatch,
                                       uint32_t kernel_id,
                                       uint64_t trace_cap =
                                           4'000'000) const;

    /** Distinct checkpoints built so far. */
    size_t size() const { return table.size(); }

    /** Functional pre-passes actually executed. */
    uint64_t
    builds() const
    {
        return buildCount.load(std::memory_order_relaxed);
    }

    /** Requests served from the memo table. */
    uint64_t
    hits() const
    {
        return hitCount.load(std::memory_order_relaxed);
    }

    void clear() { table.clear(); }

  private:
    struct Key
    {
        uint32_t kernel = 0;
        uint64_t globalSize = 0;
        uint8_t simdWidth = 0;
        uint64_t argsHash = 0;
        uint64_t traceCap = 0;

        bool
        operator<(const Key &o) const
        {
            if (kernel != o.kernel)
                return kernel < o.kernel;
            if (globalSize != o.globalSize)
                return globalSize < o.globalSize;
            if (simdWidth != o.simdWidth)
                return simdWidth < o.simdWidth;
            if (argsHash != o.argsHash)
                return argsHash < o.argsHash;
            return traceCap < o.traceCap;
        }
    };

    std::map<Key, DetailedCheckpoint> table;
    std::atomic<uint64_t> buildCount{0};
    mutable std::atomic<uint64_t> hitCount{0};
};

/** FNV-1a over argument words (the KN-ARGS identity). */
uint64_t dispatchArgsHash(const std::vector<uint32_t> &args);

} // namespace gt::gpu

#endif // GT_GPU_DETAILED_CHECKPOINT_HH
