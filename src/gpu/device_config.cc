#include "gpu/device_config.hh"

namespace gt::gpu
{

DeviceConfig
DeviceConfig::hd4000()
{
    DeviceConfig cfg;
    cfg.name = "Intel HD 4000";
    cfg.generation = "Ivy Bridge";
    cfg.numEus = 16;
    cfg.numSubslices = 2;
    cfg.threadsPerEu = 8;
    cfg.fpuLanesPerEu = 4;
    cfg.maxFreqMhz = 1150.0;
    cfg.memBandwidthGBs = 25.6;
    cfg.memLatencyNs = 180.0;
    cfg.llcBytes = 4ull << 20;
    return cfg;
}

DeviceConfig
DeviceConfig::hd4600()
{
    DeviceConfig cfg;
    cfg.name = "Intel HD 4600";
    cfg.generation = "Haswell";
    cfg.numEus = 20;
    cfg.numSubslices = 2;
    cfg.threadsPerEu = 7;
    cfg.fpuLanesPerEu = 4;
    cfg.maxFreqMhz = 1250.0;
    cfg.memBandwidthGBs = 25.6;
    cfg.memLatencyNs = 170.0;
    cfg.llcBytes = 6ull << 20;
    return cfg;
}

} // namespace gt::gpu
