#include "gpu/eu_pipeline.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "gpu/exec_profile.hh"

namespace gt::gpu
{

using isa::Instruction;
using isa::Opcode;
using isa::Operand;

namespace
{

/** Scoreboard index for a flag register. */
inline int
flagSlot(uint8_t flag)
{
    return isa::numRegisters + flag;
}

constexpr int scoreboardSize = isa::numRegisters + isa::numFlags;

/** One SMT context replaying the control-flow trace. */
struct Context
{
    size_t tracePos = 0;     //!< index into the block trace
    size_t instrIdx = 0;     //!< index within the current block
    double ready = 0.0;      //!< earliest cycle the context can issue
    bool done = false;
    std::vector<double> regReady;

    Context() : regReady(scoreboardSize, 0.0) {}
};

} // anonymous namespace

EuResult
simulateEu(const isa::KernelBinary &bin,
           const std::vector<uint32_t> &trace, uint32_t num_ctx,
           const EuParams &params)
{
    GT_ASSERT(!trace.empty(), bin.name, ": empty block trace");
    GT_ASSERT(num_ctx > 0, bin.name, ": EU with no contexts");

    std::vector<Context> ctxs(num_ctx);
    // Stagger starts slightly to avoid artificial lockstep.
    for (uint32_t c = 0; c < num_ctx; ++c)
        ctxs[c].ready = (double)c;

    double cycle = 0.0;
    double bw_free = 0.0;
    uint64_t issued = 0;
    uint32_t live = num_ctx;
    uint32_t rr = 0;

    auto src_ready = [&](const Context &ctx,
                         const Instruction &ins) -> double {
        double t = 0.0;
        auto reg_time = [&](const Operand &opnd) {
            if (opnd.isReg())
                t = std::max(t, ctx.regReady[opnd.reg]);
        };
        reg_time(ins.src0);
        reg_time(ins.src1);
        reg_time(ins.src2);
        if (ins.op == Opcode::Send)
            t = std::max(t, ctx.regReady[ins.send.addrReg]);
        if (isa::readsFlag(ins.op))
            t = std::max(t, ctx.regReady[flagSlot(ins.flag)]);
        return t;
    };

    while (live > 0) {
        // Find an issuable context, round-robin from rr.
        int chosen = -1;
        double earliest = std::numeric_limits<double>::max();
        for (uint32_t k = 0; k < num_ctx; ++k) {
            uint32_t c = (rr + k) % num_ctx;
            Context &ctx = ctxs[c];
            if (ctx.done)
                continue;
            const auto &block = bin.blocks[trace[ctx.tracePos]];
            const Instruction &ins = block.instrs[ctx.instrIdx];
            double t = std::max(ctx.ready, src_ready(ctx, ins));
            if (t <= cycle) {
                chosen = (int)c;
                break;
            }
            earliest = std::min(earliest, t);
        }

        if (chosen < 0) {
            // Nothing issuable this cycle: jump to the next event.
            cycle = earliest;
            continue;
        }

        Context &ctx = ctxs[(uint32_t)chosen];
        const auto &block = bin.blocks[trace[ctx.tracePos]];
        const Instruction &ins = block.instrs[ctx.instrIdx];

        double issue = issueCycles(ins, params.fpuLanes);
        double done_at;
        switch (ins.op) {
          case Opcode::Send: {
            double bytes =
                (double)ins.send.bytesPerLane * ins.simdWidth;
            double tx = bytes / params.bwBytesPerCycle;
            double start = std::max(cycle, bw_free);
            bw_free = start + tx;
            done_at = start + tx + params.memLatCycles;
            break;
          }
          case Opcode::FDiv:
          case Opcode::Sqrt:
          case Opcode::Rsqrt:
          case Opcode::Sin:
          case Opcode::Cos:
          case Opcode::Exp:
          case Opcode::Log:
            done_at = cycle + issue + params.mathLatency;
            break;
          default:
            done_at = cycle + issue + params.aluLatency;
            break;
        }

        if (ins.writesReg())
            ctx.regReady[ins.dst] = done_at;
        if (ins.writesFlag())
            ctx.regReady[flagSlot(ins.flag)] = done_at;

        // The issue port is busy for `issue` cycles; the context may
        // not issue its next instruction before then either.
        cycle += issue;
        ctx.ready = cycle;
        ++issued;
        rr = ((uint32_t)chosen + 1) % num_ctx;

        // Advance the context's position in the trace.
        ++ctx.instrIdx;
        if (ctx.instrIdx >= block.instrs.size()) {
            ctx.instrIdx = 0;
            ++ctx.tracePos;
            if (ctx.tracePos >= trace.size()) {
                ctx.done = true;
                --live;
            }
        }
    }

    // Drain: the EU is busy until the last write completes.
    for (const auto &ctx : ctxs) {
        for (double t : ctx.regReady)
            cycle = std::max(cycle, t);
    }

    EuResult result;
    result.cycles = cycle;
    result.issued = issued;
    return result;
}

} // namespace gt::gpu
