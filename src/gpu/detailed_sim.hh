/**
 * @file
 * Cycle-level detailed GPU simulator — the machine layer.
 *
 * This is the expensive tool the paper's methodology exists to avoid
 * running on whole programs: an in-order, scoreboarded SMT EU model
 * that walks every dynamic instruction of a dispatch, tracking
 * register/flag dependences, issue-port occupancy, memory latency,
 * and a shared bandwidth queue. Architects would run thousands of
 * design points through something like this; the subset-selection
 * pipeline makes that affordable by simulating only representative
 * kernel invocations and extrapolating.
 *
 * The subsystem is layered (see DESIGN.md §3.5):
 *
 *  - **artifact layer** (gpu/detailed_checkpoint.hh): per-dispatch
 *    DetailedCheckpoints — block trace + Fast-mode profile facts +
 *    truncation scaling — built once via Executor::checkpoint() and
 *    valid for every design point;
 *  - **EU core** (gpu/eu_pipeline.hh): the scoreboard/SMT-context/
 *    bandwidth pipeline, a pure function of (binary, trace, contexts,
 *    machine parameters);
 *  - **machine layer** (this file): wave scaling and frequency
 *    conversion per replay cell, and the partitioning of independent
 *    replay cells — (design point, interval, dispatch) units, each an
 *    EU-homogeneous wave replay — across the sched::ThreadPool.
 *
 * The model simulates one EU's SMT thread contexts explicitly (they
 * replay the dispatch's recorded control-flow trace) and scales to
 * the full machine by waves, which is sound because dispatch threads
 * are homogeneous in our workloads and EUs are identical. That same
 * homogeneity makes the replay *cell* the parallel partition grain:
 * every EU/sub-slice of a cell computes identical cycles, so
 * partitioning cells across workers covers the machine's EUs with no
 * redundant work. Backend selection follows the
 * GT_INTERP/GT_FEATURES/GT_MEMTRACE/GT_KMEANS pattern:
 * GT_DETAILED=serial|parallel (default parallel; the serial path is
 * the bitwise oracle — cells are pure functions of their checkpoint
 * and design point, and aggregation order is fixed, so results are
 * identical at any thread count).
 */

#ifndef GT_GPU_DETAILED_SIM_HH
#define GT_GPU_DETAILED_SIM_HH

#include "gpu/detailed_checkpoint.hh"
#include "gpu/executor.hh"
#include "gpu/timing.hh"

namespace gt::sched
{
class ThreadPool;
}

namespace gt::gpu
{

/** Outcome of detail-simulating one dispatch. */
struct DetailedResult
{
    double cycles = 0.0;           //!< modeled GPU cycles, full dispatch
    double seconds = 0.0;          //!< modeled wall time
    uint64_t simulatedInstrs = 0;  //!< dynamic instructions walked
    double spi = 0.0;              //!< seconds per (application) instr
};

/** In-order SMT EU machine model over checkpointed dispatches. */
class DetailedSimulator
{
  public:
    /** Machine-layer execution strategy for simulateBatch(). */
    enum class Backend { Serial, Parallel };

    /**
     * @param config   design point to simulate
     * @param freq_mhz clock (0 = the design's maximum)
     */
    explicit DetailedSimulator(const DeviceConfig &config,
                               double freq_mhz = 0.0);

    /**
     * Simulate @p dispatch in detail, building a fresh checkpoint
     * through @p executor (its device memory is untouched). One-shot
     * convenience — sweeps should checkpoint once and call the
     * overload below per design point.
     */
    DetailedResult simulate(Executor &executor,
                            const Dispatch &dispatch);

    /** Simulate one checkpointed dispatch (one replay cell). Pure:
     * depends only on the checkpoint and this design point. */
    DetailedResult simulate(const DetailedCheckpoint &cp) const;

    /**
     * Simulate a batch of independent replay cells. Serial backend:
     * one cell at a time, in index order, on the calling thread —
     * the bitwise oracle. Parallel backend: cells partition across
     * @p pool (null = the process-wide pool) with per-index result
     * slots, so the outcome is bitwise identical to serial at any
     * thread count. Null cells yield default-constructed results.
     */
    std::vector<DetailedResult>
    simulateBatch(const std::vector<const DetailedCheckpoint *> &cells,
                  Backend backend = defaultBackend(),
                  sched::ThreadPool *pool = nullptr) const;

    /** Dependent-use latencies per opcode class, in cycles. */
    void setAluLatency(double cycles) { aluLatency = cycles; }
    void setMathLatency(double cycles) { mathLatency = cycles; }

    /**
     * Process-wide default: GT_DETAILED=serial|parallel, else
     * Parallel. An unrecognized value is a fatal() configuration
     * error, not a silent default.
     */
    static Backend defaultBackend();

    /** @return "serial" or "parallel". */
    static const char *backendName(Backend b);

  private:
    const DeviceConfig config;
    double freq;
    double aluLatency = 2.0;
    double mathLatency = 8.0;
};

} // namespace gt::gpu

#endif // GT_GPU_DETAILED_SIM_HH
