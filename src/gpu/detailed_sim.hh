/**
 * @file
 * Cycle-level detailed GPU simulator.
 *
 * This is the expensive tool the paper's methodology exists to avoid
 * running on whole programs: an in-order, scoreboarded SMT EU model
 * that walks every dynamic instruction of a dispatch, tracking
 * register/flag dependences, issue-port occupancy, memory latency,
 * and a shared bandwidth queue. Architects would run thousands of
 * design points through something like this; the subset-selection
 * pipeline makes that affordable by simulating only representative
 * kernel invocations and extrapolating.
 *
 * The model simulates one EU's SMT thread contexts explicitly (they
 * replay the dispatch's recorded control-flow trace) and scales to
 * the full machine by waves, which is sound because dispatch threads
 * are homogeneous in our workloads and EUs are identical.
 */

#ifndef GT_GPU_DETAILED_SIM_HH
#define GT_GPU_DETAILED_SIM_HH

#include "gpu/executor.hh"
#include "gpu/timing.hh"

namespace gt::gpu
{

/** Outcome of detail-simulating one dispatch. */
struct DetailedResult
{
    double cycles = 0.0;           //!< modeled GPU cycles, full dispatch
    double seconds = 0.0;          //!< modeled wall time
    uint64_t simulatedInstrs = 0;  //!< dynamic instructions walked
    double spi = 0.0;              //!< seconds per (application) instr
};

/** In-order SMT EU pipeline model. */
class DetailedSimulator
{
  public:
    /**
     * @param config   design point to simulate
     * @param freq_mhz clock (0 = the design's maximum)
     */
    explicit DetailedSimulator(const DeviceConfig &config,
                               double freq_mhz = 0.0);

    /**
     * Simulate @p dispatch in detail. @p executor supplies the
     * functional control-flow trace (its device memory is untouched).
     */
    DetailedResult simulate(Executor &executor,
                            const Dispatch &dispatch);

    /** Dependent-use latencies per opcode class, in cycles. */
    void setAluLatency(double cycles) { aluLatency = cycles; }
    void setMathLatency(double cycles) { mathLatency = cycles; }

  private:
    const DeviceConfig config;
    double freq;
    double aluLatency = 2.0;
    double mathLatency = 8.0;
};

} // namespace gt::gpu

#endif // GT_GPU_DETAILED_SIM_HH
