#include "gpu/executor.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gt::gpu
{

using isa::AddrSpace;
using isa::CmpOp;
using isa::FlagMode;
using isa::Instruction;
using isa::KernelBinary;
using isa::Opcode;
using isa::Operand;

namespace
{

/** Per-thread scratch local (shared) memory size. */
constexpr uint64_t localMemBytes = 16 * 1024;

/** Maximum subroutine call depth. */
constexpr size_t maxCallDepth = 64;

inline float
asFloat(uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

inline uint32_t
asBits(float value)
{
    return std::bit_cast<uint32_t>(value);
}

} // anonymous namespace

/** Architectural state of one hardware thread. */
struct Executor::ThreadCtx
{
    uint32_t regs[isa::numRegisters][isa::maxSimdWidth];
    uint8_t flags[isa::numFlags][isa::maxSimdWidth];
    std::vector<uint32_t> callStack;
    std::vector<uint8_t> local;
    double issueCycles = 0.0;
    double lastTimer = 0.0;
    uint64_t instrsExecuted = 0;

    ThreadCtx() : local(localMemBytes, 0) { callStack.reserve(8); }

    void
    reset(const Dispatch &dispatch, uint64_t thread_idx,
          uint16_t max_reg)
    {
        std::memset(regs, 0,
                    sizeof(regs[0]) * ((size_t)max_reg + 1));
        std::memset(flags, 0, sizeof(flags));
        std::fill(local.begin(), local.end(), 0);
        callStack.clear();
        issueCycles = 0.0;
        lastTimer = 0.0;
        instrsExecuted = 0;

        uint64_t base = thread_idx * dispatch.simdWidth;
        for (int lane = 0; lane < isa::maxSimdWidth; ++lane)
            regs[0][lane] = (uint32_t)(base + (uint64_t)lane);
        regs[1][0] = (uint32_t)thread_idx;
        regs[1][1] = (uint32_t)dispatch.globalSize;
        regs[1][2] = dispatch.simdWidth;
        for (size_t a = 0; a < dispatch.args.size(); ++a) {
            for (int lane = 0; lane < isa::maxSimdWidth; ++lane)
                regs[2 + a][lane] = dispatch.args[a];
        }
    }
};

Executor::Executor(const DeviceConfig &config_, DeviceMemory &memory_)
    : config(config_), memory(memory_)
{
}

const Executor::Plan &
Executor::plan(const KernelBinary *bin)
{
    auto it = plans.find(bin);
    if (it != plans.end()) {
        const Plan &cached = it->second;
        if (cached.name == bin->name &&
            cached.numBlocks == bin->blocks.size() &&
            cached.numInstrs == bin->staticInstrCount()) {
            return cached;
        }
        // A different binary now lives at this address.
        plans.erase(it);
    }

    Plan p;
    p.name = bin->name;
    p.numBlocks = bin->blocks.size();
    p.numInstrs = bin->staticInstrCount();
    p.rel = isa::analyzeRelevance(*bin);
    p.blockCycles.resize(bin->blocks.size());
    p.blockInstrs.resize(bin->blocks.size());
    p.relevantIdx.resize(bin->blocks.size());
    for (const auto &block : bin->blocks) {
        double cycles = 0.0;
        for (const auto &ins : block.instrs)
            cycles += issueCycles(ins, config.fpuLanesPerEu);
        p.blockCycles[block.id] = cycles;
        p.blockInstrs[block.id] = block.instrs.size();
        auto &idx = p.relevantIdx[block.id];
        for (uint16_t i = 0; i < block.instrs.size(); ++i) {
            if (p.rel.relevant[block.id][i])
                idx.push_back(i);
        }
    }
    return plans.emplace(bin, std::move(p)).first->second;
}

const isa::Relevance &
Executor::relevance(const KernelBinary *bin)
{
    return plan(bin).rel;
}

ExecProfile
Executor::run(const Dispatch &dispatch, Mode mode, TraceBuffer *trace,
              const MemAccessFn &mem_access)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    GT_ASSERT(dispatch.globalSize > 0, "dispatch with empty ND-range");
    GT_ASSERT(dispatch.simdWidth == 8 || dispatch.simdWidth == 16,
              "dispatch SIMD width must be 8 or 16");
    GT_ASSERT(dispatch.args.size() >= dispatch.binary->numArgs,
              dispatch.binary->name, ": expected ",
              dispatch.binary->numArgs, " args, got ",
              dispatch.args.size());

    const KernelBinary &bin = *dispatch.binary;
    const Plan &p = plan(&bin);

    bool fast = mode == Mode::Fast;
    if (fast && (p.rel.needsFullExec || mem_access))
        fast = false;

    uint64_t num_threads = dispatch.numThreads();

    ExecProfile profile;
    profile.numThreads = num_threads;
    profile.blockCounts.assign(bin.blocks.size(), 0);

    std::vector<uint64_t> trace_deltas(trace ? trace->size() : 0, 0);

    ThreadCtx ctx;

    auto run_scaled = [&](uint64_t thread_idx, uint64_t weight) {
        std::vector<uint64_t> counts(bin.blocks.size(), 0);
        std::vector<uint64_t> deltas(trace_deltas.size(), 0);
        double cycles = runThread(dispatch, thread_idx, fast, p, ctx,
                                  counts, deltas, mem_access);
        for (size_t b = 0; b < counts.size(); ++b)
            profile.blockCounts[b] += counts[b] * weight;
        for (size_t s = 0; s < deltas.size(); ++s)
            trace_deltas[s] += deltas[s] * (uint64_t)weight;
        profile.threadCycles += cycles * (double)weight;
    };

    if (fast && !p.rel.threadDependent) {
        // Every thread behaves identically: run one, scale exactly.
        run_scaled(0, num_threads);
    } else if (fast && num_threads > maxExplicitThreads) {
        // Thread-dependent control at large scale: run a stratified
        // sample; each sampled thread stands for its stratum so the
        // weights cover every thread. The in-stratum position is
        // drawn from a deterministic hash — a fixed stride can alias
        // with the kernel's own thread-id arithmetic.
        uint64_t samples = maxExplicitThreads;
        uint64_t mix_state = 0x9e3779b97f4a7c15ULL;
        for (uint64_t i = 0; i < samples; ++i) {
            uint64_t begin = i * num_threads / samples;
            uint64_t end = (i + 1) * num_threads / samples;
            uint64_t pick = begin + splitmix64(mix_state) %
                                        (end - begin);
            run_scaled(pick, end - begin);
        }
    } else {
        for (uint64_t t = 0; t < num_threads; ++t)
            run_scaled(t, 1);
    }

    profile.deriveFromBlocks(bin);

    if (trace) {
        for (size_t s = 0; s < trace_deltas.size(); ++s) {
            if (trace_deltas[s])
                trace->add((uint32_t)s, trace_deltas[s]);
        }
    }
    return profile;
}

std::vector<uint32_t>
Executor::blockTrace(const Dispatch &dispatch, uint64_t thread_idx,
                     uint64_t max_len)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    const Plan &p = plan(dispatch.binary);
    bool fast = !p.rel.needsFullExec;
    ThreadCtx ctx;
    std::vector<uint64_t> counts(dispatch.binary->blocks.size(), 0);
    // Size a scratch delta vector so instrumented binaries can also
    // be traced (their prof ops still execute).
    uint32_t max_slot = 0;
    for (const auto &block : dispatch.binary->blocks) {
        for (const auto &ins : block.instrs) {
            if (ins.cls() == isa::OpClass::Instrumentation)
                max_slot = std::max(max_slot, ins.profSlot + 1);
        }
    }
    std::vector<uint64_t> deltas(max_slot, 0);
    std::vector<uint32_t> trace;
    runThread(dispatch, thread_idx, fast, p, ctx, counts, deltas, {},
              &trace, max_len);
    return trace;
}

double
Executor::runThread(const Dispatch &dispatch, uint64_t thread_idx,
                    bool fast, const Plan &p, ThreadCtx &ctx,
                    std::vector<uint64_t> &block_counts,
                    std::vector<uint64_t> &trace_deltas,
                    const MemAccessFn &mem_access,
                    std::vector<uint32_t> *block_trace,
                    uint64_t trace_max_len)
{
    const KernelBinary &bin = *dispatch.binary;
    ctx.reset(dispatch, thread_idx, bin.maxReg);

    auto read_lane = [&](const Operand &opnd, int lane) -> uint32_t {
        switch (opnd.kind) {
          case Operand::Kind::Imm:
            return opnd.imm;
          case Operand::Kind::Reg:
            return ctx.regs[opnd.reg][lane];
          default:
            panic(bin.name, ": read of absent operand");
        }
    };

    auto prof_slot = [&](const Instruction &ins) -> uint64_t & {
        GT_ASSERT(!trace_deltas.empty(),
                  bin.name, ": instrumented binary executed without "
                  "a trace buffer");
        GT_ASSERT(ins.profSlot < trace_deltas.size(),
                  bin.name, ": trace slot out of range");
        return trace_deltas[ins.profSlot];
    };

    uint32_t pc = 0;
    bool running = true;
    while (running) {
        const isa::BasicBlock &block = bin.blocks[pc];
        if (block_trace) {
            if (block_trace->size() >= trace_max_len)
                break;
            block_trace->push_back(pc);
        }
        ++block_counts[pc];
        ctx.issueCycles += p.blockCycles[pc];
        ctx.instrsExecuted += p.blockInstrs[pc];
        if (ctx.instrsExecuted > threadInstrLimit) {
            panic(bin.name, ": thread ", thread_idx, " exceeded the ",
                  threadInstrLimit, "-instruction runaway limit");
        }

        uint32_t next_pc = pc + 1;
        bool terminated = false;

        auto exec = [&](const Instruction &ins) {
            int width = ins.simdWidth;
            switch (ins.op) {
              case Opcode::Mov:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l);
                break;
              case Opcode::Sel:
                for (int l = 0; l < width; ++l) {
                    ctx.regs[ins.dst][l] = ctx.flags[ins.flag][l]
                        ? read_lane(ins.src0, l)
                        : read_lane(ins.src1, l);
                }
                break;
              case Opcode::And:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) & read_lane(ins.src1, l);
                break;
              case Opcode::Or:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) | read_lane(ins.src1, l);
                break;
              case Opcode::Xor:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) ^ read_lane(ins.src1, l);
                break;
              case Opcode::Not:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = ~read_lane(ins.src0, l);
                break;
              case Opcode::Shl:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l)
                        << (read_lane(ins.src1, l) & 31);
                break;
              case Opcode::Shr:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l) >>
                        (read_lane(ins.src1, l) & 31);
                break;
              case Opcode::Asr:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = (uint32_t)(
                        (int32_t)read_lane(ins.src0, l) >>
                        (read_lane(ins.src1, l) & 31));
                break;
              case Opcode::Cmp:
                for (int l = 0; l < width; ++l) {
                    ctx.flags[ins.flag][l] =
                        isa::evalCmp(ins.cmpOp, read_lane(ins.src0, l),
                                     read_lane(ins.src1, l));
                }
                break;
              case Opcode::Add:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) + read_lane(ins.src1, l);
                break;
              case Opcode::Sub:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) - read_lane(ins.src1, l);
                break;
              case Opcode::Mul:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) * read_lane(ins.src1, l);
                break;
              case Opcode::Mad:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) * read_lane(ins.src1, l)
                        + read_lane(ins.src2, l);
                break;
              case Opcode::Min:
                for (int l = 0; l < width; ++l) {
                    int32_t a = (int32_t)read_lane(ins.src0, l);
                    int32_t b = (int32_t)read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)(a < b ? a : b);
                }
                break;
              case Opcode::Max:
                for (int l = 0; l < width; ++l) {
                    int32_t a = (int32_t)read_lane(ins.src0, l);
                    int32_t b = (int32_t)read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)(a > b ? a : b);
                }
                break;
              case Opcode::Avg:
                for (int l = 0; l < width; ++l) {
                    uint64_t a = read_lane(ins.src0, l);
                    uint64_t b = read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)((a + b + 1) >> 1);
                }
                break;
              case Opcode::FAdd:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        asBits(asFloat(read_lane(ins.src0, l)) +
                               asFloat(read_lane(ins.src1, l)));
                break;
              case Opcode::FMul:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        asBits(asFloat(read_lane(ins.src0, l)) *
                               asFloat(read_lane(ins.src1, l)));
                break;
              case Opcode::FMad:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        asBits(asFloat(read_lane(ins.src0, l)) *
                                   asFloat(read_lane(ins.src1, l)) +
                               asFloat(read_lane(ins.src2, l)));
                break;
              case Opcode::FDiv:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        asBits(asFloat(read_lane(ins.src0, l)) /
                               asFloat(read_lane(ins.src1, l)));
                break;
              case Opcode::Frc:
                for (int l = 0; l < width; ++l) {
                    float v = asFloat(read_lane(ins.src0, l));
                    ctx.regs[ins.dst][l] =
                        asBits(v - std::floor(v));
                }
                break;
              case Opcode::Sqrt:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = asBits(
                        std::sqrt(asFloat(read_lane(ins.src0, l))));
                break;
              case Opcode::Rsqrt:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = asBits(1.0f /
                        std::sqrt(asFloat(read_lane(ins.src0, l))));
                break;
              case Opcode::Sin:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = asBits(
                        std::sin(asFloat(read_lane(ins.src0, l))));
                break;
              case Opcode::Cos:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = asBits(
                        std::cos(asFloat(read_lane(ins.src0, l))));
                break;
              case Opcode::Exp:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = asBits(
                        std::exp2(asFloat(read_lane(ins.src0, l))));
                break;
              case Opcode::Log:
                for (int l = 0; l < width; ++l) {
                    float v = asFloat(read_lane(ins.src0, l));
                    ctx.regs[ins.dst][l] =
                        asBits(v > 0.0f ? std::log2(v) : 0.0f);
                }
                break;
              case Opcode::Dp4:
                for (int l = 0; l < width; ++l) {
                    int base = l & ~3;
                    float acc = 0.0f;
                    for (int k = 0; k < 4; ++k) {
                        acc += asFloat(read_lane(ins.src0, base + k)) *
                            asFloat(read_lane(ins.src1, base + k));
                    }
                    ctx.regs[ins.dst][l] = asBits(acc);
                }
                break;
              case Opcode::Lrp:
                for (int l = 0; l < width; ++l) {
                    float t = asFloat(read_lane(ins.src0, l));
                    float a = asFloat(read_lane(ins.src1, l));
                    float b = asFloat(read_lane(ins.src2, l));
                    ctx.regs[ins.dst][l] =
                        asBits(t * a + (1.0f - t) * b);
                }
                break;
              case Opcode::Pln:
                for (int l = 0; l < width; ++l) {
                    float a = asFloat(read_lane(ins.src0, l));
                    float b = asFloat(read_lane(ins.src1, l));
                    float c = asFloat(read_lane(ins.src2, l));
                    ctx.regs[ins.dst][l] = asBits(a * b + c);
                }
                break;
              case Opcode::Send: {
                bool is_local = ins.send.space == AddrSpace::Local;
                for (int l = 0; l < width; ++l) {
                    uint64_t addr =
                        (uint64_t)ctx.regs[ins.send.addrReg][l] +
                        (int64_t)ins.send.offset;
                    if (is_local) {
                        uint64_t off = addr % (localMemBytes - 4);
                        if (ins.send.isWrite) {
                            uint32_t v = read_lane(ins.src0, l);
                            std::memcpy(ctx.local.data() + off, &v, 4);
                        } else {
                            uint32_t v;
                            std::memcpy(&v, ctx.local.data() + off, 4);
                            ctx.regs[ins.dst][l] = v;
                        }
                        continue;
                    }
                    if (ins.send.isWrite) {
                        uint32_t v = read_lane(ins.src0, l);
                        for (int b = 0; b < ins.send.bytesPerLane;
                             b += 4) {
                            memory.write32(addr + (uint64_t)b, v);
                        }
                    } else {
                        ctx.regs[ins.dst][l] = memory.read32(addr);
                    }
                    if (mem_access) {
                        mem_access(addr, ins.send.bytesPerLane,
                                   ins.send.isWrite);
                    }
                }
                break;
              }
              case Opcode::Jmpi:
                next_pc = (uint32_t)ins.target;
                break;
              case Opcode::Brc:
              case Opcode::Brnc: {
                bool cond;
                switch (ins.flagMode) {
                  case FlagMode::Lane0:
                    cond = ctx.flags[ins.flag][0];
                    break;
                  case FlagMode::Any: {
                    cond = false;
                    for (int l = 0; l < width; ++l)
                        cond = cond || ctx.flags[ins.flag][l];
                    break;
                  }
                  case FlagMode::All: {
                    cond = true;
                    for (int l = 0; l < width; ++l)
                        cond = cond && ctx.flags[ins.flag][l];
                    break;
                  }
                  default:
                    panic("invalid flag mode");
                }
                if (ins.op == Opcode::Brnc)
                    cond = !cond;
                if (cond)
                    next_pc = (uint32_t)ins.target;
                break;
              }
              case Opcode::Call:
                GT_ASSERT(ctx.callStack.size() < maxCallDepth,
                          bin.name, ": call stack overflow");
                ctx.callStack.push_back(pc + 1);
                next_pc = (uint32_t)ins.target;
                break;
              case Opcode::Ret:
                GT_ASSERT(!ctx.callStack.empty(),
                          bin.name, ": ret with empty call stack");
                next_pc = ctx.callStack.back();
                ctx.callStack.pop_back();
                break;
              case Opcode::Halt:
                terminated = true;
                break;
              case Opcode::ProfCount:
              case Opcode::ProfMem:
                prof_slot(ins) += ins.profArg;
                break;
              case Opcode::ProfAdd:
                prof_slot(ins) += read_lane(ins.src0, 0);
                break;
              case Opcode::ProfTimer: {
                double now = ctx.issueCycles;
                prof_slot(ins) +=
                    (uint64_t)(now - ctx.lastTimer);
                ctx.lastTimer = now;
                break;
              }
              default:
                panic(bin.name, ": unimplemented opcode ",
                      isa::opcodeName(ins.op));
            }
        };

        if (fast) {
            for (uint16_t i : p.relevantIdx[pc]) {
                exec(block.instrs[i]);
                if (terminated)
                    break;
            }
        } else {
            for (const auto &ins : block.instrs) {
                exec(ins);
                if (terminated)
                    break;
            }
        }

        if (terminated)
            break;
        GT_ASSERT(next_pc < bin.blocks.size(),
                  bin.name, ": fell off the end of the kernel");
        pc = next_pc;
    }

    return ctx.issueCycles;
}

} // namespace gt::gpu
