#include "gpu/executor.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/detailed_checkpoint.hh"

namespace gt::gpu
{

using isa::AddrSpace;
using isa::CmpOp;
using isa::FlagMode;
using isa::Instruction;
using isa::KernelBinary;
using isa::Opcode;
using isa::Operand;
using isa::Uop;
using isa::UopProgram;

namespace
{

/** Per-thread scratch local (shared) memory size. */
constexpr uint64_t localMemBytes = 16 * 1024;

/** Maximum subroutine call depth. */
constexpr size_t maxCallDepth = 64;

inline float
asFloat(uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

inline uint32_t
asBits(float value)
{
    return std::bit_cast<uint32_t>(value);
}

// Scalar semantics shared by the switch and uop backends. Both
// backends funnel every float operation through the same function so
// the compiler makes identical instruction-selection choices (fused
// multiply-add contraction in particular) and results stay bitwise
// equal between backends.

inline uint32_t
fAddBits(uint32_t a, uint32_t b)
{
    return asBits(asFloat(a) + asFloat(b));
}

inline uint32_t
fMulBits(uint32_t a, uint32_t b)
{
    return asBits(asFloat(a) * asFloat(b));
}

inline uint32_t
fMadBits(uint32_t a, uint32_t b, uint32_t c)
{
    return asBits(asFloat(a) * asFloat(b) + asFloat(c));
}

inline uint32_t
fDivBits(uint32_t a, uint32_t b)
{
    return asBits(asFloat(a) / asFloat(b));
}

inline uint32_t
frcBits(uint32_t a)
{
    float v = asFloat(a);
    return asBits(v - std::floor(v));
}

inline uint32_t
sqrtBits(uint32_t a)
{
    return asBits(std::sqrt(asFloat(a)));
}

inline uint32_t
rsqrtBits(uint32_t a)
{
    return asBits(1.0f / std::sqrt(asFloat(a)));
}

inline uint32_t
sinBits(uint32_t a)
{
    return asBits(std::sin(asFloat(a)));
}

inline uint32_t
cosBits(uint32_t a)
{
    return asBits(std::cos(asFloat(a)));
}

inline uint32_t
exp2Bits(uint32_t a)
{
    return asBits(std::exp2(asFloat(a)));
}

inline uint32_t
log2Bits(uint32_t a)
{
    float v = asFloat(a);
    return asBits(v > 0.0f ? std::log2(v) : 0.0f);
}

inline float
dp4Step(float acc, uint32_t a, uint32_t b)
{
    return acc + asFloat(a) * asFloat(b);
}

inline uint32_t
lrpBits(uint32_t t, uint32_t a, uint32_t b)
{
    float tf = asFloat(t);
    return asBits(tf * asFloat(a) + (1.0f - tf) * asFloat(b));
}

} // anonymous namespace

/** Architectural state of one hardware thread. */
struct Executor::ThreadCtx
{
    uint32_t regs[isa::numRegisters][isa::maxSimdWidth];
    uint8_t flags[isa::numFlags][isa::maxSimdWidth];
    std::vector<uint32_t> callStack;
    std::vector<uint8_t> local;
    double issueCycles = 0.0;
    double lastTimer = 0.0;
    uint64_t instrsExecuted = 0;

    ThreadCtx() : local(localMemBytes, 0) { callStack.reserve(8); }

    /**
     * Prepare the context for one thread. @p clear_regs is the number
     * of leading registers the plan proved may be read before being
     * written (everything else is dead state no instruction can
     * observe); @p clear_local is false when the kernel provably
     * never touches local memory, skipping the 16 KB fill.
     */
    void
    reset(const Dispatch &dispatch, uint64_t thread_idx,
          uint16_t clear_regs, bool clear_local)
    {
        if (clear_regs > 0)
            std::memset(regs, 0, sizeof(regs[0]) * clear_regs);
        std::memset(flags, 0, sizeof(flags));
        if (clear_local)
            std::fill(local.begin(), local.end(), 0);
        callStack.clear();
        issueCycles = 0.0;
        lastTimer = 0.0;
        instrsExecuted = 0;

        uint64_t base = thread_idx * dispatch.simdWidth;
        for (int lane = 0; lane < isa::maxSimdWidth; ++lane)
            regs[0][lane] = (uint32_t)(base + (uint64_t)lane);
        regs[1][0] = (uint32_t)thread_idx;
        regs[1][1] = (uint32_t)dispatch.globalSize;
        regs[1][2] = dispatch.simdWidth;
        for (size_t a = 0; a < dispatch.args.size(); ++a) {
            for (int lane = 0; lane < isa::maxSimdWidth; ++lane)
                regs[2 + a][lane] = dispatch.args[a];
        }
    }
};

namespace
{

/**
 * Interpreter state threaded through uop handlers. Holds raw views
 * into the ThreadCtx plus the control-transfer cell: `next` starts at
 * the superblock's defaultNext and transfer uops overwrite it
 * (last write wins, like the reference backend's next_pc).
 */
struct UopSt
{
    uint32_t (*regs)[isa::maxSimdWidth];
    uint8_t (*flags)[isa::maxSimdWidth];
    uint8_t *local;
    std::vector<uint32_t> *callStack;
    DeviceMemory *memory;
    const MemAccessFn *memAccess;
    MemTraceSink *memSink;
    uint64_t *deltas;
    size_t numDeltas;
    const KernelBinary *bin;
    double *issueCycles;
    double *lastTimer;
    uint32_t next;
    bool terminated;
};

/*
 * Uop handlers. Each is specialized at compile time on the operand
 * shapes its kind encodes, and on the dispatch style `Chain`:
 *
 *  - Chain = true (hot path): token-threaded dispatch. Every handler
 *    tail-calls the handler of the following uop, so executing a
 *    superblock is one indirect jump per uop with no dispatch loop;
 *    the chain ends when the superblock's stop sentinel (or a Halt)
 *    returns instead of chaining.
 *  - Chain = false (trace path): single-step. Each handler returns
 *    after its own uop so the caller can walk member basic blocks
 *    one at a time.
 */
using UopFn = const Uop *(*)(const Uop *, UopSt &);
using UopTable = std::array<UopFn, isa::numUopKinds>;

/** [0] = single-step handlers, [1] = threaded handlers. */
extern const UopTable uopTables[2];

/** Read a source field: an immediate baked at decode, or a register
 * lane. The imm/reg switch the reference backend pays per lane is a
 * compile-time branch here. */
template <bool Imm>
inline uint32_t
srcLane(uint32_t s, const UopSt &st, int lane)
{
    if constexpr (Imm)
        return s;
    else
        return st.regs[s][lane];
}

/**
 * Run @p body(lane) over the uop's lanes. The full-width case gets a
 * constant trip count, which is what lets the compiler vectorize the
 * specialized handler loops — per-lane results are bitwise identical
 * to the scalar loop (elementwise, no reassociation).
 */
template <class Body>
inline void
forLanes(int width, Body body)
{
    if (width == isa::maxSimdWidth) {
        for (int l = 0; l < isa::maxSimdWidth; ++l)
            body(l);
    } else {
        for (int l = 0; l < width; ++l)
            body(l);
    }
}

/** Continue to the next uop (threaded) or yield to the caller. */
template <bool Chain>
inline const Uop *
chainNext(const Uop *u, UopSt &st)
{
    if constexpr (Chain) {
        const Uop *n = u + 1;
        return uopTables[1][n->kind](n, st);
    } else {
        return nullptr;
    }
}

template <bool C, class F, bool I0>
const Uop *
uopUnary(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    forLanes(u.width, [&](int l) {
        d[l] = F::apply(srcLane<I0>(u.s0, st, l));
    });
    return chainNext<C>(up, st);
}

template <bool C, class F, bool I0, bool I1>
const Uop *
uopBinary(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    forLanes(u.width, [&](int l) {
        d[l] = F::apply(srcLane<I0>(u.s0, st, l),
                        srcLane<I1>(u.s1, st, l));
    });
    return chainNext<C>(up, st);
}

template <bool C, class F, bool I0, bool I1, bool I2>
const Uop *
uopTernary(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    forLanes(u.width, [&](int l) {
        d[l] = F::apply(srcLane<I0>(u.s0, st, l),
                        srcLane<I1>(u.s1, st, l),
                        srcLane<I2>(u.s2, st, l));
    });
    return chainNext<C>(up, st);
}

// Scalar functors. Integer ops are written out; float ops reuse the
// shared helpers above (bitwise parity with the switch backend).
struct OpMov { static uint32_t apply(uint32_t a) { return a; } };
struct OpNot { static uint32_t apply(uint32_t a) { return ~a; } };
struct OpFrc { static uint32_t apply(uint32_t a) { return frcBits(a); } };
struct OpSqrt { static uint32_t apply(uint32_t a) { return sqrtBits(a); } };
struct OpRsqrt { static uint32_t apply(uint32_t a) { return rsqrtBits(a); } };
struct OpSin { static uint32_t apply(uint32_t a) { return sinBits(a); } };
struct OpCos { static uint32_t apply(uint32_t a) { return cosBits(a); } };
struct OpExp { static uint32_t apply(uint32_t a) { return exp2Bits(a); } };
struct OpLog { static uint32_t apply(uint32_t a) { return log2Bits(a); } };

struct OpAnd { static uint32_t apply(uint32_t a, uint32_t b) { return a & b; } };
struct OpOr { static uint32_t apply(uint32_t a, uint32_t b) { return a | b; } };
struct OpXor { static uint32_t apply(uint32_t a, uint32_t b) { return a ^ b; } };
struct OpShl { static uint32_t apply(uint32_t a, uint32_t b) { return a << (b & 31); } };
struct OpShr { static uint32_t apply(uint32_t a, uint32_t b) { return a >> (b & 31); } };
struct OpAsr
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        return (uint32_t)((int32_t)a >> (b & 31));
    }
};
struct OpAdd { static uint32_t apply(uint32_t a, uint32_t b) { return a + b; } };
struct OpSub { static uint32_t apply(uint32_t a, uint32_t b) { return a - b; } };
struct OpMul { static uint32_t apply(uint32_t a, uint32_t b) { return a * b; } };
struct OpMin
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        int32_t sa = (int32_t)a, sb = (int32_t)b;
        return (uint32_t)(sa < sb ? sa : sb);
    }
};
struct OpMax
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        int32_t sa = (int32_t)a, sb = (int32_t)b;
        return (uint32_t)(sa > sb ? sa : sb);
    }
};
struct OpAvg
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        return (uint32_t)(((uint64_t)a + (uint64_t)b + 1) >> 1);
    }
};
struct OpFAdd { static uint32_t apply(uint32_t a, uint32_t b) { return fAddBits(a, b); } };
struct OpFMul { static uint32_t apply(uint32_t a, uint32_t b) { return fMulBits(a, b); } };
struct OpFDiv { static uint32_t apply(uint32_t a, uint32_t b) { return fDivBits(a, b); } };

struct OpMad
{
    static uint32_t
    apply(uint32_t a, uint32_t b, uint32_t c)
    {
        return a * b + c;
    }
};
struct OpFMad
{
    static uint32_t
    apply(uint32_t a, uint32_t b, uint32_t c)
    {
        return fMadBits(a, b, c);
    }
};
struct OpLrp
{
    static uint32_t
    apply(uint32_t t, uint32_t a, uint32_t b)
    {
        return lrpBits(t, a, b);
    }
};
struct OpPln
{
    static uint32_t
    apply(uint32_t a, uint32_t b, uint32_t c)
    {
        return fMadBits(a, b, c);
    }
};

template <bool C, bool I0, bool I1>
const Uop *
uopSel(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    const uint8_t *f = st.flags[u.flag];
    forLanes(u.width, [&](int l) {
        d[l] = f[l] ? srcLane<I0>(u.s0, st, l)
                    : srcLane<I1>(u.s1, st, l);
    });
    return chainNext<C>(up, st);
}

template <bool C, CmpOp Op, bool I0, bool I1>
const Uop *
uopCmp(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint8_t *f = st.flags[u.flag];
    forLanes(u.width, [&](int l) {
        f[l] = isa::evalCmp(Op, srcLane<I0>(u.s0, st, l),
                            srcLane<I1>(u.s1, st, l));
    });
    return chainNext<C>(up, st);
}

template <bool C, bool I0, bool I1>
const Uop *
uopDp4(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    for (int l = 0; l < u.width; ++l) {
        int base = l & ~3;
        float acc = 0.0f;
        for (int k = 0; k < 4; ++k) {
            acc = dp4Step(acc, srcLane<I0>(u.s0, st, base + k),
                          srcLane<I1>(u.s1, st, base + k));
        }
        d[l] = asBits(acc);
    }
    return chainNext<C>(up, st);
}

template <bool C, bool IsWrite, bool IsLocal, bool I0>
const Uop *
uopSend(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    const uint32_t *addr_reg = st.regs[u.s1];
    const int64_t offset = (int64_t)(int32_t)u.aux;
    const uint32_t bytes = u.aux16;
    for (int l = 0; l < u.width; ++l) {
        uint64_t addr = (uint64_t)addr_reg[l] + offset;
        if constexpr (IsLocal) {
            uint64_t off = addr % (localMemBytes - 4);
            if constexpr (IsWrite) {
                uint32_t v = srcLane<I0>(u.s0, st, l);
                std::memcpy(st.local + off, &v, 4);
            } else {
                uint32_t v;
                std::memcpy(&v, st.local + off, 4);
                st.regs[u.dst][l] = v;
            }
        } else {
            if constexpr (IsWrite) {
                uint32_t v = srcLane<I0>(u.s0, st, l);
                for (uint32_t b = 0; b < bytes; b += 4)
                    st.memory->write32(addr + b, v);
            } else {
                st.regs[u.dst][l] = st.memory->read32(addr);
            }
            // Trace delivery: batched SoA append (hot default) or the
            // per-access callback oracle. Local sends never reach the
            // trace in either mode.
            if (st.memSink)
                st.memSink->append(addr, bytes, IsWrite);
            else if (st.memAccess)
                (*st.memAccess)(addr, bytes, IsWrite);
        }
    }
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopJmp(const Uop *up, UopSt &st)
{
    st.next = up->aux;
    return chainNext<C>(up, st);
}

template <bool C, bool Negate, FlagMode M>
const Uop *
uopBranch(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    const uint8_t *f = st.flags[u.flag];
    bool cond;
    if constexpr (M == FlagMode::Lane0) {
        cond = f[0];
    } else if constexpr (M == FlagMode::Any) {
        cond = false;
        for (int l = 0; l < u.width; ++l)
            cond = cond || f[l];
    } else {
        cond = true;
        for (int l = 0; l < u.width; ++l)
            cond = cond && f[l];
    }
    if constexpr (Negate)
        cond = !cond;
    if (cond)
        st.next = u.aux;
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopCall(const Uop *up, UopSt &st)
{
    GT_ASSERT(st.callStack->size() < maxCallDepth,
              st.bin->name, ": call stack overflow");
    st.callStack->push_back(up->aux2);
    st.next = up->aux;
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopRet(const Uop *up, UopSt &st)
{
    GT_ASSERT(!st.callStack->empty(),
              st.bin->name, ": ret with empty call stack");
    st.next = st.callStack->back();
    st.callStack->pop_back();
    return chainNext<C>(up, st);
}

const Uop *
uopHalt(const Uop *, UopSt &st)
{
    st.terminated = true;
    return nullptr;
}

const Uop *
uopDoStop(const Uop *, UopSt &)
{
    return nullptr;
}

inline uint64_t &
uopProfSlot(const Uop &u, UopSt &st)
{
    GT_ASSERT(st.numDeltas != 0,
              st.bin->name, ": instrumented binary executed without "
              "a trace buffer");
    GT_ASSERT(u.aux < st.numDeltas,
              st.bin->name, ": trace slot out of range");
    return st.deltas[u.aux];
}

template <bool C>
const Uop *
uopProfCount(const Uop *up, UopSt &st)
{
    uopProfSlot(*up, st) += up->aux2;
    return chainNext<C>(up, st);
}

template <bool C, bool I0>
const Uop *
uopProfAdd(const Uop *up, UopSt &st)
{
    uopProfSlot(*up, st) += srcLane<I0>(up->s0, st, 0);
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopProfTimer(const Uop *up, UopSt &st)
{
    double now = *st.issueCycles;
    uopProfSlot(*up, st) += (uint64_t)(now - *st.lastTimer);
    *st.lastTimer = now;
    return chainNext<C>(up, st);
}

// Trap handlers reproduce the reference backend's panics, firing only
// when a malformed instruction is actually executed.
const Uop *
uopDoTrapAbsent(const Uop *, UopSt &st)
{
    panic(st.bin->name, ": read of absent operand");
}

const Uop *
uopDoTrapBadOpcode(const Uop *up, UopSt &st)
{
    panic(st.bin->name, ": unimplemented opcode ",
          isa::opcodeName((Opcode)up->aux));
}

const Uop *
uopDoTrapBadFlagMode(const Uop *, UopSt &)
{
    panic("invalid flag mode");
}

const Uop *
uopUnregistered(const Uop *up, UopSt &st)
{
    panic(st.bin->name, ": uop kind ", up->kind, " has no handler");
}

template <bool C, class F>
void
regUnary(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopUnary<C, F, false>;
    t[isa::uopKind(op, 1)] = &uopUnary<C, F, true>;
}

template <bool C, class F>
void
regBinary(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopBinary<C, F, false, false>;
    t[isa::uopKind(op, 1)] = &uopBinary<C, F, true, false>;
    t[isa::uopKind(op, 2)] = &uopBinary<C, F, false, true>;
    t[isa::uopKind(op, 3)] = &uopBinary<C, F, true, true>;
}

template <bool C, class F>
void
regTernary(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopTernary<C, F, false, false, false>;
    t[isa::uopKind(op, 1)] = &uopTernary<C, F, true, false, false>;
    t[isa::uopKind(op, 2)] = &uopTernary<C, F, false, true, false>;
    t[isa::uopKind(op, 3)] = &uopTernary<C, F, true, true, false>;
    t[isa::uopKind(op, 4)] = &uopTernary<C, F, false, false, true>;
    t[isa::uopKind(op, 5)] = &uopTernary<C, F, true, false, true>;
    t[isa::uopKind(op, 6)] = &uopTernary<C, F, false, true, true>;
    t[isa::uopKind(op, 7)] = &uopTernary<C, F, true, true, true>;
}

template <bool C, CmpOp Op>
void
regCmp(UopTable &t)
{
    const int base = (int)Op << 2;
    t[isa::uopKind(Opcode::Cmp, base | 0)] = &uopCmp<C, Op, false, false>;
    t[isa::uopKind(Opcode::Cmp, base | 1)] = &uopCmp<C, Op, true, false>;
    t[isa::uopKind(Opcode::Cmp, base | 2)] = &uopCmp<C, Op, false, true>;
    t[isa::uopKind(Opcode::Cmp, base | 3)] = &uopCmp<C, Op, true, true>;
}

template <bool C, bool Negate>
void
regBranch(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopBranch<C, Negate, FlagMode::Lane0>;
    t[isa::uopKind(op, 1)] = &uopBranch<C, Negate, FlagMode::Any>;
    t[isa::uopKind(op, 2)] = &uopBranch<C, Negate, FlagMode::All>;
}

template <bool C>
UopTable
buildTable()
{
    UopTable t;
    t.fill(&uopUnregistered);

    regUnary<C, OpMov>(t, Opcode::Mov);
    regUnary<C, OpNot>(t, Opcode::Not);
    regUnary<C, OpFrc>(t, Opcode::Frc);
    regUnary<C, OpSqrt>(t, Opcode::Sqrt);
    regUnary<C, OpRsqrt>(t, Opcode::Rsqrt);
    regUnary<C, OpSin>(t, Opcode::Sin);
    regUnary<C, OpCos>(t, Opcode::Cos);
    regUnary<C, OpExp>(t, Opcode::Exp);
    regUnary<C, OpLog>(t, Opcode::Log);

    regBinary<C, OpAnd>(t, Opcode::And);
    regBinary<C, OpOr>(t, Opcode::Or);
    regBinary<C, OpXor>(t, Opcode::Xor);
    regBinary<C, OpShl>(t, Opcode::Shl);
    regBinary<C, OpShr>(t, Opcode::Shr);
    regBinary<C, OpAsr>(t, Opcode::Asr);
    regBinary<C, OpAdd>(t, Opcode::Add);
    regBinary<C, OpSub>(t, Opcode::Sub);
    regBinary<C, OpMul>(t, Opcode::Mul);
    regBinary<C, OpMin>(t, Opcode::Min);
    regBinary<C, OpMax>(t, Opcode::Max);
    regBinary<C, OpAvg>(t, Opcode::Avg);
    regBinary<C, OpFAdd>(t, Opcode::FAdd);
    regBinary<C, OpFMul>(t, Opcode::FMul);
    regBinary<C, OpFDiv>(t, Opcode::FDiv);

    regTernary<C, OpMad>(t, Opcode::Mad);
    regTernary<C, OpFMad>(t, Opcode::FMad);
    regTernary<C, OpLrp>(t, Opcode::Lrp);
    regTernary<C, OpPln>(t, Opcode::Pln);

    t[isa::uopKind(Opcode::Sel, 0)] = &uopSel<C, false, false>;
    t[isa::uopKind(Opcode::Sel, 1)] = &uopSel<C, true, false>;
    t[isa::uopKind(Opcode::Sel, 2)] = &uopSel<C, false, true>;
    t[isa::uopKind(Opcode::Sel, 3)] = &uopSel<C, true, true>;

    regCmp<C, CmpOp::Eq>(t);
    regCmp<C, CmpOp::Ne>(t);
    regCmp<C, CmpOp::Lt>(t);
    regCmp<C, CmpOp::Le>(t);
    regCmp<C, CmpOp::Gt>(t);
    regCmp<C, CmpOp::Ge>(t);

    t[isa::uopKind(Opcode::Dp4, 0)] = &uopDp4<C, false, false>;
    t[isa::uopKind(Opcode::Dp4, 1)] = &uopDp4<C, true, false>;
    t[isa::uopKind(Opcode::Dp4, 2)] = &uopDp4<C, false, true>;
    t[isa::uopKind(Opcode::Dp4, 3)] = &uopDp4<C, true, true>;

    // Send sub bits: isWrite | isLocal<<1 | (store data imm)<<2.
    t[isa::uopKind(Opcode::Send, 0)] = &uopSend<C, false, false, false>;
    t[isa::uopKind(Opcode::Send, 1)] = &uopSend<C, true, false, false>;
    t[isa::uopKind(Opcode::Send, 2)] = &uopSend<C, false, true, false>;
    t[isa::uopKind(Opcode::Send, 3)] = &uopSend<C, true, true, false>;
    t[isa::uopKind(Opcode::Send, 5)] = &uopSend<C, true, false, true>;
    t[isa::uopKind(Opcode::Send, 7)] = &uopSend<C, true, true, true>;

    t[isa::uopKind(Opcode::Jmpi, 0)] = &uopJmp<C>;
    regBranch<C, false>(t, Opcode::Brc);
    regBranch<C, true>(t, Opcode::Brnc);
    t[isa::uopKind(Opcode::Call, 0)] = &uopCall<C>;
    t[isa::uopKind(Opcode::Ret, 0)] = &uopRet<C>;
    t[isa::uopKind(Opcode::Halt, 0)] = &uopHalt;

    t[isa::uopKind(Opcode::ProfCount, 0)] = &uopProfCount<C>;
    t[isa::uopKind(Opcode::ProfMem, 0)] = &uopProfCount<C>;
    t[isa::uopKind(Opcode::ProfAdd, 0)] = &uopProfAdd<C, false>;
    t[isa::uopKind(Opcode::ProfAdd, 1)] = &uopProfAdd<C, true>;
    t[isa::uopKind(Opcode::ProfTimer, 0)] = &uopProfTimer<C>;

    t[isa::uopTrapAbsentOperand] = &uopDoTrapAbsent;
    t[isa::uopTrapBadOpcode] = &uopDoTrapBadOpcode;
    t[isa::uopTrapBadFlagMode] = &uopDoTrapBadFlagMode;
    t[isa::uopStop] = &uopDoStop;
    return t;
}

const UopTable uopTables[2] = {buildTable<false>(), buildTable<true>()};

} // anonymous namespace

Executor::Executor(const DeviceConfig &config_, DeviceMemory &memory_)
    : config(config_), memory(memory_), backendSel(defaultBackend())
{
}

Executor::~Executor() = default;

Executor::Backend
Executor::defaultBackend()
{
    static const Backend selected = [] {
        Backend b = Backend::Uops;
        if (const char *env = std::getenv("GT_INTERP");
            env && *env != '\0') {
            std::string value(env);
            if (value == "switch") {
                b = Backend::Switch;
            } else if (value != "uops") {
                warn("ignoring invalid GT_INTERP value '", value,
                     "' (expected 'switch' or 'uops')");
            }
        }
        inform("executor: ", backendName(b), " interpreter backend "
               "(override with GT_INTERP=switch|uops)");
        return b;
    }();
    return selected;
}

const char *
Executor::backendName(Backend b)
{
    return b == Backend::Switch ? "switch" : "uops";
}

const Executor::Plan &
Executor::plan(const KernelBinary *bin)
{
    auto it = plans.find(bin);
    if (it != plans.end()) {
        const Plan &cached = it->second;
        if (cached.generation == bin->generation &&
            cached.numBlocks == bin->blocks.size() &&
            cached.numInstrs == bin->staticInstrCount()) {
            return cached;
        }
        // A different binary now lives at this address.
        plans.erase(it);
    }

    Plan p;
    p.generation = bin->generation;
    p.numBlocks = bin->blocks.size();
    p.numInstrs = bin->staticInstrCount();
    p.rel = isa::analyzeRelevance(*bin);
    p.prog = isa::decodeUops(*bin, p.rel);
    p.blockCycles.resize(bin->blocks.size());
    p.blockInstrs.resize(bin->blocks.size());
    p.relevantIdx.resize(bin->blocks.size());
    uint16_t max_read = 0;
    bool any_read = false;
    for (const auto &block : bin->blocks) {
        double cycles = 0.0;
        for (const auto &ins : block.instrs) {
            cycles += issueCycles(ins, config.fpuLanesPerEu);
            auto note_read = [&](uint16_t reg) {
                if (reg < isa::numRegisters) {
                    any_read = true;
                    max_read = std::max(max_read, reg);
                }
            };
            for (const Operand *o : {&ins.src0, &ins.src1, &ins.src2}) {
                if (o->isReg())
                    note_read(o->reg);
            }
            if (ins.op == Opcode::Send) {
                note_read(ins.send.addrReg);
                p.usesLocal = p.usesLocal ||
                    ins.send.space == AddrSpace::Local;
            }
        }
        p.blockCycles[block.id] = cycles;
        p.blockInstrs[block.id] = block.instrs.size();
        auto &idx = p.relevantIdx[block.id];
        for (uint16_t i = 0; i < block.instrs.size(); ++i) {
            if (p.rel.relevant[block.id][i])
                idx.push_back(i);
        }
    }
    p.clearRegs = any_read ? (uint16_t)(max_read + 1) : (uint16_t)0;
    p.memberCycles.resize(p.prog.members.size());
    for (size_t i = 0; i < p.prog.members.size(); ++i)
        p.memberCycles[i] = p.blockCycles[p.prog.members[i]];
    return plans.emplace(bin, std::move(p)).first->second;
}

const isa::Relevance &
Executor::relevance(const KernelBinary *bin)
{
    return plan(bin).rel;
}

ExecProfile
Executor::run(const Dispatch &dispatch, Mode mode, TraceBuffer *trace,
              const MemAccessFn &mem_access, const MemBatchFn &mem_batch)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    GT_ASSERT(!(mem_access && mem_batch),
              "per-access and batched trace delivery are exclusive");
    GT_ASSERT(dispatch.globalSize > 0, "dispatch with empty ND-range");
    GT_ASSERT(dispatch.simdWidth == 8 || dispatch.simdWidth == 16,
              "dispatch SIMD width must be 8 or 16");
    GT_ASSERT(dispatch.args.size() >= dispatch.binary->numArgs,
              dispatch.binary->name, ": expected ",
              dispatch.binary->numArgs, " args, got ",
              dispatch.args.size());

    const KernelBinary &bin = *dispatch.binary;
    const Plan &p = plan(&bin);

    bool fast = mode == Mode::Fast;
    if (fast && (p.rel.needsFullExec || mem_access || mem_batch))
        fast = false;

    uint64_t num_threads = dispatch.numThreads();

    ExecProfile profile;
    profile.numThreads = num_threads;
    profile.blockCounts.assign(bin.blocks.size(), 0);

    std::vector<uint64_t> trace_deltas(trace ? trace->size() : 0, 0);

    if (!ctxBuf)
        ctxBuf = std::make_unique<ThreadCtx>();
    ThreadCtx &ctx = *ctxBuf;

    const bool uops = backendSel == Backend::Uops;
    scratchCounts.assign(
        uops ? p.prog.supers.size() : bin.blocks.size(), 0);
    scratchDeltas.assign(trace_deltas.size(), 0);

    MemTraceSink *sink = nullptr;
    if (mem_batch) {
        memSink.begin(&mem_batch, memTraceChunk);
        sink = &memSink;
    }

    auto run_scaled = [&](uint64_t thread_idx, uint64_t weight) {
        std::fill(scratchCounts.begin(), scratchCounts.end(), 0);
        std::fill(scratchDeltas.begin(), scratchDeltas.end(), 0);
        double cycles = uops
            ? runThreadUops(dispatch, thread_idx, fast, p, ctx,
                            scratchCounts, scratchDeltas, mem_access,
                            sink)
            : runThread(dispatch, thread_idx, fast, p, ctx,
                        scratchCounts, scratchDeltas, mem_access,
                        sink);
        if (uops) {
            // One count per superblock entry; expand over members to
            // recover exact per-block counts.
            for (size_t s = 0; s < scratchCounts.size(); ++s) {
                uint64_t c = scratchCounts[s];
                if (c == 0)
                    continue;
                const auto &sb = p.prog.supers[s];
                for (uint32_t j = 0; j < sb.memberCount; ++j) {
                    uint32_t b = p.prog.members[sb.memberBegin + j];
                    profile.blockCounts[b] += c * weight;
                }
            }
        } else {
            for (size_t b = 0; b < scratchCounts.size(); ++b)
                profile.blockCounts[b] += scratchCounts[b] * weight;
        }
        for (size_t s = 0; s < scratchDeltas.size(); ++s)
            trace_deltas[s] += scratchDeltas[s] * (uint64_t)weight;
        profile.threadCycles += cycles * (double)weight;
    };

    if (fast && !p.rel.threadDependent) {
        // Every thread behaves identically: run one, scale exactly.
        run_scaled(0, num_threads);
    } else if (fast && num_threads > maxExplicitThreads) {
        // Thread-dependent control at large scale: run a stratified
        // sample; each sampled thread stands for its stratum so the
        // weights cover every thread. The in-stratum position is
        // drawn from a deterministic hash — a fixed stride can alias
        // with the kernel's own thread-id arithmetic.
        uint64_t samples = maxExplicitThreads;
        uint64_t mix_state = 0x9e3779b97f4a7c15ULL;
        for (uint64_t i = 0; i < samples; ++i) {
            uint64_t begin = i * num_threads / samples;
            uint64_t end = (i + 1) * num_threads / samples;
            uint64_t pick = begin + splitmix64(mix_state) %
                                        (end - begin);
            run_scaled(pick, end - begin);
        }
    } else {
        for (uint64_t t = 0; t < num_threads; ++t)
            run_scaled(t, 1);
    }

    if (sink)
        sink->finish();

    profile.deriveFromBlocks(bin);

    if (trace) {
        for (size_t s = 0; s < trace_deltas.size(); ++s) {
            if (trace_deltas[s])
                trace->add((uint32_t)s, trace_deltas[s]);
        }
    }
    return profile;
}

std::vector<uint32_t>
Executor::blockTrace(const Dispatch &dispatch, uint64_t thread_idx,
                     uint64_t max_len)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    const Plan &p = plan(dispatch.binary);
    bool fast = !p.rel.needsFullExec;
    if (!ctxBuf)
        ctxBuf = std::make_unique<ThreadCtx>();
    const bool uops = backendSel == Backend::Uops;
    std::vector<uint64_t> counts(
        uops ? p.prog.supers.size() : dispatch.binary->blocks.size(),
        0);
    // Size a scratch delta vector so instrumented binaries can also
    // be traced (their prof ops still execute).
    uint32_t max_slot = 0;
    for (const auto &block : dispatch.binary->blocks) {
        for (const auto &ins : block.instrs) {
            if (ins.cls() == isa::OpClass::Instrumentation)
                max_slot = std::max(max_slot, ins.profSlot + 1);
        }
    }
    std::vector<uint64_t> deltas(max_slot, 0);
    std::vector<uint32_t> trace;
    if (uops) {
        runThreadUops(dispatch, thread_idx, fast, p, *ctxBuf, counts,
                      deltas, {}, nullptr, &trace, max_len);
    } else {
        runThread(dispatch, thread_idx, fast, p, *ctxBuf, counts,
                  deltas, {}, nullptr, &trace, max_len);
    }
    return trace;
}

DetailedCheckpoint
Executor::checkpoint(const Dispatch &dispatch, uint64_t trace_cap)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    const KernelBinary &bin = *dispatch.binary;

    // Same order as the pre-refactor DetailedSimulator::simulate():
    // the representative thread's control-flow trace, then the
    // Fast-mode profile for scaling/normalization.
    DetailedCheckpoint cp;
    cp.binary = dispatch.binary;
    cp.trace = blockTrace(dispatch, 0, trace_cap);
    GT_ASSERT(!cp.trace.empty(), bin.name, ": empty block trace");
    ExecProfile profile = run(dispatch, Mode::Fast);

    cp.tracedInstrs = 0;
    for (uint32_t b : cp.trace)
        cp.tracedInstrs += bin.blocks[b].instrs.size();
    cp.numThreads = profile.numThreads;
    cp.dynInstrs = profile.dynInstrs;
    cp.perThreadInstrs =
        (double)(profile.dynInstrs + profile.instrumentationInstrs) /
        (double)profile.numThreads;
    // If the trace was truncated by the recording cap, the machine
    // layer scales the simulated cycles up by the untraced remainder.
    cp.truncation = std::max(
        1.0, cp.perThreadInstrs / (double)cp.tracedInstrs);
    return cp;
}

double
Executor::runThreadUops(const Dispatch &dispatch, uint64_t thread_idx,
                        bool fast, const Plan &p, ThreadCtx &ctx,
                        std::vector<uint64_t> &sb_counts,
                        std::vector<uint64_t> &trace_deltas,
                        const MemAccessFn &mem_access,
                        MemTraceSink *mem_sink,
                        std::vector<uint32_t> *block_trace,
                        uint64_t trace_max_len)
{
    const KernelBinary &bin = *dispatch.binary;
    const UopProgram &prog = p.prog;
    ctx.reset(dispatch, thread_idx, p.clearRegs, p.usesLocal);

    UopSt st;
    st.regs = ctx.regs;
    st.flags = ctx.flags;
    st.local = ctx.local.data();
    st.callStack = &ctx.callStack;
    st.memory = &memory;
    st.memAccess = mem_access ? &mem_access : nullptr;
    st.memSink = mem_sink;
    st.deltas = trace_deltas.data();
    st.numDeltas = trace_deltas.size();
    st.bin = &bin;
    st.issueCycles = &ctx.issueCycles;
    st.lastTimer = &ctx.lastTimer;
    st.next = 0;
    st.terminated = false;

    const Uop *stream = fast ? prog.fastUops.data() : prog.uops.data();

    uint32_t cur = prog.superOf[0];

    if (block_trace) {
        // Trace path: step member by member so the recorded block
        // sequence and its truncation point match the reference
        // backend exactly.
        const uint32_t *member_end = fast
            ? prog.memberFastUopEnd.data()
            : prog.memberUopEnd.data();
        while (true) {
            const UopProgram::Superblock &sb = prog.supers[cur];
            ++sb_counts[cur];
            st.next = sb.defaultNext;
            uint32_t off = fast ? sb.firstFastUop : sb.firstUop;
            for (uint32_t j = 0; j < sb.memberCount; ++j) {
                if (block_trace->size() >= trace_max_len)
                    return ctx.issueCycles;
                uint32_t m = prog.members[sb.memberBegin + j];
                block_trace->push_back(m);
                ctx.issueCycles += p.blockCycles[m];
                ctx.instrsExecuted += p.blockInstrs[m];
                if (ctx.instrsExecuted > threadInstrLimit) {
                    panic(bin.name, ": thread ", thread_idx,
                          " exceeded the ", threadInstrLimit,
                          "-instruction runaway limit");
                }
                uint32_t end = member_end[sb.memberBegin + j];
                for (uint32_t k = off; k < end; ++k) {
                    uopTables[0][stream[k].kind](stream + k, st);
                    if (st.terminated)
                        return ctx.issueCycles;
                }
                off = end;
            }
            GT_ASSERT(st.next != UopProgram::invalidSuper,
                      bin.name, ": fell off the end of the kernel");
            cur = st.next;
        }
    }

    while (true) {
        const UopProgram::Superblock &sb = prog.supers[cur];
        ++sb_counts[cur];
        // Accrue cycles member by member: issue cycles are doubles
        // and the reference backend adds them one block at a time, so
        // a presummed superblock total could round differently.
        const double *mc = p.memberCycles.data() + sb.memberBegin;
        for (uint32_t j = 0; j < sb.memberCount; ++j)
            ctx.issueCycles += mc[j];
        ctx.instrsExecuted += sb.instrs;
        if (ctx.instrsExecuted > threadInstrLimit) {
            panic(bin.name, ": thread ", thread_idx, " exceeded the ",
                  threadInstrLimit, "-instruction runaway limit");
        }

        st.next = sb.defaultNext;
        // Threaded dispatch: the head handler tail-calls the next
        // handler until the superblock's stop sentinel (or a Halt)
        // breaks the chain, so the whole run is one indirect jump per
        // uop with no dispatch loop. The sentinel follows even an
        // empty fast slice, so the chain always terminates.
        const Uop *u = stream + (fast ? sb.firstFastUop : sb.firstUop);
        uopTables[1][u->kind](u, st);
        if (st.terminated)
            return ctx.issueCycles;
        GT_ASSERT(st.next != UopProgram::invalidSuper,
                  bin.name, ": fell off the end of the kernel");
        cur = st.next;
    }
}

double
Executor::runThread(const Dispatch &dispatch, uint64_t thread_idx,
                    bool fast, const Plan &p, ThreadCtx &ctx,
                    std::vector<uint64_t> &block_counts,
                    std::vector<uint64_t> &trace_deltas,
                    const MemAccessFn &mem_access,
                    MemTraceSink *mem_sink,
                    std::vector<uint32_t> *block_trace,
                    uint64_t trace_max_len)
{
    const KernelBinary &bin = *dispatch.binary;
    ctx.reset(dispatch, thread_idx, p.clearRegs, p.usesLocal);

    auto read_lane = [&](const Operand &opnd, int lane) -> uint32_t {
        switch (opnd.kind) {
          case Operand::Kind::Imm:
            return opnd.imm;
          case Operand::Kind::Reg:
            return ctx.regs[opnd.reg][lane];
          default:
            panic(bin.name, ": read of absent operand");
        }
    };

    auto prof_slot = [&](const Instruction &ins) -> uint64_t & {
        GT_ASSERT(!trace_deltas.empty(),
                  bin.name, ": instrumented binary executed without "
                  "a trace buffer");
        GT_ASSERT(ins.profSlot < trace_deltas.size(),
                  bin.name, ": trace slot out of range");
        return trace_deltas[ins.profSlot];
    };

    uint32_t pc = 0;
    bool running = true;
    while (running) {
        const isa::BasicBlock &block = bin.blocks[pc];
        if (block_trace) {
            if (block_trace->size() >= trace_max_len)
                break;
            block_trace->push_back(pc);
        }
        ++block_counts[pc];
        ctx.issueCycles += p.blockCycles[pc];
        ctx.instrsExecuted += p.blockInstrs[pc];
        if (ctx.instrsExecuted > threadInstrLimit) {
            panic(bin.name, ": thread ", thread_idx, " exceeded the ",
                  threadInstrLimit, "-instruction runaway limit");
        }

        uint32_t next_pc = pc + 1;
        bool terminated = false;

        auto exec = [&](const Instruction &ins) {
            int width = ins.simdWidth;
            switch (ins.op) {
              case Opcode::Mov:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l);
                break;
              case Opcode::Sel:
                for (int l = 0; l < width; ++l) {
                    ctx.regs[ins.dst][l] = ctx.flags[ins.flag][l]
                        ? read_lane(ins.src0, l)
                        : read_lane(ins.src1, l);
                }
                break;
              case Opcode::And:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) & read_lane(ins.src1, l);
                break;
              case Opcode::Or:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) | read_lane(ins.src1, l);
                break;
              case Opcode::Xor:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) ^ read_lane(ins.src1, l);
                break;
              case Opcode::Not:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = ~read_lane(ins.src0, l);
                break;
              case Opcode::Shl:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l)
                        << (read_lane(ins.src1, l) & 31);
                break;
              case Opcode::Shr:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l) >>
                        (read_lane(ins.src1, l) & 31);
                break;
              case Opcode::Asr:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = (uint32_t)(
                        (int32_t)read_lane(ins.src0, l) >>
                        (read_lane(ins.src1, l) & 31));
                break;
              case Opcode::Cmp:
                for (int l = 0; l < width; ++l) {
                    ctx.flags[ins.flag][l] =
                        isa::evalCmp(ins.cmpOp, read_lane(ins.src0, l),
                                     read_lane(ins.src1, l));
                }
                break;
              case Opcode::Add:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) + read_lane(ins.src1, l);
                break;
              case Opcode::Sub:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) - read_lane(ins.src1, l);
                break;
              case Opcode::Mul:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) * read_lane(ins.src1, l);
                break;
              case Opcode::Mad:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) * read_lane(ins.src1, l)
                        + read_lane(ins.src2, l);
                break;
              case Opcode::Min:
                for (int l = 0; l < width; ++l) {
                    int32_t a = (int32_t)read_lane(ins.src0, l);
                    int32_t b = (int32_t)read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)(a < b ? a : b);
                }
                break;
              case Opcode::Max:
                for (int l = 0; l < width; ++l) {
                    int32_t a = (int32_t)read_lane(ins.src0, l);
                    int32_t b = (int32_t)read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)(a > b ? a : b);
                }
                break;
              case Opcode::Avg:
                for (int l = 0; l < width; ++l) {
                    uint64_t a = read_lane(ins.src0, l);
                    uint64_t b = read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)((a + b + 1) >> 1);
                }
                break;
              case Opcode::FAdd:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fAddBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l));
                break;
              case Opcode::FMul:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fMulBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l));
                break;
              case Opcode::FMad:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fMadBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l),
                                 read_lane(ins.src2, l));
                break;
              case Opcode::FDiv:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fDivBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l));
                break;
              case Opcode::Frc:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        frcBits(read_lane(ins.src0, l));
                break;
              case Opcode::Sqrt:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        sqrtBits(read_lane(ins.src0, l));
                break;
              case Opcode::Rsqrt:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        rsqrtBits(read_lane(ins.src0, l));
                break;
              case Opcode::Sin:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        sinBits(read_lane(ins.src0, l));
                break;
              case Opcode::Cos:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        cosBits(read_lane(ins.src0, l));
                break;
              case Opcode::Exp:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        exp2Bits(read_lane(ins.src0, l));
                break;
              case Opcode::Log:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        log2Bits(read_lane(ins.src0, l));
                break;
              case Opcode::Dp4:
                for (int l = 0; l < width; ++l) {
                    int base = l & ~3;
                    float acc = 0.0f;
                    for (int k = 0; k < 4; ++k) {
                        acc = dp4Step(acc,
                                      read_lane(ins.src0, base + k),
                                      read_lane(ins.src1, base + k));
                    }
                    ctx.regs[ins.dst][l] = asBits(acc);
                }
                break;
              case Opcode::Lrp:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        lrpBits(read_lane(ins.src0, l),
                                read_lane(ins.src1, l),
                                read_lane(ins.src2, l));
                break;
              case Opcode::Pln:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fMadBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l),
                                 read_lane(ins.src2, l));
                break;
              case Opcode::Send: {
                bool is_local = ins.send.space == AddrSpace::Local;
                for (int l = 0; l < width; ++l) {
                    uint64_t addr =
                        (uint64_t)ctx.regs[ins.send.addrReg][l] +
                        (int64_t)ins.send.offset;
                    if (is_local) {
                        uint64_t off = addr % (localMemBytes - 4);
                        if (ins.send.isWrite) {
                            uint32_t v = read_lane(ins.src0, l);
                            std::memcpy(ctx.local.data() + off, &v, 4);
                        } else {
                            uint32_t v;
                            std::memcpy(&v, ctx.local.data() + off, 4);
                            ctx.regs[ins.dst][l] = v;
                        }
                        continue;
                    }
                    if (ins.send.isWrite) {
                        uint32_t v = read_lane(ins.src0, l);
                        for (int b = 0; b < ins.send.bytesPerLane;
                             b += 4) {
                            memory.write32(addr + (uint64_t)b, v);
                        }
                    } else {
                        ctx.regs[ins.dst][l] = memory.read32(addr);
                    }
                    if (mem_sink) {
                        mem_sink->append(addr, ins.send.bytesPerLane,
                                         ins.send.isWrite);
                    } else if (mem_access) {
                        mem_access(addr, ins.send.bytesPerLane,
                                   ins.send.isWrite);
                    }
                }
                break;
              }
              case Opcode::Jmpi:
                next_pc = (uint32_t)ins.target;
                break;
              case Opcode::Brc:
              case Opcode::Brnc: {
                bool cond;
                switch (ins.flagMode) {
                  case FlagMode::Lane0:
                    cond = ctx.flags[ins.flag][0];
                    break;
                  case FlagMode::Any: {
                    cond = false;
                    for (int l = 0; l < width; ++l)
                        cond = cond || ctx.flags[ins.flag][l];
                    break;
                  }
                  case FlagMode::All: {
                    cond = true;
                    for (int l = 0; l < width; ++l)
                        cond = cond && ctx.flags[ins.flag][l];
                    break;
                  }
                  default:
                    panic("invalid flag mode");
                }
                if (ins.op == Opcode::Brnc)
                    cond = !cond;
                if (cond)
                    next_pc = (uint32_t)ins.target;
                break;
              }
              case Opcode::Call:
                GT_ASSERT(ctx.callStack.size() < maxCallDepth,
                          bin.name, ": call stack overflow");
                ctx.callStack.push_back(pc + 1);
                next_pc = (uint32_t)ins.target;
                break;
              case Opcode::Ret:
                GT_ASSERT(!ctx.callStack.empty(),
                          bin.name, ": ret with empty call stack");
                next_pc = ctx.callStack.back();
                ctx.callStack.pop_back();
                break;
              case Opcode::Halt:
                terminated = true;
                break;
              case Opcode::ProfCount:
              case Opcode::ProfMem:
                prof_slot(ins) += ins.profArg;
                break;
              case Opcode::ProfAdd:
                prof_slot(ins) += read_lane(ins.src0, 0);
                break;
              case Opcode::ProfTimer: {
                double now = ctx.issueCycles;
                prof_slot(ins) +=
                    (uint64_t)(now - ctx.lastTimer);
                ctx.lastTimer = now;
                break;
              }
              default:
                panic(bin.name, ": unimplemented opcode ",
                      isa::opcodeName(ins.op));
            }
        };

        if (fast) {
            for (uint16_t i : p.relevantIdx[pc]) {
                exec(block.instrs[i]);
                if (terminated)
                    break;
            }
        } else {
            for (const auto &ins : block.instrs) {
                exec(ins);
                if (terminated)
                    break;
            }
        }

        if (terminated)
            break;
        GT_ASSERT(next_pc < bin.blocks.size(),
                  bin.name, ": fell off the end of the kernel");
        pc = next_pc;
    }

    return ctx.issueCycles;
}

} // namespace gt::gpu
