#include "gpu/executor.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "common/rng.hh"
#include "gpu/detailed_checkpoint.hh"

namespace gt::gpu
{

using isa::AddrSpace;
using isa::CmpOp;
using isa::FlagMode;
using isa::Instruction;
using isa::KernelBinary;
using isa::Opcode;
using isa::Operand;
using isa::Uop;
using isa::UopProgram;

namespace
{

/** Per-thread scratch local (shared) memory size. */
constexpr uint64_t localMemBytes = 16 * 1024;

/** Maximum subroutine call depth. */
constexpr size_t maxCallDepth = 64;

inline float
asFloat(uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

inline uint32_t
asBits(float value)
{
    return std::bit_cast<uint32_t>(value);
}

// Scalar semantics shared by the switch and uop backends. Both
// backends funnel every float operation through the same function so
// the compiler makes identical instruction-selection choices (fused
// multiply-add contraction in particular) and results stay bitwise
// equal between backends.

inline uint32_t
fAddBits(uint32_t a, uint32_t b)
{
    return asBits(asFloat(a) + asFloat(b));
}

inline uint32_t
fMulBits(uint32_t a, uint32_t b)
{
    return asBits(asFloat(a) * asFloat(b));
}

inline uint32_t
fMadBits(uint32_t a, uint32_t b, uint32_t c)
{
    return asBits(asFloat(a) * asFloat(b) + asFloat(c));
}

inline uint32_t
fDivBits(uint32_t a, uint32_t b)
{
    return asBits(asFloat(a) / asFloat(b));
}

inline uint32_t
frcBits(uint32_t a)
{
    float v = asFloat(a);
    return asBits(v - std::floor(v));
}

inline uint32_t
sqrtBits(uint32_t a)
{
    return asBits(std::sqrt(asFloat(a)));
}

inline uint32_t
rsqrtBits(uint32_t a)
{
    return asBits(1.0f / std::sqrt(asFloat(a)));
}

inline uint32_t
sinBits(uint32_t a)
{
    return asBits(std::sin(asFloat(a)));
}

inline uint32_t
cosBits(uint32_t a)
{
    return asBits(std::cos(asFloat(a)));
}

inline uint32_t
exp2Bits(uint32_t a)
{
    return asBits(std::exp2(asFloat(a)));
}

inline uint32_t
log2Bits(uint32_t a)
{
    float v = asFloat(a);
    return asBits(v > 0.0f ? std::log2(v) : 0.0f);
}

inline float
dp4Step(float acc, uint32_t a, uint32_t b)
{
    return acc + asFloat(a) * asFloat(b);
}

inline uint32_t
lrpBits(uint32_t t, uint32_t a, uint32_t b)
{
    float tf = asFloat(t);
    return asBits(tf * asFloat(a) + (1.0f - tf) * asFloat(b));
}

} // anonymous namespace

/** Architectural state of one hardware thread. */
struct Executor::ThreadCtx
{
    uint32_t regs[isa::numRegisters][isa::maxSimdWidth];
    uint8_t flags[isa::numFlags][isa::maxSimdWidth];
    std::vector<uint32_t> callStack;
    std::vector<uint8_t> local;
    double issueCycles = 0.0;
    double lastTimer = 0.0;
    uint64_t instrsExecuted = 0;

    ThreadCtx() : local(localMemBytes, 0) { callStack.reserve(8); }

    /**
     * Prepare the context for one thread. @p clear_regs is the number
     * of leading registers the plan proved may be read before being
     * written (everything else is dead state no instruction can
     * observe); @p clear_local is false when the kernel provably
     * never touches local memory, skipping the 16 KB fill.
     */
    void
    reset(const Dispatch &dispatch, uint64_t thread_idx,
          uint16_t clear_regs, bool clear_local)
    {
        if (clear_regs > 0)
            std::memset(regs, 0, sizeof(regs[0]) * clear_regs);
        std::memset(flags, 0, sizeof(flags));
        if (clear_local)
            std::fill(local.begin(), local.end(), 0);
        callStack.clear();
        issueCycles = 0.0;
        lastTimer = 0.0;
        instrsExecuted = 0;

        uint64_t base = thread_idx * dispatch.simdWidth;
        for (int lane = 0; lane < isa::maxSimdWidth; ++lane)
            regs[0][lane] = (uint32_t)(base + (uint64_t)lane);
        regs[1][0] = (uint32_t)thread_idx;
        regs[1][1] = (uint32_t)dispatch.globalSize;
        regs[1][2] = dispatch.simdWidth;
        for (size_t a = 0; a < dispatch.args.size(); ++a) {
            for (int lane = 0; lane < isa::maxSimdWidth; ++lane)
                regs[2 + a][lane] = dispatch.args[a];
        }
    }
};

/**
 * One deferred memory-trace record of a gang slot. Gang execution
 * interleaves threads uop by uop, but the trace consumer must see each
 * thread's records contiguously and in thread order (bitwise parity
 * with scalar execution), so sends buffer per-slot records and the
 * gang drains them into the sink after the whole gang finishes.
 */
struct GangMemRec
{
    uint64_t addr;
    /** bytesPerLane | isWrite << 31. */
    uint32_t meta;
};

/**
 * Interpreter state threaded through uop handlers. Holds raw views
 * into the ThreadCtx plus the control-transfer cell: `next` starts at
 * the superblock's defaultNext and transfer uops overwrite it
 * (last write wins, like the reference backend's next_pc).
 */
struct UopSt
{
    uint32_t (*regs)[isa::maxSimdWidth];
    uint8_t (*flags)[isa::maxSimdWidth];
    uint8_t *local;
    std::vector<uint32_t> *callStack;
    DeviceMemory *memory;
    const MemAccessFn *memAccess;
    MemTraceSink *memSink;
    /** When set (scalar continuation of a retired gang slot), trace
     * records append here instead of memSink so the gang can drain
     * them in thread order. */
    std::vector<GangMemRec> *memVec;
    uint64_t *deltas;
    size_t numDeltas;
    /** Trace slots whose scratch delta became nonzero (see
     * Executor::dirtyDeltas). */
    std::vector<uint32_t> *dirtyDeltas;
    const KernelBinary *bin;
    double *issueCycles;
    double *lastTimer;
    uint32_t next;
    bool terminated;
};

namespace
{

/*
 * Uop handlers. Each is specialized at compile time on the operand
 * shapes its kind encodes, and on the dispatch style `Chain`:
 *
 *  - Chain = true (hot path): token-threaded dispatch. Every handler
 *    tail-calls the handler of the following uop, so executing a
 *    superblock is one indirect jump per uop with no dispatch loop;
 *    the chain ends when the superblock's stop sentinel (or a Halt)
 *    returns instead of chaining.
 *  - Chain = false (trace path): single-step. Each handler returns
 *    after its own uop so the caller can walk member basic blocks
 *    one at a time.
 */
using UopFn = const Uop *(*)(const Uop *, UopSt &);
using UopTable = std::array<UopFn, isa::numUopKinds>;

/** [0] = single-step handlers, [1] = threaded handlers. */
extern const UopTable uopTables[2];

/** Read a source field: an immediate baked at decode, or a register
 * lane. The imm/reg switch the reference backend pays per lane is a
 * compile-time branch here. */
template <bool Imm>
inline uint32_t
srcLane(uint32_t s, const UopSt &st, int lane)
{
    if constexpr (Imm)
        return s;
    else
        return st.regs[s][lane];
}

/**
 * Run @p body(lane) over the uop's lanes. Both legal dispatch widths
 * (8 and 16) get a constant trip count, which is what lets the
 * compiler vectorize the specialized handler loops — per-lane results
 * are bitwise identical to the scalar loop (elementwise, no
 * reassociation).
 */
template <class Body>
inline void
forLanes(int width, Body body)
{
    if (width == isa::maxSimdWidth) {
        for (int l = 0; l < isa::maxSimdWidth; ++l)
            body(l);
    } else if (width == 8) {
        for (int l = 0; l < 8; ++l)
            body(l);
    } else {
        for (int l = 0; l < width; ++l)
            body(l);
    }
}

/** Continue to the next uop (threaded) or yield to the caller. */
template <bool Chain>
inline const Uop *
chainNext(const Uop *u, UopSt &st)
{
    if constexpr (Chain) {
        const Uop *n = u + 1;
        return uopTables[1][n->kind](n, st);
    } else {
        return nullptr;
    }
}

template <bool C, class F, bool I0>
const Uop *
uopUnary(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    forLanes(u.width, [&](int l) {
        d[l] = F::apply(srcLane<I0>(u.s0, st, l));
    });
    return chainNext<C>(up, st);
}

template <bool C, class F, bool I0, bool I1>
const Uop *
uopBinary(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    forLanes(u.width, [&](int l) {
        d[l] = F::apply(srcLane<I0>(u.s0, st, l),
                        srcLane<I1>(u.s1, st, l));
    });
    return chainNext<C>(up, st);
}

template <bool C, class F, bool I0, bool I1, bool I2>
const Uop *
uopTernary(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    forLanes(u.width, [&](int l) {
        d[l] = F::apply(srcLane<I0>(u.s0, st, l),
                        srcLane<I1>(u.s1, st, l),
                        srcLane<I2>(u.s2, st, l));
    });
    return chainNext<C>(up, st);
}

// Scalar functors. Integer ops are written out; float ops reuse the
// shared helpers above (bitwise parity with the switch backend).
struct OpMov { static uint32_t apply(uint32_t a) { return a; } };
struct OpNot { static uint32_t apply(uint32_t a) { return ~a; } };
struct OpFrc { static uint32_t apply(uint32_t a) { return frcBits(a); } };
struct OpSqrt { static uint32_t apply(uint32_t a) { return sqrtBits(a); } };
struct OpRsqrt { static uint32_t apply(uint32_t a) { return rsqrtBits(a); } };
struct OpSin { static uint32_t apply(uint32_t a) { return sinBits(a); } };
struct OpCos { static uint32_t apply(uint32_t a) { return cosBits(a); } };
struct OpExp { static uint32_t apply(uint32_t a) { return exp2Bits(a); } };
struct OpLog { static uint32_t apply(uint32_t a) { return log2Bits(a); } };

struct OpAnd { static uint32_t apply(uint32_t a, uint32_t b) { return a & b; } };
struct OpOr { static uint32_t apply(uint32_t a, uint32_t b) { return a | b; } };
struct OpXor { static uint32_t apply(uint32_t a, uint32_t b) { return a ^ b; } };
struct OpShl { static uint32_t apply(uint32_t a, uint32_t b) { return a << (b & 31); } };
struct OpShr { static uint32_t apply(uint32_t a, uint32_t b) { return a >> (b & 31); } };
struct OpAsr
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        return (uint32_t)((int32_t)a >> (b & 31));
    }
};
struct OpAdd { static uint32_t apply(uint32_t a, uint32_t b) { return a + b; } };
struct OpSub { static uint32_t apply(uint32_t a, uint32_t b) { return a - b; } };
struct OpMul { static uint32_t apply(uint32_t a, uint32_t b) { return a * b; } };
struct OpMin
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        int32_t sa = (int32_t)a, sb = (int32_t)b;
        return (uint32_t)(sa < sb ? sa : sb);
    }
};
struct OpMax
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        int32_t sa = (int32_t)a, sb = (int32_t)b;
        return (uint32_t)(sa > sb ? sa : sb);
    }
};
struct OpAvg
{
    static uint32_t
    apply(uint32_t a, uint32_t b)
    {
        return (uint32_t)(((uint64_t)a + (uint64_t)b + 1) >> 1);
    }
};
struct OpFAdd { static uint32_t apply(uint32_t a, uint32_t b) { return fAddBits(a, b); } };
struct OpFMul { static uint32_t apply(uint32_t a, uint32_t b) { return fMulBits(a, b); } };
struct OpFDiv { static uint32_t apply(uint32_t a, uint32_t b) { return fDivBits(a, b); } };

struct OpMad
{
    static uint32_t
    apply(uint32_t a, uint32_t b, uint32_t c)
    {
        return a * b + c;
    }
};
struct OpFMad
{
    static uint32_t
    apply(uint32_t a, uint32_t b, uint32_t c)
    {
        return fMadBits(a, b, c);
    }
};
struct OpLrp
{
    static uint32_t
    apply(uint32_t t, uint32_t a, uint32_t b)
    {
        return lrpBits(t, a, b);
    }
};
struct OpPln
{
    static uint32_t
    apply(uint32_t a, uint32_t b, uint32_t c)
    {
        return fMadBits(a, b, c);
    }
};

template <bool C, bool I0, bool I1>
const Uop *
uopSel(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    const uint8_t *f = st.flags[u.flag];
    forLanes(u.width, [&](int l) {
        d[l] = f[l] ? srcLane<I0>(u.s0, st, l)
                    : srcLane<I1>(u.s1, st, l);
    });
    return chainNext<C>(up, st);
}

template <bool C, CmpOp Op, bool I0, bool I1>
const Uop *
uopCmp(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint8_t *f = st.flags[u.flag];
    forLanes(u.width, [&](int l) {
        f[l] = isa::evalCmp(Op, srcLane<I0>(u.s0, st, l),
                            srcLane<I1>(u.s1, st, l));
    });
    return chainNext<C>(up, st);
}

template <bool C, bool I0, bool I1>
const Uop *
uopDp4(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    for (int l = 0; l < u.width; ++l) {
        int base = l & ~3;
        float acc = 0.0f;
        for (int k = 0; k < 4; ++k) {
            acc = dp4Step(acc, srcLane<I0>(u.s0, st, base + k),
                          srcLane<I1>(u.s1, st, base + k));
        }
        d[l] = asBits(acc);
    }
    return chainNext<C>(up, st);
}

template <bool C, bool IsWrite, bool IsLocal, bool I0>
const Uop *
uopSend(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    const uint32_t *addr_reg = st.regs[u.s1];
    const int64_t offset = (int64_t)(int32_t)u.aux;
    const uint32_t bytes = u.aux16;
    for (int l = 0; l < u.width; ++l) {
        uint64_t addr = (uint64_t)addr_reg[l] + offset;
        if constexpr (IsLocal) {
            uint64_t off = addr % (localMemBytes - 4);
            if constexpr (IsWrite) {
                uint32_t v = srcLane<I0>(u.s0, st, l);
                std::memcpy(st.local + off, &v, 4);
            } else {
                uint32_t v;
                std::memcpy(&v, st.local + off, 4);
                st.regs[u.dst][l] = v;
            }
        } else {
            if constexpr (IsWrite) {
                uint32_t v = srcLane<I0>(u.s0, st, l);
                for (uint32_t b = 0; b < bytes; b += 4)
                    st.memory->write32(addr + b, v);
            } else {
                st.regs[u.dst][l] = st.memory->read32(addr);
            }
            // Trace delivery: batched SoA append (hot default), the
            // per-slot gang record buffer, or the per-access callback
            // oracle. Local sends never reach the trace in any mode.
            if (st.memSink) {
                st.memSink->append(addr, bytes, IsWrite);
            } else if (st.memVec) {
                st.memVec->push_back(
                    {addr, bytes | (IsWrite ? 0x80000000u : 0u)});
            } else if (st.memAccess) {
                (*st.memAccess)(addr, bytes, IsWrite);
            }
        }
    }
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopJmp(const Uop *up, UopSt &st)
{
    st.next = up->aux;
    return chainNext<C>(up, st);
}

template <bool C, bool Negate, FlagMode M>
const Uop *
uopBranch(const Uop *up, UopSt &st)
{
    const Uop &u = *up;
    const uint8_t *f = st.flags[u.flag];
    bool cond;
    if constexpr (M == FlagMode::Lane0) {
        cond = f[0];
    } else if constexpr (M == FlagMode::Any) {
        cond = false;
        for (int l = 0; l < u.width; ++l)
            cond = cond || f[l];
    } else {
        cond = true;
        for (int l = 0; l < u.width; ++l)
            cond = cond && f[l];
    }
    if constexpr (Negate)
        cond = !cond;
    if (cond)
        st.next = u.aux;
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopCall(const Uop *up, UopSt &st)
{
    GT_ASSERT(st.callStack->size() < maxCallDepth,
              st.bin->name, ": call stack overflow");
    st.callStack->push_back(up->aux2);
    st.next = up->aux;
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopRet(const Uop *up, UopSt &st)
{
    GT_ASSERT(!st.callStack->empty(),
              st.bin->name, ": ret with empty call stack");
    st.next = st.callStack->back();
    st.callStack->pop_back();
    return chainNext<C>(up, st);
}

const Uop *
uopHalt(const Uop *, UopSt &st)
{
    st.terminated = true;
    return nullptr;
}

const Uop *
uopDoStop(const Uop *, UopSt &)
{
    return nullptr;
}

/**
 * Add @p delta to the uop's trace slot. Deltas are non-negative, so a
 * slot leaves zero at most once per thread and the dirty list records
 * each touched slot exactly once — the caller's flush and clear walk
 * the list instead of the whole scratch vector.
 */
inline void
uopProfAccum(const Uop &u, UopSt &st, uint64_t delta)
{
    GT_ASSERT(st.numDeltas != 0,
              st.bin->name, ": instrumented binary executed without "
              "a trace buffer");
    GT_ASSERT(u.aux < st.numDeltas,
              st.bin->name, ": trace slot out of range");
    uint64_t &slot = st.deltas[u.aux];
    if (slot == 0 && delta != 0)
        st.dirtyDeltas->push_back(u.aux);
    slot += delta;
}

template <bool C>
const Uop *
uopProfCount(const Uop *up, UopSt &st)
{
    uopProfAccum(*up, st, up->aux2);
    return chainNext<C>(up, st);
}

template <bool C, bool I0>
const Uop *
uopProfAdd(const Uop *up, UopSt &st)
{
    uopProfAccum(*up, st, srcLane<I0>(up->s0, st, 0));
    return chainNext<C>(up, st);
}

template <bool C>
const Uop *
uopProfTimer(const Uop *up, UopSt &st)
{
    double now = *st.issueCycles;
    uopProfAccum(*up, st, (uint64_t)(now - *st.lastTimer));
    *st.lastTimer = now;
    return chainNext<C>(up, st);
}

// Trap handlers reproduce the reference backend's panics, firing only
// when a malformed instruction is actually executed.
const Uop *
uopDoTrapAbsent(const Uop *, UopSt &st)
{
    panic(st.bin->name, ": read of absent operand");
}

const Uop *
uopDoTrapBadOpcode(const Uop *up, UopSt &st)
{
    panic(st.bin->name, ": unimplemented opcode ",
          isa::opcodeName((Opcode)up->aux));
}

const Uop *
uopDoTrapBadFlagMode(const Uop *, UopSt &)
{
    panic("invalid flag mode");
}

const Uop *
uopUnregistered(const Uop *up, UopSt &st)
{
    panic(st.bin->name, ": uop kind ", up->kind, " has no handler");
}

template <bool C, class F>
void
regUnary(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopUnary<C, F, false>;
    t[isa::uopKind(op, 1)] = &uopUnary<C, F, true>;
}

template <bool C, class F>
void
regBinary(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopBinary<C, F, false, false>;
    t[isa::uopKind(op, 1)] = &uopBinary<C, F, true, false>;
    t[isa::uopKind(op, 2)] = &uopBinary<C, F, false, true>;
    t[isa::uopKind(op, 3)] = &uopBinary<C, F, true, true>;
}

template <bool C, class F>
void
regTernary(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopTernary<C, F, false, false, false>;
    t[isa::uopKind(op, 1)] = &uopTernary<C, F, true, false, false>;
    t[isa::uopKind(op, 2)] = &uopTernary<C, F, false, true, false>;
    t[isa::uopKind(op, 3)] = &uopTernary<C, F, true, true, false>;
    t[isa::uopKind(op, 4)] = &uopTernary<C, F, false, false, true>;
    t[isa::uopKind(op, 5)] = &uopTernary<C, F, true, false, true>;
    t[isa::uopKind(op, 6)] = &uopTernary<C, F, false, true, true>;
    t[isa::uopKind(op, 7)] = &uopTernary<C, F, true, true, true>;
}

template <bool C, CmpOp Op>
void
regCmp(UopTable &t)
{
    const int base = (int)Op << 2;
    t[isa::uopKind(Opcode::Cmp, base | 0)] = &uopCmp<C, Op, false, false>;
    t[isa::uopKind(Opcode::Cmp, base | 1)] = &uopCmp<C, Op, true, false>;
    t[isa::uopKind(Opcode::Cmp, base | 2)] = &uopCmp<C, Op, false, true>;
    t[isa::uopKind(Opcode::Cmp, base | 3)] = &uopCmp<C, Op, true, true>;
}

template <bool C, bool Negate>
void
regBranch(UopTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &uopBranch<C, Negate, FlagMode::Lane0>;
    t[isa::uopKind(op, 1)] = &uopBranch<C, Negate, FlagMode::Any>;
    t[isa::uopKind(op, 2)] = &uopBranch<C, Negate, FlagMode::All>;
}

template <bool C>
UopTable
buildTable()
{
    UopTable t;
    t.fill(&uopUnregistered);

    regUnary<C, OpMov>(t, Opcode::Mov);
    regUnary<C, OpNot>(t, Opcode::Not);
    regUnary<C, OpFrc>(t, Opcode::Frc);
    regUnary<C, OpSqrt>(t, Opcode::Sqrt);
    regUnary<C, OpRsqrt>(t, Opcode::Rsqrt);
    regUnary<C, OpSin>(t, Opcode::Sin);
    regUnary<C, OpCos>(t, Opcode::Cos);
    regUnary<C, OpExp>(t, Opcode::Exp);
    regUnary<C, OpLog>(t, Opcode::Log);

    regBinary<C, OpAnd>(t, Opcode::And);
    regBinary<C, OpOr>(t, Opcode::Or);
    regBinary<C, OpXor>(t, Opcode::Xor);
    regBinary<C, OpShl>(t, Opcode::Shl);
    regBinary<C, OpShr>(t, Opcode::Shr);
    regBinary<C, OpAsr>(t, Opcode::Asr);
    regBinary<C, OpAdd>(t, Opcode::Add);
    regBinary<C, OpSub>(t, Opcode::Sub);
    regBinary<C, OpMul>(t, Opcode::Mul);
    regBinary<C, OpMin>(t, Opcode::Min);
    regBinary<C, OpMax>(t, Opcode::Max);
    regBinary<C, OpAvg>(t, Opcode::Avg);
    regBinary<C, OpFAdd>(t, Opcode::FAdd);
    regBinary<C, OpFMul>(t, Opcode::FMul);
    regBinary<C, OpFDiv>(t, Opcode::FDiv);

    regTernary<C, OpMad>(t, Opcode::Mad);
    regTernary<C, OpFMad>(t, Opcode::FMad);
    regTernary<C, OpLrp>(t, Opcode::Lrp);
    regTernary<C, OpPln>(t, Opcode::Pln);

    t[isa::uopKind(Opcode::Sel, 0)] = &uopSel<C, false, false>;
    t[isa::uopKind(Opcode::Sel, 1)] = &uopSel<C, true, false>;
    t[isa::uopKind(Opcode::Sel, 2)] = &uopSel<C, false, true>;
    t[isa::uopKind(Opcode::Sel, 3)] = &uopSel<C, true, true>;

    regCmp<C, CmpOp::Eq>(t);
    regCmp<C, CmpOp::Ne>(t);
    regCmp<C, CmpOp::Lt>(t);
    regCmp<C, CmpOp::Le>(t);
    regCmp<C, CmpOp::Gt>(t);
    regCmp<C, CmpOp::Ge>(t);

    t[isa::uopKind(Opcode::Dp4, 0)] = &uopDp4<C, false, false>;
    t[isa::uopKind(Opcode::Dp4, 1)] = &uopDp4<C, true, false>;
    t[isa::uopKind(Opcode::Dp4, 2)] = &uopDp4<C, false, true>;
    t[isa::uopKind(Opcode::Dp4, 3)] = &uopDp4<C, true, true>;

    // Send sub bits: isWrite | isLocal<<1 | (store data imm)<<2.
    t[isa::uopKind(Opcode::Send, 0)] = &uopSend<C, false, false, false>;
    t[isa::uopKind(Opcode::Send, 1)] = &uopSend<C, true, false, false>;
    t[isa::uopKind(Opcode::Send, 2)] = &uopSend<C, false, true, false>;
    t[isa::uopKind(Opcode::Send, 3)] = &uopSend<C, true, true, false>;
    t[isa::uopKind(Opcode::Send, 5)] = &uopSend<C, true, false, true>;
    t[isa::uopKind(Opcode::Send, 7)] = &uopSend<C, true, true, true>;

    t[isa::uopKind(Opcode::Jmpi, 0)] = &uopJmp<C>;
    regBranch<C, false>(t, Opcode::Brc);
    regBranch<C, true>(t, Opcode::Brnc);
    t[isa::uopKind(Opcode::Call, 0)] = &uopCall<C>;
    t[isa::uopKind(Opcode::Ret, 0)] = &uopRet<C>;
    t[isa::uopKind(Opcode::Halt, 0)] = &uopHalt;

    t[isa::uopKind(Opcode::ProfCount, 0)] = &uopProfCount<C>;
    t[isa::uopKind(Opcode::ProfMem, 0)] = &uopProfCount<C>;
    t[isa::uopKind(Opcode::ProfAdd, 0)] = &uopProfAdd<C, false>;
    t[isa::uopKind(Opcode::ProfAdd, 1)] = &uopProfAdd<C, true>;
    t[isa::uopKind(Opcode::ProfTimer, 0)] = &uopProfTimer<C>;

    t[isa::uopTrapAbsentOperand] = &uopDoTrapAbsent;
    t[isa::uopTrapBadOpcode] = &uopDoTrapBadOpcode;
    t[isa::uopTrapBadFlagMode] = &uopDoTrapBadFlagMode;
    t[isa::uopStop] = &uopDoStop;
    return t;
}

const UopTable uopTables[2] = {buildTable<false>(), buildTable<true>()};

/*
 * Gang-lockstep execution (GT_EXEC=gang, Full-mode explicit threads).
 *
 * Up to gangSize threads (slots) share one SoA context: register r of
 * slot s lane l lives at gangRegs[r][s * maxSimdWidth + l], so every
 * data uop is a single dense loop over gangLanes contiguous words
 * instead of gangSize separate chain walks — that loop is what the
 * compiler vectorizes. Data uops run over *all* slots (retired slots'
 * live registers are zeroed at retirement, so the dead lanes compute
 * on harmless zeros); uops with side effects outside the SoA block
 * (sends, call/ret, instrumentation) iterate active slots only.
 * Control uops record a per-slot `next`, and the gang's run loop
 * retires slots whose next leaves the consensus superblock onto the
 * scalar path. Per-lane results are elementwise identical to scalar
 * execution — same shared float helpers, no reassociation.
 */
struct GangSt
{
    static constexpr int slots = Executor::gangSize;
    static constexpr int lanes = slots * isa::maxSimdWidth;

    uint32_t (*regs)[lanes];
    uint8_t (*flags)[lanes];
    /** slots private local blocks, or null for local-free kernels. */
    uint8_t *locals;
    std::vector<uint32_t> *callStacks;
    std::vector<GangMemRec> *memRecs;
    DeviceMemory *memory;
    uint64_t *deltas;
    size_t numDeltas;
    std::vector<uint32_t> *dirtyDeltas;
    const KernelBinary *bin;
    double *issueCycles;
    double *lastTimer;
    uint32_t next[slots];
    uint8_t activeMask;
    /** Buffer per-slot trace records (a sink consumes them later)? */
    bool traceRecs;
    bool terminated;
};

using GangFn = const Uop *(*)(const Uop *, GangSt &);
using GangTable = std::array<GangFn, isa::numUopKinds>;

extern const GangTable gangTable;

template <bool Imm>
inline uint32_t
gangSrc(uint32_t s, const GangSt &st, int i)
{
    if constexpr (Imm)
        return s;
    else
        return st.regs[s][i];
}

/**
 * Run @p body over every gang lane of an instruction of @p width.
 * Width 16 is one flat constant-trip loop over all gangLanes; width 8
 * is a constant-trip inner loop per slot.
 *
 * The loops are marked ivdep: gang lane loops have no loop-carried
 * dependences by construction. Register rows either coincide exactly
 * or not at all (elementwise d[i] = f(a[i], b[i]) is order-free
 * either way), and colliding store lanes only occur in kernels the
 * safety proof admitted via the equal-value route, where every
 * colliding lane writes identical bytes.
 */
template <class Body>
inline void
gangForLanes(int width, Body body)
{
    if (width == isa::maxSimdWidth) {
#pragma GCC ivdep
        for (int i = 0; i < GangSt::lanes; ++i)
            body(i);
    } else if (width == 8) {
        for (int s = 0; s < GangSt::slots; ++s) {
            const int base = s * isa::maxSimdWidth;
#pragma GCC ivdep
            for (int l = 0; l < 8; ++l)
                body(base + l);
        }
    } else {
        for (int s = 0; s < GangSt::slots; ++s) {
            const int base = s * isa::maxSimdWidth;
#pragma GCC ivdep
            for (int l = 0; l < width; ++l)
                body(base + l);
        }
    }
}

/**
 * A source operand with its register row resolved *before* the lane
 * loop. Reading `u`/`st` inside the loop body defeats vectorization:
 * the d[i] stores might alias them as far as the compiler can prove,
 * forcing a reload of the field and the row base every iteration.
 * Hoisting the row pointer into a non-escaping local removes the
 * dependence and lets the lane loops vectorize.
 */
template <bool Imm>
struct GangSrcRow
{
    uint32_t v;
    const uint32_t *row;

    GangSrcRow(uint32_t s, const GangSt &st)
        : v(s), row(Imm ? nullptr : st.regs[s])
    {
    }

    uint32_t
    at(int i) const
    {
        if constexpr (Imm)
            return v;
        else
            return row[i];
    }
};

inline const Uop *
gangChainNext(const Uop *u, GangSt &st)
{
    const Uop *n = u + 1;
    return gangTable[n->kind](n, st);
}

template <class F, bool I0>
const Uop *
gangUnary(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    const GangSrcRow<I0> s0(u.s0, st);
    gangForLanes(u.width, [&](int i) { d[i] = F::apply(s0.at(i)); });
    return gangChainNext(up, st);
}

template <class F, bool I0, bool I1>
const Uop *
gangBinary(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    const GangSrcRow<I0> s0(u.s0, st);
    const GangSrcRow<I1> s1(u.s1, st);
    gangForLanes(u.width, [&](int i) {
        d[i] = F::apply(s0.at(i), s1.at(i));
    });
    return gangChainNext(up, st);
}

template <class F, bool I0, bool I1, bool I2>
const Uop *
gangTernary(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    const GangSrcRow<I0> s0(u.s0, st);
    const GangSrcRow<I1> s1(u.s1, st);
    const GangSrcRow<I2> s2(u.s2, st);
    gangForLanes(u.width, [&](int i) {
        d[i] = F::apply(s0.at(i), s1.at(i), s2.at(i));
    });
    return gangChainNext(up, st);
}

template <bool I0, bool I1>
const Uop *
gangSel(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    const uint8_t *f = st.flags[u.flag];
    const GangSrcRow<I0> s0(u.s0, st);
    const GangSrcRow<I1> s1(u.s1, st);
    gangForLanes(u.width, [&](int i) {
        d[i] = f[i] ? s0.at(i) : s1.at(i);
    });
    return gangChainNext(up, st);
}

template <CmpOp Op, bool I0, bool I1>
const Uop *
gangCmp(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    uint8_t *f = st.flags[u.flag];
    const GangSrcRow<I0> s0(u.s0, st);
    const GangSrcRow<I1> s1(u.s1, st);
    gangForLanes(u.width, [&](int i) {
        f[i] = isa::evalCmp(Op, s0.at(i), s1.at(i));
    });
    return gangChainNext(up, st);
}

template <bool I0, bool I1>
const Uop *
gangDp4(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    uint32_t *d = st.regs[u.dst];
    // The 4-lane groups never straddle a slot: slot stride is
    // maxSimdWidth, a multiple of 4.
    const GangSrcRow<I0> s0(u.s0, st);
    const GangSrcRow<I1> s1(u.s1, st);
    for (int s = 0; s < GangSt::slots; ++s) {
        const int sb = s * isa::maxSimdWidth;
        for (int l = 0; l < u.width; ++l) {
            int base = sb + (l & ~3);
            float acc = 0.0f;
            for (int k = 0; k < 4; ++k) {
                acc = dp4Step(acc, s0.at(base + k), s1.at(base + k));
            }
            d[sb + l] = asBits(acc);
        }
    }
    return gangChainNext(up, st);
}

template <bool IsWrite, bool IsLocal, bool I0>
const Uop *
gangSend(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    const uint32_t *addr_reg = st.regs[u.s1];
    const int64_t offset = (int64_t)(int32_t)u.aux;
    const uint32_t bytes = u.aux16;
    constexpr int W = isa::maxSimdWidth;

    if constexpr (IsLocal) {
        // Each slot owns a private local block, exactly like a scalar
        // thread; local sends are never traced.
        for (int s = 0; s < GangSt::slots; ++s) {
            if (!(st.activeMask >> s & 1))
                continue;
            uint8_t *local = st.locals + (size_t)s * localMemBytes;
            for (int l = 0; l < u.width; ++l) {
                uint64_t addr =
                    (uint64_t)addr_reg[s * W + l] + offset;
                uint64_t off = addr % (localMemBytes - 4);
                if constexpr (IsWrite) {
                    uint32_t v = gangSrc<I0>(u.s0, st, s * W + l);
                    std::memcpy(local + off, &v, 4);
                } else {
                    uint32_t v;
                    std::memcpy(&v, local + off, 4);
                    st.regs[u.dst][s * W + l] = v;
                }
            }
        }
        return gangChainNext(up, st);
    }

    // Global send. Fast path: with every slot live, OR-reduce the
    // lane addresses — each address is <= the OR, so one range check
    // covers the whole gang and the data loop runs unchecked (and
    // vectorized) over raw memory. Any retired slot (garbage lane
    // addresses) or a failed bound falls back to the per-lane checked
    // path, which reproduces the scalar backend's range panics.
    bool fast_done = false;
    if (st.activeMask == 0xff && offset >= 0) {
        uint32_t or_acc = 0;
        gangForLanes(u.width, [&](int i) { or_acc |= addr_reg[i]; });
        const uint64_t span = IsWrite
            ? (bytes <= 4 ? 4 : ((uint64_t)bytes + 3) / 4 * 4)
            : 4;
        if ((uint64_t)or_acc + (uint64_t)offset + span <=
            st.memory->size()) {
            uint8_t *mem = st.memory->data();
            if constexpr (IsWrite) {
                const GangSrcRow<I0> val(u.s0, st);
                gangForLanes(u.width, [&](int i) {
                    uint64_t addr = (uint64_t)addr_reg[i] + offset;
                    uint32_t v = val.at(i);
                    for (uint32_t b = 0; b < bytes; b += 4)
                        std::memcpy(mem + addr + b, &v, 4);
                });
            } else {
                uint32_t *d = st.regs[u.dst];
                gangForLanes(u.width, [&](int i) {
                    uint64_t addr = (uint64_t)addr_reg[i] + offset;
                    std::memcpy(&d[i], mem + addr, 4);
                });
            }
            fast_done = true;
        }
    }
    if (!fast_done) {
        for (int s = 0; s < GangSt::slots; ++s) {
            if (!(st.activeMask >> s & 1))
                continue;
            for (int l = 0; l < u.width; ++l) {
                uint64_t addr =
                    (uint64_t)addr_reg[s * W + l] + offset;
                if constexpr (IsWrite) {
                    uint32_t v = gangSrc<I0>(u.s0, st, s * W + l);
                    for (uint32_t b = 0; b < bytes; b += 4)
                        st.memory->write32(addr + b, v);
                } else {
                    st.regs[u.dst][s * W + l] =
                        st.memory->read32(addr);
                }
            }
        }
    }
    if (st.traceRecs) {
        const uint32_t meta =
            bytes | (IsWrite ? 0x80000000u : 0u);
        for (int s = 0; s < GangSt::slots; ++s) {
            if (!(st.activeMask >> s & 1))
                continue;
            auto &recs = st.memRecs[s];
            for (int l = 0; l < u.width; ++l) {
                recs.push_back(
                    {(uint64_t)addr_reg[s * W + l] + offset, meta});
            }
        }
    }
    return gangChainNext(up, st);
}

const Uop *
gangJmp(const Uop *up, GangSt &st)
{
    for (int s = 0; s < GangSt::slots; ++s)
        st.next[s] = up->aux;
    return gangChainNext(up, st);
}

template <bool Negate, FlagMode M>
const Uop *
gangBranch(const Uop *up, GangSt &st)
{
    const Uop &u = *up;
    const uint8_t *f = st.flags[u.flag];
    // Evaluated for every slot; retired slots' garbage flags yield
    // garbage nexts that nothing reads.
    for (int s = 0; s < GangSt::slots; ++s) {
        const uint8_t *fs = f + s * isa::maxSimdWidth;
        bool cond;
        if constexpr (M == FlagMode::Lane0) {
            cond = fs[0];
        } else if constexpr (M == FlagMode::Any) {
            cond = false;
            for (int l = 0; l < u.width; ++l)
                cond = cond || fs[l];
        } else {
            cond = true;
            for (int l = 0; l < u.width; ++l)
                cond = cond && fs[l];
        }
        if constexpr (Negate)
            cond = !cond;
        if (cond)
            st.next[s] = u.aux;
    }
    return gangChainNext(up, st);
}

const Uop *
gangCall(const Uop *up, GangSt &st)
{
    // Active slots only: a retired slot's stack must not grow (its
    // scalar continuation owns a copy taken at retirement).
    for (int s = 0; s < GangSt::slots; ++s) {
        if (!(st.activeMask >> s & 1))
            continue;
        GT_ASSERT(st.callStacks[s].size() < maxCallDepth,
                  st.bin->name, ": call stack overflow");
        st.callStacks[s].push_back(up->aux2);
        st.next[s] = up->aux;
    }
    return gangChainNext(up, st);
}

const Uop *
gangRet(const Uop *up, GangSt &st)
{
    (void)up;
    for (int s = 0; s < GangSt::slots; ++s) {
        if (!(st.activeMask >> s & 1))
            continue;
        GT_ASSERT(!st.callStacks[s].empty(),
                  st.bin->name, ": ret with empty call stack");
        st.next[s] = st.callStacks[s].back();
        st.callStacks[s].pop_back();
    }
    return gangChainNext(up, st);
}

const Uop *
gangHalt(const Uop *, GangSt &st)
{
    // All active slots executed the same superblock prefix, so every
    // one of them halts here — the whole gang terminates.
    st.terminated = true;
    return nullptr;
}

const Uop *
gangDoStop(const Uop *, GangSt &)
{
    return nullptr;
}

/** Gang counterpart of uopProfAccum: one aggregated add per uop. */
inline void
gangProfAccum(const Uop &u, GangSt &st, uint64_t delta)
{
    GT_ASSERT(st.numDeltas != 0,
              st.bin->name, ": instrumented binary executed without "
              "a trace buffer");
    GT_ASSERT(u.aux < st.numDeltas,
              st.bin->name, ": trace slot out of range");
    uint64_t &slot = st.deltas[u.aux];
    if (slot == 0 && delta != 0)
        st.dirtyDeltas->push_back(u.aux);
    slot += delta;
}

const Uop *
gangProfCount(const Uop *up, GangSt &st)
{
    gangProfAccum(*up, st, (uint64_t)up->aux2 *
                               std::popcount(st.activeMask));
    return gangChainNext(up, st);
}

template <bool I0>
const Uop *
gangProfAdd(const Uop *up, GangSt &st)
{
    // Slot accumulation is a commutative uint64 sum, so adding the
    // gang's subtotal once equals the scalar per-thread adds exactly.
    uint64_t sum = 0;
    for (int s = 0; s < GangSt::slots; ++s) {
        if (!(st.activeMask >> s & 1))
            continue;
        sum += gangSrc<I0>(up->s0, st, s * isa::maxSimdWidth);
    }
    gangProfAccum(*up, st, sum);
    return gangChainNext(up, st);
}

const Uop *
gangProfTimer(const Uop *up, GangSt &st)
{
    // All active slots share one issue clock and one timer history
    // (identical superblock paths), so each slot's scalar delta is
    // the same value.
    double now = *st.issueCycles;
    uint64_t delta = (uint64_t)(now - *st.lastTimer);
    gangProfAccum(*up, st, delta * std::popcount(st.activeMask));
    *st.lastTimer = now;
    return gangChainNext(up, st);
}

const Uop *
gangDoTrapAbsent(const Uop *, GangSt &st)
{
    panic(st.bin->name, ": read of absent operand");
}

const Uop *
gangDoTrapBadOpcode(const Uop *up, GangSt &st)
{
    panic(st.bin->name, ": unimplemented opcode ",
          isa::opcodeName((Opcode)up->aux));
}

const Uop *
gangDoTrapBadFlagMode(const Uop *, GangSt &)
{
    panic("invalid flag mode");
}

const Uop *
gangUnregistered(const Uop *up, GangSt &st)
{
    panic(st.bin->name, ": uop kind ", up->kind, " has no handler");
}

template <class F>
void
gangRegUnary(GangTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &gangUnary<F, false>;
    t[isa::uopKind(op, 1)] = &gangUnary<F, true>;
}

template <class F>
void
gangRegBinary(GangTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &gangBinary<F, false, false>;
    t[isa::uopKind(op, 1)] = &gangBinary<F, true, false>;
    t[isa::uopKind(op, 2)] = &gangBinary<F, false, true>;
    t[isa::uopKind(op, 3)] = &gangBinary<F, true, true>;
}

template <class F>
void
gangRegTernary(GangTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &gangTernary<F, false, false, false>;
    t[isa::uopKind(op, 1)] = &gangTernary<F, true, false, false>;
    t[isa::uopKind(op, 2)] = &gangTernary<F, false, true, false>;
    t[isa::uopKind(op, 3)] = &gangTernary<F, true, true, false>;
    t[isa::uopKind(op, 4)] = &gangTernary<F, false, false, true>;
    t[isa::uopKind(op, 5)] = &gangTernary<F, true, false, true>;
    t[isa::uopKind(op, 6)] = &gangTernary<F, false, true, true>;
    t[isa::uopKind(op, 7)] = &gangTernary<F, true, true, true>;
}

template <CmpOp Op>
void
gangRegCmp(GangTable &t)
{
    const int base = (int)Op << 2;
    t[isa::uopKind(Opcode::Cmp, base | 0)] = &gangCmp<Op, false, false>;
    t[isa::uopKind(Opcode::Cmp, base | 1)] = &gangCmp<Op, true, false>;
    t[isa::uopKind(Opcode::Cmp, base | 2)] = &gangCmp<Op, false, true>;
    t[isa::uopKind(Opcode::Cmp, base | 3)] = &gangCmp<Op, true, true>;
}

template <bool Negate>
void
gangRegBranch(GangTable &t, Opcode op)
{
    t[isa::uopKind(op, 0)] = &gangBranch<Negate, FlagMode::Lane0>;
    t[isa::uopKind(op, 1)] = &gangBranch<Negate, FlagMode::Any>;
    t[isa::uopKind(op, 2)] = &gangBranch<Negate, FlagMode::All>;
}

GangTable
buildGangTable()
{
    GangTable t;
    t.fill(&gangUnregistered);

    gangRegUnary<OpMov>(t, Opcode::Mov);
    gangRegUnary<OpNot>(t, Opcode::Not);
    gangRegUnary<OpFrc>(t, Opcode::Frc);
    gangRegUnary<OpSqrt>(t, Opcode::Sqrt);
    gangRegUnary<OpRsqrt>(t, Opcode::Rsqrt);
    gangRegUnary<OpSin>(t, Opcode::Sin);
    gangRegUnary<OpCos>(t, Opcode::Cos);
    gangRegUnary<OpExp>(t, Opcode::Exp);
    gangRegUnary<OpLog>(t, Opcode::Log);

    gangRegBinary<OpAnd>(t, Opcode::And);
    gangRegBinary<OpOr>(t, Opcode::Or);
    gangRegBinary<OpXor>(t, Opcode::Xor);
    gangRegBinary<OpShl>(t, Opcode::Shl);
    gangRegBinary<OpShr>(t, Opcode::Shr);
    gangRegBinary<OpAsr>(t, Opcode::Asr);
    gangRegBinary<OpAdd>(t, Opcode::Add);
    gangRegBinary<OpSub>(t, Opcode::Sub);
    gangRegBinary<OpMul>(t, Opcode::Mul);
    gangRegBinary<OpMin>(t, Opcode::Min);
    gangRegBinary<OpMax>(t, Opcode::Max);
    gangRegBinary<OpAvg>(t, Opcode::Avg);
    gangRegBinary<OpFAdd>(t, Opcode::FAdd);
    gangRegBinary<OpFMul>(t, Opcode::FMul);
    gangRegBinary<OpFDiv>(t, Opcode::FDiv);

    gangRegTernary<OpMad>(t, Opcode::Mad);
    gangRegTernary<OpFMad>(t, Opcode::FMad);
    gangRegTernary<OpLrp>(t, Opcode::Lrp);
    gangRegTernary<OpPln>(t, Opcode::Pln);

    t[isa::uopKind(Opcode::Sel, 0)] = &gangSel<false, false>;
    t[isa::uopKind(Opcode::Sel, 1)] = &gangSel<true, false>;
    t[isa::uopKind(Opcode::Sel, 2)] = &gangSel<false, true>;
    t[isa::uopKind(Opcode::Sel, 3)] = &gangSel<true, true>;

    gangRegCmp<CmpOp::Eq>(t);
    gangRegCmp<CmpOp::Ne>(t);
    gangRegCmp<CmpOp::Lt>(t);
    gangRegCmp<CmpOp::Le>(t);
    gangRegCmp<CmpOp::Gt>(t);
    gangRegCmp<CmpOp::Ge>(t);

    t[isa::uopKind(Opcode::Dp4, 0)] = &gangDp4<false, false>;
    t[isa::uopKind(Opcode::Dp4, 1)] = &gangDp4<true, false>;
    t[isa::uopKind(Opcode::Dp4, 2)] = &gangDp4<false, true>;
    t[isa::uopKind(Opcode::Dp4, 3)] = &gangDp4<true, true>;

    t[isa::uopKind(Opcode::Send, 0)] = &gangSend<false, false, false>;
    t[isa::uopKind(Opcode::Send, 1)] = &gangSend<true, false, false>;
    t[isa::uopKind(Opcode::Send, 2)] = &gangSend<false, true, false>;
    t[isa::uopKind(Opcode::Send, 3)] = &gangSend<true, true, false>;
    t[isa::uopKind(Opcode::Send, 5)] = &gangSend<true, false, true>;
    t[isa::uopKind(Opcode::Send, 7)] = &gangSend<true, true, true>;

    t[isa::uopKind(Opcode::Jmpi, 0)] = &gangJmp;
    gangRegBranch<false>(t, Opcode::Brc);
    gangRegBranch<true>(t, Opcode::Brnc);
    t[isa::uopKind(Opcode::Call, 0)] = &gangCall;
    t[isa::uopKind(Opcode::Ret, 0)] = &gangRet;
    t[isa::uopKind(Opcode::Halt, 0)] = &gangHalt;

    t[isa::uopKind(Opcode::ProfCount, 0)] = &gangProfCount;
    t[isa::uopKind(Opcode::ProfMem, 0)] = &gangProfCount;
    t[isa::uopKind(Opcode::ProfAdd, 0)] = &gangProfAdd<false>;
    t[isa::uopKind(Opcode::ProfAdd, 1)] = &gangProfAdd<true>;
    t[isa::uopKind(Opcode::ProfTimer, 0)] = &gangProfTimer;

    t[isa::uopTrapAbsentOperand] = &gangDoTrapAbsent;
    t[isa::uopTrapBadOpcode] = &gangDoTrapBadOpcode;
    t[isa::uopTrapBadFlagMode] = &gangDoTrapBadFlagMode;
    t[isa::uopStop] = &gangDoStop;
    return t;
}

const GangTable gangTable = buildGangTable();

} // anonymous namespace

/** SoA architectural state of one gang (see GangSt). */
struct Executor::GangCtx
{
    alignas(64) uint32_t regs[isa::numRegisters][GangSt::lanes];
    alignas(64) uint8_t flags[isa::numFlags][GangSt::lanes];
    /** gangSize private local blocks, sized lazily on first use by a
     * local-memory kernel. */
    std::vector<uint8_t> locals;
    std::vector<uint32_t> callStacks[GangSt::slots];
    std::vector<GangMemRec> memRecs[GangSt::slots];
};

Executor::Executor(const DeviceConfig &config_, DeviceMemory &memory_)
    : config(config_), memory(memory_), backendSel(defaultBackend()),
      execSel(defaultExecMode())
{
}

Executor::~Executor() = default;

Executor::Backend
Executor::defaultBackend()
{
    static const Backend selected = [] {
        Backend b = Backend::Uops;
        if (const char *env = std::getenv("GT_INTERP");
            env && *env != '\0') {
            std::string value(env);
            if (value == "switch") {
                b = Backend::Switch;
            } else if (value != "uops") {
                warn("ignoring invalid GT_INTERP value '", value,
                     "' (expected 'switch' or 'uops')");
            }
        }
        inform("executor: ", backendName(b), " interpreter backend "
               "(override with GT_INTERP=switch|uops)");
        return b;
    }();
    return selected;
}

const char *
Executor::backendName(Backend b)
{
    return b == Backend::Switch ? "switch" : "uops";
}

Executor::ExecMode
Executor::defaultExecMode()
{
    static const ExecMode selected = [] {
        ExecMode m = ExecMode::Gang;
        if (const char *env = std::getenv("GT_EXEC");
            env && *env != '\0') {
            std::string value(env);
            if (value == "scalar") {
                m = ExecMode::Scalar;
            } else if (value != "gang") {
                fatal("invalid GT_EXEC value '", value,
                      "' (expected 'scalar' or 'gang')");
            }
        }
        inform("executor: ", execModeName(m), " execution mode "
               "(override with GT_EXEC=scalar|gang)");
        return m;
    }();
    return selected;
}

const char *
Executor::execModeName(ExecMode m)
{
    return m == ExecMode::Scalar ? "scalar" : "gang";
}

void
Executor::setSharedPlanCache(SharedPlanCache *cache)
{
    GT_ASSERT(!cache || cache->deviceConfig().fpuLanesPerEu ==
                  config.fpuLanesPerEu,
              "shared plan cache bound to a device with a different "
              "FPU width (plans embed issue cycles)");
    sharedPlans = cache;
    plans.clear();
}

ExecPlan
Executor::buildPlan(const KernelBinary &bin) const
{
    ExecPlan p;
    p.numBlocks = bin.blocks.size();
    p.numInstrs = bin.staticInstrCount();
    p.rel = isa::analyzeRelevance(bin);
    p.prog = isa::decodeUops(bin, p.rel);
    p.blockCycles.resize(bin.blocks.size());
    p.blockInstrs.resize(bin.blocks.size());
    p.relevantIdx.resize(bin.blocks.size());
    uint16_t max_read = 0;
    bool any_read = false;
    for (const auto &block : bin.blocks) {
        double cycles = 0.0;
        for (const auto &ins : block.instrs) {
            cycles += issueCycles(ins, config.fpuLanesPerEu);
            auto note_read = [&](uint16_t reg) {
                if (reg < isa::numRegisters) {
                    any_read = true;
                    max_read = std::max(max_read, reg);
                }
            };
            for (const Operand *o : {&ins.src0, &ins.src1, &ins.src2}) {
                if (o->isReg())
                    note_read(o->reg);
            }
            if (ins.op == Opcode::Send) {
                note_read(ins.send.addrReg);
                p.usesLocal = p.usesLocal ||
                    ins.send.space == AddrSpace::Local;
            }
        }
        p.blockCycles[block.id] = cycles;
        p.blockInstrs[block.id] = block.instrs.size();
        auto &idx = p.relevantIdx[block.id];
        for (uint16_t i = 0; i < block.instrs.size(); ++i) {
            if (p.rel.relevant[block.id][i])
                idx.push_back(i);
        }
    }
    p.clearRegs = any_read ? (uint16_t)(max_read + 1) : (uint16_t)0;
    p.memberCycles.resize(p.prog.members.size());
    for (size_t i = 0; i < p.prog.members.size(); ++i)
        p.memberCycles[i] = p.blockCycles[p.prog.members[i]];
    p.gang = isa::analyzeGangSafety(bin);
    return p;
}

const Executor::Plan &
Executor::plan(const KernelBinary *bin)
{
    auto it = plans.find(bin);
    if (it != plans.end()) {
        const LocalPlan &cached = it->second;
        if (cached.generation == bin->generation &&
            cached.plan->matchesShape(*bin)) {
            return *cached.plan;
        }
        // A different binary now lives at this address.
        plans.erase(it);
    }

    std::shared_ptr<const ExecPlan> shared;
    uint64_t hash = 0;
    if (sharedPlans) {
        hash = isa::contentHash(*bin);
        shared = sharedPlans->find(hash);
        // Shape mismatch would mean a content-hash collision; build
        // our own plan rather than adopting a wrong one.
        if (shared && !shared->matchesShape(*bin))
            shared = nullptr;
    }
    if (!shared) {
        auto built = std::make_shared<const ExecPlan>(buildPlan(*bin));
        shared = sharedPlans
                     ? sharedPlans->insert(hash, std::move(built))
                     : std::shared_ptr<const ExecPlan>(std::move(built));
    }

    LocalPlan local;
    local.generation = bin->generation;
    local.plan = std::move(shared);
    return *plans.emplace(bin, std::move(local)).first->second.plan;
}

const isa::Relevance &
Executor::relevance(const KernelBinary *bin)
{
    return plan(bin).rel;
}

const isa::GangSafety &
Executor::gangSafety(const KernelBinary *bin)
{
    return plan(bin).gang;
}

bool
Executor::gangDispatchSafe(const Dispatch &dispatch, const Plan &p) const
{
    const isa::GangSafety &g = p.gang;
    if (!g.regionForm)
        return false;
    // An id-delta collision proof at send width w needs distinct
    // global ids across the gang, which a narrower dispatch breaks.
    if (g.minSimdWidth > dispatch.simdWidth)
        return false;
    // Region intervals reason in untruncated arithmetic; a region
    // wrapping the 32-bit address space would void them.
    for (const auto &r : g.regions) {
        uint64_t base = dispatch.args[r.baseArg];
        if ((int64_t)base + r.lo < 0 ||
            (int64_t)base + r.hi > (int64_t)1 << 32) {
            return false;
        }
    }
    // Cross-argument aliasing is a dispatch property: the kernel is
    // safe iff the concrete buffers are disjoint.
    for (const auto &c : g.checks) {
        const auto &a = g.regions[c.a];
        const auto &b = g.regions[c.b];
        int64_t alo = (int64_t)dispatch.args[a.baseArg] + a.lo;
        int64_t ahi = (int64_t)dispatch.args[a.baseArg] + a.hi;
        int64_t blo = (int64_t)dispatch.args[b.baseArg] + b.lo;
        int64_t bhi = (int64_t)dispatch.args[b.baseArg] + b.hi;
        if (alo < bhi && blo < ahi)
            return false;
    }
    return true;
}

ExecProfile
Executor::run(const Dispatch &dispatch, Mode mode, TraceBuffer *trace,
              const MemAccessFn &mem_access, const MemBatchFn &mem_batch)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    GT_ASSERT(!(mem_access && mem_batch),
              "per-access and batched trace delivery are exclusive");
    GT_ASSERT(dispatch.globalSize > 0, "dispatch with empty ND-range");
    GT_ASSERT(dispatch.simdWidth == 8 || dispatch.simdWidth == 16,
              "dispatch SIMD width must be 8 or 16");
    GT_ASSERT(dispatch.args.size() >= dispatch.binary->numArgs,
              dispatch.binary->name, ": expected ",
              dispatch.binary->numArgs, " args, got ",
              dispatch.args.size());

    const KernelBinary &bin = *dispatch.binary;
    const Plan &p = plan(&bin);

    bool fast = mode == Mode::Fast;
    if (fast && (p.rel.needsFullExec || mem_access || mem_batch))
        fast = false;

    uint64_t num_threads = dispatch.numThreads();

    ExecProfile profile;
    profile.numThreads = num_threads;
    profile.blockCounts.assign(bin.blocks.size(), 0);

    traceDeltaBuf.assign(trace ? trace->size() : 0, 0);
    std::vector<uint64_t> &trace_deltas = traceDeltaBuf;

    if (!ctxBuf)
        ctxBuf = std::make_unique<ThreadCtx>();
    ThreadCtx &ctx = *ctxBuf;

    const bool uops = backendSel == Backend::Uops;
    scratchCounts.assign(
        uops ? p.prog.supers.size() : bin.blocks.size(), 0);
    scratchDeltas.assign(trace_deltas.size(), 0);
    dirtyCounts.clear();
    dirtyDeltas.clear();

    MemTraceSink *sink = nullptr;
    if (mem_batch) {
        memSink.begin(&mem_batch, memTraceChunk);
        sink = &memSink;
    }

    // Drain the thread's (or gang's) scratch accumulators into the
    // profile and re-zero them, walking only the entries the run
    // dirtied — O(blocks entered), not O(kernel size) per thread.
    auto flush_scratch = [&](uint64_t weight) {
        if (uops) {
            // One count per superblock entry; expand over members to
            // recover exact per-block counts.
            for (uint32_t s : dirtyCounts) {
                uint64_t c = scratchCounts[s];
                const auto &sb = p.prog.supers[s];
                for (uint32_t j = 0; j < sb.memberCount; ++j) {
                    uint32_t b = p.prog.members[sb.memberBegin + j];
                    profile.blockCounts[b] += c * weight;
                }
                scratchCounts[s] = 0;
            }
        } else {
            for (uint32_t b : dirtyCounts) {
                profile.blockCounts[b] += scratchCounts[b] * weight;
                scratchCounts[b] = 0;
            }
        }
        dirtyCounts.clear();
        for (uint32_t s : dirtyDeltas) {
            trace_deltas[s] += scratchDeltas[s] * weight;
            scratchDeltas[s] = 0;
        }
        dirtyDeltas.clear();
    };

    auto run_scaled = [&](uint64_t thread_idx, uint64_t weight) {
        double cycles = uops
            ? runThreadUops(dispatch, thread_idx, fast, p, ctx,
                            scratchCounts, dirtyCounts,
                            scratchDeltas, dirtyDeltas, mem_access,
                            sink)
            : runThread(dispatch, thread_idx, fast, p, ctx,
                        scratchCounts, dirtyCounts,
                        scratchDeltas, dirtyDeltas, mem_access,
                        sink);
        flush_scratch(weight);
        profile.threadCycles += cycles * (double)weight;
    };

    // Gang execution covers Full-mode explicit threads on the uop
    // backend when the plan's gang-safety verdict holds for this
    // dispatch's arguments. The per-access callback needs accesses
    // delivered in real time, which the deferred per-slot drain
    // cannot honor, so it pins scalar execution.
    const bool gang_ok = uops && !fast && !mem_access &&
        execSel == ExecMode::Gang && gangDispatchSafe(dispatch, p);
    lastGanged = false;

    if (fast && !p.rel.threadDependent) {
        // Every thread behaves identically: run one, scale exactly.
        run_scaled(0, num_threads);
    } else if (fast && num_threads > maxExplicitThreads) {
        // Thread-dependent control at large scale: run a stratified
        // sample; each sampled thread stands for its stratum so the
        // weights cover every thread. The in-stratum position is
        // drawn from a deterministic hash — a fixed stride can alias
        // with the kernel's own thread-id arithmetic.
        uint64_t samples = maxExplicitThreads;
        uint64_t mix_state = 0x9e3779b97f4a7c15ULL;
        for (uint64_t i = 0; i < samples; ++i) {
            uint64_t begin = i * num_threads / samples;
            uint64_t end = (i + 1) * num_threads / samples;
            uint64_t pick = begin + splitmix64(mix_state) %
                                        (end - begin);
            run_scaled(pick, end - begin);
        }
    } else if (gang_ok) {
        double slot_cycles[gangSize];
        for (uint64_t t = 0; t < num_threads; t += gangSize) {
            int count = (int)std::min<uint64_t>(
                gangSize, num_threads - t);
            if (count == 1) {
                // A lone tail thread gains nothing from lockstep.
                run_scaled(t, 1);
                continue;
            }
            runGang(dispatch, t, count, p, scratchCounts, dirtyCounts,
                    scratchDeltas, dirtyDeltas, sink, slot_cycles);
            lastGanged = true;
            flush_scratch(1);
            // Ascending slot order = scalar thread order, so the
            // double accumulation sequence is bitwise identical.
            for (int s = 0; s < count; ++s)
                profile.threadCycles += slot_cycles[s];
        }
    } else {
        for (uint64_t t = 0; t < num_threads; ++t)
            run_scaled(t, 1);
    }

    if (sink)
        sink->finish();

    profile.deriveFromBlocks(bin);

    if (trace) {
        for (size_t s = 0; s < trace_deltas.size(); ++s) {
            if (trace_deltas[s])
                trace->add((uint32_t)s, trace_deltas[s]);
        }
    }
    return profile;
}

std::vector<uint32_t>
Executor::blockTrace(const Dispatch &dispatch, uint64_t thread_idx,
                     uint64_t max_len)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    const Plan &p = plan(dispatch.binary);
    bool fast = !p.rel.needsFullExec;
    if (!ctxBuf)
        ctxBuf = std::make_unique<ThreadCtx>();
    const bool uops = backendSel == Backend::Uops;
    std::vector<uint64_t> counts(
        uops ? p.prog.supers.size() : dispatch.binary->blocks.size(),
        0);
    // Size a scratch delta vector so instrumented binaries can also
    // be traced (their prof ops still execute).
    uint32_t max_slot = 0;
    for (const auto &block : dispatch.binary->blocks) {
        for (const auto &ins : block.instrs) {
            if (ins.cls() == isa::OpClass::Instrumentation)
                max_slot = std::max(max_slot, ins.profSlot + 1);
        }
    }
    std::vector<uint64_t> deltas(max_slot, 0);
    std::vector<uint32_t> dirty_counts, dirty_deltas;
    std::vector<uint32_t> trace;
    if (uops) {
        runThreadUops(dispatch, thread_idx, fast, p, *ctxBuf, counts,
                      dirty_counts, deltas, dirty_deltas, {}, nullptr,
                      &trace, max_len);
    } else {
        runThread(dispatch, thread_idx, fast, p, *ctxBuf, counts,
                  dirty_counts, deltas, dirty_deltas, {}, nullptr,
                  &trace, max_len);
    }
    return trace;
}

DetailedCheckpoint
Executor::checkpoint(const Dispatch &dispatch, uint64_t trace_cap)
{
    GT_ASSERT(dispatch.binary, "dispatch without binary");
    const KernelBinary &bin = *dispatch.binary;

    // Same order as the pre-refactor DetailedSimulator::simulate():
    // the representative thread's control-flow trace, then the
    // Fast-mode profile for scaling/normalization.
    DetailedCheckpoint cp;
    cp.binary = dispatch.binary;
    cp.trace = blockTrace(dispatch, 0, trace_cap);
    GT_ASSERT(!cp.trace.empty(), bin.name, ": empty block trace");
    ExecProfile profile = run(dispatch, Mode::Fast);

    cp.tracedInstrs = 0;
    for (uint32_t b : cp.trace)
        cp.tracedInstrs += bin.blocks[b].instrs.size();
    cp.numThreads = profile.numThreads;
    cp.dynInstrs = profile.dynInstrs;
    cp.perThreadInstrs =
        (double)(profile.dynInstrs + profile.instrumentationInstrs) /
        (double)profile.numThreads;
    // If the trace was truncated by the recording cap, the machine
    // layer scales the simulated cycles up by the untraced remainder.
    cp.truncation = std::max(
        1.0, cp.perThreadInstrs / (double)cp.tracedInstrs);
    return cp;
}

double
Executor::runThreadUops(const Dispatch &dispatch, uint64_t thread_idx,
                        bool fast, const Plan &p, ThreadCtx &ctx,
                        std::vector<uint64_t> &sb_counts,
                        std::vector<uint32_t> &dirty_counts,
                        std::vector<uint64_t> &trace_deltas,
                        std::vector<uint32_t> &dirty_deltas,
                        const MemAccessFn &mem_access,
                        MemTraceSink *mem_sink,
                        std::vector<uint32_t> *block_trace,
                        uint64_t trace_max_len)
{
    const KernelBinary &bin = *dispatch.binary;
    const UopProgram &prog = p.prog;
    ctx.reset(dispatch, thread_idx, p.clearRegs, p.usesLocal);

    UopSt st;
    st.regs = ctx.regs;
    st.flags = ctx.flags;
    st.local = ctx.local.data();
    st.callStack = &ctx.callStack;
    st.memory = &memory;
    st.memAccess = mem_access ? &mem_access : nullptr;
    st.memSink = mem_sink;
    st.memVec = nullptr;
    st.deltas = trace_deltas.data();
    st.numDeltas = trace_deltas.size();
    st.dirtyDeltas = &dirty_deltas;
    st.bin = &bin;
    st.issueCycles = &ctx.issueCycles;
    st.lastTimer = &ctx.lastTimer;
    st.next = 0;
    st.terminated = false;

    uint32_t cur = prog.superOf[0];

    if (block_trace) {
        // Trace path: step member by member so the recorded block
        // sequence and its truncation point match the reference
        // backend exactly.
        const Uop *stream =
            fast ? prog.fastUops.data() : prog.uops.data();
        const uint32_t *member_end = fast
            ? prog.memberFastUopEnd.data()
            : prog.memberUopEnd.data();
        while (true) {
            const UopProgram::Superblock &sb = prog.supers[cur];
            if (sb_counts[cur]++ == 0)
                dirty_counts.push_back(cur);
            st.next = sb.defaultNext;
            uint32_t off = fast ? sb.firstFastUop : sb.firstUop;
            for (uint32_t j = 0; j < sb.memberCount; ++j) {
                if (block_trace->size() >= trace_max_len)
                    return ctx.issueCycles;
                uint32_t m = prog.members[sb.memberBegin + j];
                block_trace->push_back(m);
                ctx.issueCycles += p.blockCycles[m];
                ctx.instrsExecuted += p.blockInstrs[m];
                if (ctx.instrsExecuted > threadInstrLimit) {
                    panic(bin.name, ": thread ", thread_idx,
                          " exceeded the ", threadInstrLimit,
                          "-instruction runaway limit");
                }
                uint32_t end = member_end[sb.memberBegin + j];
                for (uint32_t k = off; k < end; ++k) {
                    uopTables[0][stream[k].kind](stream + k, st);
                    if (st.terminated)
                        return ctx.issueCycles;
                }
                off = end;
            }
            GT_ASSERT(st.next != UopProgram::invalidSuper,
                      bin.name, ": fell off the end of the kernel");
            cur = st.next;
        }
    }

    return uopRun(dispatch, thread_idx, fast, p, ctx, st, cur,
                  sb_counts, dirty_counts);
}

double
Executor::uopRun(const Dispatch &dispatch, uint64_t thread_idx,
                 bool fast, const Plan &p, ThreadCtx &ctx, UopSt &st,
                 uint32_t cur, std::vector<uint64_t> &sb_counts,
                 std::vector<uint32_t> &dirty_counts)
{
    const KernelBinary &bin = *dispatch.binary;
    const UopProgram &prog = p.prog;
    const Uop *stream = fast ? prog.fastUops.data() : prog.uops.data();

    while (true) {
        const UopProgram::Superblock &sb = prog.supers[cur];
        if (sb_counts[cur]++ == 0)
            dirty_counts.push_back(cur);
        // Accrue cycles member by member: issue cycles are doubles
        // and the reference backend adds them one block at a time, so
        // a presummed superblock total could round differently.
        const double *mc = p.memberCycles.data() + sb.memberBegin;
        for (uint32_t j = 0; j < sb.memberCount; ++j)
            ctx.issueCycles += mc[j];
        ctx.instrsExecuted += sb.instrs;
        if (ctx.instrsExecuted > threadInstrLimit) {
            panic(bin.name, ": thread ", thread_idx, " exceeded the ",
                  threadInstrLimit, "-instruction runaway limit");
        }

        st.next = sb.defaultNext;
        // Threaded dispatch: the head handler tail-calls the next
        // handler until the superblock's stop sentinel (or a Halt)
        // breaks the chain, so the whole run is one indirect jump per
        // uop with no dispatch loop. The sentinel follows even an
        // empty fast slice, so the chain always terminates.
        const Uop *u = stream + (fast ? sb.firstFastUop : sb.firstUop);
        uopTables[1][u->kind](u, st);
        if (st.terminated)
            return ctx.issueCycles;
        GT_ASSERT(st.next != UopProgram::invalidSuper,
                  bin.name, ": fell off the end of the kernel");
        cur = st.next;
    }
}

void
Executor::runGang(const Dispatch &dispatch, uint64_t first_thread,
                  int count, const Plan &p,
                  std::vector<uint64_t> &sb_counts,
                  std::vector<uint32_t> &dirty_counts,
                  std::vector<uint64_t> &trace_deltas,
                  std::vector<uint32_t> &dirty_deltas,
                  MemTraceSink *mem_sink, double *slot_cycles)
{
    const KernelBinary &bin = *dispatch.binary;
    const UopProgram &prog = p.prog;
    constexpr int W = isa::maxSimdWidth;

    if (!gangBuf)
        gangBuf = std::make_unique<GangCtx>();
    GangCtx &g = *gangBuf;

    // Reset, mirroring ThreadCtx::reset slot by slot. The register
    // and flag clears span all slots, so a short gang's unused slots
    // start on zeros too (their lanes are computed but never
    // observed).
    if (p.clearRegs > 0)
        std::memset(g.regs, 0, sizeof(g.regs[0]) * p.clearRegs);
    std::memset(g.flags, 0, sizeof(g.flags));
    if (p.usesLocal)
        g.locals.assign((size_t)gangSize * localMemBytes, 0);
    for (int s = 0; s < gangSize; ++s) {
        g.callStacks[s].clear();
        g.memRecs[s].clear();
    }
    for (int s = 0; s < count; ++s) {
        uint64_t t = first_thread + (uint64_t)s;
        uint64_t base = t * dispatch.simdWidth;
        for (int lane = 0; lane < W; ++lane)
            g.regs[0][s * W + lane] = (uint32_t)(base + (uint64_t)lane);
        g.regs[1][s * W + 0] = (uint32_t)t;
        g.regs[1][s * W + 1] = (uint32_t)dispatch.globalSize;
        g.regs[1][s * W + 2] = dispatch.simdWidth;
        for (size_t a = 0; a < dispatch.args.size(); ++a) {
            for (int lane = 0; lane < W; ++lane)
                g.regs[2 + a][s * W + lane] = dispatch.args[a];
        }
    }

    double issue_cycles = 0.0;
    double last_timer = 0.0;
    uint64_t instrs = 0;

    GangSt st;
    st.regs = g.regs;
    st.flags = g.flags;
    st.locals = p.usesLocal ? g.locals.data() : nullptr;
    st.callStacks = g.callStacks;
    st.memRecs = g.memRecs;
    st.memory = &memory;
    st.deltas = trace_deltas.data();
    st.numDeltas = trace_deltas.size();
    st.dirtyDeltas = &dirty_deltas;
    st.bin = &bin;
    st.issueCycles = &issue_cycles;
    st.lastTimer = &last_timer;
    st.activeMask = (uint8_t)((1u << count) - 1);
    st.traceRecs = mem_sink != nullptr;
    st.terminated = false;

    // Retire slot s onto the scalar path: copy its lanes out into the
    // shared ThreadCtx and run it to completion with uopRun. Its
    // trace records keep appending to the slot's buffer so the drain
    // below still emits them in thread order.
    auto retire = [&](int s, uint32_t next_super) {
        ThreadCtx &ctx = *ctxBuf;
        for (uint16_t r = 0; r < p.clearRegs; ++r) {
            std::memcpy(ctx.regs[r], &g.regs[r][s * W],
                        sizeof(uint32_t) * W);
        }
        for (int f = 0; f < isa::numFlags; ++f) {
            std::memcpy(ctx.flags[f], &g.flags[f][s * W],
                        sizeof(uint8_t) * W);
        }
        if (p.usesLocal) {
            std::memcpy(ctx.local.data(),
                        g.locals.data() + (size_t)s * localMemBytes,
                        localMemBytes);
        }
        ctx.callStack = g.callStacks[s];
        ctx.issueCycles = issue_cycles;
        ctx.lastTimer = last_timer;
        ctx.instrsExecuted = instrs;

        UopSt sst;
        sst.regs = ctx.regs;
        sst.flags = ctx.flags;
        sst.local = ctx.local.data();
        sst.callStack = &ctx.callStack;
        sst.memory = &memory;
        sst.memAccess = nullptr;
        sst.memSink = nullptr;
        sst.memVec = st.traceRecs ? &g.memRecs[s] : nullptr;
        sst.deltas = trace_deltas.data();
        sst.numDeltas = trace_deltas.size();
        sst.dirtyDeltas = &dirty_deltas;
        sst.bin = &bin;
        sst.issueCycles = &ctx.issueCycles;
        sst.lastTimer = &ctx.lastTimer;
        sst.next = 0;
        sst.terminated = false;

        GT_ASSERT(next_super != UopProgram::invalidSuper,
                  bin.name, ": fell off the end of the kernel");
        slot_cycles[s] = uopRun(dispatch, first_thread + (uint64_t)s,
                                /*fast=*/false, p, ctx, sst,
                                next_super, sb_counts, dirty_counts);

        // Zero the dead slot's live registers so the full-gang data
        // loops keep computing on harmless zeros (no NaN/denormal
        // buildup in lanes nothing reads).
        for (uint16_t r = 0; r < p.clearRegs; ++r)
            std::memset(&g.regs[r][s * W], 0, sizeof(uint32_t) * W);
        st.activeMask &= (uint8_t)~(1u << s);
    };

    uint32_t cur = prog.superOf[0];
    const Uop *stream = prog.uops.data();

    while (true) {
        const UopProgram::Superblock &sb = prog.supers[cur];
        int active_count = std::popcount(st.activeMask);
        if (sb_counts[cur] == 0)
            dirty_counts.push_back(cur);
        sb_counts[cur] += (uint64_t)active_count;
        // One shared clock: every active slot accrues the same member
        // cycles in the same order a scalar thread would.
        const double *mc = p.memberCycles.data() + sb.memberBegin;
        for (uint32_t j = 0; j < sb.memberCount; ++j)
            issue_cycles += mc[j];
        instrs += sb.instrs;
        if (instrs > threadInstrLimit) {
            panic(bin.name, ": thread ",
                  first_thread +
                      (uint64_t)std::countr_zero(st.activeMask),
                  " exceeded the ", threadInstrLimit,
                  "-instruction runaway limit");
        }

        for (int s = 0; s < gangSize; ++s)
            st.next[s] = sb.defaultNext;
        st.terminated = false;
        const Uop *u = stream + sb.firstUop;
        gangTable[u->kind](u, st);
        if (st.terminated)
            break;

        // Consensus: the most common next among active slots (lowest
        // id on ties) continues in lockstep; everyone else retires.
        uint8_t active = st.activeMask;
        int lead = std::countr_zero(active);
        uint32_t next = st.next[lead];
        bool uniform = true;
        for (int s = lead + 1; s < gangSize; ++s) {
            if ((active >> s & 1) && st.next[s] != next) {
                uniform = false;
                break;
            }
        }
        if (!uniform) {
            uint32_t best = 0;
            int best_votes = -1;
            for (int s = 0; s < gangSize; ++s) {
                if (!(active >> s & 1))
                    continue;
                uint32_t n = st.next[s];
                int votes = 0;
                for (int r = 0; r < gangSize; ++r) {
                    if ((active >> r & 1) && st.next[r] == n)
                        ++votes;
                }
                if (votes > best_votes ||
                    (votes == best_votes && n < best)) {
                    best = n;
                    best_votes = votes;
                }
            }
            next = best;
            for (int s = 0; s < gangSize; ++s) {
                if ((active >> s & 1) && st.next[s] != next)
                    retire(s, st.next[s]);
            }
        }
        GT_ASSERT(next != UopProgram::invalidSuper,
                  bin.name, ": fell off the end of the kernel");
        cur = next;
    }

    // Slots still in lockstep at the gang-wide Halt share the clock.
    for (int s = 0; s < gangSize; ++s) {
        if (st.activeMask >> s & 1)
            slot_cycles[s] = issue_cycles;
    }

    // Drain buffered trace records slot-ascending — thread order,
    // each thread's records in its own program order — so the sink
    // sees the exact scalar sequence, chunk boundaries included.
    if (mem_sink) {
        for (int s = 0; s < count; ++s) {
            for (const GangMemRec &rec : g.memRecs[s]) {
                mem_sink->append(rec.addr, rec.meta & 0x7fffffffu,
                                 rec.meta >> 31);
            }
        }
    }
}

double
Executor::runThread(const Dispatch &dispatch, uint64_t thread_idx,
                    bool fast, const Plan &p, ThreadCtx &ctx,
                    std::vector<uint64_t> &block_counts,
                    std::vector<uint32_t> &dirty_counts,
                    std::vector<uint64_t> &trace_deltas,
                    std::vector<uint32_t> &dirty_deltas,
                    const MemAccessFn &mem_access,
                    MemTraceSink *mem_sink,
                    std::vector<uint32_t> *block_trace,
                    uint64_t trace_max_len)
{
    const KernelBinary &bin = *dispatch.binary;
    ctx.reset(dispatch, thread_idx, p.clearRegs, p.usesLocal);

    auto read_lane = [&](const Operand &opnd, int lane) -> uint32_t {
        switch (opnd.kind) {
          case Operand::Kind::Imm:
            return opnd.imm;
          case Operand::Kind::Reg:
            return ctx.regs[opnd.reg][lane];
          default:
            panic(bin.name, ": read of absent operand");
        }
    };

    auto prof_accum = [&](const Instruction &ins, uint64_t delta) {
        GT_ASSERT(!trace_deltas.empty(),
                  bin.name, ": instrumented binary executed without "
                  "a trace buffer");
        GT_ASSERT(ins.profSlot < trace_deltas.size(),
                  bin.name, ": trace slot out of range");
        uint64_t &slot = trace_deltas[ins.profSlot];
        if (slot == 0 && delta != 0)
            dirty_deltas.push_back(ins.profSlot);
        slot += delta;
    };

    uint32_t pc = 0;
    bool running = true;
    while (running) {
        const isa::BasicBlock &block = bin.blocks[pc];
        if (block_trace) {
            if (block_trace->size() >= trace_max_len)
                break;
            block_trace->push_back(pc);
        }
        if (block_counts[pc]++ == 0)
            dirty_counts.push_back(pc);
        ctx.issueCycles += p.blockCycles[pc];
        ctx.instrsExecuted += p.blockInstrs[pc];
        if (ctx.instrsExecuted > threadInstrLimit) {
            panic(bin.name, ": thread ", thread_idx, " exceeded the ",
                  threadInstrLimit, "-instruction runaway limit");
        }

        uint32_t next_pc = pc + 1;
        bool terminated = false;

        auto exec = [&](const Instruction &ins) {
            int width = ins.simdWidth;
            switch (ins.op) {
              case Opcode::Mov:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l);
                break;
              case Opcode::Sel:
                for (int l = 0; l < width; ++l) {
                    ctx.regs[ins.dst][l] = ctx.flags[ins.flag][l]
                        ? read_lane(ins.src0, l)
                        : read_lane(ins.src1, l);
                }
                break;
              case Opcode::And:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) & read_lane(ins.src1, l);
                break;
              case Opcode::Or:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) | read_lane(ins.src1, l);
                break;
              case Opcode::Xor:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) ^ read_lane(ins.src1, l);
                break;
              case Opcode::Not:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = ~read_lane(ins.src0, l);
                break;
              case Opcode::Shl:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l)
                        << (read_lane(ins.src1, l) & 31);
                break;
              case Opcode::Shr:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = read_lane(ins.src0, l) >>
                        (read_lane(ins.src1, l) & 31);
                break;
              case Opcode::Asr:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] = (uint32_t)(
                        (int32_t)read_lane(ins.src0, l) >>
                        (read_lane(ins.src1, l) & 31));
                break;
              case Opcode::Cmp:
                for (int l = 0; l < width; ++l) {
                    ctx.flags[ins.flag][l] =
                        isa::evalCmp(ins.cmpOp, read_lane(ins.src0, l),
                                     read_lane(ins.src1, l));
                }
                break;
              case Opcode::Add:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) + read_lane(ins.src1, l);
                break;
              case Opcode::Sub:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) - read_lane(ins.src1, l);
                break;
              case Opcode::Mul:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) * read_lane(ins.src1, l);
                break;
              case Opcode::Mad:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        read_lane(ins.src0, l) * read_lane(ins.src1, l)
                        + read_lane(ins.src2, l);
                break;
              case Opcode::Min:
                for (int l = 0; l < width; ++l) {
                    int32_t a = (int32_t)read_lane(ins.src0, l);
                    int32_t b = (int32_t)read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)(a < b ? a : b);
                }
                break;
              case Opcode::Max:
                for (int l = 0; l < width; ++l) {
                    int32_t a = (int32_t)read_lane(ins.src0, l);
                    int32_t b = (int32_t)read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)(a > b ? a : b);
                }
                break;
              case Opcode::Avg:
                for (int l = 0; l < width; ++l) {
                    uint64_t a = read_lane(ins.src0, l);
                    uint64_t b = read_lane(ins.src1, l);
                    ctx.regs[ins.dst][l] = (uint32_t)((a + b + 1) >> 1);
                }
                break;
              case Opcode::FAdd:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fAddBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l));
                break;
              case Opcode::FMul:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fMulBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l));
                break;
              case Opcode::FMad:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fMadBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l),
                                 read_lane(ins.src2, l));
                break;
              case Opcode::FDiv:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fDivBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l));
                break;
              case Opcode::Frc:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        frcBits(read_lane(ins.src0, l));
                break;
              case Opcode::Sqrt:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        sqrtBits(read_lane(ins.src0, l));
                break;
              case Opcode::Rsqrt:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        rsqrtBits(read_lane(ins.src0, l));
                break;
              case Opcode::Sin:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        sinBits(read_lane(ins.src0, l));
                break;
              case Opcode::Cos:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        cosBits(read_lane(ins.src0, l));
                break;
              case Opcode::Exp:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        exp2Bits(read_lane(ins.src0, l));
                break;
              case Opcode::Log:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        log2Bits(read_lane(ins.src0, l));
                break;
              case Opcode::Dp4:
                for (int l = 0; l < width; ++l) {
                    int base = l & ~3;
                    float acc = 0.0f;
                    for (int k = 0; k < 4; ++k) {
                        acc = dp4Step(acc,
                                      read_lane(ins.src0, base + k),
                                      read_lane(ins.src1, base + k));
                    }
                    ctx.regs[ins.dst][l] = asBits(acc);
                }
                break;
              case Opcode::Lrp:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        lrpBits(read_lane(ins.src0, l),
                                read_lane(ins.src1, l),
                                read_lane(ins.src2, l));
                break;
              case Opcode::Pln:
                for (int l = 0; l < width; ++l)
                    ctx.regs[ins.dst][l] =
                        fMadBits(read_lane(ins.src0, l),
                                 read_lane(ins.src1, l),
                                 read_lane(ins.src2, l));
                break;
              case Opcode::Send: {
                bool is_local = ins.send.space == AddrSpace::Local;
                for (int l = 0; l < width; ++l) {
                    uint64_t addr =
                        (uint64_t)ctx.regs[ins.send.addrReg][l] +
                        (int64_t)ins.send.offset;
                    if (is_local) {
                        uint64_t off = addr % (localMemBytes - 4);
                        if (ins.send.isWrite) {
                            uint32_t v = read_lane(ins.src0, l);
                            std::memcpy(ctx.local.data() + off, &v, 4);
                        } else {
                            uint32_t v;
                            std::memcpy(&v, ctx.local.data() + off, 4);
                            ctx.regs[ins.dst][l] = v;
                        }
                        continue;
                    }
                    if (ins.send.isWrite) {
                        uint32_t v = read_lane(ins.src0, l);
                        for (int b = 0; b < ins.send.bytesPerLane;
                             b += 4) {
                            memory.write32(addr + (uint64_t)b, v);
                        }
                    } else {
                        ctx.regs[ins.dst][l] = memory.read32(addr);
                    }
                    if (mem_sink) {
                        mem_sink->append(addr, ins.send.bytesPerLane,
                                         ins.send.isWrite);
                    } else if (mem_access) {
                        mem_access(addr, ins.send.bytesPerLane,
                                   ins.send.isWrite);
                    }
                }
                break;
              }
              case Opcode::Jmpi:
                next_pc = (uint32_t)ins.target;
                break;
              case Opcode::Brc:
              case Opcode::Brnc: {
                bool cond;
                switch (ins.flagMode) {
                  case FlagMode::Lane0:
                    cond = ctx.flags[ins.flag][0];
                    break;
                  case FlagMode::Any: {
                    cond = false;
                    for (int l = 0; l < width; ++l)
                        cond = cond || ctx.flags[ins.flag][l];
                    break;
                  }
                  case FlagMode::All: {
                    cond = true;
                    for (int l = 0; l < width; ++l)
                        cond = cond && ctx.flags[ins.flag][l];
                    break;
                  }
                  default:
                    panic("invalid flag mode");
                }
                if (ins.op == Opcode::Brnc)
                    cond = !cond;
                if (cond)
                    next_pc = (uint32_t)ins.target;
                break;
              }
              case Opcode::Call:
                GT_ASSERT(ctx.callStack.size() < maxCallDepth,
                          bin.name, ": call stack overflow");
                ctx.callStack.push_back(pc + 1);
                next_pc = (uint32_t)ins.target;
                break;
              case Opcode::Ret:
                GT_ASSERT(!ctx.callStack.empty(),
                          bin.name, ": ret with empty call stack");
                next_pc = ctx.callStack.back();
                ctx.callStack.pop_back();
                break;
              case Opcode::Halt:
                terminated = true;
                break;
              case Opcode::ProfCount:
              case Opcode::ProfMem:
                prof_accum(ins, ins.profArg);
                break;
              case Opcode::ProfAdd:
                prof_accum(ins, read_lane(ins.src0, 0));
                break;
              case Opcode::ProfTimer: {
                double now = ctx.issueCycles;
                prof_accum(ins, (uint64_t)(now - ctx.lastTimer));
                ctx.lastTimer = now;
                break;
              }
              default:
                panic(bin.name, ": unimplemented opcode ",
                      isa::opcodeName(ins.op));
            }
        };

        if (fast) {
            for (uint16_t i : p.relevantIdx[pc]) {
                exec(block.instrs[i]);
                if (terminated)
                    break;
            }
        } else {
            for (const auto &ins : block.instrs) {
                exec(ins);
                if (terminated)
                    break;
            }
        }

        if (terminated)
            break;
        GT_ASSERT(next_pc < bin.blocks.size(),
                  bin.name, ": fell off the end of the kernel");
        pc = next_pc;
    }

    return ctx.issueCycles;
}

} // namespace gt::gpu
