#include "gpu/detailed_checkpoint.hh"

#include "gpu/executor.hh"

namespace gt::gpu
{

uint64_t
dispatchArgsHash(const std::vector<uint32_t> &args)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t a : args) {
        h ^= a;
        h *= 0x100000001b3ULL;
    }
    return h;
}

const DetailedCheckpoint &
CheckpointStore::get(Executor &exec, const Dispatch &dispatch,
                     uint32_t kernel_id, uint64_t trace_cap)
{
    Key key;
    key.kernel = kernel_id;
    key.globalSize = dispatch.globalSize;
    key.simdWidth = dispatch.simdWidth;
    key.argsHash = dispatchArgsHash(dispatch.args);
    key.traceCap = trace_cap;

    auto it = table.find(key);
    if (it != table.end()) {
        hitCount.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    buildCount.fetch_add(1, std::memory_order_relaxed);
    return table
        .emplace(key, exec.checkpoint(dispatch, trace_cap))
        .first->second;
}

const DetailedCheckpoint *
CheckpointStore::findWarm(const Dispatch &dispatch, uint32_t kernel_id,
                          uint64_t trace_cap) const
{
    Key key;
    key.kernel = kernel_id;
    key.globalSize = dispatch.globalSize;
    key.simdWidth = dispatch.simdWidth;
    key.argsHash = dispatchArgsHash(dispatch.args);
    key.traceCap = trace_cap;

    auto it = table.find(key);
    if (it == table.end())
        return nullptr;
    hitCount.fetch_add(1, std::memory_order_relaxed);
    return &it->second;
}

} // namespace gt::gpu
