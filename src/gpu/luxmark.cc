#include "gpu/luxmark.hh"

#include "gpu/timing.hh"

namespace gt::gpu
{

double
luxmarkScore(const DeviceConfig &config)
{
    // A fixed "Sala"-like scene render: dominated by float
    // computation (ray-triangle tests, shading) with a significant
    // gather component, run wide enough to saturate the machine.
    ExecProfile frame;
    frame.numThreads = 65536;
    frame.dynInstrs = 4'000'000'000ull;
    frame.sendCount = 150'000'000ull;
    frame.bytesRead = 4'800'000'000ull;
    frame.bytesWritten = 400'000'000ull;
    // Issue cycles: mostly SIMD-8 float ops on 4-wide FPUs (2 issue
    // cycles each) plus the send dispatch overhead.
    frame.threadCycles = (double)frame.dynInstrs * 2.0 +
        (double)frame.sendCount * 2.0;

    TrialConfig trial;
    trial.noiseSigma = 0.0;
    TimingModel model(config, trial);
    double seconds = model.kernelTime(frame).seconds;

    // Samples-per-second style score; the constant calibrates the
    // HD4000 preset to the paper's reported 269.
    constexpr double calibration = 121.2;
    return calibration / seconds;
}

} // namespace gt::gpu
