/**
 * @file
 * Device global memory and the trace buffer.
 *
 * DeviceMemory is a flat byte-addressed space with a bump allocator;
 * OpenCL buffers and images are carved out of it by the runtime.
 * TraceBuffer is the CPU/GPU-shared profiling area GT-Pin allocates at
 * initialization (Fig. 1): instrumentation instructions accumulate
 * into its slots during device execution and the CPU post-processor
 * reads them out afterwards.
 */

#ifndef GT_GPU_MEMORY_HH
#define GT_GPU_MEMORY_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace gt::gpu
{

/** Flat device global memory with a bump allocator. */
class DeviceMemory
{
  public:
    explicit DeviceMemory(uint64_t size_bytes);

    uint64_t size() const { return bytes.size(); }

    /**
     * Allocate @p size bytes aligned to @p align; returns the device
     * address. Throws FatalError when out of memory.
     */
    uint64_t allocate(uint64_t size, uint64_t align = 64);

    /** Release all allocations (contents are preserved). */
    void resetAllocator();

    /** Bytes currently allocated. */
    uint64_t allocated() const { return bumpPtr; }

    // Scalar accessors are inline: they sit on the interpreters'
    // per-lane Send path, where an out-of-line call per access is
    // measurable against the predecoded backend's dispatch cost.
    uint8_t
    read8(uint64_t addr) const
    {
        checkRange(addr, 1);
        return bytes[addr];
    }

    uint32_t
    read32(uint64_t addr) const
    {
        checkRange(addr, 4);
        uint32_t v;
        std::memcpy(&v, bytes.data() + addr, 4);
        return v;
    }

    void
    write8(uint64_t addr, uint8_t value)
    {
        checkRange(addr, 1);
        bytes[addr] = value;
    }

    void
    write32(uint64_t addr, uint32_t value)
    {
        checkRange(addr, 4);
        std::memcpy(bytes.data() + addr, &value, 4);
    }

    /**
     * Raw storage access for bulk fast paths that hoist one bounds
     * check over a whole batch (the gang executor's send loops);
     * callers are responsible for staying within size().
     */
    uint8_t *data() { return bytes.data(); }
    const uint8_t *data() const { return bytes.data(); }

    /** Bulk host<->device transfer helpers. */
    void copyIn(uint64_t addr, const void *src, uint64_t size);
    void copyOut(uint64_t addr, void *dst, uint64_t size) const;
    void fill(uint64_t addr, uint8_t value, uint64_t size);

  private:
    void
    checkRange(uint64_t addr, uint64_t size) const
    {
        if (addr + size > bytes.size() || addr + size < addr) {
            panic("device memory access out of bounds: addr ", addr,
                  " size ", size, " capacity ", bytes.size());
        }
    }

    std::vector<uint8_t> bytes;
    uint64_t bumpPtr = 0;
};

/**
 * The GT-Pin profiling buffer: an array of 64-bit accumulator slots
 * shared between the modeled GPU (instrumentation instructions add to
 * slots) and the host (tools read slots during post-processing).
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(uint32_t num_slots = 0) { resize(num_slots); }

    void resize(uint32_t num_slots) { slots.assign(num_slots, 0); }

    uint32_t size() const { return (uint32_t)slots.size(); }

    /** Grow (never shrink) to hold at least @p num_slots slots. */
    void reserveSlots(uint32_t num_slots);

    void add(uint32_t slot, uint64_t delta);

    uint64_t read(uint32_t slot) const;

    void clear();

    const std::vector<uint64_t> &raw() const { return slots; }

  private:
    std::vector<uint64_t> slots;
};

} // namespace gt::gpu

#endif // GT_GPU_MEMORY_HH
