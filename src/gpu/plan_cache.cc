#include "gpu/plan_cache.hh"

#include "isa/kernel.hh"

namespace gt::gpu
{

namespace
{

/** Heap bytes of a vector's live elements (capacity slack ignored —
 * the accounting is deterministic, not allocator truth). */
template <typename T>
uint64_t
vecBytes(const std::vector<T> &v)
{
    return v.size() * sizeof(T);
}

uint64_t
binaryBytes(const isa::KernelBinary &bin)
{
    uint64_t bytes = sizeof(bin) + bin.name.size();
    bytes += vecBytes(bin.blocks);
    for (const isa::BasicBlock &block : bin.blocks)
        bytes += vecBytes(block.instrs);
    return bytes;
}

} // namespace

uint64_t
ExecPlan::memoryBytes() const
{
    uint64_t bytes = sizeof(*this);
    // Relevance: vector<bool> packs ~1 bit per instruction.
    bytes += vecBytes(rel.relevant);
    for (const auto &row : rel.relevant)
        bytes += (row.size() + 7) / 8;
    bytes += vecBytes(prog.supers) + vecBytes(prog.members) +
             vecBytes(prog.memberUopEnd) +
             vecBytes(prog.memberFastUopEnd) + vecBytes(prog.uops) +
             vecBytes(prog.fastUops) + vecBytes(prog.superOf);
    bytes += vecBytes(blockCycles) + vecBytes(memberCycles) +
             vecBytes(blockInstrs);
    bytes += vecBytes(relevantIdx);
    for (const auto &row : relevantIdx)
        bytes += vecBytes(row);
    return bytes;
}

uint64_t
SharedPlanCache::memoryBytes() const
{
    uint64_t bytes = sizeof(*this);
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[hash, plan] : shard.table) {
            (void)hash;
            // Hash-node estimate: key/value pair plus bucket link.
            bytes += sizeof(uint64_t) +
                     sizeof(std::shared_ptr<const ExecPlan>) +
                     2 * sizeof(void *);
            bytes += plan->memoryBytes();
        }
    }
    return bytes;
}

std::shared_ptr<const DetailedCheckpoint>
SharedCheckpointCache::find(const Key &key) const
{
    const Shard &shard = shards[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.table.find(key);
    if (it == shard.table.end()) {
        shard.missCount.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    shard.hitCount.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

std::shared_ptr<const DetailedCheckpoint>
SharedCheckpointCache::insert(const Key &key,
                              const DetailedCheckpoint &ckpt,
                              const isa::KernelBinary &binary)
{
    Shard &shard = shards[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto bit = shard.binaries.find(key.binaryHash);
    if (bit == shard.binaries.end()) {
        bit = shard.binaries
                  .emplace(key.binaryHash,
                           std::make_shared<const isa::KernelBinary>(
                               binary))
                  .first;
    }
    auto copy = std::make_shared<DetailedCheckpoint>(ckpt);
    copy->binary = bit->second.get();
    auto [it, fresh] = shard.table.emplace(key, std::move(copy));
    if (fresh)
        shard.buildCount.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

SharedCacheStats
SharedCheckpointCache::stats() const
{
    SharedCacheStats s;
    for (const Shard &shard : shards) {
        s.builds += shard.buildCount.load(std::memory_order_relaxed);
        s.hits += shard.hitCount.load(std::memory_order_relaxed);
        s.misses += shard.missCount.load(std::memory_order_relaxed);
    }
    return s;
}

size_t
SharedCheckpointCache::size() const
{
    size_t n = 0;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        n += shard.table.size();
    }
    return n;
}

uint64_t
SharedCheckpointCache::memoryBytes() const
{
    uint64_t bytes = sizeof(*this);
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[key, ckpt] : shard.table) {
            (void)key;
            bytes += sizeof(Key) +
                     sizeof(std::shared_ptr<
                            const DetailedCheckpoint>) +
                     2 * sizeof(void *);
            bytes += sizeof(DetailedCheckpoint) +
                     ckpt->trace.size() * sizeof(uint32_t);
        }
        for (const auto &[hash, bin] : shard.binaries) {
            (void)hash;
            bytes += sizeof(uint64_t) +
                     sizeof(std::shared_ptr<
                            const isa::KernelBinary>) +
                     2 * sizeof(void *);
            bytes += binaryBytes(*bin);
        }
    }
    return bytes;
}

} // namespace gt::gpu
