#include "gpu/plan_cache.hh"

namespace gt::gpu
{

std::shared_ptr<const DetailedCheckpoint>
SharedCheckpointCache::find(const Key &key) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = table.find(key);
    if (it == table.end()) {
        missCount.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    hitCount.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

std::shared_ptr<const DetailedCheckpoint>
SharedCheckpointCache::insert(const Key &key,
                              const DetailedCheckpoint &ckpt,
                              const isa::KernelBinary &binary)
{
    std::lock_guard<std::mutex> lock(mu);
    auto bit = binaries.find(key.binaryHash);
    if (bit == binaries.end()) {
        bit = binaries
                  .emplace(key.binaryHash,
                           std::make_shared<const isa::KernelBinary>(
                               binary))
                  .first;
    }
    auto copy = std::make_shared<DetailedCheckpoint>(ckpt);
    copy->binary = bit->second.get();
    auto [it, fresh] = table.emplace(key, std::move(copy));
    if (fresh)
        buildCount.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

SharedCacheStats
SharedCheckpointCache::stats() const
{
    SharedCacheStats s;
    s.builds = buildCount.load(std::memory_order_relaxed);
    s.hits = hitCount.load(std::memory_order_relaxed);
    s.misses = missCount.load(std::memory_order_relaxed);
    return s;
}

size_t
SharedCheckpointCache::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return table.size();
}

} // namespace gt::gpu
