/**
 * @file
 * Content-addressed cross-driver caches for execution artifacts.
 *
 * Every GpuDriver owns an Executor, and every Executor derives the
 * same expensive per-binary artifacts before it can run a kernel:
 * the relevance slice, the predecoded uop program, per-block issue
 * cycles, and the gang-safety verdict — collectively an ExecPlan.
 * Within one driver those are memoized per binary address; across
 * drivers (the profiling service runs one driver per tenant) the
 * memoization restarts from zero even though tenants overwhelmingly
 * submit the same kernels.
 *
 * The caches here close that gap. They key on isa::contentHash — the
 * semantic identity of a binary, independent of which driver JIT-
 * compiled it — and store immutable artifacts behind shared_ptr, so
 * a plan built by one tenant's executor is adopted by every other.
 * The sharing contract is the repo-wide "fully built ⇒ const,
 * shareable" rule:
 *
 *  - an artifact is inserted only after it is completely built;
 *  - once inserted it is never mutated (first insert wins; later
 *    duplicate builds are discarded and the winner is adopted);
 *  - lookups hand out shared_ptr<const T>, so readers can never
 *    write and lifetime is safe even if the cache is cleared.
 *
 * Lookup and insert are mutex-guarded and safe from any thread;
 * build/hit/miss counters are atomic, so the stats are exact under
 * concurrency (the TSan-covered service tests hammer exactly this
 * path). Plans depend on the device's FPU width (issue cycles), so a
 * SharedPlanCache is bound to one DeviceConfig and executors assert
 * compatibility when attaching.
 *
 * Both caches are striped: entries land in one of numShards
 * independent (mutex, table, counter) stripes selected by a mix of
 * the content hash, so hundreds of concurrent tenants hammering the
 * same cache serialize only per stripe, never globally. Stats stay
 * exact — counters are atomic per stripe and stats() sums them — and
 * the first-insert-wins rule holds per key exactly as before (a
 * key's stripe is a pure function of the key).
 */

#ifndef GT_GPU_PLAN_CACHE_HH
#define GT_GPU_PLAN_CACHE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "gpu/detailed_checkpoint.hh"
#include "gpu/device_config.hh"
#include "isa/slice.hh"
#include "isa/uop.hh"

namespace gt::gpu
{

/**
 * Everything an executor derives from one kernel binary before
 * running it: the uop lowering, the relevance slice, issue-cycle
 * tables, and the gang verdict. Immutable once built (the executor
 * builds it fully, then publishes). Shape fields double as a
 * belt-and-braces check against content-hash collisions.
 */
struct ExecPlan
{
    size_t numBlocks = 0;
    uint64_t numInstrs = 0;

    isa::Relevance rel;
    /** Predecoded micro-op program (uop backend). */
    isa::UopProgram prog;
    /** Issue cycles per block (application + instrumentation). */
    std::vector<double> blockCycles;
    /** blockCycles flattened parallel to prog.members, so the uop
     * backend's per-superblock accrual reads sequentially instead
     * of chasing member -> block indirections. */
    std::vector<double> memberCycles;
    /** Total instructions per block (for the runaway limit). */
    std::vector<uint64_t> blockInstrs;
    /** Indices of instructions evaluated in Fast mode, per block. */
    std::vector<std::vector<uint16_t>> relevantIdx;
    /** Registers [0, clearRegs) may be read before written; reset
     * zeroes exactly these (0 = the kernel reads no registers). */
    uint16_t clearRegs = 0;
    /** Kernel touches shared-local memory, so reset must clear
     * the 16 KB local block; provably untouched => skipped. */
    bool usesLocal = false;
    /** Gang-safety verdict (see isa/slice.hh). */
    isa::GangSafety gang;

    /** @return whether this plan matches @p bin's shape. */
    bool
    matchesShape(const isa::KernelBinary &bin) const
    {
        return numBlocks == bin.blocks.size() &&
            numInstrs == bin.staticInstrCount();
    }

    /** Approximate resident bytes of this plan's owned storage (the
     * service's footprint accounting; deterministic, not exact
     * allocator truth). */
    uint64_t memoryBytes() const;
};

/** Exact concurrent counters for one shared cache (or one of its
 * stripes). */
struct SharedCacheStats
{
    uint64_t builds = 0;  //!< artifacts built and published
    uint64_t hits = 0;    //!< lookups served from the cache
    uint64_t misses = 0;  //!< lookups that found nothing

    SharedCacheStats &
    operator+=(const SharedCacheStats &o)
    {
        builds += o.builds;
        hits += o.hits;
        misses += o.misses;
        return *this;
    }
};

/** Stripes per sharded cache; a power of two so the selector is a
 * multiply and shift of the content hash. */
constexpr unsigned numCacheShards = 16;

/** Stripe of @p content_hash: Fibonacci-mix then take the top bits,
 * so stripes stay balanced even for structured hash values. */
inline unsigned
cacheShardOf(uint64_t content_hash)
{
    return (unsigned)((content_hash * 0x9e3779b97f4a7c15ULL) >>
                      (64 - 4)) %
           numCacheShards;
}

/**
 * Cross-driver memo table of ExecPlans, keyed on binary content
 * hash. Thread-safe; bound to one device configuration; striped
 * numCacheShards ways (see the file comment).
 */
class SharedPlanCache
{
  public:
    explicit SharedPlanCache(const DeviceConfig &config)
        : config_(config)
    {
    }

    SharedPlanCache(const SharedPlanCache &) = delete;
    SharedPlanCache &operator=(const SharedPlanCache &) = delete;

    /** @return the plan for @p content_hash, or null on miss. */
    std::shared_ptr<const ExecPlan>
    find(uint64_t content_hash) const
    {
        const Shard &shard = shards[cacheShardOf(content_hash)];
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.table.find(content_hash);
        if (it == shard.table.end()) {
            shard.missCount.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
        }
        shard.hitCount.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    /**
     * Publish a fully built plan. First insert wins: if another
     * thread raced a build of the same binary in first, its plan is
     * returned and @p plan is discarded, so every executor adopts
     * one canonical artifact.
     */
    std::shared_ptr<const ExecPlan>
    insert(uint64_t content_hash, std::shared_ptr<const ExecPlan> plan)
    {
        Shard &shard = shards[cacheShardOf(content_hash)];
        std::lock_guard<std::mutex> lock(shard.mu);
        auto [it, fresh] =
            shard.table.emplace(content_hash, std::move(plan));
        if (fresh)
            shard.buildCount.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    /** Exact counters summed over every stripe. */
    SharedCacheStats
    stats() const
    {
        SharedCacheStats s;
        for (unsigned i = 0; i < numCacheShards; ++i)
            s += shardStats(i);
        return s;
    }

    /** Exact counters of stripe @p shard. */
    SharedCacheStats
    shardStats(unsigned shard) const
    {
        const Shard &sh = shards[shard];
        SharedCacheStats s;
        s.builds = sh.buildCount.load(std::memory_order_relaxed);
        s.hits = sh.hitCount.load(std::memory_order_relaxed);
        s.misses = sh.missCount.load(std::memory_order_relaxed);
        return s;
    }

    size_t
    size() const
    {
        size_t n = 0;
        for (const Shard &shard : shards) {
            std::lock_guard<std::mutex> lock(shard.mu);
            n += shard.table.size();
        }
        return n;
    }

    /** Approximate resident bytes of every cached plan plus table
     * overhead (see ExecPlan::memoryBytes). */
    uint64_t memoryBytes() const;

    const DeviceConfig &deviceConfig() const { return config_; }

  private:
    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<uint64_t, std::shared_ptr<const ExecPlan>>
            table;
        std::atomic<uint64_t> buildCount{0};
        mutable std::atomic<uint64_t> hitCount{0};
        mutable std::atomic<uint64_t> missCount{0};
    };

    const DeviceConfig config_;
    std::array<Shard, numCacheShards> shards;
};

/**
 * Cross-driver memo table of DetailedCheckpoints, keyed on dispatch
 * identity with the binary identified by content hash instead of a
 * driver-local kernel id. Checkpoints reference their binary; since
 * a tenant's binaries die with its driver, insert() re-points the
 * stored checkpoint at an interned immutable clone owned by the
 * cache, so adopted checkpoints outlive every tenant. Thread-safe;
 * striped numCacheShards ways on the binary content hash, with the
 * binary-clone intern table striped alongside (a key's stripe is a
 * pure function of binaryHash, so every checkpoint of one kernel
 * still shares one clone).
 */
class SharedCheckpointCache
{
  public:
    struct Key
    {
        uint64_t binaryHash = 0;
        uint64_t globalSize = 0;
        uint8_t simdWidth = 0;
        uint64_t argsHash = 0;
        uint64_t traceCap = 0;

        bool
        operator==(const Key &o) const
        {
            return binaryHash == o.binaryHash &&
                globalSize == o.globalSize &&
                simdWidth == o.simdWidth && argsHash == o.argsHash &&
                traceCap == o.traceCap;
        }
    };

    SharedCheckpointCache() = default;
    SharedCheckpointCache(const SharedCheckpointCache &) = delete;
    SharedCheckpointCache &
    operator=(const SharedCheckpointCache &) = delete;

    /** @return the checkpoint for @p key, or null on miss. */
    std::shared_ptr<const DetailedCheckpoint> find(const Key &key) const;

    /**
     * Publish a fully built checkpoint, cloning @p binary into the
     * cache and re-pointing the stored copy at the clone. First
     * insert wins; the canonical checkpoint is returned.
     */
    std::shared_ptr<const DetailedCheckpoint>
    insert(const Key &key, const DetailedCheckpoint &ckpt,
           const isa::KernelBinary &binary);

    SharedCacheStats stats() const;
    size_t size() const;

    /** Approximate resident bytes of every adopted checkpoint and
     * interned binary clone, plus table overhead. */
    uint64_t memoryBytes() const;

  private:
    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            uint64_t h = k.binaryHash;
            h = h * 0x100000001b3ULL ^ k.globalSize;
            h = h * 0x100000001b3ULL ^ k.simdWidth;
            h = h * 0x100000001b3ULL ^ k.argsHash;
            h = h * 0x100000001b3ULL ^ k.traceCap;
            return (size_t)h;
        }
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<Key,
                           std::shared_ptr<const DetailedCheckpoint>,
                           KeyHash>
            table;
        /** Interned binary clones, keyed on content hash, so every
         * checkpoint of one kernel shares one clone (all keys of one
         * binary land in this stripe). */
        std::unordered_map<uint64_t,
                           std::shared_ptr<const isa::KernelBinary>>
            binaries;
        std::atomic<uint64_t> buildCount{0};
        mutable std::atomic<uint64_t> hitCount{0};
        mutable std::atomic<uint64_t> missCount{0};
    };

    /** A key's stripe follows its binary hash so the checkpoint and
     * its interned binary share one lock. */
    static unsigned
    shardOf(const Key &key)
    {
        return cacheShardOf(key.binaryHash);
    }

    std::array<Shard, numCacheShards> shards;
};

} // namespace gt::gpu

#endif // GT_GPU_PLAN_CACHE_HH
