/**
 * @file
 * Per-dispatch execution profiles.
 *
 * An ExecProfile is the ground truth the rest of the system consumes:
 * dynamic instruction counts, per-basic-block execution counts,
 * opcode-class and SIMD-width histograms, and memory traffic, for one
 * kernel dispatch aggregated across all hardware threads — the same
 * aggregation convention the paper uses for data below kernel
 * granularity. Everything except the block counts and cycles is
 * derived exactly from blockCounts x static block contents.
 */

#ifndef GT_GPU_EXEC_PROFILE_HH
#define GT_GPU_EXEC_PROFILE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "isa/kernel.hh"

namespace gt::gpu
{

/** Number of distinct SIMD width bins (1, 2, 4, 8, 16). */
constexpr int numSimdBins = 5;

/** @return the histogram bin for a SIMD width (1->0 ... 16->4). */
int simdBin(uint8_t width);

/** @return the SIMD width for a histogram bin (0->1 ... 4->16). */
uint8_t simdBinWidth(int bin);

/** Execution statistics for one kernel dispatch. */
struct ExecProfile
{
    /** Hardware threads the dispatch ran (ceil(globalSize/simd)). */
    uint64_t numThreads = 0;

    /** Dynamic application instructions (instrumentation excluded). */
    uint64_t dynInstrs = 0;

    /** Dynamic injected instrumentation instructions. */
    uint64_t instrumentationInstrs = 0;

    /** Execution count of each basic block, summed over threads. */
    std::vector<uint64_t> blockCounts;

    /** Dynamic count per opcode (application instructions only). */
    std::array<uint64_t, isa::numOpcodes> opcodeCounts{};

    /** Dynamic count per opcode class (application only). */
    std::array<uint64_t, isa::numOpClasses> classCounts{};

    /** Dynamic count per SIMD width bin (application only). */
    std::array<uint64_t, numSimdBins> simdCounts{};

    /** Bytes moved by Send messages, summed over threads. */
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;

    /** Dynamic Send message count. */
    uint64_t sendCount = 0;

    /**
     * EU issue cycles summed across threads, including
     * instrumentation cost. The timing model turns this into time.
     */
    double threadCycles = 0.0;

    /**
     * Fill the derived fields (opcode/class/SIMD counts, bytes,
     * dynInstrs, threadCycles) from blockCounts and the static
     * contents of @p bin. blockCounts must already be populated.
     */
    void deriveFromBlocks(const isa::KernelBinary &bin);

    /** Accumulate another profile (e.g. across dispatches). */
    void accumulate(const ExecProfile &other);
};

/**
 * @return the EU issue-cycle cost of one instruction. SIMD lanes
 * beyond the EU's FPU width take extra issue cycles; transcendental
 * operations and sends are multi-cycle; instrumentation instructions
 * pay a trace-buffer-update cost.
 */
double issueCycles(const isa::Instruction &ins, uint32_t fpu_lanes);

} // namespace gt::gpu

#endif // GT_GPU_EXEC_PROFILE_HH
