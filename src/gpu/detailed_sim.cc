#include "gpu/detailed_sim.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "gpu/eu_pipeline.hh"
#include "sched/thread_pool.hh"

namespace gt::gpu
{

DetailedSimulator::DetailedSimulator(const DeviceConfig &config_,
                                     double freq_mhz)
    : config(config_),
      freq(freq_mhz > 0.0 ? freq_mhz : config_.maxFreqMhz)
{
}

DetailedResult
DetailedSimulator::simulate(Executor &executor,
                            const Dispatch &dispatch)
{
    return simulate(executor.checkpoint(dispatch));
}

DetailedResult
DetailedSimulator::simulate(const DetailedCheckpoint &cp) const
{
    GT_ASSERT(cp.binary, "checkpoint without binary");

    // Simulate one EU with its SMT contexts; every context replays
    // the same homogeneous trace.
    uint32_t num_ctx = (uint32_t)std::min<uint64_t>(
        config.threadsPerEu, cp.numThreads);

    double freq_hz = freq * 1e6;
    EuParams params;
    params.aluLatency = aluLatency;
    params.mathLatency = mathLatency;
    params.fpuLanes = config.fpuLanesPerEu;
    params.bwBytesPerCycle =
        config.memBandwidthGBs * 1e9 / (double)config.numEus / freq_hz;
    params.memLatCycles = config.memLatencyNs * 1e-9 * freq_hz;

    EuResult eu = simulateEu(*cp.binary, cp.trace, num_ctx, params);

    // Scale one EU's cycles to the whole dispatch.
    double threads_per_wave =
        (double)num_ctx * (double)config.numEus;
    double waves = std::ceil((double)cp.numThreads /
                             threads_per_wave);

    DetailedResult result;
    result.simulatedInstrs = eu.issued;
    result.cycles = eu.cycles * waves * cp.truncation;
    result.seconds = result.cycles / freq_hz +
        config.dispatchOverheadUs * 1e-6;
    if (cp.dynInstrs > 0)
        result.spi = result.seconds / (double)cp.dynInstrs;
    return result;
}

std::vector<DetailedResult>
DetailedSimulator::simulateBatch(
    const std::vector<const DetailedCheckpoint *> &cells,
    Backend backend, sched::ThreadPool *pool) const
{
    std::vector<DetailedResult> results(cells.size());
    auto cell = [&](size_t i) {
        if (cells[i])
            results[i] = simulate(*cells[i]);
    };
    if (backend == Backend::Serial) {
        for (size_t i = 0; i < cells.size(); ++i)
            cell(i);
        return results;
    }
    // Each replay cell is an EU-homogeneous wave replay, so cells
    // are the machine's partition grain; per-index slots keep the
    // outcome independent of the worker count.
    sched::ThreadPool &p =
        pool ? *pool : sched::ThreadPool::global();
    p.parallelFor(cells.size(), cell, 1);
    return results;
}

DetailedSimulator::Backend
DetailedSimulator::defaultBackend()
{
    static const Backend selected = [] {
        Backend b = Backend::Parallel;
        if (const char *env = std::getenv("GT_DETAILED");
            env && *env != '\0') {
            std::string value(env);
            if (value == "serial") {
                b = Backend::Serial;
            } else if (value != "parallel") {
                fatal("invalid GT_DETAILED value '", value,
                      "' (expected 'serial' or 'parallel')");
            }
        }
        inform("detailed: ", backendName(b), " machine layer "
               "(override with GT_DETAILED=serial|parallel)");
        return b;
    }();
    return selected;
}

const char *
DetailedSimulator::backendName(Backend b)
{
    return b == Backend::Serial ? "serial" : "parallel";
}

} // namespace gt::gpu
