#include "gpu/exec_profile.hh"

#include "common/logging.hh"

namespace gt::gpu
{

int
simdBin(uint8_t width)
{
    switch (width) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
      case 16: return 4;
      default:
        panic("invalid SIMD width ", (int)width);
    }
}

uint8_t
simdBinWidth(int bin)
{
    GT_ASSERT(bin >= 0 && bin < numSimdBins, "bad SIMD bin");
    return (uint8_t)(1u << bin);
}

double
issueCycles(const isa::Instruction &ins, uint32_t fpu_lanes)
{
    using isa::Opcode;
    double lanes = (double)ins.simdWidth;
    double base = lanes / (double)fpu_lanes;
    if (base < 1.0)
        base = 1.0;

    switch (ins.op) {
      case Opcode::FDiv:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp:
      case Opcode::Log:
        // Extended-math pipe: roughly 4x the throughput cost.
        return base * 4.0;
      case Opcode::Send:
        // Message dispatch occupies the issue port; memory latency
        // itself is modeled separately by the timing model.
        return base + 2.0;
      case Opcode::ProfCount:
      case Opcode::ProfAdd:
      case Opcode::ProfMem:
        // Trace-buffer accumulate: a scattered read-modify-write
        // into the shared buffer.
        return 12.0;
      case Opcode::ProfTimer:
        // Timer-register read; the paper reports <10 cycles.
        return 10.0;
      default:
        return base;
    }
}

void
ExecProfile::deriveFromBlocks(const isa::KernelBinary &bin)
{
    GT_ASSERT(blockCounts.size() == bin.blocks.size(),
              "block count vector does not match binary");

    dynInstrs = 0;
    instrumentationInstrs = 0;
    bytesRead = 0;
    bytesWritten = 0;
    sendCount = 0;
    opcodeCounts.fill(0);
    classCounts.fill(0);
    simdCounts.fill(0);

    for (const auto &block : bin.blocks) {
        uint64_t execs = blockCounts[block.id];
        if (execs == 0)
            continue;
        for (const auto &ins : block.instrs) {
            isa::OpClass cls = ins.cls();
            if (cls == isa::OpClass::Instrumentation) {
                instrumentationInstrs += execs;
                continue;
            }
            dynInstrs += execs;
            opcodeCounts[(int)ins.op] += execs;
            classCounts[(int)cls] += execs;
            simdCounts[simdBin(ins.simdWidth)] += execs;
            if (ins.op == isa::Opcode::Send) {
                uint64_t bytes = (uint64_t)ins.send.bytesPerLane *
                    ins.simdWidth * execs;
                if (ins.send.isWrite)
                    bytesWritten += bytes;
                else
                    bytesRead += bytes;
                sendCount += execs;
            }
        }
    }
}

void
ExecProfile::accumulate(const ExecProfile &other)
{
    numThreads += other.numThreads;
    dynInstrs += other.dynInstrs;
    instrumentationInstrs += other.instrumentationInstrs;
    bytesRead += other.bytesRead;
    bytesWritten += other.bytesWritten;
    sendCount += other.sendCount;
    threadCycles += other.threadCycles;
    for (int i = 0; i < isa::numOpcodes; ++i)
        opcodeCounts[i] += other.opcodeCounts[i];
    for (int i = 0; i < isa::numOpClasses; ++i)
        classCounts[i] += other.classCounts[i];
    for (int i = 0; i < numSimdBins; ++i)
        simdCounts[i] += other.simdCounts[i];
    // Block counts are only meaningful when both profiles refer to
    // the same binary; accumulate elementwise where shapes match.
    if (blockCounts.size() == other.blockCounts.size()) {
        for (size_t i = 0; i < blockCounts.size(); ++i)
            blockCounts[i] += other.blockCounts[i];
    }
}

} // namespace gt::gpu
