#include "gpu/timing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gt::gpu
{

TimingModel::TimingModel(const DeviceConfig &config_,
                         const TrialConfig &trial)
    : config(config_),
      freq(trial.freqMhz > 0.0 ? trial.freqMhz : config_.maxFreqMhz),
      sigma(trial.noiseSigma),
      noise(trial.noiseSeed)
{
    GT_ASSERT(trial.freqMhz >= 0.0, "negative GPU frequency");
    GT_ASSERT(freq > 0.0, "non-positive GPU frequency");
    GT_ASSERT(sigma >= 0.0, "negative noise sigma");
}

KernelTime
TimingModel::kernelTime(const ExecProfile &profile)
{
    KernelTime t;

    // How much of the machine the dispatch can occupy.
    uint64_t concurrency = std::min<uint64_t>(
        profile.numThreads, config.totalHwThreads());
    double eus_busy = std::min<double>(
        config.numEus,
        std::max<double>(1.0, (double)concurrency /
                                  (double)config.threadsPerEu));

    // EU issue-throughput bound: total issue cycles spread over the
    // busy EUs, paid at the trial clock.
    double freq_hz = freq * 1e6;
    t.computeSeconds = profile.threadCycles / (eus_busy * freq_hz);

    // DRAM bandwidth bound: frequency-independent. Instrumentation
    // instructions move trace-buffer data (a read-modify-write of an
    // 8-byte slot), which is how profiling overhead reaches even
    // memory-bound kernels.
    double bytes =
        (double)profile.bytesRead + (double)profile.bytesWritten +
        (double)profile.instrumentationInstrs * 64.0;
    t.memorySeconds = bytes / (config.memBandwidthGBs * 1e9);

    // Exposed-latency bound: each send round-trip can be hidden by
    // SMT threads and memory-level parallelism within a thread.
    constexpr double mlp = 4.0;
    double hiding = std::max<double>(1.0, (double)concurrency * mlp);
    t.latencySeconds = (double)profile.sendCount *
        (config.memLatencyNs * 1e-9) / hiding;

    double body = std::max(
        {t.computeSeconds, t.memorySeconds, t.latencySeconds});
    double overhead = config.dispatchOverheadUs * 1e-6;

    double jitter = 1.0;
    if (sigma > 0.0)
        jitter = noise.nextLogNormal(0.0, sigma);

    t.seconds = (body + overhead) * jitter;
    GT_ASSERT(std::isfinite(t.seconds) && t.seconds > 0.0,
              "non-finite kernel time: compute=", t.computeSeconds,
              " memory=", t.memorySeconds,
              " latency=", t.latencySeconds, " jitter=", jitter,
              " cycles=", profile.threadCycles,
              " bytes=", profile.bytesRead + profile.bytesWritten,
              " sends=", profile.sendCount,
              " threads=", profile.numThreads);
    return t;
}

} // namespace gt::gpu
