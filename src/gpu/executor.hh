/**
 * @file
 * Functional execution of kernel dispatches on the modeled GPU.
 *
 * The executor interprets kernel binaries over hardware threads, each
 * covering simdWidth work items. Two modes are offered:
 *
 *  - Full: every instruction of every thread is evaluated, including
 *    memory contents. Required for cache simulation (per-access
 *    callbacks) and used by the semantic unit tests.
 *  - Fast: only control-relevant instructions (see isa/slice.hh) are
 *    evaluated; everything else is counted at basic-block grain. When
 *    a kernel's control flow is thread-invariant, one representative
 *    thread runs and counts scale by the thread count, which is what
 *    makes profiling applications with paper-scale dynamic
 *    instruction counts (10^11+) tractable.
 *
 * Orthogonally to the mode, two interpreter *backends* implement both
 * modes (selectable with GT_INTERP=switch|uops, default uops):
 *
 *  - Uops (default): binaries are predecoded at plan time into
 *    operand-shape-specialized micro-ops chained into superblocks
 *    (see isa/uop.hh) and dispatched through a flat function table.
 *  - Switch: the original per-instruction opcode-switch interpreter,
 *    kept as the reference the uop backend is differentially tested
 *    against — both backends produce bitwise-identical profiles,
 *    trace deltas, and block traces.
 *
 * Instrumentation pseudo-instructions injected by the GT-Pin rewriter
 * execute in both modes, accumulating into the TraceBuffer, so
 * profiles are produced identically regardless of mode.
 *
 * Independently of the backend, the uop interpreter offers a gang
 * *execution mode* (GT_EXEC=scalar|gang, default gang): when Full
 * mode runs threads explicitly, up to gangSize threads are reset into
 * one structure-of-arrays context and driven through the shared uop
 * stream in lockstep, so each handler invocation is a single
 * vectorizable loop over all gang lanes instead of one short loop per
 * thread. Threads whose control flow leaves the gang's consensus
 * superblock retire and finish on the scalar path; kernels whose
 * stores the plan-time gang-safety proof (isa::analyzeGangSafety)
 * cannot show to be order-invisible run scalar. Either way every
 * observable — profiles, trace deltas, memory, trace-record order —
 * is bitwise identical to scalar execution.
 */

#ifndef GT_GPU_EXECUTOR_HH
#define GT_GPU_EXECUTOR_HH

#include <functional>
#include <memory>
#include <unordered_map>

#include "gpu/device_config.hh"
#include "gpu/exec_profile.hh"
#include "gpu/memory.hh"
#include "gpu/memtrace.hh"
#include "gpu/plan_cache.hh"
#include "isa/slice.hh"
#include "isa/uop.hh"

namespace gt::gpu
{

struct DetailedCheckpoint;
struct UopSt;

/** One kernel launch: binary, ND-range shape, and argument values. */
struct Dispatch
{
    const isa::KernelBinary *binary = nullptr;

    /** Total work items (the OpenCL global work size). */
    uint64_t globalSize = 0;

    /** Work items per hardware thread (8 or 16 on GEN). */
    uint8_t simdWidth = 16;

    /** 32-bit argument values (buffer args pass device addresses). */
    std::vector<uint32_t> args;

    /** @return hardware threads needed to cover the ND-range. */
    uint64_t
    numThreads() const
    {
        return (globalSize + simdWidth - 1) / simdWidth;
    }
};

/** Per-access callback for cache simulation (Full mode only). */
using MemAccessFn =
    std::function<void(uint64_t addr, uint32_t bytes, bool is_write)>;

// The batched alternative (MemBatch/MemBatchFn/MemTraceSink) lives in
// gpu/memtrace.hh; run() accepts either delivery mode.

/** Interprets dispatches and produces execution profiles. */
class Executor
{
  public:
    enum class Mode { Full, Fast };

    /** Interpreter implementation (see the file comment). */
    enum class Backend { Switch, Uops };

    /** Thread interleaving of Full-mode explicit execution. */
    enum class ExecMode { Scalar, Gang };

    /** Threads ganged into one lockstep SoA context. */
    static constexpr int gangSize = 8;

    Executor(const DeviceConfig &config, DeviceMemory &memory);
    ~Executor();

    /**
     * Execute @p dispatch and return its profile.
     *
     * @param mode       Full or Fast (Fast may fall back to Full when
     *                   control flow depends on loaded data)
     * @param trace      trace buffer for instrumentation ops (may be
     *                   null when the binary is uninstrumented)
     * @param mem_access invoked for every memory access; forces Full
     *                   mode and per-thread execution when set
     * @param mem_batch  bulk alternative to @p mem_access: accesses
     *                   are appended to the executor's SoA trace
     *                   buffer and flushed in fixed-size chunks, in
     *                   execution order; also forces Full mode. At
     *                   most one of the two may be set.
     */
    ExecProfile run(const Dispatch &dispatch, Mode mode,
                    TraceBuffer *trace = nullptr,
                    const MemAccessFn &mem_access = {},
                    const MemBatchFn &mem_batch = {});

    /**
     * Cap on application instructions one thread may execute before
     * the executor declares a runaway kernel and panics.
     */
    void setThreadInstrLimit(uint64_t limit) { threadInstrLimit = limit; }

    /**
     * Cap on the number of threads executed explicitly when control
     * flow is thread-dependent in Fast mode; beyond it, an
     * evenly-spaced sample of threads runs and counts are scaled.
     */
    void setMaxExplicitThreads(uint64_t n) { maxExplicitThreads = n; }

    /**
     * Records per flushed chunk when run() is given a batch consumer.
     * Exposed so tests can exercise chunk-boundary behaviour; the
     * default (MemTraceSink::defaultChunk) suits production use.
     */
    void setMemTraceChunk(size_t records) { memTraceChunk = records; }

    size_t memTraceChunkSize() const { return memTraceChunk; }

    /** Select the interpreter backend (default: defaultBackend()). */
    void setBackend(Backend b) { backendSel = b; }

    Backend backend() const { return backendSel; }

    /** Process-wide default: GT_INTERP=switch|uops, else Uops. */
    static Backend defaultBackend();

    /** @return "switch" or "uops". */
    static const char *backendName(Backend b);

    /** Select the execution mode (default: defaultExecMode()). */
    void setExecMode(ExecMode m) { execSel = m; }

    ExecMode execMode() const { return execSel; }

    /** Process-wide default: GT_EXEC=scalar|gang (fatal on other
     * values), else Gang. */
    static ExecMode defaultExecMode();

    /** @return "scalar" or "gang". */
    static const char *execModeName(ExecMode m);

    /** Relevance analysis for @p bin, computed once and cached. */
    const isa::Relevance &relevance(const isa::KernelBinary *bin);

    /** Gang-safety analysis for @p bin, computed once and cached. */
    const isa::GangSafety &gangSafety(const isa::KernelBinary *bin);

    /**
     * Diagnostic: did the most recent run() drive threads through the
     * gang path (as opposed to scalar execution or representative/
     * sampled Fast mode)? Lets tests assert that gang coverage is
     * real rather than silently falling back.
     */
    bool lastRunGanged() const { return lastGanged; }

    /**
     * Record the basic-block sequence executed by one thread of
     * @p dispatch (Fast mode), up to @p max_len entries. Used by the
     * detailed simulator to replay control flow.
     */
    std::vector<uint32_t> blockTrace(const Dispatch &dispatch,
                                     uint64_t thread_idx,
                                     uint64_t max_len = 4'000'000);

    /**
     * Functional pre-pass hook for the detailed-simulation stack:
     * record the representative thread's block trace (capped at
     * @p trace_cap entries) and run @p dispatch in Fast mode once,
     * packaging both plus the derived truncation scaling as a
     * DetailedCheckpoint (gpu/detailed_checkpoint.hh). The result is
     * design-point independent, so one checkpoint serves every
     * machine configuration a validation sweep replays it under.
     */
    DetailedCheckpoint checkpoint(const Dispatch &dispatch,
                                  uint64_t trace_cap = 4'000'000);

    /**
     * Drop cached analyses (call when binaries are re-JITted). Only
     * the local per-address map is cleared; a shared plan cache is
     * content-addressed, so its entries stay valid across re-JITs by
     * construction.
     */
    void invalidateAnalyses() { plans.clear(); }

    /**
     * Attach a cross-driver plan cache (null detaches). On a local
     * plan miss the executor consults the cache by binary content
     * hash and adopts the published plan; on a cache miss it builds
     * the plan fully, publishes it (first insert wins), and adopts
     * the canonical copy. Plans embed device-dependent issue cycles,
     * so the cache must be bound to a device with the same FPU width.
     */
    void setSharedPlanCache(SharedPlanCache *cache);

    SharedPlanCache *sharedPlanCache() const { return sharedPlans; }

  private:
    struct ThreadCtx;
    struct GangCtx;

    /** Per-binary execution plan (shared across drivers; see
     * gpu/plan_cache.hh). */
    using Plan = ExecPlan;

    /** Local adoption of a plan: the owning binary's generation stamp
     * tells a re-JIT landing at the same address apart. */
    struct LocalPlan
    {
        uint64_t generation = 0;
        std::shared_ptr<const ExecPlan> plan;
    };

    const Plan &plan(const isa::KernelBinary *bin);

    /** Build the full plan for @p bin (pure; does not cache). */
    ExecPlan buildPlan(const isa::KernelBinary &bin) const;

    /**
     * Run one hardware thread (switch backend).
     * @return issue cycles consumed by the thread.
     */
    double runThread(const Dispatch &dispatch, uint64_t thread_idx,
                     bool fast, const Plan &plan, ThreadCtx &ctx,
                     std::vector<uint64_t> &block_counts,
                     std::vector<uint32_t> &dirty_counts,
                     std::vector<uint64_t> &trace_deltas,
                     std::vector<uint32_t> &dirty_deltas,
                     const MemAccessFn &mem_access,
                     MemTraceSink *mem_sink,
                     std::vector<uint32_t> *block_trace = nullptr,
                     uint64_t trace_max_len = 0);

    /**
     * Run one hardware thread (uop backend). @p sb_counts is indexed
     * by superblock, one increment per superblock entry; the caller
     * expands entries over superblock members to recover exact
     * per-block counts.
     * @return issue cycles consumed by the thread.
     */
    double runThreadUops(const Dispatch &dispatch, uint64_t thread_idx,
                         bool fast, const Plan &plan, ThreadCtx &ctx,
                         std::vector<uint64_t> &sb_counts,
                         std::vector<uint32_t> &dirty_counts,
                         std::vector<uint64_t> &trace_deltas,
                         std::vector<uint32_t> &dirty_deltas,
                         const MemAccessFn &mem_access,
                         MemTraceSink *mem_sink,
                         std::vector<uint32_t> *block_trace = nullptr,
                         uint64_t trace_max_len = 0);

    /**
     * Threaded superblock walk of the uop backend starting at
     * superblock @p cur, with @p ctx / @p st already wired. Shared by
     * runThreadUops (whole threads) and runGang (scalar continuation
     * of a slot retired from its gang on divergence).
     * @return final issue-cycle count of the thread.
     */
    double uopRun(const Dispatch &dispatch, uint64_t thread_idx,
                  bool fast, const Plan &plan, ThreadCtx &ctx,
                  UopSt &st, uint32_t cur,
                  std::vector<uint64_t> &sb_counts,
                  std::vector<uint32_t> &dirty_counts);

    /**
     * @return whether @p dispatch's concrete argument values satisfy
     * the plan's gang-safety verdict (region form proven, SIMD width
     * acceptable, no address wrap, dispatch-time region checks
     * disjoint).
     */
    bool gangDispatchSafe(const Dispatch &dispatch, const Plan &p) const;

    /**
     * Run @p count consecutive threads (first_thread ...) through the
     * uop stream in SoA lockstep, retiring divergent slots onto the
     * scalar path. Accumulates into the same scratch counters as the
     * scalar runners; per-slot memory-trace records are drained into
     * @p mem_sink in thread order afterwards so the record stream is
     * bitwise identical to scalar execution. @p slot_cycles receives
     * each slot's final issue-cycle count.
     */
    void runGang(const Dispatch &dispatch, uint64_t first_thread,
                 int count, const Plan &plan,
                 std::vector<uint64_t> &sb_counts,
                 std::vector<uint32_t> &dirty_counts,
                 std::vector<uint64_t> &trace_deltas,
                 std::vector<uint32_t> &dirty_deltas,
                 MemTraceSink *mem_sink, double *slot_cycles);

    const DeviceConfig config;
    DeviceMemory &memory;
    uint64_t threadInstrLimit = 200'000'000;
    uint64_t maxExplicitThreads = 1024;
    bool lastGanged = false;
    Backend backendSel;
    ExecMode execSel;
    std::unordered_map<const isa::KernelBinary *, LocalPlan> plans;
    SharedPlanCache *sharedPlans = nullptr;

    /** Reusable per-run scratch: the architectural thread context and
     * the per-thread count/delta accumulators, hoisted out of the
     * per-simulated-thread loop. */
    std::unique_ptr<ThreadCtx> ctxBuf;
    std::unique_ptr<GangCtx> gangBuf;
    std::vector<uint64_t> scratchCounts;
    std::vector<uint64_t> scratchDeltas;
    /** Indices of scratchCounts / scratchDeltas entries touched by the
     * current thread (or gang), so the per-thread flush and clear are
     * proportional to blocks entered rather than kernel size. */
    std::vector<uint32_t> dirtyCounts;
    std::vector<uint32_t> dirtyDeltas;
    /** Per-dispatch trace-delta accumulator (reused across runs). */
    std::vector<uint64_t> traceDeltaBuf;

    /** SoA memory-trace buffer, armed per dispatch when run() is
     * given a batch consumer. Storage persists across dispatches. */
    MemTraceSink memSink;
    size_t memTraceChunk = MemTraceSink::defaultChunk;
};

} // namespace gt::gpu

#endif // GT_GPU_EXECUTOR_HH
