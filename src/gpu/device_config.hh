/**
 * @file
 * Parametric description of a modeled GPU.
 *
 * The paper's test system is an Ivy Bridge HD4000 (16 EUs in two
 * subslices, 8 hardware threads per EU, 1150 MHz peak, 332.8 GFLOPS);
 * its cross-generation validation adds a Haswell HD4600 (20 EUs).
 * Both are provided as presets; any other design point can be
 * constructed for design-space exploration.
 */

#ifndef GT_GPU_DEVICE_CONFIG_HH
#define GT_GPU_DEVICE_CONFIG_HH

#include <cstdint>
#include <string>

namespace gt::gpu
{

/** Static hardware parameters of one GPU design point. */
struct DeviceConfig
{
    std::string name = "generic";
    std::string generation = "generic";

    uint32_t numEus = 16;          //!< execution units
    uint32_t numSubslices = 2;     //!< EU grouping (8 EUs each on IVB)
    uint32_t threadsPerEu = 8;     //!< SMT hardware threads per EU
    uint32_t fpuLanesPerEu = 4;    //!< 32-bit FPU lanes per EU pipe

    double maxFreqMhz = 1150.0;    //!< maximum GPU clock

    /** DRAM bandwidth in bytes per nanosecond (GB/s numerically). */
    double memBandwidthGBs = 25.6;

    /** Uncontended memory round-trip latency in nanoseconds. */
    double memLatencyNs = 180.0;

    /** Shared LLC slice capacity in bytes. */
    uint64_t llcBytes = 4ull << 20;

    /** Fixed host-side cost to launch one kernel, in microseconds. */
    double dispatchOverheadUs = 8.0;

    /** Device global memory capacity in bytes. */
    uint64_t memBytes = 64ull << 20;

    /** Total simultaneously resident hardware threads. */
    uint32_t totalHwThreads() const { return numEus * threadsPerEu; }

    /** Peak single-precision GFLOPS (2 flops/lane/cycle, MAD). */
    double
    peakGflops() const
    {
        return numEus * fpuLanesPerEu * 2.0 * 2.0 * maxFreqMhz / 1e3;
    }

    /** The paper's profiling platform: Ivy Bridge Intel HD 4000. */
    static DeviceConfig hd4000();

    /** The paper's validation platform: Haswell Intel HD 4600. */
    static DeviceConfig hd4600();
};

} // namespace gt::gpu

#endif // GT_GPU_DEVICE_CONFIG_HH
