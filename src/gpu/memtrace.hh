/**
 * @file
 * Batched SoA memory-trace pipeline.
 *
 * The executor's Full mode can surface every global memory access to
 * profiling tools (GT-Pin's trace-driven cache simulation). The
 * original delivery mechanism is one std::function call per lane per
 * send instruction — an opaque indirect call in the interpreter's
 * innermost loop. This module provides the batched alternative, the
 * trace-buffer-and-post-process structure the paper's GT-Pin uses for
 * every other statistic: send handlers append packed records into a
 * structure-of-arrays buffer owned by the Executor, and the buffer is
 * flushed in fixed-size chunks to a bulk consumer. Appends happen in
 * exact execution order and chunks are delivered in order, so a
 * consumer that walks each chunk left to right observes the same
 * access sequence the per-access callback would have delivered —
 * which is what keeps cache-simulation results bitwise identical
 * between the two delivery modes (GT_MEMTRACE=callback|batch).
 */

#ifndef GT_GPU_MEMTRACE_HH
#define GT_GPU_MEMTRACE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace gt::gpu
{

/**
 * One chunk of the memory-access trace, structure-of-arrays: parallel
 * address and metadata columns. A metadata word packs the access size
 * in its low bits and the write flag in its top bit.
 */
struct MemBatch
{
    static constexpr uint32_t writeBit = 0x8000'0000u;
    static constexpr uint32_t bytesMask = 0x7fff'ffffu;

    const uint64_t *addrs = nullptr;
    const uint32_t *metas = nullptr;
    size_t count = 0;

    static constexpr bool
    isWrite(uint32_t meta)
    {
        return (meta & writeBit) != 0;
    }

    static constexpr uint32_t
    bytes(uint32_t meta)
    {
        return meta & bytesMask;
    }
};

/** Bulk consumer invoked once per flushed chunk, in trace order. */
using MemBatchFn = std::function<void(const MemBatch &)>;

/**
 * The per-dispatch SoA trace buffer. The Executor owns one, arms it
 * with begin() when a dispatch wants batched trace delivery, appends
 * from the send handlers, and drains the final partial chunk with
 * finish(). Storage is retained across dispatches, so steady-state
 * appends never allocate.
 */
class MemTraceSink
{
  public:
    /** Default records per chunk (see Executor::setMemTraceChunk). */
    static constexpr size_t defaultChunk = 8192;

    /**
     * Arm the sink for one dispatch: flush @p chunk-record chunks to
     * @p fn. @p fn must outlive the dispatch.
     */
    void begin(const MemBatchFn *fn, size_t chunk);

    /** Append one access record, flushing when the chunk fills. */
    void
    append(uint64_t addr, uint32_t bytes, bool is_write)
    {
        addrBuf[n] = addr;
        metaBuf[n] = bytes | (is_write ? MemBatch::writeBit : 0);
        if (++n == cap)
            flush();
    }

    /** Flush the trailing partial chunk and disarm the sink. */
    void finish();

  private:
    void flush();

    std::vector<uint64_t> addrBuf;
    std::vector<uint32_t> metaBuf;
    size_t n = 0;
    size_t cap = 0;
    const MemBatchFn *fn = nullptr;
};

} // namespace gt::gpu

#endif // GT_GPU_MEMTRACE_HH
