/**
 * @file
 * LuxMark-style raw-performance score.
 *
 * The paper compares its two validation platforms with LuxMark, an
 * OpenCL ray-tracing benchmark (HD4000 scored 269, HD4600 scored
 * 351). This analogue times a fixed, render-shaped synthetic
 * workload profile on a device's timing model and converts the
 * throughput to a score, calibrated so the HD4000 preset lands at
 * the paper's 269.
 */

#ifndef GT_GPU_LUXMARK_HH
#define GT_GPU_LUXMARK_HH

#include "gpu/device_config.hh"

namespace gt::gpu
{

/** @return the LuxMark-style score of @p config (bigger is better). */
double luxmarkScore(const DeviceConfig &config);

} // namespace gt::gpu

#endif // GT_GPU_LUXMARK_HH
