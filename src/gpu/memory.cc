#include "gpu/memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace gt::gpu
{

DeviceMemory::DeviceMemory(uint64_t size_bytes)
    : bytes(size_bytes, 0)
{
    GT_ASSERT(size_bytes > 0, "device memory must be non-empty");
}

uint64_t
DeviceMemory::allocate(uint64_t size, uint64_t align)
{
    GT_ASSERT(align > 0 && (align & (align - 1)) == 0,
              "alignment must be a power of two");
    if (size == 0)
        size = 1;
    uint64_t base = (bumpPtr + align - 1) & ~(align - 1);
    if (base + size > bytes.size()) {
        fatal("device out of memory: need ", size, " bytes, ",
              bytes.size() - bumpPtr, " free");
    }
    bumpPtr = base + size;
    return base;
}

void
DeviceMemory::resetAllocator()
{
    bumpPtr = 0;
}

void
DeviceMemory::copyIn(uint64_t addr, const void *src, uint64_t size)
{
    checkRange(addr, size);
    std::memcpy(bytes.data() + addr, src, size);
}

void
DeviceMemory::copyOut(uint64_t addr, void *dst, uint64_t size) const
{
    checkRange(addr, size);
    std::memcpy(dst, bytes.data() + addr, size);
}

void
DeviceMemory::fill(uint64_t addr, uint8_t value, uint64_t size)
{
    checkRange(addr, size);
    std::memset(bytes.data() + addr, value, size);
}

void
TraceBuffer::reserveSlots(uint32_t num_slots)
{
    if (num_slots > slots.size())
        slots.resize(num_slots, 0);
}

void
TraceBuffer::add(uint32_t slot, uint64_t delta)
{
    GT_ASSERT(slot < slots.size(), "trace buffer slot ", slot,
              " out of range (", slots.size(), " slots)");
    slots[slot] += delta;
}

uint64_t
TraceBuffer::read(uint32_t slot) const
{
    GT_ASSERT(slot < slots.size(), "trace buffer slot ", slot,
              " out of range (", slots.size(), " slots)");
    return slots[slot];
}

void
TraceBuffer::clear()
{
    std::fill(slots.begin(), slots.end(), 0);
}

} // namespace gt::gpu
