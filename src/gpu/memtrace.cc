#include "gpu/memtrace.hh"

#include "common/logging.hh"

namespace gt::gpu
{

void
MemTraceSink::begin(const MemBatchFn *fn_, size_t chunk)
{
    GT_ASSERT(fn_ && *fn_, "mem-trace sink armed without a consumer");
    GT_ASSERT(chunk > 0, "mem-trace chunk size must be positive");
    fn = fn_;
    cap = chunk;
    n = 0;
    // resize (not reserve): append() writes through operator[].
    addrBuf.resize(cap);
    metaBuf.resize(cap);
}

void
MemTraceSink::flush()
{
    MemBatch batch;
    batch.addrs = addrBuf.data();
    batch.metas = metaBuf.data();
    batch.count = n;
    n = 0;
    (*fn)(batch);
}

void
MemTraceSink::finish()
{
    if (n > 0)
        flush();
    fn = nullptr;
}

} // namespace gt::gpu
