/**
 * @file
 * Analytic "native hardware" timing model.
 *
 * Plays the role of the physical GPU's clock in the paper: the
 * CoFluent-analogue tracer asks it how long each kernel invocation
 * took, and those per-kernel times feed the measured/projected SPI
 * computations of Section V. The model is a roofline over three
 * bounds — EU issue throughput, memory bandwidth, and exposed memory
 * latency — so the compute/memory balance of a kernel determines how
 * its time responds to frequency (compute scales with the clock,
 * DRAM does not) and to EU count (Ivy Bridge -> Haswell), which is
 * exactly what the paper's Fig. 8 validations exercise.
 *
 * A controlled log-normal noise term models run-to-run variation on
 * real hardware; each trial seeds its own noise stream, giving the
 * cross-trial validation something real to tolerate.
 */

#ifndef GT_GPU_TIMING_HH
#define GT_GPU_TIMING_HH

#include "common/rng.hh"
#include "gpu/device_config.hh"
#include "gpu/exec_profile.hh"

namespace gt::gpu
{

/** Per-trial execution conditions. */
struct TrialConfig
{
    /** GPU clock for this trial (defaults to the device maximum). */
    double freqMhz = 0.0;

    /** Seed of this trial's noise stream. */
    uint64_t noiseSeed = 1;

    /** Log-normal sigma of per-invocation noise (0 disables). */
    double noiseSigma = 0.02;
};

/** Breakdown of one kernel invocation's modeled time. */
struct KernelTime
{
    double seconds = 0.0;        //!< total wall time incl. overhead
    double computeSeconds = 0.0; //!< EU issue-bound component
    double memorySeconds = 0.0;  //!< bandwidth-bound component
    double latencySeconds = 0.0; //!< exposed-latency component
};

/** Computes kernel invocation times from execution profiles. */
class TimingModel
{
  public:
    TimingModel(const DeviceConfig &config, const TrialConfig &trial);

    /** Model the wall time of one dispatch given its profile. */
    KernelTime kernelTime(const ExecProfile &profile);

    /** The effective clock used by this model, in MHz. */
    double freqMhz() const { return freq; }

    const DeviceConfig &device() const { return config; }

  private:
    const DeviceConfig config;
    double freq;
    double sigma;
    Rng noise;
};

} // namespace gt::gpu

#endif // GT_GPU_TIMING_HH
