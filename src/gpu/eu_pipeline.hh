/**
 * @file
 * The detailed simulator's EU pipeline core.
 *
 * One in-order, scoreboarded SMT execution unit: a set of hardware
 * thread contexts replays a recorded basic-block trace against a
 * register/flag scoreboard, a round-robin issue port, per-opcode-class
 * dependent-use latencies, and a shared memory bandwidth queue. This
 * is the innermost layer of the detailed-simulation stack — a pure
 * function of (binary, trace, context count, machine parameters) with
 * no executor, driver, or threading dependencies — extracted from the
 * old monolithic DetailedSimulator::simulate() so it can be tested
 * and reasoned about on its own. The machine layer (detailed_sim.hh)
 * owns wave scaling, frequency conversion, and parallel fan-out; the
 * artifact layer (detailed_checkpoint.hh) owns the functional inputs.
 */

#ifndef GT_GPU_EU_PIPELINE_HH
#define GT_GPU_EU_PIPELINE_HH

#include <cstdint>
#include <vector>

#include "isa/kernel.hh"

namespace gt::gpu
{

/** Machine parameters of one EU, all in cycles or bytes/cycle. */
struct EuParams
{
    double aluLatency = 2.0;       //!< dependent-use ALU latency
    double mathLatency = 8.0;      //!< transcendental/divide latency
    uint32_t fpuLanes = 4;         //!< FPU lanes (issue-cycle cost)
    double bwBytesPerCycle = 0.0;  //!< this EU's bandwidth share
    double memLatCycles = 0.0;     //!< memory round-trip latency
};

/** Outcome of replaying one trace on one EU. */
struct EuResult
{
    double cycles = 0.0;      //!< busy cycles until the last write
    uint64_t issued = 0;      //!< instructions issued (all contexts)
};

/**
 * Replay @p trace (a sequence of basic-block indices into @p bin)
 * on one EU with @p num_ctx SMT contexts, each walking the same
 * homogeneous trace. Deterministic: the result depends only on the
 * arguments, never on threading or global state, so the machine
 * layer may evaluate independent replays concurrently.
 */
EuResult simulateEu(const isa::KernelBinary &bin,
                    const std::vector<uint32_t> &trace,
                    uint32_t num_ctx, const EuParams &params);

} // namespace gt::gpu

#endif // GT_GPU_EU_PIPELINE_HH
