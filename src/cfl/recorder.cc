#include "cfl/recorder.hh"

#include "common/logging.hh"

namespace gt::cfl
{

using ocl::ApiCallId;
using ocl::ApiCallRecord;

uint64_t
Recording::dispatchCount() const
{
    uint64_t n = 0;
    for (const auto &rec : calls) {
        if (rec.id == ApiCallId::EnqueueNDRangeKernel)
            ++n;
    }
    return n;
}

namespace
{

void
needArgs(const ApiCallRecord &rec, size_t n)
{
    if (rec.uargs.size() < n) {
        fatal("recording: call ", ocl::apiCallName(rec.id),
              " at index ", rec.callIndex, " has ", rec.uargs.size(),
              " arguments, needs ", n);
    }
}

/** Re-issue one recorded call against @p runtime. */
void
issueCall(const ApiCallRecord &rec, ocl::ClRuntime &runtime)
{
    switch (rec.id) {
      case ApiCallId::GetPlatformIds:
        runtime.getPlatformIds();
        break;
      case ApiCallId::GetDeviceIds:
        runtime.getDeviceIds();
        break;
      case ApiCallId::CreateContext:
        runtime.createContext();
        break;
      case ApiCallId::CreateCommandQueue:
        needArgs(rec, 1);
        runtime.createCommandQueue(
            ocl::Context{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::CreateProgramWithSource:
        needArgs(rec, 1);
        runtime.createProgramWithSource(
            ocl::Context{(uint32_t)rec.uargs[0]}, rec.sources);
        break;
      case ApiCallId::BuildProgram:
        needArgs(rec, 1);
        runtime.buildProgram(
            ocl::Program{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::CreateKernel:
        needArgs(rec, 1);
        runtime.createKernel(
            ocl::Program{(uint32_t)rec.uargs[0]},
            rec.kernelName);
        break;
      case ApiCallId::CreateBuffer:
        needArgs(rec, 2);
        runtime.createBuffer(
            ocl::Context{(uint32_t)rec.uargs[0]}, rec.uargs[1]);
        break;
      case ApiCallId::CreateImage2D:
        needArgs(rec, 4);
        runtime.createImage2D(
            ocl::Context{(uint32_t)rec.uargs[0]},
            (uint32_t)rec.uargs[1], (uint32_t)rec.uargs[2],
            (uint32_t)rec.uargs[3]);
        break;
      case ApiCallId::SetKernelArg:
        needArgs(rec, 4);
        if (rec.uargs[3]) {
            runtime.setKernelArg(
                ocl::Kernel{(uint32_t)rec.uargs[0]},
                (uint32_t)rec.uargs[1],
                ocl::Mem{(uint32_t)rec.uargs[2]});
        } else {
            runtime.setKernelArg(
                ocl::Kernel{(uint32_t)rec.uargs[0]},
                (uint32_t)rec.uargs[1],
                (uint32_t)rec.uargs[2]);
        }
        break;
      case ApiCallId::EnqueueWriteBuffer:
        needArgs(rec, 3);
        runtime.enqueueWriteBuffer(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Mem{(uint32_t)rec.uargs[1]}, rec.uargs[2],
            rec.payload);
        break;
      case ApiCallId::EnqueueFillBuffer:
        needArgs(rec, 5);
        runtime.enqueueFillBuffer(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Mem{(uint32_t)rec.uargs[1]},
            (uint32_t)rec.uargs[2], rec.uargs[3], rec.uargs[4]);
        break;
      case ApiCallId::EnqueueNDRangeKernel:
        needArgs(rec, 4);
        runtime.enqueueNDRangeKernel(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Kernel{(uint32_t)rec.uargs[1]}, rec.uargs[2],
            (uint8_t)rec.uargs[3]);
        break;
      case ApiCallId::Finish:
        needArgs(rec, 1);
        runtime.finish(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::Flush:
        needArgs(rec, 1);
        runtime.flush(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::WaitForEvents:
        runtime.waitForEvents({});
        break;
      case ApiCallId::EnqueueReadBuffer:
        needArgs(rec, 4);
        runtime.enqueueReadBuffer(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Mem{(uint32_t)rec.uargs[1]}, rec.uargs[2],
            rec.uargs[3]);
        break;
      case ApiCallId::EnqueueReadImage:
        needArgs(rec, 2);
        runtime.enqueueReadImage(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Mem{(uint32_t)rec.uargs[1]});
        break;
      case ApiCallId::EnqueueCopyBuffer:
        needArgs(rec, 4);
        runtime.enqueueCopyBuffer(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Mem{(uint32_t)rec.uargs[1]},
            ocl::Mem{(uint32_t)rec.uargs[2]}, rec.uargs[3]);
        break;
      case ApiCallId::EnqueueCopyImageToBuffer:
        needArgs(rec, 3);
        runtime.enqueueCopyImageToBuffer(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]},
            ocl::Mem{(uint32_t)rec.uargs[1]},
            ocl::Mem{(uint32_t)rec.uargs[2]});
        break;
      case ApiCallId::GetKernelWorkGroupInfo:
        needArgs(rec, 1);
        runtime.getKernelWorkGroupInfo(
            ocl::Kernel{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::GetEventProfilingInfo:
        needArgs(rec, 1);
        runtime.getEventProfilingInfo(
            ocl::Event{rec.uargs[0]});
        break;
      case ApiCallId::ReleaseMemObject:
        needArgs(rec, 1);
        runtime.releaseMemObject(
            ocl::Mem{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::ReleaseKernel:
        needArgs(rec, 1);
        runtime.releaseKernel(
            ocl::Kernel{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::ReleaseProgram:
        needArgs(rec, 1);
        runtime.releaseProgram(
            ocl::Program{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::ReleaseCommandQueue:
        needArgs(rec, 1);
        runtime.releaseCommandQueue(
            ocl::CommandQueue{(uint32_t)rec.uargs[0]});
        break;
      case ApiCallId::ReleaseContext:
        needArgs(rec, 1);
        runtime.releaseContext(
            ocl::Context{(uint32_t)rec.uargs[0]});
        break;
      default:
        fatal("recording contains unknown call id ",
              (int)rec.id);
    }
}

/** Field-wise FNV-1a, matching the isa::contentHash idiom. */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(uint64_t v)
    {
        for (int b = 0; b < 8; ++b) {
            h ^= (v >> (b * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }

    void
    mix(const std::string &s)
    {
        mix((uint64_t)s.size());
        for (char c : s) {
            h ^= (uint8_t)c;
            h *= 0x100000001b3ULL;
        }
    }
};

} // anonymous namespace

uint64_t
recordingContentHash(const Recording &recording)
{
    Fnv f;
    f.mix((uint64_t)recording.calls.size());
    for (const ApiCallRecord &rec : recording.calls) {
        f.mix((uint64_t)rec.id);
        f.mix(rec.callIndex);
        f.mix(rec.dispatchSeq);
        f.mix(rec.kernelName);
        f.mix(rec.globalWorkSize);
        f.mix(rec.argsHash);
        f.mix((uint64_t)rec.uargs.size());
        for (uint64_t u : rec.uargs)
            f.mix(u);
        f.mix((uint64_t)rec.payload.size());
        for (uint8_t b : rec.payload) {
            f.h ^= b;
            f.h *= 0x100000001b3ULL;
        }
        f.mix((uint64_t)rec.sources.size());
        for (const isa::KernelSource &src : rec.sources) {
            f.mix(src.name);
            f.mix(src.templateName);
            f.mix((uint64_t)src.params.size());
            for (int64_t p : src.params)
                f.mix((uint64_t)p);
        }
    }
    return f.h;
}

void
replay(const Recording &recording, ocl::ClRuntime &runtime)
{
    StreamingReplay stream(recording, runtime);
    stream.drain();
}

StreamingReplay::StreamingReplay(const Recording &recording,
                                 ocl::ClRuntime &runtime)
    : rec(recording), rt(runtime)
{
    GT_ASSERT(runtime.apiCallCount() == 0,
              "replay requires a fresh runtime");
}

bool
StreamingReplay::nextDispatch()
{
    while (cursor < rec.calls.size()) {
        const ApiCallRecord &call = rec.calls[cursor++];
        issueCall(call, rt);
        if (call.id == ApiCallId::EnqueueNDRangeKernel)
            return true;
    }
    return false;
}

void
StreamingReplay::drain()
{
    while (cursor < rec.calls.size())
        issueCall(rec.calls[cursor++], rt);
}

} // namespace gt::cfl
