#include "cfl/tracer.hh"

namespace gt::cfl
{

void
ApiTracer::onApiCall(const ocl::ApiCallRecord &record)
{
    // Store a light copy: payloads can be large and the tracer only
    // needs identity and metadata (the recorder keeps full copies).
    ocl::ApiCallRecord light = record;
    light.payload.clear();
    light.sources.clear();
    calls.push_back(std::move(light));
    ++perCallCounts[(int)record.id];
    ++categoryCounts[(int)ocl::apiCategory(record.id)];
}

void
ApiTracer::onDispatchExecuted(const ocl::DispatchResult &result)
{
    KernelTiming t;
    t.seq = result.seq;
    t.kernelId = result.kernelId;
    t.kernelName = result.kernelName;
    t.globalWorkSize = result.globalSize;
    t.argsHash = result.argsHash;
    t.seconds = result.time.seconds;
    kernelSeconds += t.seconds;
    timings.push_back(std::move(t));
}

uint64_t
ApiTracer::categoryCalls(ocl::ApiCategory category) const
{
    return categoryCounts[(int)category];
}

double
ApiTracer::categoryFraction(ocl::ApiCategory category) const
{
    if (calls.empty())
        return 0.0;
    return (double)categoryCalls(category) / (double)calls.size();
}

void
ApiTracer::reset()
{
    calls.clear();
    perCallCounts.fill(0);
    categoryCounts.fill(0);
    timings.clear();
    kernelSeconds = 0.0;
}

} // namespace gt::cfl
