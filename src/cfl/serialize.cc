#include "cfl/serialize.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace gt::cfl
{

namespace
{

const char *magic = "gtpin-recording v1";

void
writeString(std::ostream &os, const std::string &s)
{
    os << s.size() << ' ' << s;
}

std::string
readString(std::istream &is)
{
    size_t len;
    if (!(is >> len))
        fatal("recording: expected string length");
    char space;
    is.get(space);
    std::string s(len, '\0');
    is.read(s.data(), (std::streamsize)len);
    if (!is)
        fatal("recording: truncated string");
    return s;
}

const char hexDigits[] = "0123456789abcdef";

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    fatal("recording: bad hex digit '", c, "'");
}

} // anonymous namespace

void
saveRecording(const Recording &recording, std::ostream &os)
{
    os << magic << '\n';
    for (const ocl::ApiCallRecord &rec : recording.calls) {
        os << "call " << (int)rec.id << ' ' << rec.callIndex << ' '
           << rec.dispatchSeq << ' ' << rec.globalWorkSize << ' '
           << rec.argsHash << ' ';
        writeString(os, rec.kernelName);
        os << " u " << rec.uargs.size();
        for (uint64_t u : rec.uargs)
            os << ' ' << u;
        os << " p " << rec.payload.size() << ' ';
        for (uint8_t b : rec.payload)
            os << hexDigits[b >> 4] << hexDigits[b & 0xf];
        os << " s " << rec.sources.size();
        for (const isa::KernelSource &src : rec.sources) {
            os << ' ';
            writeString(os, src.name);
            os << ' ';
            writeString(os, src.templateName);
            os << ' ' << src.params.size();
            for (int64_t p : src.params)
                os << ' ' << p;
        }
        os << '\n';
    }
    os << "end\n";
}

Recording
loadRecording(std::istream &is)
{
    std::string header;
    std::getline(is, header);
    if (header != magic)
        fatal("recording: bad magic '", header, "'");

    Recording recording;
    std::string tok;
    while (is >> tok) {
        if (tok == "end")
            return recording;
        if (tok != "call")
            fatal("recording: expected 'call', got '", tok, "'");

        ocl::ApiCallRecord rec;
        int id;
        if (!(is >> id >> rec.callIndex >> rec.dispatchSeq >>
              rec.globalWorkSize >> rec.argsHash)) {
            fatal("recording: truncated call header");
        }
        if (id < 0 || id >= ocl::numApiCalls)
            fatal("recording: invalid call id ", id);
        rec.id = (ocl::ApiCallId)id;
        rec.kernelName = readString(is);

        std::string tag;
        size_t n;
        is >> tag >> n;
        if (tag != "u")
            fatal("recording: expected 'u'");
        rec.uargs.resize(n);
        for (size_t i = 0; i < n; ++i) {
            if (!(is >> rec.uargs[i]))
                fatal("recording: truncated uargs");
        }

        is >> tag >> n;
        if (tag != "p")
            fatal("recording: expected 'p'");
        rec.payload.resize(n);
        if (n > 0) {
            char space;
            is.get(space);
            for (size_t i = 0; i < n; ++i) {
                char hi, lo;
                if (!is.get(hi) || !is.get(lo))
                    fatal("recording: truncated payload");
                rec.payload[i] =
                    (uint8_t)((hexValue(hi) << 4) | hexValue(lo));
            }
        } else {
            // Consume the single separator space.
            char space;
            is.get(space);
        }

        is >> tag >> n;
        if (tag != "s")
            fatal("recording: expected 's'");
        rec.sources.resize(n);
        for (size_t i = 0; i < n; ++i) {
            rec.sources[i].name = readString(is);
            rec.sources[i].templateName = readString(is);
            size_t np;
            if (!(is >> np))
                fatal("recording: truncated source params");
            rec.sources[i].params.resize(np);
            for (size_t k = 0; k < np; ++k) {
                if (!(is >> rec.sources[i].params[k]))
                    fatal("recording: truncated source params");
            }
        }

        recording.calls.push_back(std::move(rec));
    }
    fatal("recording: missing 'end' terminator");
}

void
saveRecordingFile(const Recording &recording,
                  const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    saveRecording(recording, os);
    if (!os)
        fatal("write to '", path, "' failed");
}

Recording
loadRecordingFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "'");
    return loadRecording(is);
}

} // namespace gt::cfl
