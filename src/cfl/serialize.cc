#include "cfl/serialize.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace gt::cfl
{

namespace
{

const char *magicPrefix = "gtpin-recording v";
const char *magic = "gtpin-recording v1";

/**
 * Read a length/count field with a plausibility cap. A negative or
 * garbage count in a hand-edited or corrupt file would otherwise
 * wrap through the unsigned extraction into a huge value and die in
 * resize() with a bare length_error — fail with a real message
 * instead, before any allocation.
 */
uint64_t
readCount(std::istream &is, const char *what, uint64_t max)
{
    int64_t n;
    if (!(is >> n))
        fatal("recording: expected ", what, " count");
    if (n < 0 || (uint64_t)n > max) {
        fatal("recording: implausible ", what, " count ", n,
              " (cap ", max, ")");
    }
    return (uint64_t)n;
}

void
writeString(std::ostream &os, const std::string &s)
{
    os << s.size() << ' ' << s;
}

std::string
readString(std::istream &is)
{
    uint64_t len = readCount(is, "string length", 1u << 20);
    char space;
    is.get(space);
    std::string s(len, '\0');
    is.read(s.data(), (std::streamsize)len);
    if (!is)
        fatal("recording: truncated string");
    return s;
}

const char hexDigits[] = "0123456789abcdef";

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    fatal("recording: bad hex digit '", c, "'");
}

} // anonymous namespace

void
saveRecording(const Recording &recording, std::ostream &os)
{
    os << magic << '\n';
    for (const ocl::ApiCallRecord &rec : recording.calls) {
        os << "call " << (int)rec.id << ' ' << rec.callIndex << ' '
           << rec.dispatchSeq << ' ' << rec.globalWorkSize << ' '
           << rec.argsHash << ' ';
        writeString(os, rec.kernelName);
        os << " u " << rec.uargs.size();
        for (uint64_t u : rec.uargs)
            os << ' ' << u;
        os << " p " << rec.payload.size() << ' ';
        for (uint8_t b : rec.payload)
            os << hexDigits[b >> 4] << hexDigits[b & 0xf];
        os << " s " << rec.sources.size();
        for (const isa::KernelSource &src : rec.sources) {
            os << ' ';
            writeString(os, src.name);
            os << ' ';
            writeString(os, src.templateName);
            os << ' ' << src.params.size();
            for (int64_t p : src.params)
                os << ' ' << p;
        }
        os << '\n';
    }
    os << "end\n";
}

Recording
loadRecording(std::istream &is)
{
    std::string header;
    std::getline(is, header);
    if (header != magic) {
        if (header.rfind(magicPrefix, 0) == 0) {
            fatal("recording: unsupported format version '", header,
                  "' (this build reads '", magic, "')");
        }
        fatal("recording: bad magic '", header,
              "' (not a recording file)");
    }

    Recording recording;
    std::string tok;
    while (is >> tok) {
        if (tok == "end")
            return recording;
        if (tok != "call")
            fatal("recording: expected 'call', got '", tok, "'");

        ocl::ApiCallRecord rec;
        int id;
        if (!(is >> id >> rec.callIndex >> rec.dispatchSeq >>
              rec.globalWorkSize >> rec.argsHash)) {
            fatal("recording: truncated call header");
        }
        if (id < 0 || id >= ocl::numApiCalls)
            fatal("recording: invalid call id ", id);
        rec.id = (ocl::ApiCallId)id;
        rec.kernelName = readString(is);

        std::string tag;
        if (!(is >> tag) || tag != "u")
            fatal("recording: expected 'u'");
        uint64_t n = readCount(is, "uargs", 1u << 20);
        rec.uargs.resize(n);
        for (size_t i = 0; i < n; ++i) {
            if (!(is >> rec.uargs[i]))
                fatal("recording: truncated uargs");
        }

        if (!(is >> tag) || tag != "p")
            fatal("recording: expected 'p'");
        n = readCount(is, "payload", 1u << 26);
        rec.payload.resize(n);
        if (n > 0) {
            char space;
            is.get(space);
            for (size_t i = 0; i < n; ++i) {
                char hi, lo;
                if (!is.get(hi) || !is.get(lo))
                    fatal("recording: truncated payload");
                rec.payload[i] =
                    (uint8_t)((hexValue(hi) << 4) | hexValue(lo));
            }
        } else {
            // Consume the single separator space.
            char space;
            is.get(space);
        }

        if (!(is >> tag) || tag != "s")
            fatal("recording: expected 's'");
        n = readCount(is, "sources", 1u << 16);
        rec.sources.resize(n);
        for (size_t i = 0; i < n; ++i) {
            rec.sources[i].name = readString(is);
            rec.sources[i].templateName = readString(is);
            uint64_t np = readCount(is, "source params", 1u << 16);
            rec.sources[i].params.resize(np);
            for (size_t k = 0; k < np; ++k) {
                if (!(is >> rec.sources[i].params[k]))
                    fatal("recording: truncated source params");
            }
        }

        recording.calls.push_back(std::move(rec));
    }
    fatal("recording: missing 'end' terminator");
}

void
saveRecordingFile(const Recording &recording,
                  const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    saveRecording(recording, os);
    if (!os)
        fatal("write to '", path, "' failed");
}

Recording
loadRecordingFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "'");
    return loadRecording(is);
}

} // namespace gt::cfl
