/**
 * @file
 * On-disk persistence for CoFluent-style recordings.
 *
 * The paper's workflow treats a recording as an artifact: it is
 * captured once on the profiling machine and replayed later — on
 * other days, at other frequencies, on other machines. This module
 * serializes a Recording to a line-oriented text format and loads it
 * back, so recordings can be shipped between processes and checked
 * into experiment directories.
 *
 * Format (one call per line):
 *   gtpin-recording v1
 *   call <id> <callIndex> <dispatchSeq> <gws> <argsHash>
 *        <name-len> <name> u <n> <uargs...> p <n> <hex-payload>
 *        s <n> {<name-len> <name> <tpl-len> <tpl> <n> <params...>}*
 *   end
 */

#ifndef GT_CFL_SERIALIZE_HH
#define GT_CFL_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "cfl/recorder.hh"

namespace gt::cfl
{

/** Write @p recording to @p os in the v1 text format. */
void saveRecording(const Recording &recording, std::ostream &os);

/**
 * Parse a recording from @p is. Throws FatalError on malformed
 * input (bad magic, truncated call, trailing garbage).
 */
Recording loadRecording(std::istream &is);

/** Convenience file wrappers. @{ */
void saveRecordingFile(const Recording &recording,
                       const std::string &path);
Recording loadRecordingFile(const std::string &path);
/** @} */

} // namespace gt::cfl

#endif // GT_CFL_SERIALIZE_HH
