/**
 * @file
 * CoFluent-style record and replay.
 *
 * Section V-E: selections must stay findable across trials despite
 * non-determinism, so the paper records one execution's API stream
 * (call names, configuration parameters, memory buffers and images,
 * kernel code) and replays it natively with "a consistent and
 * repeatable ordering of API calls". Recorder captures the complete
 * argumented call stream; replay() re-issues it against a fresh
 * runtime — typically one whose driver models a different trial,
 * frequency, or architecture generation, which is exactly how the
 * Fig. 8 validations are produced.
 */

#ifndef GT_CFL_RECORDER_HH
#define GT_CFL_RECORDER_HH

#include <vector>

#include "ocl/runtime.hh"

namespace gt::cfl
{

/** A recorded execution: the complete, replayable API call stream. */
struct Recording
{
    std::vector<ocl::ApiCallRecord> calls;

    bool empty() const { return calls.empty(); }
    size_t size() const { return calls.size(); }

    /** Number of kernel dispatches in the recording. */
    uint64_t dispatchCount() const;
};

/** Captures the full call stream as an API observer. */
class Recorder : public ocl::ApiObserver
{
  public:
    void
    onApiCall(const ocl::ApiCallRecord &record) override
    {
        recording.calls.push_back(record);
    }

    const Recording &result() const { return recording; }
    Recording take() { return std::move(recording); }

  private:
    Recording recording;
};

/**
 * Replay @p recording against @p runtime, re-issuing every call in
 * order. The runtime must be fresh (no prior handles created);
 * handle values are deterministic so the recorded ids resolve
 * identically. Throws FatalError on a malformed recording.
 */
void replay(const Recording &recording, ocl::ClRuntime &runtime);

} // namespace gt::cfl

#endif // GT_CFL_RECORDER_HH
