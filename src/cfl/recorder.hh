/**
 * @file
 * CoFluent-style record and replay.
 *
 * Section V-E: selections must stay findable across trials despite
 * non-determinism, so the paper records one execution's API stream
 * (call names, configuration parameters, memory buffers and images,
 * kernel code) and replays it natively with "a consistent and
 * repeatable ordering of API calls". Recorder captures the complete
 * argumented call stream; replay() re-issues it against a fresh
 * runtime — typically one whose driver models a different trial,
 * frequency, or architecture generation, which is exactly how the
 * Fig. 8 validations are produced.
 */

#ifndef GT_CFL_RECORDER_HH
#define GT_CFL_RECORDER_HH

#include <vector>

#include "ocl/runtime.hh"

namespace gt::cfl
{

/** A recorded execution: the complete, replayable API call stream. */
struct Recording
{
    std::vector<ocl::ApiCallRecord> calls;

    bool empty() const { return calls.empty(); }
    size_t size() const { return calls.size(); }

    /** Number of kernel dispatches in the recording. */
    uint64_t dispatchCount() const;
};

/** Captures the full call stream as an API observer. */
class Recorder : public ocl::ApiObserver
{
  public:
    void
    onApiCall(const ocl::ApiCallRecord &record) override
    {
        recording.calls.push_back(record);
    }

    const Recording &result() const { return recording; }
    Recording take() { return std::move(recording); }

  private:
    Recording recording;
};

/**
 * Content identity of a recording: an FNV-1a fold over every field
 * of every call — ids, indices, kernel names, argument vectors,
 * buffer payloads, and kernel sources. Two recordings hash equal
 * exactly when a replay of either issues the identical call stream,
 * which is what lets the profiling service share replay artifacts
 * (profiles, timings, sync epochs) across tenants that submit the
 * same workload.
 */
uint64_t recordingContentHash(const Recording &recording);

/**
 * Replay @p recording against @p runtime, re-issuing every call in
 * order. The runtime must be fresh (no prior handles created);
 * handle values are deterministic so the recorded ids resolve
 * identically. Throws FatalError on a malformed recording.
 */
void replay(const Recording &recording, ocl::ClRuntime &runtime);

/**
 * Cursor-driven replay: the same call-for-call re-issue as replay()
 * — replay() is implemented on top of this class — but the caller
 * controls the pace, stopping after every kernel dispatch to harvest
 * that dispatch's profile and timing from its tools before the next
 * call is issued. This is the streaming service's engine: intervals
 * and feature columns build incrementally between steps while the
 * issued stream stays byte-identical to a batch replay.
 */
class StreamingReplay
{
  public:
    StreamingReplay(const Recording &recording,
                    ocl::ClRuntime &runtime);

    /**
     * Issue calls up to and including the next kernel dispatch.
     * @return true when a dispatch was issued; false when the stream
     * ended first (every remaining call has then been issued).
     */
    bool nextDispatch();

    /** Issue every remaining call. */
    void drain();

    /** Calls issued so far. */
    size_t position() const { return cursor; }

    bool done() const { return cursor == rec.calls.size(); }

  private:
    const Recording &rec;
    ocl::ClRuntime &rt;
    size_t cursor = 0;
};

} // namespace gt::cfl

#endif // GT_CFL_RECORDER_HH
