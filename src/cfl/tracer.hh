/**
 * @file
 * CoFluent-style host API tracer.
 *
 * The paper uses the Intel CoFluent CPR tool for everything GT-Pin
 * (a device-side profiler) cannot see: counting and categorizing the
 * OpenCL API calls the CPU makes (Fig. 3a), and timing each kernel
 * invocation, which supplies the "measured SPI" side of the
 * validation heuristic (Eq. 1). ApiTracer is that tool: it observes
 * every call at the application/runtime boundary without perturbing
 * execution.
 */

#ifndef GT_CFL_TRACER_HH
#define GT_CFL_TRACER_HH

#include <array>
#include <string>
#include <vector>

#include "ocl/runtime.hh"

namespace gt::cfl
{

/** Host-visible timing of one kernel invocation. */
struct KernelTiming
{
    uint64_t seq = 0;            //!< dispatch sequence number
    uint32_t kernelId = 0;
    std::string kernelName;
    uint64_t globalWorkSize = 0;
    uint64_t argsHash = 0;
    double seconds = 0.0;        //!< measured invocation wall time
};

/** Counts/categorizes API calls and records per-kernel timings. */
class ApiTracer : public ocl::ApiObserver
{
  public:
    void onApiCall(const ocl::ApiCallRecord &record) override;
    void onDispatchExecuted(const ocl::DispatchResult &result)
        override;

    /** Total API calls observed. */
    uint64_t totalCalls() const { return calls.size(); }

    /** Calls observed in @p category (Fig. 3a's three types). */
    uint64_t categoryCalls(ocl::ApiCategory category) const;

    /** Fraction of calls in @p category (0 if no calls yet). */
    double categoryFraction(ocl::ApiCategory category) const;

    /** Per-entry-point call counts. */
    const std::array<uint64_t, ocl::numApiCalls> &perCall() const
    {
        return perCallCounts;
    }

    /** The recorded call stream (ids and light metadata only). */
    const std::vector<ocl::ApiCallRecord> &callStream() const
    {
        return calls;
    }

    /** Per-invocation kernel timings in dispatch order. */
    const std::vector<KernelTiming> &kernelTimings() const
    {
        return timings;
    }

    /** Sum of all kernel invocation times, in seconds. */
    double totalKernelSeconds() const { return kernelSeconds; }

    void reset();

  private:
    std::vector<ocl::ApiCallRecord> calls;
    std::array<uint64_t, ocl::numApiCalls> perCallCounts{};
    std::array<uint64_t, 3> categoryCounts{};
    std::vector<KernelTiming> timings;
    double kernelSeconds = 0.0;
};

} // namespace gt::cfl

#endif // GT_CFL_TRACER_HH
