#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gt
{

void
RunningStat::add(double x)
{
    add(x, 1.0);
}

void
RunningStat::add(double x, double weight)
{
    GT_ASSERT(weight >= 0.0, "negative weight");
    if (weight == 0.0)
        return;
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    total += x * weight;
    double w_new = w + weight;
    double delta = x - m;
    double r = delta * weight / w_new;
    m += r;
    s += w * delta * r;
    w = w_new;
}

double
RunningStat::mean() const
{
    return n == 0 ? 0.0 : m;
}

double
RunningStat::variance() const
{
    return w <= 0.0 ? 0.0 : s / w;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return n == 0 ? 0.0 : lo;
}

double
RunningStat::max() const
{
    return n == 0 ? 0.0 : hi;
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    double w_new = w + other.w;
    double delta = other.m - m;
    double m_new = m + delta * other.w / w_new;
    s = s + other.s + delta * delta * w * other.w / w_new;
    m = m_new;
    w = w_new;
    n += other.n;
    total += other.total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

void
Histogram::add(int64_t key, uint64_t count)
{
    data[key] += count;
    grandTotal += count;
}

uint64_t
Histogram::count(int64_t key) const
{
    auto it = data.find(key);
    return it == data.end() ? 0 : it->second;
}

double
Histogram::fraction(int64_t key) const
{
    if (grandTotal == 0)
        return 0.0;
    return (double)count(key) / (double)grandTotal;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[key, cnt] : other.data)
        add(key, cnt);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / (double)v.size();
}

double
weightedMean(const std::vector<double> &values,
             const std::vector<double> &weights)
{
    GT_ASSERT(values.size() == weights.size(),
              "values/weights size mismatch");
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        GT_ASSERT(weights[i] >= 0.0, "negative weight");
        num += values[i] * weights[i];
        den += weights[i];
    }
    GT_ASSERT(den > 0.0, "weightedMean requires positive total weight");
    return num / den;
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v) {
        GT_ASSERT(x > 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / (double)v.size());
}

double
percentile(std::vector<double> v, double p)
{
    GT_ASSERT(!v.empty(), "percentile of empty vector");
    GT_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v[0];
    double rank = p / 100.0 * (double)(v.size() - 1);
    size_t below = (size_t)rank;
    double frac = rank - (double)below;
    if (below + 1 >= v.size())
        return v.back();
    return v[below] * (1.0 - frac) + v[below + 1] * frac;
}

double
relativeErrorPct(double measured, double reference)
{
    GT_ASSERT(reference != 0.0, "relative error vs zero reference");
    return std::abs(measured - reference) / std::abs(reference) * 100.0;
}

} // namespace gt
