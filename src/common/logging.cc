#include "common/logging.hh"

#include <atomic>
#include <cstdio>

namespace gt
{

namespace
{

// Atomic: messages are emitted from scheduler worker threads while
// test fixtures toggle quiet mode on the main thread.
std::atomic<bool> quietFlag{false};

} // anonymous namespace

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail
{

void
emitMessage(const char *prefix, const std::string &msg)
{
    bool is_error =
        prefix[0] == 'p' || prefix[0] == 'f'; // panic or fatal
    if (quietFlag.load(std::memory_order_relaxed) && !is_error)
        return;
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail
} // namespace gt
