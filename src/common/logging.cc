#include "common/logging.hh"

#include <cstdio>

namespace gt
{

namespace
{

bool quietFlag = false;

} // anonymous namespace

void
setLogQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
logQuiet()
{
    return quietFlag;
}

namespace detail
{

void
emitMessage(const char *prefix, const std::string &msg)
{
    bool is_error =
        prefix[0] == 'p' || prefix[0] == 'f'; // panic or fatal
    if (quietFlag && !is_error)
        return;
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail
} // namespace gt
