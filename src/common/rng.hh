/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic component in the library (workload generators,
 * timing-model noise, k-means seeding) draws from an explicitly seeded
 * Rng so that whole experiments are reproducible bit-for-bit. The
 * generator is xoshiro256**, seeded through splitmix64 per the
 * reference implementation's recommendation.
 */

#ifndef GT_COMMON_RNG_HH
#define GT_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gt
{

/** Mix a 64-bit value with the splitmix64 finalizer. */
uint64_t splitmix64(uint64_t &state);

/**
 * Deterministic xoshiro256** generator with convenience draws.
 *
 * Cheap to copy; forking (fork()) derives an independent stream so
 * that adding draws to one component does not perturb another.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit output. */
    uint64_t next();

    /** @return an independent generator derived from this one. */
    Rng fork();

    /**
     * Derive the @p stream-th independent substream *without
     * advancing this generator* — the parallel-safe counterpart of
     * fork(). Because the result depends only on the current state
     * and @p stream, tasks can derive their streams in any order (or
     * concurrently from copies) and still get identical generators,
     * which is what keeps parallel k-means and trial fan-outs
     * bit-identical to their serial equivalents.
     *
     * Derivation: the substream seed is
     *
     *   splitmix64(s0 ^ rotl(s2, 17) ^ ((stream + 1) * GOLDEN))
     *
     * where s0/s2 are state words of this generator, GOLDEN is
     * 0x9e3779b97f4a7c15 (the splitmix64 increment), and the result
     * seeds a fresh Rng through the usual splitmix64 expansion. The
     * (stream + 1) multiplier keeps stream 0 from collapsing onto
     * the parent's own seeding path.
     */
    Rng split(uint64_t stream) const;

    /** @return uniform integer in [0, bound), bound > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** @return standard normal deviate (Marsaglia polar method). */
    double nextGaussian();

    /** @return normal deviate with given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** @return true with probability p. */
    bool nextBool(double p = 0.5);

    /**
     * Zipf-distributed integer in [0, n) with exponent s.
     * Used to generate realistically skewed kernel/block popularity.
     */
    uint64_t nextZipf(uint64_t n, double s);

    /** Log-normal deviate: exp(N(mu, sigma)). */
    double nextLogNormal(double mu, double sigma);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = nextBounded(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Pick a uniformly random element (vector must be non-empty). */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[nextBounded(v.size())];
    }

  private:
    uint64_t s[4];
    bool hasSpare = false;
    double spare = 0.0;
};

} // namespace gt

#endif // GT_COMMON_RNG_HH
