#include "common/table.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace gt
{

std::string
humanCount(double value)
{
    static const char *suffix[] = {"", " K", " M", " G", " T", " P"};
    int idx = 0;
    double v = std::abs(value);
    while (v >= 1000.0 && idx < 5) {
        v /= 1000.0;
        ++idx;
    }
    char buf[48];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    else
        std::snprintf(buf, sizeof(buf), "%.2f%s",
                      value < 0 ? -v : v, suffix[idx]);
    return buf;
}

std::string
humanBytes(double bytes)
{
    static const char *suffix[] = {" B", " KB", " MB", " GB", " TB", " PB"};
    int idx = 0;
    double v = std::abs(bytes);
    while (v >= 1024.0 && idx < 5) {
        v /= 1024.0;
        ++idx;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.2f%s",
                  bytes < 0 ? -v : v, suffix[idx]);
    return buf;
}

std::string
pct(double fraction, int precision)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
fixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
sci(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
    return buf;
}

const std::vector<std::string> TextTable::separatorMarker = {"\x01sep"};

TextTable::TextTable(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
    GT_ASSERT(!headers.empty(), "table requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GT_ASSERT(cells.size() == headers.size(),
              "row has ", cells.size(), " cells, expected ",
              headers.size());
    rows.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    rows.push_back(separatorMarker);
}

void
TextTable::print(std::ostream &os, const std::string &title) const
{
    std::vector<size_t> width(headers.size());
    for (size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows) {
        if (row == separatorMarker)
            continue;
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto rule = [&]() {
        for (size_t c = 0; c < width.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << "| " << std::left << std::setw((int)width[c])
               << cells[c] << ' ';
        }
        os << "|\n";
    };

    if (!title.empty())
        os << "== " << title << " ==\n";
    rule();
    line(headers);
    rule();
    for (const auto &row : rows) {
        if (row == separatorMarker)
            rule();
        else
            line(row);
    }
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            // Quote cells containing separators.
            if (cells[c].find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : cells[c]) {
                    if (ch == '"')
                        os << "\"\"";
                    else
                        os << ch;
                }
                os << '"';
            } else {
                os << cells[c];
            }
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &row : rows) {
        if (row != separatorMarker)
            emit(row);
    }
}

} // namespace gt
