#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace gt
{

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

Rng
Rng::split(uint64_t stream) const
{
    // See the header for the documented derivation; keep both in
    // sync if this ever changes.
    uint64_t sm = s[0] ^ rotl(s[2], 17) ^
        ((stream + 1) * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(sm));
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    GT_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    GT_ASSERT(lo <= hi, "nextRange requires lo <= hi");
    return lo + (int64_t)nextBounded((uint64_t)(hi - lo) + 1);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    if (hasSpare) {
        hasSpare = false;
        return spare;
    }
    double u, v, sq;
    do {
        u = nextDouble(-1.0, 1.0);
        v = nextDouble(-1.0, 1.0);
        sq = u * u + v * v;
    } while (sq >= 1.0 || sq == 0.0);
    double mul = std::sqrt(-2.0 * std::log(sq) / sq);
    spare = v * mul;
    hasSpare = true;
    return u * mul;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint64_t
Rng::nextZipf(uint64_t n, double s)
{
    GT_ASSERT(n > 0, "nextZipf requires n > 0");
    if (n == 1)
        return 0;
    // Inverse-CDF on the (approximate) continuous Zipf distribution;
    // accurate enough for workload-popularity skew.
    double h = 0.0;
    // Harmonic normalization is O(n); n is small (kernels/blocks) so
    // this straightforward computation is fine.
    for (uint64_t i = 1; i <= n; ++i)
        h += 1.0 / std::pow((double)i, s);
    double u = nextDouble() * h;
    double acc = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
        acc += 1.0 / std::pow((double)i, s);
        if (acc >= u)
            return i - 1;
    }
    return n - 1;
}

double
Rng::nextLogNormal(double mu, double sigma)
{
    return std::exp(nextGaussian(mu, sigma));
}

} // namespace gt
