/**
 * @file
 * LEB128 variable-length integers and a bounds-checked byte reader.
 *
 * The on-disk columnar trace store (core/trace_store) packs its
 * integer columns — dispatch instruction deltas, basic-block counts,
 * sync-epoch run lengths — as unsigned LEB128: 7 payload bits per
 * byte, high bit set on every byte but the last. Small values (the
 * overwhelming majority of block counts and lengths) take one byte;
 * a full 64-bit value takes ten.
 *
 * ByteReader is the decoding side's safety net: every read is
 * bounds-checked against the enclosing section, so a truncated or
 * corrupt file fails with a clear fatal() instead of running off the
 * mapping (the same contract cfl::serialize enforces for recording
 * files).
 */

#ifndef GT_COMMON_VARINT_HH
#define GT_COMMON_VARINT_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace gt
{

/** Append @p value to @p out as unsigned LEB128. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back((uint8_t)(value | 0x80));
        value >>= 7;
    }
    out.push_back((uint8_t)value);
}

/** Append @p count raw bytes from @p src to @p out. */
inline void
putBytes(std::vector<uint8_t> &out, const void *src, size_t count)
{
    const uint8_t *p = (const uint8_t *)src;
    out.insert(out.end(), p, p + count);
}

/**
 * Bounds-checked reader over one encoded region. Any attempt to
 * read past @p end — a truncated file, a corrupt length field —
 * raises FatalError with the region's name in the message.
 */
class ByteReader
{
  public:
    ByteReader(const uint8_t *begin, const uint8_t *end,
               const char *what_)
        : cur(begin), limit(end), what(what_)
    {
        if (cur > limit)
            fatal(what, ": negative-size region");
    }

    /** Decode one LEB128 value; fatal on truncation or a value
     * wider than 64 bits. */
    uint64_t
    getVarint()
    {
        uint64_t value = 0;
        int shift = 0;
        while (true) {
            if (cur == limit)
                fatal(what, ": truncated varint");
            uint8_t byte = *cur++;
            if (shift == 63 && (byte & ~1u))
                fatal(what, ": varint overflows 64 bits");
            value |= (uint64_t)(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return value;
            shift += 7;
        }
    }

    /** Copy @p count raw bytes into @p dst; fatal on truncation. */
    void
    getBytes(void *dst, size_t count)
    {
        if ((size_t)(limit - cur) < count)
            fatal(what, ": truncated (need ", count, " bytes, have ",
                  limit - cur, ")");
        std::memcpy(dst, cur, count);
        cur += count;
    }

    /** Decode a length-prefixed count and sanity-cap it: a corrupt
     * or hostile length fails loudly instead of driving a huge
     * allocation. */
    uint64_t
    getCount(uint64_t max)
    {
        uint64_t n = getVarint();
        if (n > max)
            fatal(what, ": implausible count ", n, " (cap ", max,
                  ")");
        return n;
    }

    bool done() const { return cur == limit; }

    size_t remaining() const { return (size_t)(limit - cur); }

    /** Require the region to be fully consumed — decode drift means
     * the file does not match its index. */
    void
    expectDone() const
    {
        if (cur != limit)
            fatal(what, ": ", remaining(),
                  " trailing bytes after decode");
    }

  private:
    const uint8_t *cur;
    const uint8_t *limit;
    const char *what;
};

} // namespace gt

#endif // GT_COMMON_VARINT_HH
