/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user error (bad
 * configuration or arguments), and warn()/inform() report conditions
 * without stopping execution.
 */

#ifndef GT_COMMON_LOGGING_HH
#define GT_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace gt
{

/** Exception thrown by fatal() for user-correctable errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception thrown by panic() for internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

/** Concatenate a heterogeneous argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitMessage(const char *prefix, const std::string &msg);

} // namespace detail

/**
 * Report an internal invariant violation and throw PanicError.
 * Use only for conditions that indicate a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage("panic", msg);
    throw PanicError(msg);
}

/**
 * Report a user-correctable error and throw FatalError.
 * Use for invalid configurations, arguments, or inputs.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    detail::emitMessage("fatal", msg);
    throw FatalError(msg);
}

/** Report a suspicious but survivable condition to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/** Report an informational status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** panic() unless the given condition holds. */
#define GT_ASSERT(cond, ...)                                            \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::gt::panic("assertion '", #cond, "' failed at ",           \
                        __FILE__, ":", __LINE__, ": ", ##__VA_ARGS__);  \
        }                                                               \
    } while (0)

/** Enable or disable warn()/inform() output (panic/fatal always print). */
void setLogQuiet(bool quiet);

/** @return whether warn()/inform() output is currently suppressed. */
bool logQuiet();

} // namespace gt

#endif // GT_COMMON_LOGGING_HH
