/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harnesses to
 * print each reproduced paper table/figure as aligned rows.
 */

#ifndef GT_COMMON_TABLE_HH
#define GT_COMMON_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace gt
{

/** Human-readable count with engineering suffix (e.g. "3.7 G"). */
std::string humanCount(double value);

/** Human-readable byte count (e.g. "2.17 GB"). */
std::string humanBytes(double bytes);

/** Fixed-precision percentage string, e.g. "12.3%". */
std::string pct(double fraction, int precision = 1);

/** Fixed-precision floating value. */
std::string fixed(double value, int precision = 2);

/** Scientific-notation value, e.g. "2.87e-10". */
std::string sci(double value, int precision = 2);

/**
 * Column-aligned text table accumulated row by row and printed once.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; it must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator row before the next addRow(). */
    void addSeparator();

    size_t rowCount() const { return rows.size(); }

    /** Render the table to @p os with a title banner. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Render as CSV (no alignment, no separators). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    static const std::vector<std::string> separatorMarker;
};

} // namespace gt

#endif // GT_COMMON_TABLE_HH
