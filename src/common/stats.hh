/**
 * @file
 * Small statistics helpers shared across the library: running
 * mean/variance accumulation, weighted means, histograms, and
 * percentage formatting used by the characterization benches.
 */

#ifndef GT_COMMON_STATS_HH
#define GT_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gt
{

/**
 * Single-pass running statistics (Welford's algorithm).
 * Tracks count, mean, variance, min, and max.
 */
class RunningStat
{
  public:
    void add(double x);
    void add(double x, double weight);

    uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

  private:
    uint64_t n = 0;
    double w = 0.0;
    double total = 0.0;
    double m = 0.0;
    double s = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Frequency histogram over integer-keyed categories.
 * Used for opcode-class and SIMD-width distributions.
 */
class Histogram
{
  public:
    void add(int64_t key, uint64_t count = 1);

    uint64_t total() const { return grandTotal; }
    uint64_t count(int64_t key) const;

    /** Fraction of the total mass at @p key (0 if empty). */
    double fraction(int64_t key) const;

    const std::map<int64_t, uint64_t> &bins() const { return data; }

    void merge(const Histogram &other);

  private:
    std::map<int64_t, uint64_t> data;
    uint64_t grandTotal = 0;
};

/** @return arithmetic mean of @p v (0 for empty input). */
double mean(const std::vector<double> &v);

/** @return weighted mean; weights must be non-negative, sum > 0. */
double weightedMean(const std::vector<double> &values,
                    const std::vector<double> &weights);

/** @return the geometric mean of strictly positive values. */
double geomean(const std::vector<double> &v);

/** @return the p-th percentile (0..100) by linear interpolation. */
double percentile(std::vector<double> v, double p);

/** Relative error |a - b| / |b| as a percentage; b must be nonzero. */
double relativeErrorPct(double measured, double reference);

} // namespace gt

#endif // GT_COMMON_STATS_HH
