#include "isa/opcode.hh"

#include "common/logging.hh"

namespace gt::isa
{

OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::Mov:
      case Opcode::Sel:
        return OpClass::Move;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Not:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Asr:
      case Opcode::Cmp:
        return OpClass::Logic;
      case Opcode::Jmpi:
      case Opcode::Brc:
      case Opcode::Brnc:
      case Opcode::Call:
      case Opcode::Ret:
      case Opcode::Halt:
        return OpClass::Control;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Mad:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Avg:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FMad:
      case Opcode::FDiv:
      case Opcode::Frc:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Dp4:
      case Opcode::Lrp:
      case Opcode::Pln:
        return OpClass::Computation;
      case Opcode::Send:
        return OpClass::Send;
      case Opcode::ProfCount:
      case Opcode::ProfAdd:
      case Opcode::ProfTimer:
      case Opcode::ProfMem:
        return OpClass::Instrumentation;
      default:
        panic("opClass: invalid opcode ", (int)op);
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Mov: return "mov";
      case Opcode::Sel: return "sel";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Asr: return "asr";
      case Opcode::Cmp: return "cmp";
      case Opcode::Jmpi: return "jmpi";
      case Opcode::Brc: return "brc";
      case Opcode::Brnc: return "brnc";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Mad: return "mad";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Avg: return "avg";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::FMad: return "fmad";
      case Opcode::FDiv: return "fdiv";
      case Opcode::Frc: return "frc";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::Rsqrt: return "rsqrt";
      case Opcode::Sin: return "sin";
      case Opcode::Cos: return "cos";
      case Opcode::Exp: return "exp";
      case Opcode::Log: return "log";
      case Opcode::Dp4: return "dp4";
      case Opcode::Lrp: return "lrp";
      case Opcode::Pln: return "pln";
      case Opcode::Send: return "send";
      case Opcode::ProfCount: return "prof.count";
      case Opcode::ProfAdd: return "prof.add";
      case Opcode::ProfTimer: return "prof.timer";
      case Opcode::ProfMem: return "prof.mem";
      default:
        panic("opcodeName: invalid opcode ", (int)op);
    }
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::Move: return "move";
      case OpClass::Logic: return "logic";
      case OpClass::Control: return "control";
      case OpClass::Computation: return "computation";
      case OpClass::Send: return "send";
      case OpClass::Instrumentation: return "instrumentation";
      default:
        panic("opClassName: invalid class ", (int)cls);
    }
}

const char *
cmpOpName(CmpOp op)
{
    switch (op) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
      default:
        panic("cmpOpName: invalid cmp op ", (int)op);
    }
}

bool
isControl(Opcode op)
{
    return opClass(op) == OpClass::Control;
}

bool
isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Jmpi:
      case Opcode::Brc:
      case Opcode::Brnc:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
readsFlag(Opcode op)
{
    return op == Opcode::Brc || op == Opcode::Brnc || op == Opcode::Sel;
}

bool
isFloatOp(Opcode op)
{
    switch (op) {
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FMad:
      case Opcode::FDiv:
      case Opcode::Frc:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp:
      case Opcode::Log:
      case Opcode::Dp4:
      case Opcode::Lrp:
      case Opcode::Pln:
        return true;
      default:
        return false;
    }
}

bool
evalCmp(CmpOp op, uint32_t a, uint32_t b)
{
    auto sa = (int32_t)a;
    auto sb = (int32_t)b;
    switch (op) {
      case CmpOp::Eq: return sa == sb;
      case CmpOp::Ne: return sa != sb;
      case CmpOp::Lt: return sa < sb;
      case CmpOp::Le: return sa <= sb;
      case CmpOp::Gt: return sa > sb;
      case CmpOp::Ge: return sa >= sb;
      default:
        panic("evalCmp: invalid cmp op ", (int)op);
    }
}

} // namespace gt::isa
