/**
 * @file
 * Kernel binaries (CFGs of basic blocks) and kernel sources.
 *
 * A KernelSource is what the host program hands to the OpenCL runtime:
 * a reference to a kernel template plus compile-time parameters. The
 * GPU driver JIT-compiles a source into a KernelBinary — the artifact
 * the GT-Pin binary rewriter instruments, exactly at the point the
 * paper's Fig. 1 shows the binary being diverted to the rewriter.
 */

#ifndef GT_ISA_KERNEL_HH
#define GT_ISA_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"

namespace gt::isa
{

/**
 * @return the next value of a process-wide monotonic counter stamped
 * onto every newly constructed KernelBinary. Never returns 0, so 0 can
 * serve as an "absent" sentinel in caches.
 */
uint64_t nextBinaryGeneration();

/**
 * A single-entry straight-line run of instructions.
 *
 * Successors are implicit: a terminator's target plus, for
 * conditional branches and non-terminated blocks, the fall-through
 * block (id + 1). Block ids are dense indices into
 * KernelBinary::blocks.
 */
struct BasicBlock
{
    uint32_t id = 0;
    std::vector<Instruction> instrs;

    /** @return the terminator, or nullptr for pure fall-through. */
    const Instruction *
    terminator() const
    {
        if (instrs.empty())
            return nullptr;
        const Instruction &last = instrs.back();
        return isTerminator(last.op) ? &last : nullptr;
    }

    /** Number of instructions excluding injected instrumentation. */
    uint64_t
    appInstrCount() const
    {
        uint64_t n = 0;
        for (const auto &ins : instrs) {
            if (ins.cls() != OpClass::Instrumentation)
                ++n;
        }
        return n;
    }
};

/**
 * Compiled device code for one kernel: a CFG over basic blocks with
 * block 0 as the entry. Subroutines (Call targets) live in the same
 * block array.
 */
struct KernelBinary
{
    std::string name;
    std::vector<BasicBlock> blocks;

    /** Number of kernel arguments expected in the argument surface. */
    uint32_t numArgs = 0;

    /** Highest register index used, for verifier bounds checks. */
    uint16_t maxReg = 0;

    /**
     * Identity stamp, unique per constructed binary. Caches keyed on
     * a binary's address must also compare generations: a re-JITted
     * binary can land at a freed address with the same name and shape,
     * and this stamp is what tells the two apart. Copies and
     * assignments propagate the source's generation — the content is
     * identical, so anything derived from it stays valid.
     */
    uint64_t generation = nextBinaryGeneration();

    /** Static instruction count (all blocks, incl. instrumentation). */
    uint64_t staticInstrCount() const;

    /** Static count excluding instrumentation pseudo-ops. */
    uint64_t staticAppInstrCount() const;

    /** @return successor block ids of @p block. */
    std::vector<uint32_t> successors(const BasicBlock &block) const;
};

/**
 * What the host enqueues for compilation: a template name resolved by
 * the driver's JIT compiler plus integer compile parameters (unrolling
 * factors, tile sizes, data types...). Serializable, so CoFluent-style
 * recordings can capture and replay kernel creation.
 */
struct KernelSource
{
    /** Kernel name (what clCreateKernel looks up); the JIT names the
     * binary after it. */
    std::string name;

    std::string templateName;
    std::vector<int64_t> params;

    bool
    operator==(const KernelSource &other) const
    {
        return name == other.name &&
            templateName == other.templateName &&
            params == other.params;
    }
};

/**
 * Interface the GPU driver uses to JIT-compile kernel sources. The
 * workload library provides the concrete implementation backed by its
 * kernel-template registry.
 */
class JitCompiler
{
  public:
    virtual ~JitCompiler() = default;

    /** Compile @p source to device code; throws FatalError if unknown. */
    virtual KernelBinary compile(const KernelSource &source) const = 0;
};

/**
 * Validate the structural invariants of a binary: non-empty entry,
 * dense block ids, in-range branch targets and registers, terminators
 * only in tail position, valid SIMD widths, and sane send descriptors.
 * Throws PanicError describing the first violation.
 */
void verify(const KernelBinary &binary);

/**
 * Content identity of a binary: an FNV-1a fold over every semantic
 * field (name, argument count, register bound, and each block's
 * instructions field by field). Two binaries JIT-compiled from the
 * same source by different drivers carry different generation stamps
 * but the same content hash — this is what lets cross-driver caches
 * (shared execution plans, shared detailed checkpoints) recognize
 * them as the same program. The generation stamp is deliberately
 * excluded.
 */
uint64_t contentHash(const KernelBinary &binary);

} // namespace gt::isa

#endif // GT_ISA_KERNEL_HH
