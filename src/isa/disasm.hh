/**
 * @file
 * Textual disassembly of kernel binaries, for debugging and for the
 * example tools that dump instrumented code.
 */

#ifndef GT_ISA_DISASM_HH
#define GT_ISA_DISASM_HH

#include <ostream>
#include <string>

#include "isa/kernel.hh"

namespace gt::isa
{

/** @return one-line disassembly of @p ins. */
std::string disassemble(const Instruction &ins);

/** Print the whole binary, one block per paragraph, to @p os. */
void disassemble(const KernelBinary &bin, std::ostream &os);

} // namespace gt::isa

#endif // GT_ISA_DISASM_HH
