#include "isa/builder.hh"

#include <bit>
#include <set>

#include "common/logging.hh"

namespace gt::isa
{

Operand
fimm(float v)
{
    return Operand::fromImm(std::bit_cast<uint32_t>(v));
}

KernelBuilder::KernelBuilder(std::string name_, uint32_t num_args)
    : name(std::move(name_)), numArgs(num_args),
      nextReg((uint16_t)(2 + num_args))
{
    GT_ASSERT(!name.empty(), "kernel needs a name");
    GT_ASSERT(2 + numArgs < numRegisters, "too many kernel arguments");
    maxRegSeen = (uint16_t)(nextReg == 2 ? 1 : nextReg - 1);
}

Reg
KernelBuilder::reg()
{
    GT_ASSERT(nextReg < numRegisters, name, ": out of registers");
    Reg r{nextReg++};
    touchReg(r.idx);
    return r;
}

Flag
KernelBuilder::flag()
{
    Flag f{(uint8_t)(nextFlag % numFlags)};
    ++nextFlag;
    return f;
}

Reg
KernelBuilder::arg(uint32_t idx) const
{
    GT_ASSERT(idx < numArgs, name, ": argument index ", idx,
              " out of range (", numArgs, " args)");
    return Reg{(uint16_t)(2 + idx)};
}

void
KernelBuilder::touchReg(uint16_t r)
{
    if (r != noReg && r > maxRegSeen)
        maxRegSeen = r;
}

void
KernelBuilder::touch(const Operand &opnd)
{
    if (opnd.isReg())
        touchReg(opnd.reg);
}

void
KernelBuilder::emit(Instruction ins)
{
    GT_ASSERT(!finished, name, ": builder already finished");
    touchReg(ins.writesReg() ? ins.dst : noReg);
    touch(ins.src0);
    touch(ins.src1);
    touch(ins.src2);
    if (ins.op == Opcode::Send)
        touchReg(ins.send.addrReg);
    code.push_back(ins);
}

void
KernelBuilder::emitBinary(Opcode op, Reg dst, Operand a, Operand b,
                          int width)
{
    Instruction ins;
    ins.op = op;
    ins.simdWidth = (uint8_t)width;
    ins.dst = dst.idx;
    ins.src0 = a;
    ins.src1 = b;
    emit(ins);
}

void
KernelBuilder::emitUnary(Opcode op, Reg dst, Operand a, int width)
{
    Instruction ins;
    ins.op = op;
    ins.simdWidth = (uint8_t)width;
    ins.dst = dst.idx;
    ins.src0 = a;
    emit(ins);
}

void
KernelBuilder::emitTernary(Opcode op, Reg dst, Operand a, Operand b,
                           Operand c, int width)
{
    Instruction ins;
    ins.op = op;
    ins.simdWidth = (uint8_t)width;
    ins.dst = dst.idx;
    ins.src0 = a;
    ins.src1 = b;
    ins.src2 = c;
    emit(ins);
}

void
KernelBuilder::mov(Reg dst, Operand src, int width)
{
    emitUnary(Opcode::Mov, dst, src, width);
}

void
KernelBuilder::sel(Reg dst, Flag f, Operand a, Operand b, int width)
{
    Instruction ins;
    ins.op = Opcode::Sel;
    ins.simdWidth = (uint8_t)width;
    ins.dst = dst.idx;
    ins.src0 = a;
    ins.src1 = b;
    ins.flag = f.idx;
    emit(ins);
}

void
KernelBuilder::and_(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::And, dst, a, b, width);
}

void
KernelBuilder::or_(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Or, dst, a, b, width);
}

void
KernelBuilder::xor_(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Xor, dst, a, b, width);
}

void
KernelBuilder::not_(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Not, dst, a, width);
}

void
KernelBuilder::shl(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Shl, dst, a, b, width);
}

void
KernelBuilder::shr(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Shr, dst, a, b, width);
}

void
KernelBuilder::asr(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Asr, dst, a, b, width);
}

void
KernelBuilder::cmp(CmpOp op, Flag f, Operand a, Operand b, int width)
{
    Instruction ins;
    ins.op = Opcode::Cmp;
    ins.simdWidth = (uint8_t)width;
    ins.src0 = a;
    ins.src1 = b;
    ins.flag = f.idx;
    ins.cmpOp = op;
    emit(ins);
}

void
KernelBuilder::add(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Add, dst, a, b, width);
}

void
KernelBuilder::sub(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Sub, dst, a, b, width);
}

void
KernelBuilder::mul(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Mul, dst, a, b, width);
}

void
KernelBuilder::mad(Reg dst, Operand a, Operand b, Operand c, int width)
{
    emitTernary(Opcode::Mad, dst, a, b, c, width);
}

void
KernelBuilder::min_(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Min, dst, a, b, width);
}

void
KernelBuilder::max_(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Max, dst, a, b, width);
}

void
KernelBuilder::avg(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Avg, dst, a, b, width);
}

void
KernelBuilder::fadd(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::FAdd, dst, a, b, width);
}

void
KernelBuilder::fmul(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::FMul, dst, a, b, width);
}

void
KernelBuilder::fmad(Reg dst, Operand a, Operand b, Operand c,
                    int width)
{
    emitTernary(Opcode::FMad, dst, a, b, c, width);
}

void
KernelBuilder::fdiv(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::FDiv, dst, a, b, width);
}

void
KernelBuilder::frc(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Frc, dst, a, width);
}

void
KernelBuilder::sqrt(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Sqrt, dst, a, width);
}

void
KernelBuilder::rsqrt(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Rsqrt, dst, a, width);
}

void
KernelBuilder::sin(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Sin, dst, a, width);
}

void
KernelBuilder::cos(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Cos, dst, a, width);
}

void
KernelBuilder::exp2(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Exp, dst, a, width);
}

void
KernelBuilder::log2(Reg dst, Operand a, int width)
{
    emitUnary(Opcode::Log, dst, a, width);
}

void
KernelBuilder::dp4(Reg dst, Operand a, Operand b, int width)
{
    emitBinary(Opcode::Dp4, dst, a, b, width);
}

void
KernelBuilder::lrp(Reg dst, Operand a, Operand b, Operand c, int width)
{
    emitTernary(Opcode::Lrp, dst, a, b, c, width);
}

void
KernelBuilder::pln(Reg dst, Operand a, Operand b, Operand c, int width)
{
    emitTernary(Opcode::Pln, dst, a, b, c, width);
}

void
KernelBuilder::load(Reg dst, Reg addr, int bytes_per_lane, int width,
                    int32_t offset, AddrSpace space)
{
    Instruction ins;
    ins.op = Opcode::Send;
    ins.simdWidth = (uint8_t)width;
    ins.dst = dst.idx;
    ins.send.isWrite = false;
    ins.send.bytesPerLane = (uint8_t)bytes_per_lane;
    ins.send.space = space;
    ins.send.addrReg = addr.idx;
    ins.send.offset = offset;
    emit(ins);
}

void
KernelBuilder::store(Reg data, Reg addr, int bytes_per_lane, int width,
                     int32_t offset, AddrSpace space)
{
    Instruction ins;
    ins.op = Opcode::Send;
    ins.simdWidth = (uint8_t)width;
    ins.src0 = Operand::fromReg(data.idx);
    ins.send.isWrite = true;
    ins.send.bytesPerLane = (uint8_t)bytes_per_lane;
    ins.send.space = space;
    ins.send.addrReg = addr.idx;
    ins.send.offset = offset;
    emit(ins);
}

void
KernelBuilder::label(const std::string &label_name)
{
    GT_ASSERT(!finished, name, ": builder already finished");
    GT_ASSERT(!labels.count(label_name),
              name, ": duplicate label '", label_name, "'");
    labels[label_name] = code.size();
}

void
KernelBuilder::emitBranch(Opcode op, const std::string &target, Flag f,
                          FlagMode mode)
{
    Instruction ins;
    ins.op = op;
    ins.simdWidth = maxSimdWidth;
    ins.flag = f.idx;
    ins.flagMode = mode;
    fixups.emplace_back(code.size(), target);
    emit(ins);
}

void
KernelBuilder::jmp(const std::string &target)
{
    emitBranch(Opcode::Jmpi, target, Flag{0}, FlagMode::Lane0);
}

void
KernelBuilder::brc(Flag f, const std::string &target, FlagMode mode)
{
    emitBranch(Opcode::Brc, target, f, mode);
}

void
KernelBuilder::brnc(Flag f, const std::string &target, FlagMode mode)
{
    emitBranch(Opcode::Brnc, target, f, mode);
}

void
KernelBuilder::call(const std::string &target)
{
    emitBranch(Opcode::Call, target, Flag{0}, FlagMode::Lane0);
}

void
KernelBuilder::ret()
{
    Instruction ins;
    ins.op = Opcode::Ret;
    ins.simdWidth = 1;
    emit(ins);
}

void
KernelBuilder::halt()
{
    Instruction ins;
    ins.op = Opcode::Halt;
    ins.simdWidth = 1;
    emit(ins);
}

void
KernelBuilder::beginLoop(Reg counter, Operand trips)
{
    LoopFrame frame;
    frame.counter = counter;
    frame.trips = trips;
    frame.headLabel = "__loop" + std::to_string(labelCounter++);
    frame.flag = flag();
    mov(counter, imm(0), 1);
    label(frame.headLabel);
    loopStack.push_back(frame);
}

void
KernelBuilder::endLoop()
{
    GT_ASSERT(!loopStack.empty(), name, ": endLoop without beginLoop");
    LoopFrame frame = loopStack.back();
    loopStack.pop_back();
    add(frame.counter, frame.counter, imm(1), 1);
    // As on GEN, the compare and branch carry the full execution
    // width; the branch decision keys off flag lane 0.
    cmp(CmpOp::Lt, frame.flag, frame.counter, frame.trips,
        maxSimdWidth);
    brc(frame.flag, frame.headLabel);
}

KernelBinary
KernelBuilder::finish()
{
    GT_ASSERT(!finished, name, ": builder already finished");
    GT_ASSERT(loopStack.empty(), name, ": unclosed loop");
    GT_ASSERT(!code.empty(), name, ": no instructions emitted");
    finished = true;

    // Identify basic-block leaders: entry, every label target, and
    // every instruction following a terminator or call.
    std::set<size_t> leaders;
    leaders.insert(0);
    for (const auto &[label_name, pos] : labels) {
        GT_ASSERT(pos < code.size(),
                  name, ": label '", label_name,
                  "' does not precede any instruction");
        leaders.insert(pos);
    }
    for (size_t i = 0; i < code.size(); ++i) {
        if ((isTerminator(code[i].op) || code[i].op == Opcode::Call) &&
            i + 1 < code.size()) {
            leaders.insert(i + 1);
        }
    }

    // Map instruction index -> block id.
    std::vector<uint32_t> blockOf(code.size());
    uint32_t blockId = 0;
    std::vector<size_t> leaderList(leaders.begin(), leaders.end());
    for (size_t li = 0; li < leaderList.size(); ++li) {
        size_t begin = leaderList[li];
        size_t end =
            li + 1 < leaderList.size() ? leaderList[li + 1]
                                       : code.size();
        for (size_t i = begin; i < end; ++i)
            blockOf[i] = blockId;
        ++blockId;
    }

    // Resolve branch fixups to block ids.
    for (const auto &[pos, label_name] : fixups) {
        auto it = labels.find(label_name);
        GT_ASSERT(it != labels.end(),
                  name, ": undefined label '", label_name, "'");
        code[pos].target = (int32_t)blockOf[it->second];
    }

    // Assemble the blocks.
    KernelBinary bin;
    bin.name = name;
    bin.numArgs = numArgs;
    bin.maxReg = maxRegSeen;
    for (size_t li = 0; li < leaderList.size(); ++li) {
        size_t begin = leaderList[li];
        size_t end =
            li + 1 < leaderList.size() ? leaderList[li + 1]
                                       : code.size();
        BasicBlock block;
        block.id = (uint32_t)li;
        block.instrs.assign(code.begin() + (long)begin,
                            code.begin() + (long)end);
        bin.blocks.push_back(std::move(block));
    }

    // The final block must not fall off the end of the kernel.
    const BasicBlock &last = bin.blocks.back();
    if (!last.terminator()) {
        fatal(name, ": kernel does not end with halt/ret/jmp");
    }

    verify(bin);
    return bin;
}

} // namespace gt::isa
