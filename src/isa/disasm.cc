#include "isa/disasm.hh"

#include <sstream>

namespace gt::isa
{

namespace
{

void
appendOperand(std::ostringstream &os, const Operand &opnd)
{
    switch (opnd.kind) {
      case Operand::Kind::None:
        break;
      case Operand::Kind::Reg:
        os << " r" << opnd.reg;
        break;
      case Operand::Kind::Imm:
        os << " #" << opnd.imm;
        break;
    }
}

} // anonymous namespace

std::string
disassemble(const Instruction &ins)
{
    std::ostringstream os;
    os << opcodeName(ins.op);
    if (ins.op == Opcode::Cmp)
        os << '.' << cmpOpName(ins.cmpOp);
    os << "(" << (int)ins.simdWidth << ")";

    switch (ins.cls()) {
      case OpClass::Control:
        if (ins.op == Opcode::Brc || ins.op == Opcode::Brnc)
            os << " f" << (int)ins.flag;
        if (ins.op != Opcode::Ret && ins.op != Opcode::Halt)
            os << " -> bb" << ins.target;
        break;
      case OpClass::Send:
        if (ins.send.isWrite) {
            os << (ins.send.space == AddrSpace::Local
                       ? " local" : " global")
               << "[r" << ins.send.addrReg;
            if (ins.send.offset)
                os << (ins.send.offset > 0 ? "+" : "")
                   << ins.send.offset;
            os << "] <-";
            appendOperand(os, ins.src0);
        } else {
            os << " r" << ins.dst << " <- "
               << (ins.send.space == AddrSpace::Local
                       ? "local" : "global")
               << "[r" << ins.send.addrReg;
            if (ins.send.offset)
                os << (ins.send.offset > 0 ? "+" : "")
                   << ins.send.offset;
            os << "]";
        }
        os << " x" << (int)ins.send.bytesPerLane << "B";
        break;
      case OpClass::Instrumentation:
        os << " slot" << ins.profSlot;
        if (ins.op == Opcode::ProfCount)
            os << " +" << ins.profArg;
        appendOperand(os, ins.src0);
        break;
      default:
        if (ins.writesReg() || ins.op == Opcode::Cmp) {
            if (ins.dst != noReg)
                os << " r" << ins.dst << " <-";
        }
        if (ins.op == Opcode::Cmp)
            os << " f" << (int)ins.flag << " <-";
        appendOperand(os, ins.src0);
        appendOperand(os, ins.src1);
        appendOperand(os, ins.src2);
        break;
    }
    return os.str();
}

void
disassemble(const KernelBinary &bin, std::ostream &os)
{
    os << "kernel " << bin.name << " (" << bin.numArgs << " args, "
       << bin.blocks.size() << " blocks, "
       << bin.staticInstrCount() << " instrs)\n";
    for (const auto &block : bin.blocks) {
        os << "bb" << block.id << ":\n";
        for (const auto &ins : block.instrs)
            os << "    " << disassemble(ins) << "\n";
    }
}

} // namespace gt::isa
