/**
 * @file
 * Opcodes of the GEN-like device ISA.
 *
 * The paper's characterization (Fig. 4a) groups Intel GEN instructions
 * into five classes: moves, logic, control, computation, and sends
 * (memory messages). This ISA reproduces that taxonomy. A sixth class
 * covers the profiling pseudo-instructions injected by the GT-Pin
 * binary rewriter; they execute on the device like any other
 * instruction (so instrumentation overhead is real and measurable) but
 * are excluded from application profiles.
 */

#ifndef GT_ISA_OPCODE_HH
#define GT_ISA_OPCODE_HH

#include <cstdint>
#include <string>

namespace gt::isa
{

/** The five paper-visible instruction classes plus instrumentation. */
enum class OpClass : uint8_t
{
    Move,
    Logic,
    Control,
    Computation,
    Send,
    Instrumentation,
};

constexpr int numOpClasses = 6;

/** Individual operations of the device ISA. */
enum class Opcode : uint8_t
{
    // Moves
    Mov,        //!< dst = src0
    Sel,        //!< dst = flag ? src0 : src1

    // Logic
    And,        //!< bitwise and
    Or,         //!< bitwise or
    Xor,        //!< bitwise xor
    Not,        //!< bitwise not
    Shl,        //!< shift left
    Shr,        //!< logical shift right
    Asr,        //!< arithmetic shift right
    Cmp,        //!< compare, writes a flag register

    // Control
    Jmpi,       //!< unconditional jump to block
    Brc,        //!< branch to block if flag set
    Brnc,       //!< branch to block if flag clear
    Call,       //!< call subroutine block, push return
    Ret,        //!< return from subroutine
    Halt,       //!< terminate the thread

    // Computation (integer and float arithmetic)
    Add,        //!< integer add
    Sub,        //!< integer subtract
    Mul,        //!< integer multiply (low 32 bits)
    Mad,        //!< dst = src0 * src1 + src2 (integer)
    Min,        //!< integer minimum
    Max,        //!< integer maximum
    Avg,        //!< rounded average
    FAdd,       //!< float add
    FMul,       //!< float multiply
    FMad,       //!< float fused multiply-add
    FDiv,       //!< float divide
    Frc,        //!< float fractional part
    Sqrt,       //!< float square root
    Rsqrt,      //!< float reciprocal square root
    Sin,        //!< float sine
    Cos,        //!< float cosine
    Exp,        //!< float base-2 exponent
    Log,        //!< float base-2 logarithm
    Dp4,        //!< 4-element dot product (vector helper)
    Lrp,        //!< linear interpolation
    Pln,        //!< plane equation evaluation

    // Sends (all device memory traffic flows through these)
    Send,       //!< memory gather/scatter message

    // Instrumentation pseudo-ops (GT-Pin rewriter only)
    ProfCount,  //!< trace[slot] += imm
    ProfAdd,    //!< trace[slot] += src0 lane 0
    ProfTimer,  //!< trace[slot] += elapsed-cycles timer read
    ProfMem,    //!< trace[slot] += bytes moved by the paired send

    NumOpcodes,
};

constexpr int numOpcodes = static_cast<int>(Opcode::NumOpcodes);

/** Comparison conditions for Cmp. */
enum class CmpOp : uint8_t
{
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
};

/** Flag aggregation mode for conditional branches over SIMD lanes. */
enum class FlagMode : uint8_t
{
    Lane0,  //!< use lane 0 only (scalar control, the common case)
    Any,    //!< branch if any active lane's flag is set
    All,    //!< branch if all active lanes' flags are set
};

/** @return the class of @p op. */
OpClass opClass(Opcode op);

/** @return the mnemonic for @p op. */
const char *opcodeName(Opcode op);

/** @return a short display name for @p cls ("move", "logic", ...). */
const char *opClassName(OpClass cls);

/** @return mnemonic for a comparison condition. */
const char *cmpOpName(CmpOp op);

/** @return true for Jmpi/Brc/Brnc/Call/Ret/Halt. */
bool isControl(Opcode op);

/** @return true if @p op ends a basic block when it appears. */
bool isTerminator(Opcode op);

/** @return true if @p op reads the flag register. */
bool readsFlag(Opcode op);

/** @return true for the float-typed computation opcodes. */
bool isFloatOp(Opcode op);

/** Resolve a comparison on two unsigned 32-bit values (as signed). */
bool evalCmp(CmpOp op, uint32_t a, uint32_t b);

} // namespace gt::isa

#endif // GT_ISA_OPCODE_HH
