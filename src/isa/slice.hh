/**
 * @file
 * Control-relevance analysis (backward slicing) over kernel binaries.
 *
 * The paper's applications average 308 billion dynamic instructions;
 * interpreting every lane of every instruction of a scaled-down suite
 * would still dominate experiment time. The executor therefore offers
 * a *fast* mode that fully evaluates only the instructions whose
 * results can influence control flow (loop counters, compares, the
 * chains feeding them) or that must execute for profiling
 * (instrumentation pseudo-ops), and merely counts the rest at basic-
 * block granularity. This analysis computes that set.
 *
 * The analysis is a conservative, flow-insensitive backward slice:
 * roots are all control instructions, all flag-writing compares, and
 * any registers read by instrumentation ops; any instruction writing
 * a register in the transitive use-set of a root is relevant. If a
 * memory load ends up relevant (data-dependent control flow), the
 * binary is flagged as requiring full execution, since fast mode does
 * not model memory contents.
 */

#ifndef GT_ISA_SLICE_HH
#define GT_ISA_SLICE_HH

#include <vector>

#include "isa/kernel.hh"

namespace gt::isa
{

/** Result of the control-relevance analysis for one binary. */
struct Relevance
{
    /** relevant[block][instr]: must this instruction be evaluated? */
    std::vector<std::vector<bool>> relevant;

    /**
     * True if control flow depends on loaded data, so fast mode is
     * unsound and the executor must fall back to full evaluation.
     */
    bool needsFullExec = false;

    /**
     * True if control flow can differ across hardware threads (the
     * slice reaches r0/r1, the per-thread id registers). When false,
     * every thread of a dispatch executes identically and the
     * executor runs one representative thread, scaling counts by the
     * thread count.
     */
    bool threadDependent = false;

    /** Number of relevant instructions (diagnostics). */
    uint64_t relevantCount = 0;

    /** Total instructions analyzed. */
    uint64_t totalCount = 0;
};

/** Run the analysis on @p bin. */
Relevance analyzeRelevance(const KernelBinary &bin);

} // namespace gt::isa

#endif // GT_ISA_SLICE_HH
