/**
 * @file
 * Control-relevance analysis (backward slicing) over kernel binaries.
 *
 * The paper's applications average 308 billion dynamic instructions;
 * interpreting every lane of every instruction of a scaled-down suite
 * would still dominate experiment time. The executor therefore offers
 * a *fast* mode that fully evaluates only the instructions whose
 * results can influence control flow (loop counters, compares, the
 * chains feeding them) or that must execute for profiling
 * (instrumentation pseudo-ops), and merely counts the rest at basic-
 * block granularity. This analysis computes that set.
 *
 * The analysis is a conservative, flow-insensitive backward slice:
 * roots are all control instructions, all flag-writing compares, and
 * any registers read by instrumentation ops; any instruction writing
 * a register in the transitive use-set of a root is relevant. If a
 * memory load ends up relevant (data-dependent control flow), the
 * binary is flagged as requiring full execution, since fast mode does
 * not model memory contents.
 */

#ifndef GT_ISA_SLICE_HH
#define GT_ISA_SLICE_HH

#include <vector>

#include "isa/kernel.hh"

namespace gt::isa
{

/** Result of the control-relevance analysis for one binary. */
struct Relevance
{
    /** relevant[block][instr]: must this instruction be evaluated? */
    std::vector<std::vector<bool>> relevant;

    /**
     * True if control flow depends on loaded data, so fast mode is
     * unsound and the executor must fall back to full evaluation.
     */
    bool needsFullExec = false;

    /**
     * True if control flow can differ across hardware threads (the
     * slice reaches r0/r1, the per-thread id registers). When false,
     * every thread of a dispatch executes identically and the
     * executor runs one representative thread, scaling counts by the
     * thread count.
     */
    bool threadDependent = false;

    /** Number of relevant instructions (diagnostics). */
    uint64_t relevantCount = 0;

    /** Total instructions analyzed. */
    uint64_t totalCount = 0;
};

/** Run the analysis on @p bin. */
Relevance analyzeRelevance(const KernelBinary &bin);

/**
 * Result of the gang-safety analysis (see analyzeGangSafety).
 *
 * The executor's gang backend interleaves G threads uop by uop, which
 * reorders memory operations *across* threads (each thread's own
 * program order is preserved). That is invisible unless two threads
 * touch the same global address with at least one store involved, so
 * the analysis proves, per kernel, that no such collision can change
 * an observable result:
 *
 *  - route "no-collision": a send's address is affine in the lane's
 *    global id and dispatch arguments only, and no in-gang id delta
 *    can produce the same masked element index;
 *  - route "equal-value": colliding stores are possible (iteration-
 *    skewed addressing), but every colliding store provably writes
 *    the same value — a pure function of the masked element index,
 *    dispatch arguments, and loads from buffers disjoint from every
 *    stored region — so final memory is order-independent.
 *
 * Anything the routes cannot prove at plan time degrades to either a
 * dispatch-time buffer-disjointness check (cross-argument regions) or
 * a verdict of "never gang-safe" (regionForm = false). Local-memory
 * sends are ignored: each gang slot owns a private local block, same
 * as a scalar thread.
 */
struct GangSafety
{
    /**
     * Address region touched through one base argument: the byte
     * interval [args[baseArg] + lo, args[baseArg] + hi) covering
     * every element index the masked addressing can produce.
     */
    struct Region
    {
        uint32_t baseArg = 0;
        int64_t lo = 0;
        int64_t hi = 0;
        bool hasStore = false;
    };

    /**
     * Pair of regions (indices into `regions`) that must not overlap
     * for a dispatch to run ganged; evaluated against the concrete
     * argument values at dispatch time.
     */
    struct Check
    {
        uint32_t a = 0;
        uint32_t b = 0;
    };

    /**
     * True when every global send normalized into a Region and every
     * same-region store pair was proven safe. False means the kernel
     * can never run ganged (order-dependent stores, unprovable
     * addressing, or store footprints wider than the element stride).
     */
    bool regionForm = false;

    std::vector<Region> regions;
    std::vector<Check> checks;

    /**
     * Smallest dispatch SIMD width the no-collision proofs are valid
     * for: a send of width w dispatched at simdWidth < w duplicates
     * global ids across threads, which voids the id-delta scan.
     */
    uint8_t minSimdWidth = 0;

    /** Diagnostics: same-region pairs proven at plan time vs region
     * pairs deferred to dispatch-time disjointness checks. */
    uint32_t provenPairs = 0;
    uint32_t checkedPairs = 0;
};

/** Run the gang-safety analysis on @p bin. */
GangSafety analyzeGangSafety(const KernelBinary &bin);

} // namespace gt::isa

#endif // GT_ISA_SLICE_HH
