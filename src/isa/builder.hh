/**
 * @file
 * Structured assembler for device kernels.
 *
 * KernelBuilder is the JIT compiler's code generator: kernel templates
 * emit instructions through it, using labels for control flow, and
 * finish() lowers the stream into a verified KernelBinary CFG. The
 * register convention is:
 *
 *   r0          per-lane global work-item ids of this hardware thread
 *   r1 lane 0   linear hardware-thread index within the dispatch
 *   r1 lane 1   global work size (low 32 bits)
 *   r1 lane 2   dispatch SIMD width
 *   r2..r2+N-1  kernel arguments 0..N-1, broadcast to all lanes
 *   higher      allocated via reg()
 */

#ifndef GT_ISA_BUILDER_HH
#define GT_ISA_BUILDER_HH

#include <map>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace gt::isa
{

/** A typed handle for an allocated general register. */
struct Reg
{
    uint16_t idx = noReg;

    operator Operand() const { return Operand::fromReg(idx); }
};

/** Shorthand for an immediate operand. */
inline Operand
imm(uint32_t v)
{
    return Operand::fromImm(v);
}

/** Shorthand for a float immediate operand (bit pattern). */
Operand fimm(float v);

/** A typed handle for a flag register. */
struct Flag
{
    uint8_t idx = 0;
};

/**
 * Incrementally builds one kernel binary. All emit methods append to
 * an instruction stream; labels name positions; finish() splits the
 * stream into basic blocks, resolves label targets, verifies the
 * result, and returns it. A builder is single-use.
 */
class KernelBuilder
{
  public:
    /**
     * @param name kernel name reported in profiles
     * @param num_args number of kernel arguments (preloaded in
     *        registers r2..r2+num_args-1)
     */
    explicit KernelBuilder(std::string name, uint32_t num_args = 0);

    /** Allocate a fresh general register. */
    Reg reg();

    /** Allocate a fresh flag register handle (wraps around 4). */
    Flag flag();

    /** @return the register preloaded with per-lane global ids. */
    Reg globalIds() const { return Reg{0}; }

    /** @return the register holding dispatch metadata (see file doc). */
    Reg dispatchInfo() const { return Reg{1}; }

    /** @return the register preloaded with kernel argument @p idx. */
    Reg arg(uint32_t idx) const;

    // --- Moves -----------------------------------------------------
    void mov(Reg dst, Operand src, int width = maxSimdWidth);
    void sel(Reg dst, Flag f, Operand a, Operand b,
             int width = maxSimdWidth);

    // --- Logic -----------------------------------------------------
    void and_(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void or_(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void xor_(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void not_(Reg dst, Operand a, int width = maxSimdWidth);
    void shl(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void shr(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void asr(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void cmp(CmpOp op, Flag f, Operand a, Operand b, int width = 1);

    // --- Computation -----------------------------------------------
    void add(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void sub(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void mul(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void mad(Reg dst, Operand a, Operand b, Operand c,
             int width = maxSimdWidth);
    void min_(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void max_(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void avg(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void fadd(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void fmul(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void fmad(Reg dst, Operand a, Operand b, Operand c,
              int width = maxSimdWidth);
    void fdiv(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void frc(Reg dst, Operand a, int width = maxSimdWidth);
    void sqrt(Reg dst, Operand a, int width = maxSimdWidth);
    void rsqrt(Reg dst, Operand a, int width = maxSimdWidth);
    void sin(Reg dst, Operand a, int width = maxSimdWidth);
    void cos(Reg dst, Operand a, int width = maxSimdWidth);
    void exp2(Reg dst, Operand a, int width = maxSimdWidth);
    void log2(Reg dst, Operand a, int width = maxSimdWidth);
    void dp4(Reg dst, Operand a, Operand b, int width = maxSimdWidth);
    void lrp(Reg dst, Operand a, Operand b, Operand c,
             int width = maxSimdWidth);
    void pln(Reg dst, Operand a, Operand b, Operand c,
             int width = maxSimdWidth);

    // --- Memory ----------------------------------------------------
    /** Gather @p bytes_per_lane bytes per lane from global memory. */
    void load(Reg dst, Reg addr, int bytes_per_lane = 4,
              int width = maxSimdWidth, int32_t offset = 0,
              AddrSpace space = AddrSpace::Global);

    /** Scatter @p bytes_per_lane bytes per lane to global memory. */
    void store(Reg data, Reg addr, int bytes_per_lane = 4,
               int width = maxSimdWidth, int32_t offset = 0,
               AddrSpace space = AddrSpace::Global);

    // --- Control flow ----------------------------------------------
    /** Bind @p name to the next emitted instruction. */
    void label(const std::string &name);

    void jmp(const std::string &target);
    void brc(Flag f, const std::string &target,
             FlagMode mode = FlagMode::Lane0);
    void brnc(Flag f, const std::string &target,
              FlagMode mode = FlagMode::Lane0);
    void call(const std::string &target);
    void ret();
    void halt();

    /**
     * Open a counted loop: initializes @p counter to zero and loops
     * until it reaches @p trips. Must be closed with endLoop(). Loops
     * nest.
     */
    void beginLoop(Reg counter, Operand trips);

    /** Close the innermost loop opened with beginLoop(). */
    void endLoop();

    /** Lower, verify, and return the binary. Single use. */
    KernelBinary finish();

    /** Number of instructions emitted so far. */
    size_t instrCount() const { return code.size(); }

  private:
    struct LoopFrame
    {
        Reg counter;
        Operand trips;
        std::string headLabel;
        Flag flag;
    };

    void emit(Instruction ins);
    void emitBinary(Opcode op, Reg dst, Operand a, Operand b,
                    int width);
    void emitUnary(Opcode op, Reg dst, Operand a, int width);
    void emitTernary(Opcode op, Reg dst, Operand a, Operand b,
                     Operand c, int width);
    void emitBranch(Opcode op, const std::string &target, Flag f,
                    FlagMode mode);
    void touch(const Operand &opnd);
    void touchReg(uint16_t r);

    std::string name;
    uint32_t numArgs;
    uint16_t nextReg;
    uint8_t nextFlag = 0;
    uint16_t maxRegSeen = 0;
    bool finished = false;
    uint64_t labelCounter = 0;

    std::vector<Instruction> code;
    /** label name -> instruction index it precedes */
    std::map<std::string, size_t> labels;
    /** (instruction index, label) pairs awaiting resolution */
    std::vector<std::pair<size_t, std::string>> fixups;
    std::vector<LoopFrame> loopStack;
};

} // namespace gt::isa

#endif // GT_ISA_BUILDER_HH
