/**
 * @file
 * Predecoded micro-ops (uops) and superblock chaining.
 *
 * The reference interpreter in gpu/executor.cc pays a large opcode
 * switch per instruction and an imm/reg switch per operand *per lane*.
 * This module lowers a KernelBinary once, at plan time, into a dense
 * array of micro-ops whose kind encodes both the opcode and the
 * operand shapes — `Add r3, r4, #7` and `Add r3, r4, r5` decode to
 * different kinds — so the executor's uop backend dispatches through a
 * flat function table of loops specialized at compile time and the
 * per-lane operand switch disappears entirely.
 *
 * On top of the uops sits *superblock chaining*: basic blocks linked
 * only by unconditional edges (fall-through or a tail `Jmpi`) whose
 * target has no other predecessor are fused into one superblock — a
 * single uop run with one entry-count/cycles/runaway update instead of
 * one per block. Superblocks partition the CFG (every block belongs to
 * exactly one, dynamic control transfers always enter at a head), so
 * per-block execution counts are recovered *exactly* by crediting each
 * member with its superblock's entry count.
 *
 * Two uop streams are emitted per superblock: the full stream (every
 * instruction) and the fast stream (only instructions marked by the
 * relevance slice, see isa/slice.hh), mirroring the executor's
 * Full/Fast modes. Per-member end offsets into both streams let the
 * trace path step one basic block at a time when an exact block
 * sequence is being recorded.
 *
 * Bitwise-equivalence ground rules (the uop backend must reproduce the
 * switch backend's results exactly, including panics):
 *  - a block containing ProfTimer never chains a successor: the timer
 *    reads issue cycles, which must have advanced only up to and
 *    including its own block;
 *  - a block with a control op outside tail position is never fused
 *    (it stays a singleton superblock and the transfer executes as an
 *    inline uop);
 *  - uops after a mid-block Halt are not emitted — the reference
 *    interpreter breaks out of the block when a Halt retires;
 *  - malformed instructions (absent operands, bad opcodes/flag modes)
 *    decode to trap uops that panic with the reference backend's
 *    message only if actually executed.
 */

#ifndef GT_ISA_UOP_HH
#define GT_ISA_UOP_HH

#include <cstdint>
#include <vector>

#include "isa/kernel.hh"
#include "isa/slice.hh"

namespace gt::isa
{

/**
 * Uop kinds are `opcode * uopSubSlots + sub`, where `sub` packs the
 * decode-time specialization (operand imm/reg shape bits, and for Cmp
 * the comparison, for branches the flag mode). The slot count leaves
 * room for Cmp's 6 comparisons x 4 operand shapes (24 subs, the
 * widest user).
 */
constexpr int uopSubSlots = 32;

/** Trap/control kinds live in the slot space past the last opcode. */
enum UopTrap : uint16_t
{
    uopTrapBase = (uint16_t)numOpcodes * uopSubSlots,
    uopTrapAbsentOperand = uopTrapBase,     //!< read of a None operand
    uopTrapBadOpcode,                       //!< unimplemented opcode
    uopTrapBadFlagMode,                     //!< branch with bad mode
    /**
     * Stream terminator appended after every superblock's uop run (in
     * both streams, excluded from numUops/numFastUops): the executor's
     * threaded dispatch chains handler to handler and stops when this
     * one fires.
     */
    uopStop,
    numUopKinds,
};

/** @return the kind for @p op with shape/specialization bits @p sub. */
constexpr uint16_t
uopKind(Opcode op, int sub)
{
    return (uint16_t)((int)op * uopSubSlots + sub);
}

/**
 * One predecoded micro-op. Field use by kind:
 *
 *  - ALU/moves: dst, s0..s2 (register index or raw immediate, per the
 *    shape bits in the kind), width, flag (Sel/Cmp).
 *  - Send: s1 = address register, aux = byte offset (int32 bits),
 *    aux16 = bytesPerLane; dst = load destination, s0 = store data.
 *  - Branches (Brc/Brnc): flag, width, aux = taken-edge superblock.
 *  - Call: aux = callee superblock, aux2 = return-site superblock.
 *  - Inline Jmpi (mid-block only): aux = target superblock.
 *  - Prof ops: aux = trace slot, aux2 = immediate argument; ProfAdd
 *    reads s0.
 *  - Traps: aux = the offending opcode (for the panic message).
 */
struct Uop
{
    uint16_t kind = uopTrapBadOpcode;
    uint8_t width = 1;
    uint8_t flag = 0;
    uint16_t dst = 0;
    uint16_t aux16 = 0;
    uint32_t s0 = 0;
    uint32_t s1 = 0;
    uint32_t s2 = 0;
    uint32_t aux = 0;
    uint32_t aux2 = 0;
};

/** A predecoded kernel binary: superblocks over two uop streams. */
struct UopProgram
{
    /** Sentinel for "no successor" (running off the end panics). */
    static constexpr uint32_t invalidSuper = 0xffffffffu;

    struct Superblock
    {
        /** Full-stream uop slice (every instruction). */
        uint32_t firstUop = 0, numUops = 0;
        /** Fast-stream uop slice (relevance-sliced). */
        uint32_t firstFastUop = 0, numFastUops = 0;
        /** Member basic blocks, a slice of UopProgram::members. */
        uint32_t memberBegin = 0, memberCount = 0;
        /**
         * Superblock entered when no transfer uop fires: the
         * fall-through or tail-Jmpi successor of the last member, or
         * invalidSuper when the last member ends in Ret/Halt or falls
         * off the end of the kernel.
         */
        uint32_t defaultNext = invalidSuper;
        /** Static instructions across members (runaway accounting). */
        uint64_t instrs = 0;
    };

    std::vector<Superblock> supers;

    /** Member block ids, grouped per superblock in execution order. */
    std::vector<uint32_t> members;

    /**
     * Per-member *end* offsets into uops/fastUops (absolute indices,
     * parallel to members). A member's slice starts at the previous
     * member's end (or the superblock's first offset for the head).
     * Lets the trace path execute one basic block at a time.
     */
    std::vector<uint32_t> memberUopEnd;
    std::vector<uint32_t> memberFastUopEnd;

    /** The two uop streams. */
    std::vector<Uop> uops;
    std::vector<Uop> fastUops;

    /** Owning superblock of each basic block. */
    std::vector<uint32_t> superOf;
};

/**
 * Lower @p bin to a uop program. @p rel must be the relevance analysis
 * of the same binary; it selects the fast stream's instructions.
 */
UopProgram decodeUops(const KernelBinary &bin, const Relevance &rel);

} // namespace gt::isa

#endif // GT_ISA_UOP_HH
