/**
 * @file
 * Instruction encoding of the GEN-like device ISA.
 *
 * Instructions operate on a general register file (GRF) of SIMD
 * vector registers. Each register holds maxSimdWidth 32-bit lanes; an
 * instruction's simdWidth (1, 2, 4, 8, or 16) selects how many lanes
 * it processes, reproducing the SIMD-width distribution the paper
 * reports in Fig. 4b. All memory traffic uses Send messages carrying
 * per-lane addresses, mirroring GEN's send-based memory model.
 */

#ifndef GT_ISA_INSTRUCTION_HH
#define GT_ISA_INSTRUCTION_HH

#include <cstdint>

#include "isa/opcode.hh"

namespace gt::isa
{

/** Number of 32-bit lanes in a full-width vector register. */
constexpr int maxSimdWidth = 16;

/** Number of general registers per thread. */
constexpr int numRegisters = 128;

/** Number of flag registers per thread. */
constexpr int numFlags = 4;

/** Register index designating "no register". */
constexpr uint16_t noReg = 0xffff;

/** A source operand: a register, an immediate, or absent. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm };

    Kind kind = Kind::None;
    uint16_t reg = noReg;
    uint32_t imm = 0;

    static Operand none() { return {}; }

    static Operand
    fromReg(uint16_t r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    fromImm(uint32_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** Address spaces visible to Send messages. */
enum class AddrSpace : uint8_t
{
    Global,  //!< device global memory (buffers, images)
    Local,   //!< work-group shared memory
};

/** Message descriptor for Send instructions. */
struct SendInfo
{
    bool isWrite = false;         //!< write (scatter) vs. read (gather)
    uint8_t bytesPerLane = 4;     //!< payload bytes moved per lane
    AddrSpace space = AddrSpace::Global;
    uint16_t addrReg = noReg;     //!< register holding per-lane addresses
    int32_t offset = 0;           //!< immediate byte offset added per lane
};

/**
 * One machine instruction.
 *
 * Field usage varies by opcode class: control opcodes use target (a
 * basic-block id resolved by the builder) and flag; Cmp writes flag
 * using cmpOp; Send uses send and dst/src0 for data; instrumentation
 * pseudo-ops use profSlot as a trace-buffer index.
 */
struct Instruction
{
    Opcode op = Opcode::Mov;
    uint8_t simdWidth = 1;        //!< 1, 2, 4, 8, or 16 lanes

    uint16_t dst = noReg;         //!< destination register
    Operand src0;
    Operand src1;
    Operand src2;

    uint8_t flag = 0;             //!< flag register for Cmp/branch/Sel
    CmpOp cmpOp = CmpOp::Eq;      //!< condition for Cmp
    FlagMode flagMode = FlagMode::Lane0;

    int32_t target = -1;          //!< basic-block id for control ops

    SendInfo send;                //!< message descriptor for Send

    uint32_t profSlot = 0;        //!< trace-buffer slot for prof ops
    uint32_t profArg = 0;         //!< immediate argument for prof ops

    OpClass cls() const { return opClass(op); }

    /** @return true if this instruction writes a general register. */
    bool
    writesReg() const
    {
        if (dst == noReg)
            return false;
        switch (cls()) {
          case OpClass::Control:
          case OpClass::Instrumentation:
            return false;
          case OpClass::Send:
            return !send.isWrite;
          default:
            return true;
        }
    }

    /** @return true if this instruction writes a flag register. */
    bool writesFlag() const { return op == Opcode::Cmp; }
};

} // namespace gt::isa

#endif // GT_ISA_INSTRUCTION_HH
