#include "isa/kernel.hh"

#include <atomic>

#include "common/logging.hh"

namespace gt::isa
{

uint64_t
nextBinaryGeneration()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

uint64_t
KernelBinary::staticInstrCount() const
{
    uint64_t n = 0;
    for (const auto &block : blocks)
        n += block.instrs.size();
    return n;
}

uint64_t
KernelBinary::staticAppInstrCount() const
{
    uint64_t n = 0;
    for (const auto &block : blocks)
        n += block.appInstrCount();
    return n;
}

std::vector<uint32_t>
KernelBinary::successors(const BasicBlock &block) const
{
    std::vector<uint32_t> succs;
    const Instruction *term = block.terminator();
    if (!term) {
        if (block.id + 1 < blocks.size())
            succs.push_back(block.id + 1);
        return succs;
    }
    switch (term->op) {
      case Opcode::Jmpi:
        succs.push_back((uint32_t)term->target);
        break;
      case Opcode::Brc:
      case Opcode::Brnc:
        succs.push_back((uint32_t)term->target);
        if (block.id + 1 < blocks.size())
            succs.push_back(block.id + 1);
        break;
      case Opcode::Ret:
      case Opcode::Halt:
        break;
      default:
        panic("unexpected terminator ", opcodeName(term->op));
    }
    return succs;
}

namespace
{

/** FNV-1a, folded a machine word at a time. */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ULL;

    void
    mix(uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    }

    void
    mix(const std::string &s)
    {
        mix((uint64_t)s.size());
        for (char c : s) {
            h ^= (uint8_t)c;
            h *= 0x100000001b3ULL;
        }
    }
};

void
mixOperand(Fnv &f, const Operand &o)
{
    f.mix((uint64_t)o.kind);
    f.mix(o.reg);
    f.mix(o.imm);
}

} // anonymous namespace

uint64_t
contentHash(const KernelBinary &bin)
{
    Fnv f;
    f.mix(bin.name);
    f.mix(bin.numArgs);
    f.mix(bin.maxReg);
    f.mix((uint64_t)bin.blocks.size());
    for (const BasicBlock &block : bin.blocks) {
        f.mix(block.id);
        f.mix((uint64_t)block.instrs.size());
        for (const Instruction &ins : block.instrs) {
            f.mix((uint64_t)ins.op);
            f.mix(ins.simdWidth);
            f.mix(ins.dst);
            mixOperand(f, ins.src0);
            mixOperand(f, ins.src1);
            mixOperand(f, ins.src2);
            f.mix(ins.flag);
            f.mix((uint64_t)ins.cmpOp);
            f.mix((uint64_t)ins.flagMode);
            f.mix((uint64_t)(int64_t)ins.target);
            f.mix(ins.send.isWrite);
            f.mix(ins.send.bytesPerLane);
            f.mix((uint64_t)ins.send.space);
            f.mix(ins.send.addrReg);
            f.mix((uint64_t)(int64_t)ins.send.offset);
            f.mix(ins.profSlot);
            f.mix(ins.profArg);
        }
    }
    return f.h;
}

namespace
{

bool
validSimdWidth(uint8_t w)
{
    return w == 1 || w == 2 || w == 4 || w == 8 || w == 16;
}

void
verifyOperand(const KernelBinary &bin, const Operand &opnd,
              const std::string &where)
{
    if (opnd.isReg()) {
        GT_ASSERT(opnd.reg < numRegisters,
                  where, ": register r", opnd.reg, " out of range");
        GT_ASSERT(opnd.reg <= bin.maxReg,
                  where, ": register r", opnd.reg, " above maxReg");
    }
}

} // anonymous namespace

void
verify(const KernelBinary &bin)
{
    GT_ASSERT(!bin.name.empty(), "kernel binary has no name");
    GT_ASSERT(!bin.blocks.empty(), bin.name, ": binary has no blocks");
    GT_ASSERT(!bin.blocks[0].instrs.empty(),
              bin.name, ": entry block is empty");
    GT_ASSERT(bin.maxReg < numRegisters,
              bin.name, ": maxReg out of range");

    for (size_t b = 0; b < bin.blocks.size(); ++b) {
        const BasicBlock &block = bin.blocks[b];
        std::string where = bin.name + " block " + std::to_string(b);
        GT_ASSERT(block.id == b, where, ": non-dense block id ",
                  block.id);
        GT_ASSERT(!block.instrs.empty(), where, ": empty block");

        for (size_t i = 0; i < block.instrs.size(); ++i) {
            const Instruction &ins = block.instrs[i];
            std::string at = where + " instr " + std::to_string(i);

            GT_ASSERT(validSimdWidth(ins.simdWidth),
                      at, ": bad simd width ", (int)ins.simdWidth);
            GT_ASSERT(ins.op < Opcode::NumOpcodes, at, ": bad opcode");

            if (isTerminator(ins.op)) {
                GT_ASSERT(i + 1 == block.instrs.size(),
                          at, ": terminator not in tail position");
            }

            if (ins.op == Opcode::Jmpi || ins.op == Opcode::Brc ||
                ins.op == Opcode::Brnc || ins.op == Opcode::Call) {
                GT_ASSERT(ins.target >= 0 &&
                          (size_t)ins.target < bin.blocks.size(),
                          at, ": branch target ", ins.target,
                          " out of range");
            }

            if (ins.op == Opcode::Cmp || readsFlag(ins.op)) {
                GT_ASSERT(ins.flag < numFlags,
                          at, ": flag register out of range");
            }

            if (ins.op == Opcode::Send) {
                GT_ASSERT(ins.send.addrReg != noReg,
                          at, ": send without address register");
                GT_ASSERT(ins.send.addrReg < numRegisters,
                          at, ": send address register out of range");
                GT_ASSERT(ins.send.bytesPerLane > 0 &&
                          ins.send.bytesPerLane <= 64,
                          at, ": send bytes/lane out of range");
                if (ins.send.isWrite) {
                    GT_ASSERT(ins.src0.isReg(),
                              at, ": store without data register");
                } else {
                    GT_ASSERT(ins.dst != noReg,
                              at, ": load without destination");
                }
            }

            if (ins.writesReg()) {
                GT_ASSERT(ins.dst < numRegisters,
                          at, ": dst register out of range");
                GT_ASSERT(ins.dst <= bin.maxReg,
                          at, ": dst register above maxReg");
            }

            verifyOperand(bin, ins.src0, at);
            verifyOperand(bin, ins.src1, at);
            verifyOperand(bin, ins.src2, at);
        }

        // Non-terminated blocks must have a fall-through successor.
        if (!block.terminator()) {
            GT_ASSERT(b + 1 < bin.blocks.size(),
                      where, ": falls through past the last block");
        }
    }
}

} // namespace gt::isa
