#include "isa/uop.hh"

namespace gt::isa
{

namespace
{

constexpr uint32_t noBlock = 0xffffffffu;

/**
 * Per-block facts gathered before superblocks are formed.
 *
 * A block's *chain edge* is the unique unconditional successor edge a
 * superblock may extend through: fall-through from a block whose last
 * instruction is neither a terminator nor a Call, or a tail Jmpi. All
 * other edges (branch targets, conditional fall-throughs, call
 * targets, return sites, the dispatch entry into block 0) are
 * non-chain: their targets must stay superblock heads because control
 * can enter there dynamically.
 */
struct BlockFacts
{
    uint32_t chainNext = noBlock;
    /** Superblocks never extend past this block (ProfTimer must see
     * cycles advanced exactly through its own block; mid-block control
     * transfers as inline uops, valid only in singleton runs). */
    bool chainStop = false;
    /** Control op outside tail position — never fuse this block. */
    bool midControl = false;
    int inEdges = 0;
    int chainEdges = 0;
};

struct EdgeScan
{
    std::vector<BlockFacts> facts;

    explicit EdgeScan(const KernelBinary &bin) : facts(bin.blocks.size())
    {
        const size_t n = bin.blocks.size();
        if (n > 0)
            ++facts[0].inEdges; // dispatch entry
        for (size_t b = 0; b < n; ++b) {
            const BasicBlock &block = bin.blocks[b];
            BlockFacts &f = facts[b];
            const size_t ni = block.instrs.size();
            for (size_t i = 0; i < ni; ++i) {
                const Instruction &ins = block.instrs[i];
                const bool tail = i + 1 == ni;
                if (ins.cls() == OpClass::Instrumentation &&
                    ins.op == Opcode::ProfTimer) {
                    f.chainStop = true;
                }
                if (ins.cls() != OpClass::Control)
                    continue;
                if (!tail)
                    f.midControl = true;
                switch (ins.op) {
                  case Opcode::Jmpi:
                    if (tail) {
                        f.chainNext = chain(ins.target);
                    } else {
                        nonChain(ins.target);
                    }
                    break;
                  case Opcode::Brc:
                  case Opcode::Brnc:
                    nonChain(ins.target);
                    if (tail)
                        nonChain(b + 1);
                    break;
                  case Opcode::Call:
                    nonChain(ins.target);
                    nonChain(b + 1); // return site
                    break;
                  default: // Ret, Halt: no successor edges
                    break;
                }
            }
            f.chainStop = f.chainStop || f.midControl;
            // A block whose last instruction is not a control op falls
            // through unconditionally: the canonical chain edge.
            if (ni == 0 ||
                block.instrs.back().cls() != OpClass::Control) {
                f.chainNext = chain(b + 1);
            }
        }
    }

    /** Record a chain edge to @p target; @return the target id. */
    uint32_t
    chain(int64_t target)
    {
        if (target < 0 || (size_t)target >= facts.size())
            return noBlock;
        ++facts[target].inEdges;
        ++facts[target].chainEdges;
        return (uint32_t)target;
    }

    void
    nonChain(int64_t target)
    {
        if (target >= 0 && (size_t)target < facts.size())
            ++facts[target].inEdges;
    }

    /** May @p b be absorbed into its predecessor's superblock? */
    bool
    absorbable(uint32_t b) const
    {
        const BlockFacts &f = facts[b];
        return f.inEdges == 1 && f.chainEdges == 1 && !f.midControl;
    }
};

/** @return superOf[target], or invalidSuper for out-of-range targets
 * (transferring there reproduces the reference backend's fell-off-
 * the-end panic). */
uint32_t
superAt(const UopProgram &prog, int64_t target)
{
    if (target < 0 || (size_t)target >= prog.superOf.size())
        return UopProgram::invalidSuper;
    return prog.superOf[(size_t)target];
}

int
shapeBit(const Operand &o)
{
    return o.isImm() ? 1 : 0;
}

uint32_t
srcField(const Operand &o)
{
    return o.isImm() ? o.imm : o.reg;
}

/** Trap uop carrying the offending opcode for the panic message. */
Uop
trapUop(uint16_t trap_kind, const Instruction &ins)
{
    Uop u;
    u.kind = trap_kind;
    u.aux = (uint32_t)ins.op;
    return u;
}

/**
 * Lower one instruction of block @p b into @p u.
 * @return false when no uop is needed (a tail Jmpi already folded
 * into the superblock chain or its defaultNext).
 */
bool
lowerInstr(const UopProgram &prog, uint32_t b, const Instruction &ins,
           bool tail, bool mid_control, Uop &u)
{
    u = Uop{};
    u.width = ins.simdWidth;
    u.flag = ins.flag;
    u.dst = ins.dst;

    // Operand-absence traps mirror read_lane's panic: they fire only
    // if the malformed instruction is actually executed.
    auto absent = [&](const Operand &o) { return o.isNone(); };

    auto unary = [&]() -> bool {
        if (absent(ins.src0)) {
            u = trapUop(uopTrapAbsentOperand, ins);
            return true;
        }
        u.kind = uopKind(ins.op, shapeBit(ins.src0));
        u.s0 = srcField(ins.src0);
        return true;
    };
    auto binary = [&]() -> bool {
        if (absent(ins.src0) || absent(ins.src1)) {
            u = trapUop(uopTrapAbsentOperand, ins);
            return true;
        }
        u.kind = uopKind(ins.op,
                         shapeBit(ins.src0) | shapeBit(ins.src1) << 1);
        u.s0 = srcField(ins.src0);
        u.s1 = srcField(ins.src1);
        return true;
    };
    auto ternary = [&]() -> bool {
        if (absent(ins.src0) || absent(ins.src1) || absent(ins.src2)) {
            u = trapUop(uopTrapAbsentOperand, ins);
            return true;
        }
        u.kind = uopKind(ins.op, shapeBit(ins.src0) |
                                     shapeBit(ins.src1) << 1 |
                                     shapeBit(ins.src2) << 2);
        u.s0 = srcField(ins.src0);
        u.s1 = srcField(ins.src1);
        u.s2 = srcField(ins.src2);
        return true;
    };

    switch (ins.op) {
      case Opcode::Mov:
      case Opcode::Not:
      case Opcode::Frc:
      case Opcode::Sqrt:
      case Opcode::Rsqrt:
      case Opcode::Sin:
      case Opcode::Cos:
      case Opcode::Exp:
      case Opcode::Log:
        return unary();

      case Opcode::Sel:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Asr:
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::Avg:
      case Opcode::FAdd:
      case Opcode::FMul:
      case Opcode::FDiv:
      case Opcode::Dp4:
        return binary();

      case Opcode::Mad:
      case Opcode::FMad:
      case Opcode::Lrp:
      case Opcode::Pln:
        return ternary();

      case Opcode::Cmp: {
        if (absent(ins.src0) || absent(ins.src1)) {
            u = trapUop(uopTrapAbsentOperand, ins);
            return true;
        }
        if ((int)ins.cmpOp > (int)CmpOp::Ge) {
            u = trapUop(uopTrapBadOpcode, ins);
            return true;
        }
        u.kind = uopKind(ins.op, shapeBit(ins.src0) |
                                     shapeBit(ins.src1) << 1 |
                                     (int)ins.cmpOp << 2);
        u.s0 = srcField(ins.src0);
        u.s1 = srcField(ins.src1);
        return true;
      }

      case Opcode::Send: {
        if (ins.send.addrReg >= numRegisters ||
            (ins.send.isWrite && absent(ins.src0))) {
            u = trapUop(uopTrapAbsentOperand, ins);
            return true;
        }
        int sub = (ins.send.isWrite ? 1 : 0) |
            (ins.send.space == AddrSpace::Local ? 2 : 0) |
            (ins.send.isWrite ? shapeBit(ins.src0) << 2 : 0);
        u.kind = uopKind(ins.op, sub);
        u.s0 = ins.send.isWrite ? srcField(ins.src0) : 0;
        u.s1 = ins.send.addrReg;
        u.aux = (uint32_t)ins.send.offset;
        u.aux16 = ins.send.bytesPerLane;
        return true;
      }

      case Opcode::Jmpi:
        // A tail Jmpi is normally folded away (fused chain edge, or
        // the superblock's defaultNext) — but when control ops precede
        // it in the block, it must execute inline so it *overrides*
        // any transfer they already staged, as the reference
        // interpreter's last-write-wins next_pc does.
        if (tail && !mid_control)
            return false;
        u.kind = uopKind(ins.op, 0);
        u.aux = superAt(prog, ins.target);
        return true;

      case Opcode::Brc:
      case Opcode::Brnc: {
        if ((int)ins.flagMode > (int)FlagMode::All) {
            u = trapUop(uopTrapBadFlagMode, ins);
            return true;
        }
        u.kind = uopKind(ins.op, (int)ins.flagMode);
        u.aux = superAt(prog, ins.target);
        return true;
      }

      case Opcode::Call:
        u.kind = uopKind(ins.op, 0);
        u.aux = superAt(prog, ins.target);
        u.aux2 = superAt(prog, (int64_t)b + 1);
        return true;

      case Opcode::Ret:
      case Opcode::Halt:
        u.kind = uopKind(ins.op, 0);
        return true;

      case Opcode::ProfCount:
      case Opcode::ProfMem:
      case Opcode::ProfTimer:
        u.kind = uopKind(ins.op, 0);
        u.aux = ins.profSlot;
        u.aux2 = ins.profArg;
        return true;

      case Opcode::ProfAdd:
        if (absent(ins.src0)) {
            u = trapUop(uopTrapAbsentOperand, ins);
            return true;
        }
        u.kind = uopKind(ins.op, shapeBit(ins.src0));
        u.s0 = srcField(ins.src0);
        u.aux = ins.profSlot;
        return true;

      default:
        u = trapUop(uopTrapBadOpcode, ins);
        return true;
    }
}

/** defaultNext of a superblock whose last member is @p b. */
uint32_t
defaultNextOf(const UopProgram &prog, const KernelBinary &bin,
              uint32_t b)
{
    const BasicBlock &block = bin.blocks[b];
    if (block.instrs.empty())
        return superAt(prog, (int64_t)b + 1);
    const Instruction &last = block.instrs.back();
    switch (last.op) {
      case Opcode::Jmpi:
        return superAt(prog, last.target);
      case Opcode::Brc:
      case Opcode::Brnc:
        return superAt(prog, (int64_t)b + 1); // not-taken fall-through
      case Opcode::Call: // transfer always comes from the call uop
      case Opcode::Ret:
      case Opcode::Halt:
        return UopProgram::invalidSuper;
      default:
        return superAt(prog, (int64_t)b + 1);
    }
}

} // anonymous namespace

UopProgram
decodeUops(const KernelBinary &bin, const Relevance &rel)
{
    const size_t n = bin.blocks.size();
    UopProgram prog;
    prog.superOf.assign(n, UopProgram::invalidSuper);

    EdgeScan scan(bin);

    // Membership: grow a chain from every block that cannot be
    // absorbed, then sweep up stragglers (blocks whose unique chain
    // predecessor stopped early, e.g. at a ProfTimer) as fresh heads.
    std::vector<uint8_t> assigned(n, 0);
    auto grow = [&](uint32_t head) {
        const uint32_t sbi = (uint32_t)prog.supers.size();
        prog.supers.emplace_back();
        UopProgram::Superblock &sb = prog.supers.back();
        sb.memberBegin = (uint32_t)prog.members.size();
        uint32_t b = head;
        while (true) {
            prog.members.push_back(b);
            prog.superOf[b] = sbi;
            assigned[b] = 1;
            const BlockFacts &f = scan.facts[b];
            uint32_t t = f.chainNext;
            if (f.chainStop || t == noBlock || assigned[t] ||
                !scan.absorbable(t)) {
                break;
            }
            b = t;
        }
        sb.memberCount =
            (uint32_t)prog.members.size() - sb.memberBegin;
    };
    for (uint32_t b = 0; b < n; ++b) {
        if (!assigned[b] && !scan.absorbable(b))
            grow(b);
    }
    for (uint32_t b = 0; b < n; ++b) {
        if (!assigned[b])
            grow(b);
    }

    // Emission: lower each member into both streams. The fast stream
    // keeps only relevance-sliced instructions, exactly the set the
    // reference backend's Fast mode evaluates.
    prog.memberUopEnd.resize(prog.members.size());
    prog.memberFastUopEnd.resize(prog.members.size());
    for (uint32_t s = 0; s < prog.supers.size(); ++s) {
        UopProgram::Superblock &sb = prog.supers[s];
        sb.firstUop = (uint32_t)prog.uops.size();
        sb.firstFastUop = (uint32_t)prog.fastUops.size();
        for (uint32_t j = 0; j < sb.memberCount; ++j) {
            const uint32_t m = prog.members[sb.memberBegin + j];
            const BasicBlock &block = bin.blocks[m];
            sb.instrs += block.instrs.size();
            for (size_t i = 0; i < block.instrs.size(); ++i) {
                const Instruction &ins = block.instrs[i];
                const bool tail = i + 1 == block.instrs.size();
                Uop u;
                if (lowerInstr(prog, m, ins, tail,
                               scan.facts[m].midControl, u)) {
                    prog.uops.push_back(u);
                    if (rel.relevant[m][i])
                        prog.fastUops.push_back(u);
                }
                // The reference interpreter leaves the block the
                // moment a Halt retires; anything after a mid-block
                // Halt must not be materialized.
                if (ins.op == Opcode::Halt)
                    break;
            }
            prog.memberUopEnd[sb.memberBegin + j] =
                (uint32_t)prog.uops.size();
            prog.memberFastUopEnd[sb.memberBegin + j] =
                (uint32_t)prog.fastUops.size();
        }
        sb.numUops = (uint32_t)prog.uops.size() - sb.firstUop;
        sb.numFastUops =
            (uint32_t)prog.fastUops.size() - sb.firstFastUop;
        // Threaded dispatch chains uop to uop without a loop bound;
        // a stop sentinel terminates each superblock's run. Appended
        // after the counts so numUops/numFastUops and the member end
        // offsets keep describing only real uops.
        Uop stop;
        stop.kind = uopStop;
        prog.uops.push_back(stop);
        prog.fastUops.push_back(stop);
        const uint32_t last_block =
            prog.members[sb.memberBegin + sb.memberCount - 1];
        sb.defaultNext = defaultNextOf(prog, bin, last_block);
    }
    return prog;
}

} // namespace gt::isa
