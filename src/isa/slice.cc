#include "isa/slice.hh"

#include <algorithm>
#include <bit>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>

namespace gt::isa
{

namespace
{

struct Loc
{
    uint32_t block;
    uint32_t instr;
};

void
collectReads(const Instruction &ins, std::vector<uint16_t> &regs)
{
    auto push = [&](const Operand &opnd) {
        if (opnd.isReg())
            regs.push_back(opnd.reg);
    };
    push(ins.src0);
    push(ins.src1);
    push(ins.src2);
    if (ins.op == Opcode::Send)
        regs.push_back(ins.send.addrReg);
}

} // anonymous namespace

Relevance
analyzeRelevance(const KernelBinary &bin)
{
    Relevance result;
    result.relevant.resize(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        result.relevant[block.id].assign(block.instrs.size(), false);
        result.totalCount += block.instrs.size();
    }

    // Map each register to the locations that write it.
    std::vector<std::vector<Loc>> writers(numRegisters);
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            const Instruction &ins = block.instrs[i];
            if (ins.writesReg())
                writers[ins.dst].push_back({block.id, i});
        }
    }

    std::vector<bool> regRelevant(numRegisters, false);
    std::deque<uint16_t> regWork;

    auto markReg = [&](uint16_t r) {
        if (r < numRegisters && !regRelevant[r]) {
            regRelevant[r] = true;
            regWork.push_back(r);
        }
    };

    auto markInstr = [&](const Loc &loc) {
        if (result.relevant[loc.block][loc.instr])
            return;
        result.relevant[loc.block][loc.instr] = true;
        const Instruction &ins =
            bin.blocks[loc.block].instrs[loc.instr];
        std::vector<uint16_t> reads;
        collectReads(ins, reads);
        // Loads feed their destination from memory; if a load is part
        // of a control slice, fast mode cannot supply the value.
        if (ins.op == Opcode::Send && !ins.send.isWrite)
            result.needsFullExec = true;
        for (uint16_t r : reads)
            markReg(r);
    };

    // Roots: control flow, flag-writing compares, and instrumentation
    // instructions that read application registers (they always
    // execute, so their inputs must be live).
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            const Instruction &ins = block.instrs[i];
            bool root = false;
            switch (ins.cls()) {
              case OpClass::Control:
                root = true;
                break;
              case OpClass::Instrumentation:
                // Profiling instructions always execute — they are
                // what produces the profile.
                root = true;
                break;
              default:
                root = ins.op == Opcode::Cmp;
                break;
            }
            if (root)
                markInstr({block.id, i});
        }
    }

    // Propagate: every writer of a relevant register is relevant.
    while (!regWork.empty()) {
        uint16_t r = regWork.front();
        regWork.pop_front();
        for (const Loc &loc : writers[r])
            markInstr(loc);
    }

    // Control depends on the thread if the slice reaches the id
    // registers r0 (per-lane global ids) or r1 (dispatch metadata;
    // lane 0 is the thread index).
    result.threadDependent = regRelevant[0] || regRelevant[1];

    for (const auto &flags : result.relevant) {
        for (bool f : flags) {
            if (f)
                ++result.relevantCount;
        }
    }
    return result;
}

namespace
{

/**
 * Symbolic evaluation domain for the gang-safety proof.
 *
 * Register values are tracked as affine expressions (32-bit wrapping
 * constant plus coefficient-weighted atoms) over a hash-consed atom
 * arena. Atoms stand for the values the affine algebra cannot fold:
 * the lane's global id, the thread index, dispatch arguments, masked
 * sub-expressions ((x & 2^k-1), the addressing idiom), loads, opaque
 * per-site unknowns, and phi values at control-flow merges. Because a
 * width-1 instruction writes lane 0 only while wider readers still
 * consume lanes 1+, every register and flag carries two expressions:
 * one for lane 0 ("lo") and one for lanes 1..hiWidth-1 ("hi").
 *
 * Atom identity is only meaningful within a single dynamic evaluation
 * instance (one thread, one lane, one visit of a send): two
 * occurrences of the same atom id denote the same runtime value only
 * when no merge point sits between their definitions, which the phi
 * discipline guarantees — any value that survives a join is renamed
 * to the join's phi atom, so stale sharing is impossible.
 */
struct GangArena
{
    enum AtomKind : uint8_t
    {
        AGid,     //!< this lane's global id (r0)
        AThread,  //!< the thread index (r1 lane 0)
        AArg,     //!< dispatch argument a (uniform per dispatch)
        APhi,     //!< merge value, keyed (block, state slot, class)
        AOpaque,  //!< per-site unknown (stale lanes, Dp4, r1 hi)
        AOp,      //!< pure per-lane op over child expressions
        AMask,    //!< inner expression masked to k low bits
        ALoad,    //!< load result, keyed (site, address expression)
    };

    struct Atom
    {
        uint8_t kind = 0;
        uint32_t a = 0;              //!< kind-specific key field
        uint32_t b = 0;              //!< kind-specific key field
        uint32_t c = 0;              //!< kind-specific key field
        std::vector<uint32_t> kids;  //!< child expression ids
    };

    /** Affine expression: c + sum(coeff * atom), arithmetic mod 2^32. */
    struct Expr
    {
        uint32_t c = 0;
        std::vector<std::pair<uint32_t, uint32_t>> t;  //!< (atom, coeff)
    };

    std::vector<Atom> atoms;
    std::vector<Expr> exprs;
    std::map<std::tuple<uint8_t, uint32_t, uint32_t, uint32_t,
                        std::vector<uint32_t>>,
             uint32_t>
        atomIds;
    std::map<std::pair<uint32_t, std::vector<std::pair<uint32_t, uint32_t>>>,
             uint32_t>
        exprIds;

    uint32_t
    atom(uint8_t kind, uint32_t a = 0, uint32_t b = 0, uint32_t c = 0,
         std::vector<uint32_t> kids = {})
    {
        auto key = std::make_tuple(kind, a, b, c, kids);
        auto it = atomIds.find(key);
        if (it != atomIds.end())
            return it->second;
        uint32_t id = (uint32_t)atoms.size();
        atoms.push_back({kind, a, b, c, std::move(kids)});
        atomIds.emplace(std::move(key), id);
        return id;
    }

    uint32_t
    intern(uint32_t c, std::vector<std::pair<uint32_t, uint32_t>> t)
    {
        auto key = std::make_pair(c, t);
        auto it = exprIds.find(key);
        if (it != exprIds.end())
            return it->second;
        uint32_t id = (uint32_t)exprs.size();
        exprs.push_back({c, std::move(t)});
        exprIds.emplace(std::move(key), id);
        return id;
    }

    uint32_t eConst(uint32_t c) { return intern(c, {}); }
    uint32_t eAtom(uint32_t id) { return intern(0, {{id, 1u}}); }
    bool isConst(uint32_t e) const { return exprs[e].t.empty(); }

    uint32_t
    eAdd(uint32_t x, uint32_t y)
    {
        const Expr &a = exprs[x], &b = exprs[y];
        std::vector<std::pair<uint32_t, uint32_t>> t;
        size_t i = 0, j = 0;
        while (i < a.t.size() || j < b.t.size()) {
            if (j == b.t.size() ||
                (i < a.t.size() && a.t[i].first < b.t[j].first)) {
                t.push_back(a.t[i++]);
            } else if (i == a.t.size() || b.t[j].first < a.t[i].first) {
                t.push_back(b.t[j++]);
            } else {
                uint32_t c = a.t[i].second + b.t[j].second;
                if (c != 0)
                    t.push_back({a.t[i].first, c});
                ++i;
                ++j;
            }
        }
        return intern(a.c + b.c, std::move(t));
    }

    uint32_t
    eMul(uint32_t x, uint32_t k)
    {
        if (k == 0)
            return eConst(0);
        const Expr &a = exprs[x];
        std::vector<std::pair<uint32_t, uint32_t>> t;
        for (auto [id, c] : a.t) {
            uint32_t nc = c * k;
            if (nc != 0)
                t.push_back({id, nc});
        }
        return intern(a.c * k, std::move(t));
    }

    uint32_t eSub(uint32_t x, uint32_t y) { return eAdd(x, eMul(y, ~0u)); }
};

/** Per-register (or flag) symbolic state, split by lane class. */
struct LaneVal
{
    uint32_t lo = 0;      //!< lane 0 expression
    uint32_t hi = 0;      //!< lanes 1..hiWidth-1 expression
    uint8_t hiWidth = 0;  //!< lanes >= hiWidth hold stale values
};

/** One global send occurrence with its captured symbolic operands. */
struct SendSite
{
    uint32_t block = 0;
    uint32_t instr = 0;
    uint8_t width = 1;
    bool isWrite = false;
    int64_t footprint = 4;
    uint32_t addrLo = 0;
    uint32_t addrHi = 0;
    uint32_t valLo = 0;  //!< store payload (stores only)
    uint32_t valHi = 0;
    // Filled by normalization:
    uint32_t baseArg = 0;
    bool hasMask = false;
    uint32_t maskK = 0;
    uint32_t shift = 0;
    int64_t c0 = 0;
    uint32_t xLo = 0;  //!< masked index expression, lane 0
    uint32_t xHi = 0;  //!< masked index expression, lanes 1+
};

class GangAnalyzer
{
  public:
    explicit GangAnalyzer(const KernelBinary &b) : bin(b) {}

    GangSafety
    run()
    {
        GangSafety out;
        buildEdges();
        if (!solve())
            return out;  // runaway guard tripped; never gang
        collectSites();
        if (!normalizeSites())
            return out;
        proveGroups(out);
        return out;
    }

  private:
    // Largest |global-id delta| between two lanes of one gang:
    // 7 slots * 16 lanes + 15 with the widest legal shapes.
    static constexpr uint32_t maxGangDelta = 127;

    const KernelBinary &bin;
    GangArena gs;
    using State = std::vector<LaneVal>;  //!< 128 regs then 4 flags
    static constexpr size_t flagBase = (size_t)numRegisters;

    std::vector<std::vector<uint32_t>> succs;
    std::vector<State> entry;
    std::vector<bool> reached;
    std::vector<SendSite> sites;

    uint32_t
    opaque(uint32_t block, uint32_t instr, uint32_t tag)
    {
        return gs.eAtom(gs.atom(GangArena::AOpaque, block, instr, tag));
    }

    State
    initialState()
    {
        State st(flagBase + numFlags);
        uint32_t zero = gs.eConst(0);
        for (auto &v : st)
            v = {zero, zero, (uint8_t)maxSimdWidth};
        uint32_t gid = gs.eAtom(gs.atom(GangArena::AGid));
        st[0] = {gid, gid, (uint8_t)maxSimdWidth};
        uint32_t thr = gs.eAtom(gs.atom(GangArena::AThread));
        st[1] = {thr, opaque(~0u, 0, 0), (uint8_t)maxSimdWidth};
        for (uint32_t a = 0; a < bin.numArgs; ++a) {
            uint32_t e = gs.eAtom(gs.atom(GangArena::AArg, a));
            st[2 + a] = {e, e, (uint8_t)maxSimdWidth};
        }
        return st;
    }

    void
    buildEdges()
    {
        size_t n = bin.blocks.size();
        succs.assign(n, {});
        std::vector<uint32_t> callBlocks, retBlocks;
        for (const auto &block : bin.blocks) {
            for (const Instruction &ins : block.instrs) {
                if (ins.op == Opcode::Halt)
                    break;
                switch (ins.op) {
                  case Opcode::Jmpi:
                  case Opcode::Brc:
                  case Opcode::Brnc:
                  case Opcode::Call:
                    if (ins.target >= 0 && (size_t)ins.target < n)
                        succs[block.id].push_back((uint32_t)ins.target);
                    if (ins.op == Opcode::Call)
                        callBlocks.push_back(block.id);
                    break;
                  case Opcode::Ret:
                    retBlocks.push_back(block.id);
                    break;
                  default:
                    break;
                }
            }
            // Always add the fall-through edge: over-approximating the
            // CFG only adds phi merges, which is conservative.
            if (block.id + 1 < n)
                succs[block.id].push_back(block.id + 1);
        }
        for (uint32_t r : retBlocks) {
            for (uint32_t c : callBlocks) {
                if ((size_t)c + 1 < n)
                    succs[r].push_back(c + 1);
            }
        }
    }

    uint32_t
    readOperand(const State &st, const Operand &o, int cls, uint8_t w,
                uint32_t block, uint32_t instr, uint32_t slot)
    {
        if (o.isImm())
            return gs.eConst(o.imm);
        if (!o.isReg() || o.reg >= numRegisters)
            return opaque(block, instr, 8 + slot);
        const LaneVal &v = st[o.reg];
        if (cls == 0)
            return v.lo;
        if (w <= v.hiWidth)
            return v.hi;
        // Reading wider than the last write: lanes past hiWidth hold
        // stale values we no longer track.
        return opaque(block, instr, slot);
    }

    uint32_t
    readReg(const State &st, uint16_t r, int cls, uint8_t w, uint32_t block,
            uint32_t instr, uint32_t slot)
    {
        Operand o = Operand::fromReg(r);
        return readOperand(st, o, cls, w, block, instr, slot);
    }

    /** Build the result expression of one per-lane ALU op. */
    uint32_t
    evalOp(const Instruction &ins, uint32_t s0, uint32_t s1, uint32_t s2,
           uint32_t flagE, uint32_t block, uint32_t instr)
    {
        auto opAtom = [&](std::vector<uint32_t> kids) {
            uint32_t id = (uint32_t)ins.op | ((uint32_t)ins.cmpOp << 8);
            return gs.eAtom(gs.atom(GangArena::AOp, id, 0, 0, std::move(kids)));
        };
        switch (ins.op) {
          case Opcode::Mov:
            return s0;
          case Opcode::Add:
            return gs.eAdd(s0, s1);
          case Opcode::Sub:
            return gs.eSub(s0, s1);
          case Opcode::Mul:
            if (gs.isConst(s0))
                return gs.eMul(s1, gs.exprs[s0].c);
            if (gs.isConst(s1))
                return gs.eMul(s0, gs.exprs[s1].c);
            return opAtom({s0, s1});
          case Opcode::Mad:
            if (gs.isConst(s0))
                return gs.eAdd(gs.eMul(s1, gs.exprs[s0].c), s2);
            if (gs.isConst(s1))
                return gs.eAdd(gs.eMul(s0, gs.exprs[s1].c), s2);
            return opAtom({s0, s1, s2});
          case Opcode::Shl:
            if (gs.isConst(s1))
                return gs.eMul(s0, 1u << (gs.exprs[s1].c & 31));
            return opAtom({s0, s1});
          case Opcode::And:
            for (int swap = 0; swap < 2; ++swap) {
                uint32_t m = swap ? s0 : s1, x = swap ? s1 : s0;
                if (!gs.isConst(m))
                    continue;
                uint32_t mc = gs.exprs[m].c;
                if (mc == 0)
                    return gs.eConst(0);
                if (mc == ~0u)
                    return x;
                if ((mc & (mc + 1)) != 0)
                    break;  // not 2^k - 1
                uint32_t k = (uint32_t)std::popcount(mc);
                if (gs.isConst(x))
                    return gs.eConst(gs.exprs[x].c & mc);
                return gs.eAtom(gs.atom(GangArena::AMask, k, 0, 0, {x}));
            }
            return opAtom({s0, s1});
          case Opcode::Sel:
            return opAtom({flagE, s0, s1});
          case Opcode::Cmp:
            return opAtom({s0, s1});
          case Opcode::Dp4:
            // Cross-lane: the result mixes other lanes' values.
            return opaque(block, instr, 16);
          default:
            break;
        }
        // Remaining pure per-lane ops (logic, float math, min/max/avg,
        // lrp, pln, frc, ...): opaque function of the operands.
        std::vector<uint32_t> kids;
        if (!ins.src0.isNone())
            kids.push_back(s0);
        if (!ins.src1.isNone())
            kids.push_back(s1);
        if (!ins.src2.isNone())
            kids.push_back(s2);
        return opAtom(std::move(kids));
    }

    /** Apply one instruction to @p st; record send sites when asked. */
    void
    step(State &st, uint32_t blockId, uint32_t i, const Instruction &ins,
         bool record)
    {
        if (ins.cls() == OpClass::Control ||
            ins.cls() == OpClass::Instrumentation) {
            return;
        }
        uint8_t w = ins.simdWidth;
        if (ins.op == Opcode::Send) {
            uint32_t aLo = readReg(st, ins.send.addrReg, 0, w, blockId, i, 3);
            uint32_t aHi = readReg(st, ins.send.addrReg, 1, w, blockId, i, 3);
            uint32_t off = gs.eConst((uint32_t)ins.send.offset);
            aLo = gs.eAdd(aLo, off);
            aHi = gs.eAdd(aHi, off);
            if (ins.send.isWrite) {
                if (record && ins.send.space == AddrSpace::Global) {
                    SendSite s;
                    s.block = blockId;
                    s.instr = i;
                    s.width = w;
                    s.isWrite = true;
                    int64_t b = ins.send.bytesPerLane;
                    s.footprint = std::max<int64_t>(4, (b + 3) / 4 * 4);
                    s.addrLo = aLo;
                    s.addrHi = aHi;
                    s.valLo = readOperand(st, ins.src0, 0, w, blockId, i, 0);
                    s.valHi = readOperand(st, ins.src0, 1, w, blockId, i, 0);
                    sites.push_back(s);
                }
                return;
            }
            // Load: destination becomes a load atom keyed by the site
            // and its (per-class) address expression.
            uint32_t space = ins.send.space == AddrSpace::Local ? 1 : 0;
            uint32_t lo = gs.eAtom(
                gs.atom(GangArena::ALoad, blockId, i, space, {aLo}));
            uint32_t hi = gs.eAtom(
                gs.atom(GangArena::ALoad, blockId, i, space, {aHi}));
            if (record && ins.send.space == AddrSpace::Global) {
                SendSite s;
                s.block = blockId;
                s.instr = i;
                s.width = w;
                s.isWrite = false;
                s.footprint = 4;  // loads perform one 32-bit read
                s.addrLo = aLo;
                s.addrHi = aHi;
                sites.push_back(s);
            }
            writeReg(st, ins.dst, w, lo, hi);
            return;
        }
        if (!ins.writesReg() && !ins.writesFlag())
            return;
        uint32_t outLo, outHi = 0;
        {
            uint32_t s0 = readOperand(st, ins.src0, 0, w, blockId, i, 0);
            uint32_t s1 = readOperand(st, ins.src1, 0, w, blockId, i, 1);
            uint32_t s2 = readOperand(st, ins.src2, 0, w, blockId, i, 2);
            uint32_t f = st[flagBase + (ins.flag & 3)].lo;
            outLo = evalOp(ins, s0, s1, s2, f, blockId, i);
        }
        if (w > 1) {
            uint32_t s0 = readOperand(st, ins.src0, 1, w, blockId, i, 0);
            uint32_t s1 = readOperand(st, ins.src1, 1, w, blockId, i, 1);
            uint32_t s2 = readOperand(st, ins.src2, 1, w, blockId, i, 2);
            const LaneVal &fv = st[flagBase + (ins.flag & 3)];
            uint32_t f = w <= fv.hiWidth ? fv.hi : opaque(blockId, i, 24);
            outHi = evalOp(ins, s0, s1, s2, f, blockId, i);
        }
        if (ins.writesFlag())
            writeSlot(st, flagBase + (ins.flag & 3), w, outLo, outHi);
        else
            writeReg(st, ins.dst, w, outLo, outHi);
    }

    void
    writeReg(State &st, uint16_t dst, uint8_t w, uint32_t lo, uint32_t hi)
    {
        if (dst >= numRegisters)
            return;
        writeSlot(st, dst, w, lo, hi);
    }

    void
    writeSlot(State &st, size_t slot, uint8_t w, uint32_t lo, uint32_t hi)
    {
        if (w == 1) {
            st[slot].lo = lo;  // lanes 1+ keep their previous value
            return;
        }
        st[slot] = {lo, hi, w};
    }

    bool
    meetInto(State &dst, const State &src, uint32_t blockId)
    {
        bool changed = false;
        for (size_t s = 0; s < dst.size(); ++s) {
            for (int cls = 0; cls < 2; ++cls) {
                uint32_t &d = cls ? dst[s].hi : dst[s].lo;
                uint32_t v = cls ? src[s].hi : src[s].lo;
                if (d == v)
                    continue;
                uint32_t phi = gs.eAtom(gs.atom(GangArena::APhi, blockId,
                                                (uint32_t)s, (uint32_t)cls));
                if (d != phi) {
                    d = phi;
                    changed = true;
                }
            }
            uint8_t m = std::min(dst[s].hiWidth, src[s].hiWidth);
            if (dst[s].hiWidth != m) {
                dst[s].hiWidth = m;
                changed = true;
            }
        }
        return changed;
    }

    bool
    solve()
    {
        size_t n = bin.blocks.size();
        entry.assign(n, {});
        reached.assign(n, false);
        if (n == 0)
            return true;
        entry[0] = initialState();
        reached[0] = true;
        std::deque<uint32_t> work{0};
        std::vector<bool> queued(n, false);
        queued[0] = true;
        uint64_t steps = 0;
        while (!work.empty()) {
            if (++steps > 64 * n + 4096)
                return false;  // safety net; should be unreachable
            uint32_t b = work.front();
            work.pop_front();
            queued[b] = false;
            State st = entry[b];
            const auto &instrs = bin.blocks[b].instrs;
            for (uint32_t i = 0; i < instrs.size(); ++i) {
                if (instrs[i].op == Opcode::Halt)
                    break;
                step(st, b, i, instrs[i], false);
            }
            for (uint32_t s : succs[b]) {
                bool changed;
                if (!reached[s]) {
                    entry[s] = st;
                    reached[s] = true;
                    changed = true;
                } else {
                    changed = meetInto(entry[s], st, s);
                }
                if (changed && !queued[s]) {
                    queued[s] = true;
                    work.push_back(s);
                }
            }
        }
        return true;
    }

    void
    collectSites()
    {
        for (uint32_t b = 0; b < (uint32_t)bin.blocks.size(); ++b) {
            if (!reached[b])
                continue;
            State st = entry[b];
            const auto &instrs = bin.blocks[b].instrs;
            for (uint32_t i = 0; i < instrs.size(); ++i) {
                if (instrs[i].op == Opcode::Halt)
                    break;
                step(st, b, i, instrs[i], true);
            }
        }
    }

    /**
     * Normalize a send address into base-argument region form:
     * args[baseArg] + (x & 2^k-1) * 2^shift + c0. Returns false if any
     * global send has a shape the interval/collision reasoning cannot
     * cover.
     */
    bool
    normalizeSites()
    {
        for (SendSite &s : sites) {
            struct Parsed
            {
                bool argSeen = false;
                uint32_t baseArg = 0;
                bool maskSeen = false;
                uint32_t k = 0, shift = 0, x = 0;
                int64_t c0 = 0;
                bool ok = true;
            };
            auto parse = [&](uint32_t e) {
                Parsed p;
                const GangArena::Expr &ex = gs.exprs[e];
                p.c0 = (int64_t)(int32_t)ex.c;
                for (auto [id, coeff] : ex.t) {
                    const GangArena::Atom &at = gs.atoms[id];
                    if (at.kind == GangArena::AArg && coeff == 1 &&
                        !p.argSeen) {
                        p.argSeen = true;
                        p.baseArg = at.a;
                    } else if (at.kind == GangArena::AMask && !p.maskSeen &&
                               std::popcount(coeff) == 1) {
                        p.maskSeen = true;
                        p.k = at.a;
                        p.shift = (uint32_t)std::countr_zero(coeff);
                        p.x = at.kids[0];
                    } else {
                        p.ok = false;
                    }
                }
                return p;
            };
            Parsed lo = parse(s.addrLo);
            if (!lo.ok || !lo.argSeen)
                return false;
            s.baseArg = lo.baseArg;
            s.hasMask = lo.maskSeen;
            s.maskK = lo.k;
            s.shift = lo.shift;
            s.c0 = lo.c0;
            s.xLo = lo.x;
            s.xHi = lo.x;
            if (s.width > 1) {
                Parsed hi = parse(s.addrHi);
                if (!hi.ok || !hi.argSeen || hi.baseArg != lo.baseArg ||
                    hi.maskSeen != lo.maskSeen || hi.k != lo.k ||
                    hi.shift != lo.shift || hi.c0 != lo.c0) {
                    return false;
                }
                s.xHi = hi.x;
            }
        }
        return true;
    }

    /** Affine decomposition over {gid, args} for the no-collision route. */
    struct GidAffine
    {
        bool ok = false;
        uint32_t gid = 0;
        std::map<uint32_t, uint32_t> args;
        uint32_t c = 0;
    };

    GidAffine
    decomposeGidArgs(uint32_t e)
    {
        GidAffine r;
        const GangArena::Expr &ex = gs.exprs[e];
        r.c = ex.c;
        for (auto [id, coeff] : ex.t) {
            const GangArena::Atom &at = gs.atoms[id];
            if (at.kind == GangArena::AGid) {
                r.gid = coeff;
            } else if (at.kind == GangArena::AArg) {
                r.args[at.a] = coeff;
            } else {
                return r;  // ok stays false
            }
        }
        r.ok = true;
        return r;
    }

    /**
     * Route "no-collision": true when no two distinct lanes of one
     * gang can produce equal masked indices at sites @p s and @p t.
     */
    bool
    noCollision(const SendSite &s, const SendSite &t, uint8_t &minSimd)
    {
        if (!s.hasMask)
            return false;
        int64_t stride = (int64_t)1 << s.shift;
        if (s.footprint > stride || t.footprint > stride)
            return false;
        uint32_t kmask = s.maskK >= 32 ? ~0u : ((1u << s.maskK) - 1);
        uint32_t xs[2] = {s.xLo, s.xHi};
        uint32_t xt[2] = {t.xLo, t.xHi};
        int nu = s.width > 1 ? 2 : 1;
        int nv = t.width > 1 ? 2 : 1;
        bool usedGid = false;
        for (int u = 0; u < nu; ++u) {
            GidAffine au = decomposeGidArgs(xs[u]);
            if (!au.ok)
                return false;
            for (int v = 0; v < nv; ++v) {
                GidAffine av = decomposeGidArgs(xt[v]);
                if (!av.ok)
                    return false;
                if (au.gid != av.gid || au.args != av.args)
                    return false;
                uint32_t a = au.gid;
                uint32_t dc = au.c - av.c;
                if (a == 0) {
                    // Gid-independent: every lane computes the same
                    // index; only a constant skew can separate them.
                    if ((dc & kmask) == 0)
                        return false;
                    continue;
                }
                usedGid = true;
                for (uint32_t d = 1; d <= maxGangDelta; ++d) {
                    if (((a * d + dc) & kmask) == 0)
                        return false;
                    if (((dc - a * d) & kmask) == 0)
                        return false;
                }
            }
        }
        if (usedGid) {
            // Lanes of different slots share global ids when the send
            // width exceeds the dispatch SIMD width, voiding the
            // delta scan; record the width the proof needs.
            minSimd = std::max({minSimd, s.width, t.width});
        }
        return true;
    }

    /**
     * Canonical signature of @p e as a pure function of the store's
     * masked index ("rho"), dispatch arguments, and initial memory.
     * Fails (nullopt) if the value depends on anything else.
     *
     * Signatures are hash-consed ids: a node's string embeds its
     * children's ids, not their expansions, so shared sub-DAGs cost
     * O(1) and deeply reconvergent values (hash/aes mixing rounds)
     * stay linear. Interning is injective, so id equality is
     * signature equality.
     */
    std::map<std::string, uint32_t> sigIds;
    std::map<std::tuple<uint32_t, uint32_t, uint32_t>,
             std::optional<uint32_t>>
        sigCache;

    uint32_t
    sigId(std::string s)
    {
        auto [it, fresh] = sigIds.emplace(std::move(s),
                                          (uint32_t)sigIds.size());
        (void)fresh;
        return it->second;
    }

    std::optional<uint32_t>
    valueSig(uint32_t e, uint32_t xCtx, uint32_t kCtx)
    {
        auto key = std::make_tuple(e | 0x80000000u, xCtx, kCtx);
        auto hit = sigCache.find(key);
        if (hit != sigCache.end())
            return hit->second;
        std::optional<uint32_t> res;
        const GangArena::Expr &ex = gs.exprs[e];
        std::string out = "(" + std::to_string(ex.c);
        bool ok = true;
        for (auto [id, coeff] : ex.t) {
            auto sub = atomSig(id, xCtx, kCtx);
            if (!sub) {
                ok = false;
                break;
            }
            out += "+" + std::to_string(coeff) + "*#" + std::to_string(*sub);
        }
        if (ok)
            res = sigId(out + ")");
        sigCache.emplace(key, res);
        return res;
    }

    std::optional<uint32_t>
    atomSig(uint32_t id, uint32_t xCtx, uint32_t kCtx)
    {
        auto key = std::make_tuple(id, xCtx, kCtx);
        auto hit = sigCache.find(key);
        if (hit != sigCache.end())
            return hit->second;
        std::optional<uint32_t> res = atomSigUncached(id, xCtx, kCtx);
        sigCache.emplace(key, res);
        return res;
    }

    std::optional<uint32_t>
    atomSigUncached(uint32_t id, uint32_t xCtx, uint32_t kCtx)
    {
        const GangArena::Atom &at = gs.atoms[id];
        switch (at.kind) {
          case GangArena::AArg:
            return sigId("a" + std::to_string(at.a));
          case GangArena::AOp: {
            std::string out = "o" + std::to_string(at.a) + "(";
            for (uint32_t kid : at.kids) {
                auto sub = valueSig(kid, xCtx, kCtx);
                if (!sub)
                    return std::nullopt;
                out += "#" + std::to_string(*sub) + ",";
            }
            return sigId(out + ")");
          }
          case GangArena::AMask: {
            if (auto inner = valueSig(at.kids[0], xCtx, kCtx)) {
                return sigId("m" + std::to_string(at.a) + "[#" +
                             std::to_string(*inner) + "]");
            }
            if (at.a <= kCtx) {
                // (x & 2^j-1) with j <= k is (rho + (x - xCtx)) mod 2^j
                // whenever the difference is itself determined.
                uint32_t diff = gs.eSub(at.kids[0], xCtx);
                if (auto d = valueSig(diff, xCtx, kCtx)) {
                    return sigId("r" + std::to_string(at.a) + "[#" +
                                 std::to_string(*d) + "]");
                }
            }
            return std::nullopt;
          }
          case GangArena::ALoad: {
            if (at.c != 0)
                return std::nullopt;  // local memory: mutable scratch
            auto addr = valueSig(at.kids[0], xCtx, kCtx);
            if (!addr)
                return std::nullopt;
            // Sound because every global load region is either
            // statically or dispatch-check disjoint from every store
            // region by the time a gang runs: the load observes
            // initial memory, a pure function of its address.
            return sigId("L[#" + std::to_string(*addr) + "]");
          }
          default:
            return std::nullopt;  // gid, thread, phi, opaque
        }
    }

    void
    proveGroups(GangSafety &out)
    {
        struct Group
        {
            std::vector<uint32_t> members;
            int64_t lo = 0, hi = 0;
            uint32_t baseArg = 0;
            bool hasStore = false, hasLoad = false;
        };
        std::map<std::tuple<uint32_t, bool, uint32_t, uint32_t, int64_t>,
                 uint32_t>
            keys;
        std::vector<Group> groups;
        for (uint32_t i = 0; i < (uint32_t)sites.size(); ++i) {
            const SendSite &s = sites[i];
            auto key = std::make_tuple(s.baseArg, s.hasMask, s.maskK, s.shift,
                                       s.c0);
            auto [it, fresh] = keys.emplace(key, (uint32_t)groups.size());
            if (fresh) {
                Group g;
                g.baseArg = s.baseArg;
                g.lo = s.c0;
                g.hi = s.c0 +
                       (s.hasMask
                            ? ((((int64_t)1 << s.maskK) - 1) << s.shift)
                            : 0);
                groups.push_back(g);
            }
            Group &g = groups[it->second];
            g.members.push_back(i);
            g.hi = std::max(g.hi,
                            s.c0 +
                                (s.hasMask ? ((((int64_t)1 << s.maskK) - 1)
                                              << s.shift)
                                           : 0) +
                                s.footprint);
            g.hasStore |= s.isWrite;
            g.hasLoad |= !s.isWrite;
        }

        uint8_t minSimd = 0;
        uint32_t proven = 0, checked = 0;

        // Group-level equal-value route: every store in the group
        // provably writes a value that is the same pure function of
        // the masked index at every site and lane class.
        auto equalValueGroup = [&](const Group &g) {
            if (g.hasLoad || !g.hasStore)
                return false;
            std::optional<uint32_t> sig;
            for (uint32_t m : g.members) {
                const SendSite &s = sites[m];
                if (s.hasMask && s.footprint > ((int64_t)1 << s.shift))
                    return false;
                if (!s.hasMask && s.footprint > 4)
                    return false;
                uint32_t k = s.hasMask ? s.maskK : 0;
                uint32_t xs[2] = {s.xLo, s.xHi};
                uint32_t vs[2] = {s.valLo, s.valHi};
                int nc = s.width > 1 ? 2 : 1;
                for (int c = 0; c < nc; ++c) {
                    uint32_t x = s.hasMask ? xs[c] : gs.eConst(0);
                    auto sg = valueSig(vs[c], x, k);
                    if (!sg)
                        return false;
                    if (!sig)
                        sig = sg;
                    else if (*sig != *sg)
                        return false;
                }
            }
            return true;
        };

        for (uint32_t gi = 0; gi < (uint32_t)groups.size(); ++gi) {
            const Group &g = groups[gi];
            if (g.hasStore) {
                // In-group pairs (including each site against itself
                // across gang slots) must be proven at plan time: the
                // region always overlaps itself.
                bool eq = equalValueGroup(g);
                for (size_t a = 0; a < g.members.size(); ++a) {
                    for (size_t b = a; b < g.members.size(); ++b) {
                        const SendSite &s = sites[g.members[a]];
                        const SendSite &t = sites[g.members[b]];
                        if (!s.isWrite && !t.isWrite)
                            continue;
                        if (eq || noCollision(s, t, minSimd)) {
                            ++proven;
                        } else {
                            return;  // regionForm stays false
                        }
                    }
                }
            }
            for (uint32_t gj = gi + 1; gj < (uint32_t)groups.size(); ++gj) {
                const Group &h = groups[gj];
                if (!g.hasStore && !h.hasStore)
                    continue;
                if (g.baseArg == h.baseArg) {
                    // Same base pointer: the interval relation is
                    // known at plan time.
                    if (g.lo < h.hi && h.lo < g.hi)
                        return;  // statically overlapping; never gang
                    ++proven;
                } else {
                    out.checks.push_back({gi, gj});
                    ++checked;
                }
            }
        }

        out.regions.reserve(groups.size());
        for (const Group &g : groups)
            out.regions.push_back({g.baseArg, g.lo, g.hi, g.hasStore});
        out.minSimdWidth = minSimd;
        out.provenPairs = proven;
        out.checkedPairs = checked;
        out.regionForm = true;
    }
};

} // anonymous namespace

GangSafety
analyzeGangSafety(const KernelBinary &bin)
{
    return GangAnalyzer(bin).run();
}

} // namespace gt::isa
