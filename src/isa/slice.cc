#include "isa/slice.hh"

#include <deque>

namespace gt::isa
{

namespace
{

struct Loc
{
    uint32_t block;
    uint32_t instr;
};

void
collectReads(const Instruction &ins, std::vector<uint16_t> &regs)
{
    auto push = [&](const Operand &opnd) {
        if (opnd.isReg())
            regs.push_back(opnd.reg);
    };
    push(ins.src0);
    push(ins.src1);
    push(ins.src2);
    if (ins.op == Opcode::Send)
        regs.push_back(ins.send.addrReg);
}

} // anonymous namespace

Relevance
analyzeRelevance(const KernelBinary &bin)
{
    Relevance result;
    result.relevant.resize(bin.blocks.size());
    for (const auto &block : bin.blocks) {
        result.relevant[block.id].assign(block.instrs.size(), false);
        result.totalCount += block.instrs.size();
    }

    // Map each register to the locations that write it.
    std::vector<std::vector<Loc>> writers(numRegisters);
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            const Instruction &ins = block.instrs[i];
            if (ins.writesReg())
                writers[ins.dst].push_back({block.id, i});
        }
    }

    std::vector<bool> regRelevant(numRegisters, false);
    std::deque<uint16_t> regWork;

    auto markReg = [&](uint16_t r) {
        if (r < numRegisters && !regRelevant[r]) {
            regRelevant[r] = true;
            regWork.push_back(r);
        }
    };

    auto markInstr = [&](const Loc &loc) {
        if (result.relevant[loc.block][loc.instr])
            return;
        result.relevant[loc.block][loc.instr] = true;
        const Instruction &ins =
            bin.blocks[loc.block].instrs[loc.instr];
        std::vector<uint16_t> reads;
        collectReads(ins, reads);
        // Loads feed their destination from memory; if a load is part
        // of a control slice, fast mode cannot supply the value.
        if (ins.op == Opcode::Send && !ins.send.isWrite)
            result.needsFullExec = true;
        for (uint16_t r : reads)
            markReg(r);
    };

    // Roots: control flow, flag-writing compares, and instrumentation
    // instructions that read application registers (they always
    // execute, so their inputs must be live).
    for (const auto &block : bin.blocks) {
        for (uint32_t i = 0; i < block.instrs.size(); ++i) {
            const Instruction &ins = block.instrs[i];
            bool root = false;
            switch (ins.cls()) {
              case OpClass::Control:
                root = true;
                break;
              case OpClass::Instrumentation:
                // Profiling instructions always execute — they are
                // what produces the profile.
                root = true;
                break;
              default:
                root = ins.op == Opcode::Cmp;
                break;
            }
            if (root)
                markInstr({block.id, i});
        }
    }

    // Propagate: every writer of a relevant register is relevant.
    while (!regWork.empty()) {
        uint16_t r = regWork.front();
        regWork.pop_front();
        for (const Loc &loc : writers[r])
            markInstr(loc);
    }

    // Control depends on the thread if the slice reaches the id
    // registers r0 (per-lane global ids) or r1 (dispatch metadata;
    // lane 0 is the thread index).
    result.threadDependent = regRelevant[0] || regRelevant[1];

    for (const auto &flags : result.relevant) {
        for (bool f : flags) {
            if (f)
                ++result.relevantCount;
        }
    }
    return result;
}

} // namespace gt::isa
