#include "ocl/runtime.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gt::ocl
{

ClRuntime::ClRuntime(GpuDriver &driver)
    : drv(driver)
{
}

void
ClRuntime::addObserver(ApiObserver *observer)
{
    GT_ASSERT(observer, "null observer");
    observers.push_back(observer);
}

void
ClRuntime::removeObserver(ApiObserver *observer)
{
    observers.erase(
        std::remove(observers.begin(), observers.end(), observer),
        observers.end());
}

ApiCallRecord
ClRuntime::record(ApiCallId id)
{
    ApiCallRecord rec;
    rec.id = id;
    rec.callIndex = nextCallIndex++;
    return rec;
}

namespace
{

void
broadcast(const std::vector<ApiObserver *> &observers,
          const ApiCallRecord &rec)
{
    for (ApiObserver *obs : observers)
        obs->onApiCall(rec);
}

} // anonymous namespace

uint32_t
ClRuntime::getPlatformIds()
{
    broadcast(observers, record(ApiCallId::GetPlatformIds));
    return 1;
}

uint32_t
ClRuntime::getDeviceIds()
{
    broadcast(observers, record(ApiCallId::GetDeviceIds));
    return 1;
}

Context
ClRuntime::createContext()
{
    broadcast(observers, record(ApiCallId::CreateContext));
    return Context{nextContext++};
}

CommandQueue
ClRuntime::createCommandQueue(Context ctx)
{
    ApiCallRecord rec = record(ApiCallId::CreateCommandQueue);
    rec.uargs = {ctx.id};
    broadcast(observers, rec);
    return CommandQueue{nextQueue++};
}

Program
ClRuntime::createProgramWithSource(
    Context ctx, std::vector<isa::KernelSource> sources)
{
    GT_ASSERT(!sources.empty(), "program with no kernel sources");
    ApiCallRecord rec = record(ApiCallId::CreateProgramWithSource);
    rec.uargs = {ctx.id};
    rec.sources = sources;
    broadcast(observers, rec);
    programs.push_back(std::move(sources));
    programBuilt.push_back(false);
    programKernels.emplace_back();
    return Program{(uint32_t)(programs.size() - 1)};
}

void
ClRuntime::buildProgram(Program program)
{
    GT_ASSERT(program.id < programs.size(), "invalid program handle");
    ApiCallRecord rec = record(ApiCallId::BuildProgram);
    rec.uargs = {program.id};
    broadcast(observers, rec);
    if (programBuilt[program.id])
        return;
    for (const auto &src : programs[program.id]) {
        uint32_t kid = drv.buildKernel(src);
        const std::string &name = drv.binary(kid).name;
        GT_ASSERT(!programKernels[program.id].count(name),
                  "program defines kernel '", name, "' twice");
        programKernels[program.id][name] = kid;
    }
    programBuilt[program.id] = true;
}

Kernel
ClRuntime::createKernel(Program program, const std::string &name)
{
    GT_ASSERT(program.id < programs.size(), "invalid program handle");
    ApiCallRecord rec = record(ApiCallId::CreateKernel);
    rec.kernelName = name;
    rec.uargs = {program.id};
    broadcast(observers, rec);

    GT_ASSERT(programBuilt[program.id],
              "createKernel before buildProgram");
    auto it = programKernels[program.id].find(name);
    if (it == programKernels[program.id].end())
        fatal("program has no kernel named '", name, "'");

    KernelObj obj;
    obj.driverKernelId = it->second;
    obj.name = name;
    obj.numArgs = drv.binary(it->second).numArgs;
    kernelObjs.push_back(std::move(obj));
    return Kernel{(uint32_t)(kernelObjs.size() - 1)};
}

Mem
ClRuntime::createBuffer(Context ctx, uint64_t bytes)
{
    ApiCallRecord rec = record(ApiCallId::CreateBuffer);
    rec.uargs = {ctx.id, bytes};
    broadcast(observers, rec);
    MemObj obj;
    obj.size = bytes;
    obj.address = drv.memory().allocate(bytes);
    memObjs.push_back(obj);
    return Mem{(uint32_t)(memObjs.size() - 1)};
}

Mem
ClRuntime::createImage2D(Context ctx, uint32_t width, uint32_t height,
                         uint32_t bytes_per_pixel)
{
    ApiCallRecord rec = record(ApiCallId::CreateImage2D);
    rec.uargs = {ctx.id, width, height, bytes_per_pixel};
    broadcast(observers, rec);
    MemObj obj;
    obj.size = (uint64_t)width * height * bytes_per_pixel;
    obj.address = drv.memory().allocate(obj.size);
    obj.isImage = true;
    memObjs.push_back(obj);
    return Mem{(uint32_t)(memObjs.size() - 1)};
}

ClRuntime::KernelObj &
ClRuntime::kernelObj(Kernel kernel)
{
    GT_ASSERT(kernel.id < kernelObjs.size(), "invalid kernel handle");
    return kernelObjs[kernel.id];
}

ClRuntime::MemObj &
ClRuntime::memObj(Mem mem)
{
    GT_ASSERT(mem.id < memObjs.size(), "invalid mem handle");
    GT_ASSERT(!memObjs[mem.id].released, "use of released mem object");
    return memObjs[mem.id];
}

const ClRuntime::MemObj &
ClRuntime::memObj(Mem mem) const
{
    GT_ASSERT(mem.id < memObjs.size(), "invalid mem handle");
    return memObjs[mem.id];
}

void
ClRuntime::setKernelArg(Kernel kernel, uint32_t index, uint32_t value)
{
    ApiCallRecord rec = record(ApiCallId::SetKernelArg);
    rec.kernelName = kernelObj(kernel).name;
    rec.uargs = {kernel.id, index, value, 0};
    broadcast(observers, rec);
    KernelObj &obj = kernelObj(kernel);
    GT_ASSERT(index < obj.numArgs, obj.name, ": argument index ",
              index, " out of range");
    obj.args[index] = value;
}

void
ClRuntime::setKernelArg(Kernel kernel, uint32_t index, Mem mem)
{
    ApiCallRecord rec = record(ApiCallId::SetKernelArg);
    rec.kernelName = kernelObj(kernel).name;
    rec.uargs = {kernel.id, index, mem.id, 1};
    broadcast(observers, rec);
    KernelObj &obj = kernelObj(kernel);
    GT_ASSERT(index < obj.numArgs, obj.name, ": argument index ",
              index, " out of range");
    // Buffer arguments pass the buffer's device address.
    obj.args[index] = (uint32_t)memObj(mem).address;
}

Event
ClRuntime::enqueueWriteBuffer(CommandQueue queue, Mem mem,
                              uint64_t offset,
                              const std::vector<uint8_t> &data)
{
    ApiCallRecord rec = record(ApiCallId::EnqueueWriteBuffer);
    rec.uargs = {queue.id, mem.id, offset};
    rec.payload = data;
    broadcast(observers, rec);
    MemObj &obj = memObj(mem);
    GT_ASSERT(offset + data.size() <= obj.size,
              "write exceeds buffer size");
    drv.memory().copyIn(obj.address + offset, data.data(),
                        data.size());
    timeline += drv.transferSeconds(data.size());
    return Event{nextEvent++};
}

Event
ClRuntime::enqueueFillBuffer(CommandQueue queue, Mem mem,
                             uint32_t pattern, uint64_t offset,
                             uint64_t bytes)
{
    ApiCallRecord rec = record(ApiCallId::EnqueueFillBuffer);
    rec.uargs = {queue.id, mem.id, pattern, offset, bytes};
    broadcast(observers, rec);
    MemObj &obj = memObj(mem);
    GT_ASSERT(offset + bytes <= obj.size,
              "fill exceeds buffer size");
    for (uint64_t b = 0; b + 4 <= bytes; b += 4)
        drv.memory().write32(obj.address + offset + b, pattern);
    timeline += drv.transferSeconds(bytes);
    return Event{nextEvent++};
}

Event
ClRuntime::enqueueNDRangeKernel(CommandQueue queue, Kernel kernel,
                                uint64_t global_work_size,
                                uint8_t simd_width)
{
    (void)queue;
    KernelObj &obj = kernelObj(kernel);
    GT_ASSERT(global_work_size > 0, obj.name,
              ": zero global work size");

    PendingDispatch pd;
    pd.seq = nextDispatchSeq++;
    pd.driverKernelId = obj.driverKernelId;
    pd.globalSize = global_work_size;
    pd.simdWidth = simd_width;
    pd.args.resize(obj.numArgs, 0);
    for (uint32_t a = 0; a < obj.numArgs; ++a) {
        auto it = obj.args.find(a);
        GT_ASSERT(it != obj.args.end(), obj.name, ": argument ", a,
                  " not set before enqueue");
        pd.args[a] = it->second;
    }

    ApiCallRecord rec = record(ApiCallId::EnqueueNDRangeKernel);
    rec.kernelName = obj.name;
    rec.globalWorkSize = global_work_size;
    rec.dispatchSeq = pd.seq;
    rec.uargs = {queue.id, kernel.id, global_work_size, simd_width};
    uint64_t h = 0xcbf29ce484222325ULL;
    for (uint32_t a : pd.args) {
        h ^= a;
        h *= 0x100000001b3ULL;
    }
    rec.argsHash = h;
    broadcast(observers, rec);

    pd.eventId = nextEvent++;
    Event ev{pd.eventId};
    pending.push_back(std::move(pd));
    return ev;
}

void
ClRuntime::drainQueue()
{
    // Kernels executed asynchronously since the last alignment point
    // now run to completion on the device.
    std::vector<PendingDispatch> work;
    work.swap(pending);
    for (const auto &pd : work) {
        DispatchResult result = drv.execute(
            pd.driverKernelId, pd.globalSize, pd.simdWidth, pd.args);
        timeline += result.time.seconds;
        eventTimes[pd.eventId] = result.time.seconds;
        for (ApiObserver *obs : observers)
            obs->onDispatchExecuted(result);
    }
}

void
ClRuntime::finish(CommandQueue queue)
{
    ApiCallRecord rec = record(ApiCallId::Finish);
    rec.uargs = {queue.id};
    broadcast(observers, rec);
    drainQueue();
}

void
ClRuntime::flush(CommandQueue queue)
{
    ApiCallRecord rec = record(ApiCallId::Flush);
    rec.uargs = {queue.id};
    broadcast(observers, rec);
    // Modeled like the paper treats it: a host/device alignment
    // point (see DESIGN.md deviations).
    drainQueue();
}

void
ClRuntime::waitForEvents(const std::vector<Event> &events)
{
    ApiCallRecord rec = record(ApiCallId::WaitForEvents);
    rec.uargs = {events.size()};
    broadcast(observers, rec);
    drainQueue();
}

std::vector<uint8_t>
ClRuntime::enqueueReadBuffer(CommandQueue queue, Mem mem,
                             uint64_t offset, uint64_t bytes)
{
    ApiCallRecord rec = record(ApiCallId::EnqueueReadBuffer);
    rec.uargs = {queue.id, mem.id, offset, bytes};
    broadcast(observers, rec);
    drainQueue();
    const MemObj &obj = memObj(mem);
    GT_ASSERT(offset + bytes <= obj.size,
              "read exceeds buffer size");
    std::vector<uint8_t> data(bytes);
    drv.memory().copyOut(obj.address + offset, data.data(), bytes);
    timeline += drv.transferSeconds(bytes);
    return data;
}

std::vector<uint8_t>
ClRuntime::enqueueReadImage(CommandQueue queue, Mem image)
{
    ApiCallRecord rec = record(ApiCallId::EnqueueReadImage);
    rec.uargs = {queue.id, image.id};
    broadcast(observers, rec);
    drainQueue();
    const MemObj &obj = memObj(image);
    GT_ASSERT(obj.isImage, "enqueueReadImage on a non-image");
    std::vector<uint8_t> data(obj.size);
    drv.memory().copyOut(obj.address, data.data(), obj.size);
    timeline += drv.transferSeconds(obj.size);
    return data;
}

Event
ClRuntime::enqueueCopyBuffer(CommandQueue queue, Mem src, Mem dst,
                             uint64_t bytes)
{
    ApiCallRecord rec = record(ApiCallId::EnqueueCopyBuffer);
    rec.uargs = {queue.id, src.id, dst.id, bytes};
    broadcast(observers, rec);
    drainQueue();
    const MemObj &s = memObj(src);
    const MemObj &d = memObj(dst);
    GT_ASSERT(bytes <= s.size && bytes <= d.size,
              "copy exceeds buffer size");
    std::vector<uint8_t> tmp(bytes);
    drv.memory().copyOut(s.address, tmp.data(), bytes);
    drv.memory().copyIn(d.address, tmp.data(), bytes);
    timeline += drv.transferSeconds(bytes);
    return Event{nextEvent++};
}

Event
ClRuntime::enqueueCopyImageToBuffer(CommandQueue queue, Mem image,
                                    Mem buffer)
{
    ApiCallRecord rec =
        record(ApiCallId::EnqueueCopyImageToBuffer);
    rec.uargs = {queue.id, image.id, buffer.id};
    broadcast(observers, rec);
    drainQueue();
    const MemObj &img = memObj(image);
    const MemObj &buf = memObj(buffer);
    GT_ASSERT(img.isImage, "copyImageToBuffer on a non-image");
    uint64_t bytes = std::min(img.size, buf.size);
    std::vector<uint8_t> tmp(bytes);
    drv.memory().copyOut(img.address, tmp.data(), bytes);
    drv.memory().copyIn(buf.address, tmp.data(), bytes);
    timeline += drv.transferSeconds(bytes);
    return Event{nextEvent++};
}

uint64_t
ClRuntime::getKernelWorkGroupInfo(Kernel kernel)
{
    ApiCallRecord rec = record(ApiCallId::GetKernelWorkGroupInfo);
    rec.kernelName = kernelObj(kernel).name;
    rec.uargs = {kernel.id};
    broadcast(observers, rec);
    // Preferred work-group size multiple: the dispatch SIMD width.
    return 16;
}

double
ClRuntime::getEventProfilingInfo(Event event)
{
    ApiCallRecord rec = record(ApiCallId::GetEventProfilingInfo);
    rec.uargs = {event.id};
    broadcast(observers, rec);
    auto it = eventTimes.find(event.id);
    return it == eventTimes.end() ? 0.0 : it->second;
}

void
ClRuntime::releaseMemObject(Mem mem)
{
    ApiCallRecord rec = record(ApiCallId::ReleaseMemObject);
    rec.uargs = {mem.id};
    broadcast(observers, rec);
    memObj(mem).released = true;
}

void
ClRuntime::releaseKernel(Kernel kernel)
{
    ApiCallRecord rec = record(ApiCallId::ReleaseKernel);
    rec.kernelName = kernelObj(kernel).name;
    rec.uargs = {kernel.id};
    broadcast(observers, rec);
}

void
ClRuntime::releaseProgram(Program program)
{
    ApiCallRecord rec = record(ApiCallId::ReleaseProgram);
    rec.uargs = {program.id};
    broadcast(observers, rec);
}

void
ClRuntime::releaseCommandQueue(CommandQueue queue)
{
    ApiCallRecord rec = record(ApiCallId::ReleaseCommandQueue);
    rec.uargs = {queue.id};
    broadcast(observers, rec);
    drainQueue();
}

void
ClRuntime::releaseContext(Context ctx)
{
    ApiCallRecord rec2 = record(ApiCallId::ReleaseContext);
    rec2.uargs = {ctx.id};
    broadcast(observers, rec2);
}

uint64_t
ClRuntime::bufferAddress(Mem mem) const
{
    return memObj(mem).address;
}

uint64_t
ClRuntime::bufferSize(Mem mem) const
{
    return memObj(mem).size;
}

} // namespace gt::ocl
