/**
 * @file
 * The modeled GPU driver.
 *
 * In the paper's Fig. 1, the driver JIT-compiles kernel source when
 * clBuildProgram is issued and normally hands the machine-specific
 * binary straight to the GPU. GT-Pin modifies exactly two points of
 * that flow: an initialization hook when the runtime first comes up,
 * and a diversion of every freshly JIT-compiled binary through the
 * GT-Pin binary rewriter before it reaches the device. This class
 * exposes those same two hook points through DriverObserver.
 *
 * The driver owns the device: its memory, its functional executor,
 * its trace buffer, and the timing model that stands in for the
 * silicon's clock.
 */

#ifndef GT_OCL_DRIVER_HH
#define GT_OCL_DRIVER_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/detailed_sim.hh"
#include "gpu/executor.hh"
#include "gpu/timing.hh"
#include "isa/kernel.hh"

namespace gt::ocl
{

/** Everything known about one completed kernel dispatch. */
struct DispatchResult
{
    uint64_t seq = 0;            //!< global dispatch sequence number
    uint32_t kernelId = 0;       //!< driver kernel id
    std::string kernelName;
    uint64_t globalSize = 0;
    uint64_t argsHash = 0;       //!< hash of the argument values
    std::vector<uint32_t> args;  //!< the argument values themselves
    gpu::KernelTime time;        //!< modeled wall time
    gpu::ExecProfile profile;    //!< ground-truth device profile
};

/**
 * Hook interface for tools that modify or observe driver behaviour.
 * GT-Pin implements it: onKernelJit() is the binary-rewriter
 * diversion; onDispatchComplete() is where the CPU post-processor
 * collects trace-buffer results.
 */
class DriverObserver
{
  public:
    virtual ~DriverObserver() = default;

    /**
     * Called with each freshly JIT-compiled binary before it is
     * finalized for the device; may return a rewritten
     * (instrumented) binary.
     */
    virtual isa::KernelBinary
    onKernelJit(const isa::KernelSource &source,
                isa::KernelBinary binary)
    {
        (void)source;
        return binary;
    }

    /** Called after each dispatch finishes executing. */
    virtual void
    onDispatchComplete(const DispatchResult &result,
                       gpu::TraceBuffer &trace)
    {
        (void)result;
        (void)trace;
    }
};

/** JIT compilation, dispatch execution, and device ownership. */
class GpuDriver
{
  public:
    GpuDriver(const gpu::DeviceConfig &config,
              const isa::JitCompiler &jit,
              const gpu::TrialConfig &trial = {});

    /** Attach the (single) driver observer; null detaches. */
    void setObserver(DriverObserver *observer);
    DriverObserver *observer() const { return observerPtr; }

    /**
     * JIT-compile @p source, diverting the result through the
     * observer's rewriter if one is attached.
     * @return the driver kernel id.
     */
    uint32_t buildKernel(const isa::KernelSource &source);

    /** Number of kernels built so far. */
    uint32_t numKernels() const { return (uint32_t)kernels.size(); }

    const isa::KernelBinary &binary(uint32_t kernel_id) const;
    const isa::KernelSource &source(uint32_t kernel_id) const;

    /**
     * Execute one dispatch synchronously on the modeled device and
     * report timing and profile. Notifies the observer.
     */
    DispatchResult execute(uint32_t kernel_id, uint64_t global_size,
                           uint8_t simd_width,
                           const std::vector<uint32_t> &args);

    /** Seconds to move @p bytes between host and device. */
    double transferSeconds(uint64_t bytes) const;

    /**
     * Detailed-simulation hook: the functional checkpoint of the
     * dispatch (kernel_id, global_size, simd_width, args), built
     * through this driver's executor on first request and memoized
     * by dispatch identity (gpu::CheckpointStore), so a validation
     * sweep pays one Fast-mode pre-pass per distinct dispatch no
     * matter how many design points replay it. Not thread-safe —
     * warm the store before fanning replay cells out.
     */
    const gpu::DetailedCheckpoint &
    checkpoint(uint32_t kernel_id, uint64_t global_size,
               uint8_t simd_width, const std::vector<uint32_t> &args);

    /** The checkpoint memo table (hit/build stats, clearing). */
    gpu::CheckpointStore &checkpoints() { return ckpts; }

    /**
     * Attach cross-driver caches (either may be null). The plan
     * cache is forwarded to the executor, which adopts published
     * execution plans by binary content hash; the checkpoint cache
     * is consulted by checkpoint() before the local store, so
     * tenants sharing kernels pay one functional pre-pass between
     * them. Both caches must outlive the driver.
     */
    void setSharedCaches(gpu::SharedPlanCache *plan_cache,
                         gpu::SharedCheckpointCache *ckpt_cache);

    /** Functional execution mode (Fast by default). */
    void setExecMode(gpu::Executor::Mode mode) { execMode = mode; }

    /** Per-access callback (forces Full execution; cache tools). */
    void setMemAccessCallback(gpu::MemAccessFn fn);

    /**
     * Batched trace consumer (forces Full execution): accesses are
     * collected in the executor's SoA buffer and delivered in
     * fixed-size chunks, in execution order. Mutually exclusive with
     * the per-access callback — setting either clears the other.
     */
    void setMemBatchCallback(gpu::MemBatchFn fn);

    gpu::DeviceMemory &memory() { return mem; }
    gpu::Executor &executor() { return exec; }
    gpu::TraceBuffer &traceBuffer() { return trace; }
    const gpu::DeviceConfig &config() const { return cfg; }

    /** Total dispatches executed. */
    uint64_t dispatchCount() const { return nextSeq; }

    /** Accumulated modeled device-busy time, in seconds. */
    double deviceBusySeconds() const { return busySeconds; }

  private:
    struct KernelEntry
    {
        isa::KernelSource src;
        std::unique_ptr<isa::KernelBinary> bin;
    };

    gpu::DeviceConfig cfg;
    const isa::JitCompiler &jit;
    gpu::DeviceMemory mem;
    gpu::Executor exec;
    gpu::TimingModel timing;
    gpu::TraceBuffer trace;
    DriverObserver *observerPtr = nullptr;
    gpu::Executor::Mode execMode = gpu::Executor::Mode::Fast;
    gpu::MemAccessFn memAccess;
    gpu::MemBatchFn memBatch;
    gpu::CheckpointStore ckpts;
    gpu::SharedCheckpointCache *sharedCkpts = nullptr;
    std::vector<KernelEntry> kernels;
    uint64_t nextSeq = 0;
    double busySeconds = 0.0;
};

} // namespace gt::ocl

#endif // GT_OCL_DRIVER_HH
