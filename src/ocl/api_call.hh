/**
 * @file
 * OpenCL-style API call identifiers and their paper classification.
 *
 * Figure 3a of the paper divides host API calls into three types:
 * kernel invocations (clEnqueueNDRangeKernel), the seven
 * synchronization calls enumerated in Section II (the only points
 * where host and device are guaranteed to align), and everything
 * else (setup, argument supply, post-processing, cleanup). That
 * classification drives both the characterization and the
 * synchronization-bounded interval scheme of Section V.
 */

#ifndef GT_OCL_API_CALL_HH
#define GT_OCL_API_CALL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/kernel.hh"

namespace gt::ocl
{

/** Host API entry points modeled by the runtime. */
enum class ApiCallId : uint8_t
{
    GetPlatformIds,
    GetDeviceIds,
    CreateContext,
    CreateCommandQueue,
    CreateProgramWithSource,
    BuildProgram,
    CreateKernel,
    CreateBuffer,
    CreateImage2D,
    SetKernelArg,
    EnqueueWriteBuffer,
    EnqueueFillBuffer,
    EnqueueNDRangeKernel,
    Finish,
    Flush,
    WaitForEvents,
    EnqueueReadBuffer,
    EnqueueReadImage,
    EnqueueCopyBuffer,
    EnqueueCopyImageToBuffer,
    ReleaseMemObject,
    ReleaseKernel,
    ReleaseProgram,
    ReleaseCommandQueue,
    ReleaseContext,
    GetKernelWorkGroupInfo,
    GetEventProfilingInfo,

    NumApiCalls,
};

constexpr int numApiCalls = static_cast<int>(ApiCallId::NumApiCalls);

/** Figure 3a's three call types. */
enum class ApiCategory : uint8_t
{
    Kernel,          //!< clEnqueueNDRangeKernel
    Synchronization, //!< the seven host/device alignment calls
    Other,           //!< setup, arguments, post-processing, cleanup
};

/** @return the paper category of @p id. */
ApiCategory apiCategory(ApiCallId id);

/** @return the OpenCL-style name, e.g. "clEnqueueNDRangeKernel". */
const char *apiCallName(ApiCallId id);

/** @return display name of a category. */
const char *apiCategoryName(ApiCategory category);

/**
 * One captured API call, as the CoFluent-style tracer sees it when it
 * intercepts the call between the application and the runtime.
 */
struct ApiCallRecord
{
    ApiCallId id = ApiCallId::GetPlatformIds;

    /** Position in the host program's API-call stream. */
    uint64_t callIndex = 0;

    /** For EnqueueNDRangeKernel: the dispatch sequence number. */
    uint64_t dispatchSeq = 0;

    /** For kernel-related calls: the kernel's name. */
    std::string kernelName;

    /** For EnqueueNDRangeKernel: the global work size argument. */
    uint64_t globalWorkSize = 0;

    /** For EnqueueNDRangeKernel: hash of the kernel's current args. */
    uint64_t argsHash = 0;

    /**
     * Full call arguments (handles, sizes, offsets, values) in the
     * entry point's parameter order. Together with payload and
     * sources this is sufficient to replay the call, which is what
     * the CoFluent-style record/replay facility relies on.
     */
    std::vector<uint64_t> uargs;

    /** Raw data for EnqueueWriteBuffer. */
    std::vector<uint8_t> payload;

    /** Kernel sources for CreateProgramWithSource. */
    std::vector<isa::KernelSource> sources;
};

} // namespace gt::ocl

#endif // GT_OCL_API_CALL_HH
