#include "ocl/driver.hh"

#include "common/logging.hh"

namespace gt::ocl
{

GpuDriver::GpuDriver(const gpu::DeviceConfig &config,
                     const isa::JitCompiler &jit_,
                     const gpu::TrialConfig &trial)
    : cfg(config), jit(jit_), mem(config.memBytes), exec(config, mem),
      timing(config, trial)
{
}

void
GpuDriver::setObserver(DriverObserver *observer)
{
    GT_ASSERT(!observer || !observerPtr,
              "a driver observer is already attached");
    observerPtr = observer;
}

uint32_t
GpuDriver::buildKernel(const isa::KernelSource &source)
{
    isa::KernelBinary bin = jit.compile(source);
    isa::verify(bin);
    if (observerPtr) {
        // The GT-Pin diversion point: binary goes through the
        // rewriter before reaching the device.
        bin = observerPtr->onKernelJit(source, std::move(bin));
        isa::verify(bin);
    }
    KernelEntry entry;
    entry.src = source;
    entry.bin = std::make_unique<isa::KernelBinary>(std::move(bin));
    kernels.push_back(std::move(entry));
    return (uint32_t)(kernels.size() - 1);
}

const isa::KernelBinary &
GpuDriver::binary(uint32_t kernel_id) const
{
    GT_ASSERT(kernel_id < kernels.size(), "invalid kernel id ",
              kernel_id);
    return *kernels[kernel_id].bin;
}

const isa::KernelSource &
GpuDriver::source(uint32_t kernel_id) const
{
    GT_ASSERT(kernel_id < kernels.size(), "invalid kernel id ",
              kernel_id);
    return kernels[kernel_id].src;
}

DispatchResult
GpuDriver::execute(uint32_t kernel_id, uint64_t global_size,
                   uint8_t simd_width,
                   const std::vector<uint32_t> &args)
{
    const isa::KernelBinary &bin = binary(kernel_id);

    gpu::Dispatch dispatch;
    dispatch.binary = &bin;
    dispatch.globalSize = global_size;
    dispatch.simdWidth = simd_width;
    dispatch.args = args;

    DispatchResult result;
    result.seq = nextSeq++;
    result.kernelId = kernel_id;
    result.kernelName = bin.name;
    result.globalSize = global_size;
    result.args = args;

    // FNV-1a over the argument words, the identity the KN-ARGS
    // feature family and the checkpoint store key on.
    result.argsHash = gpu::dispatchArgsHash(args);

    result.profile =
        exec.run(dispatch, execMode, &trace, memAccess, memBatch);
    result.time = timing.kernelTime(result.profile);
    busySeconds += result.time.seconds;

    if (observerPtr)
        observerPtr->onDispatchComplete(result, trace);
    return result;
}

void
GpuDriver::setSharedCaches(gpu::SharedPlanCache *plan_cache,
                           gpu::SharedCheckpointCache *ckpt_cache)
{
    exec.setSharedPlanCache(plan_cache);
    sharedCkpts = ckpt_cache;
}

const gpu::DetailedCheckpoint &
GpuDriver::checkpoint(uint32_t kernel_id, uint64_t global_size,
                      uint8_t simd_width,
                      const std::vector<uint32_t> &args)
{
    const isa::KernelBinary &bin = binary(kernel_id);

    gpu::Dispatch dispatch;
    dispatch.binary = &bin;
    dispatch.globalSize = global_size;
    dispatch.simdWidth = simd_width;
    dispatch.args = args;
    if (!sharedCkpts)
        return ckpts.get(exec, dispatch, kernel_id);

    gpu::SharedCheckpointCache::Key key;
    key.binaryHash = isa::contentHash(bin);
    key.globalSize = global_size;
    key.simdWidth = simd_width;
    key.argsHash = gpu::dispatchArgsHash(args);
    key.traceCap = 4'000'000;
    if (auto hit = sharedCkpts->find(key))
        return *hit;
    const gpu::DetailedCheckpoint &built =
        ckpts.get(exec, dispatch, kernel_id);
    return *sharedCkpts->insert(key, built, bin);
}

double
GpuDriver::transferSeconds(uint64_t bytes) const
{
    return (double)bytes / (cfg.memBandwidthGBs * 1e9);
}

void
GpuDriver::setMemAccessCallback(gpu::MemAccessFn fn)
{
    memAccess = std::move(fn);
    if (memAccess)
        memBatch = nullptr;
}

void
GpuDriver::setMemBatchCallback(gpu::MemBatchFn fn)
{
    memBatch = std::move(fn);
    if (memBatch)
        memAccess = nullptr;
}

} // namespace gt::ocl
