#include "ocl/api_call.hh"

#include "common/logging.hh"

namespace gt::ocl
{

ApiCategory
apiCategory(ApiCallId id)
{
    switch (id) {
      case ApiCallId::EnqueueNDRangeKernel:
        return ApiCategory::Kernel;
      // The seven synchronization calls of Section II.
      case ApiCallId::Finish:
      case ApiCallId::Flush:
      case ApiCallId::WaitForEvents:
      case ApiCallId::EnqueueReadBuffer:
      case ApiCallId::EnqueueReadImage:
      case ApiCallId::EnqueueCopyBuffer:
      case ApiCallId::EnqueueCopyImageToBuffer:
        return ApiCategory::Synchronization;
      default:
        return ApiCategory::Other;
    }
}

const char *
apiCallName(ApiCallId id)
{
    switch (id) {
      case ApiCallId::GetPlatformIds: return "clGetPlatformIDs";
      case ApiCallId::GetDeviceIds: return "clGetDeviceIDs";
      case ApiCallId::CreateContext: return "clCreateContext";
      case ApiCallId::CreateCommandQueue:
        return "clCreateCommandQueue";
      case ApiCallId::CreateProgramWithSource:
        return "clCreateProgramWithSource";
      case ApiCallId::BuildProgram: return "clBuildProgram";
      case ApiCallId::CreateKernel: return "clCreateKernel";
      case ApiCallId::CreateBuffer: return "clCreateBuffer";
      case ApiCallId::CreateImage2D: return "clCreateImage2D";
      case ApiCallId::SetKernelArg: return "clSetKernelArg";
      case ApiCallId::EnqueueWriteBuffer:
        return "clEnqueueWriteBuffer";
      case ApiCallId::EnqueueFillBuffer:
        return "clEnqueueFillBuffer";
      case ApiCallId::EnqueueNDRangeKernel:
        return "clEnqueueNDRangeKernel";
      case ApiCallId::Finish: return "clFinish";
      case ApiCallId::Flush: return "clFlush";
      case ApiCallId::WaitForEvents: return "clWaitForEvents";
      case ApiCallId::EnqueueReadBuffer:
        return "clEnqueueReadBuffer";
      case ApiCallId::EnqueueReadImage: return "clEnqueueReadImage";
      case ApiCallId::EnqueueCopyBuffer:
        return "clEnqueueCopyBuffer";
      case ApiCallId::EnqueueCopyImageToBuffer:
        return "clEnqueueCopyImageToBuffer";
      case ApiCallId::ReleaseMemObject: return "clReleaseMemObject";
      case ApiCallId::ReleaseKernel: return "clReleaseKernel";
      case ApiCallId::ReleaseProgram: return "clReleaseProgram";
      case ApiCallId::ReleaseCommandQueue:
        return "clReleaseCommandQueue";
      case ApiCallId::ReleaseContext: return "clReleaseContext";
      case ApiCallId::GetKernelWorkGroupInfo:
        return "clGetKernelWorkGroupInfo";
      case ApiCallId::GetEventProfilingInfo:
        return "clGetEventProfilingInfo";
      default:
        panic("apiCallName: invalid id ", (int)id);
    }
}

const char *
apiCategoryName(ApiCategory category)
{
    switch (category) {
      case ApiCategory::Kernel: return "kernel";
      case ApiCategory::Synchronization: return "synchronization";
      case ApiCategory::Other: return "other";
      default:
        panic("apiCategoryName: invalid category ", (int)category);
    }
}

} // namespace gt::ocl
