/**
 * @file
 * The OpenCL-style host runtime.
 *
 * Host programs (the workloads in src/workloads) drive this API the
 * way real OpenCL applications drive the CL runtime: create a
 * context and queue, build programs, set kernel arguments, enqueue
 * ND-range kernels, and synchronize. Kernel dispatches are
 * asynchronous — they accumulate in the command queue and execute
 * when one of the seven synchronization calls aligns host and
 * device, which is precisely why the paper treats those calls as the
 * only legal simulation-interval boundaries.
 *
 * Every entry point is observable (ApiObserver), which is how the
 * CoFluent-style tracer captures the full call stream without
 * perturbing the application.
 */

#ifndef GT_OCL_RUNTIME_HH
#define GT_OCL_RUNTIME_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ocl/api_call.hh"
#include "ocl/driver.hh"

namespace gt::ocl
{

/** Opaque handle types mirroring the OpenCL object model. @{ */
struct Context { uint32_t id = 0; };
struct CommandQueue { uint32_t id = 0; };
struct Program { uint32_t id = 0; };
struct Kernel { uint32_t id = 0; };
struct Mem { uint32_t id = 0; };
struct Event { uint64_t id = 0; };
/** @} */

/**
 * Observer of runtime activity; the CoFluent-analogue tracer and the
 * record/replay recorder implement this.
 */
class ApiObserver
{
  public:
    virtual ~ApiObserver() = default;

    /** Every API entry point reports here on entry. */
    virtual void onApiCall(const ApiCallRecord &record) { (void)record; }

    /** Each dispatch reports here once the device has executed it. */
    virtual void
    onDispatchExecuted(const DispatchResult &result)
    {
        (void)result;
    }
};

/** The host-side OpenCL-style runtime, bound to one GPU driver. */
class ClRuntime
{
  public:
    explicit ClRuntime(GpuDriver &driver);

    void addObserver(ApiObserver *observer);
    void removeObserver(ApiObserver *observer);

    // --- Platform / context setup ---------------------------------
    uint32_t getPlatformIds();
    uint32_t getDeviceIds();
    Context createContext();
    CommandQueue createCommandQueue(Context ctx);

    // --- Programs and kernels --------------------------------------
    Program createProgramWithSource(
        Context ctx, std::vector<isa::KernelSource> sources);

    /** JIT-compiles every kernel in the program (Fig. 1). */
    void buildProgram(Program program);

    Kernel createKernel(Program program, const std::string &name);

    // --- Memory objects ---------------------------------------------
    Mem createBuffer(Context ctx, uint64_t bytes);
    Mem createImage2D(Context ctx, uint32_t width, uint32_t height,
                      uint32_t bytes_per_pixel = 4);

    // --- Arguments ----------------------------------------------------
    void setKernelArg(Kernel kernel, uint32_t index, uint32_t value);
    void setKernelArg(Kernel kernel, uint32_t index, Mem mem);

    // --- Asynchronous work -----------------------------------------
    Event enqueueWriteBuffer(CommandQueue queue, Mem mem,
                             uint64_t offset,
                             const std::vector<uint8_t> &data);
    Event enqueueFillBuffer(CommandQueue queue, Mem mem,
                            uint32_t pattern, uint64_t offset,
                            uint64_t bytes);
    Event enqueueNDRangeKernel(CommandQueue queue, Kernel kernel,
                               uint64_t global_work_size,
                               uint8_t simd_width = 16);

    // --- The seven synchronization calls ---------------------------
    void finish(CommandQueue queue);
    void flush(CommandQueue queue);
    void waitForEvents(const std::vector<Event> &events);
    std::vector<uint8_t> enqueueReadBuffer(CommandQueue queue,
                                           Mem mem, uint64_t offset,
                                           uint64_t bytes);
    std::vector<uint8_t> enqueueReadImage(CommandQueue queue,
                                          Mem image);
    Event enqueueCopyBuffer(CommandQueue queue, Mem src, Mem dst,
                            uint64_t bytes);
    Event enqueueCopyImageToBuffer(CommandQueue queue, Mem image,
                                   Mem buffer);

    // --- Queries and cleanup ---------------------------------------
    uint64_t getKernelWorkGroupInfo(Kernel kernel);
    double getEventProfilingInfo(Event event);
    void releaseMemObject(Mem mem);
    void releaseKernel(Kernel kernel);
    void releaseProgram(Program program);
    void releaseCommandQueue(CommandQueue queue);
    void releaseContext(Context ctx);

    // --- Introspection (not API calls; used by tests/harnesses) ----
    uint64_t bufferAddress(Mem mem) const;
    uint64_t bufferSize(Mem mem) const;
    uint64_t apiCallCount() const { return nextCallIndex; }
    uint64_t dispatchCount() const { return nextDispatchSeq; }
    double deviceTimelineSeconds() const { return timeline; }
    GpuDriver &driver() { return drv; }

  private:
    struct KernelObj
    {
        uint32_t driverKernelId = 0;
        std::string name;
        uint32_t numArgs = 0;
        std::map<uint32_t, uint32_t> args;
    };

    struct MemObj
    {
        uint64_t address = 0;
        uint64_t size = 0;
        bool isImage = false;
        bool released = false;
    };

    struct PendingDispatch
    {
        uint64_t seq = 0;
        uint64_t eventId = 0;
        uint32_t driverKernelId = 0;
        uint64_t globalSize = 0;
        uint8_t simdWidth = 16;
        std::vector<uint32_t> args;
    };

    /** Build and broadcast the call record for an entry point. */
    ApiCallRecord record(ApiCallId id);

    /** Execute all pending dispatches (host/device alignment). */
    void drainQueue();

    KernelObj &kernelObj(Kernel kernel);
    MemObj &memObj(Mem mem);
    const MemObj &memObj(Mem mem) const;

    GpuDriver &drv;
    std::vector<ApiObserver *> observers;

    std::vector<std::vector<isa::KernelSource>> programs;
    std::vector<bool> programBuilt;
    /** program id -> kernel name -> driver kernel id */
    std::vector<std::map<std::string, uint32_t>> programKernels;
    std::vector<KernelObj> kernelObjs;
    std::vector<MemObj> memObjs;
    std::vector<PendingDispatch> pending;
    std::map<uint64_t, double> eventTimes;

    uint32_t nextContext = 0;
    uint32_t nextQueue = 0;
    uint64_t nextCallIndex = 0;
    uint64_t nextDispatchSeq = 0;
    uint64_t nextEvent = 0;
    double timeline = 0.0;
};

} // namespace gt::ocl

#endif // GT_OCL_RUNTIME_HH
