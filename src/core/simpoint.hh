/**
 * @file
 * SimPoint-style clustering over interval feature vectors.
 *
 * Reimplements the pipeline of SimPoint 3.0, the tool the paper
 * feeds its feature vectors to: random linear projection of the
 * sparse vectors down to 15 dimensions, weighted k-means (intervals
 * weigh as many instructions as they contain — SimPoint 3.0's
 * variable-length-interval support), BIC-based selection of the
 * cluster count up to a user maximum (10 throughout the paper), and
 * per-cluster representative selection: the interval nearest each
 * centroid, with a representation ratio equal to the cluster's
 * share of total instructions.
 */

#ifndef GT_CORE_SIMPOINT_HH
#define GT_CORE_SIMPOINT_HH

#include <array>

#include "common/rng.hh"
#include "core/features.hh"
#include "sched/thread_pool.hh"

namespace gt::core::simpoint
{

/** Dimensionality after random projection (SimPoint's default 15). */
constexpr int projectedDims = 15;

/** A projected, dense feature point. */
using Point = std::array<double, projectedDims>;

/**
 * Memoized projection coefficients: one precomputed
 * projectedDims-wide row per sparse key. The coefficient is a pure
 * function of (key, dim), so a table built once per workload (over
 * the DispatchFeatureCache's key universe) hands every project()
 * call its rows without re-deriving a hash per (key, dim) — and the
 * result stays bitwise identical to the on-the-fly path.
 */
class ProjectionTable
{
  public:
    /** Build rows for @p keys (must be strictly ascending). */
    static ProjectionTable build(const std::vector<uint64_t> &keys);

    /**
     * Build rows for @p keys, copying every row @p previous already
     * holds and computing only the genuinely new keys. A row is a
     * pure function of its key, so the result is bitwise identical
     * to build(keys) — this is how the incremental selection path
     * extends a workload's memoized table as dispatches keep
     * arriving, paying only for the keys the new dispatches
     * introduced.
     */
    static ProjectionTable build(const std::vector<uint64_t> &keys,
                                 const ProjectionTable &previous);

    /** Row for @p key, or null when the key is outside the table. */
    const Point *row(uint64_t key) const;

    /**
     * Row by rank in the ascending key order the table was built
     * from. The fast path: a consumer that already knows a key's
     * rank (the feature engine's column ids are exactly these ranks)
     * skips the key search entirely.
     */
    const Point &rowAt(size_t idx) const { return rows[idx]; }

    size_t size() const { return keyIndex.size(); }

  private:
    std::vector<uint64_t> keyIndex; //!< ascending, rows[i] pairs up
    std::vector<Point> rows;
};

/**
 * Random linear projection of a sparse vector: each sparse key
 * hashes to a deterministic pseudo-random direction, so the
 * projection matrix never needs materializing over the unbounded
 * key space. When @p table is given its precomputed rows are used
 * (every key of @p vec must be present); the result is bitwise
 * identical either way.
 */
Point project(const FeatureVector &vec,
              const ProjectionTable *table = nullptr);

/**
 * Exactly-coincident points grouped by value. Dispatch populations
 * are massively duplicate-heavy (thousands of intervals, often only
 * dozens of distinct feature vectors), and every distance-dependent
 * decision in k-means — the k-way scan, the bounds, the seeding
 * refresh, the distortion term — is a pure function of a point's
 * coordinates, so one computation per distinct value serves the
 * whole group with bitwise-identical results. Built once per
 * population and shared by every candidate-k run of the BIC sweep;
 * the incremental refresh path additionally carries an index across
 * refreshes via extendUniqueIndex().
 */
struct UniqueIndex
{
    std::vector<uint32_t> uid;   //!< per point: its group id
    std::vector<uint32_t> rep;   //!< per group: one member's index
    std::vector<uint32_t> count; //!< per group: member count
};

/**
 * Group the @p n flat projectedDims-wide rows of @p pts by exact
 * value. Group ids are ascending-value ranks, so uid and count are
 * pure functions of the point multiset.
 */
UniqueIndex buildUniqueIndex(const double *pts, size_t n);

/**
 * Extend @p base — built over the first @p n_base rows of @p pts —
 * to cover all @p n rows, sorting only the new suffix and merging it
 * into the base's value-ordered groups. uid and count come out
 * bitwise equal to buildUniqueIndex(pts, n); a rep entry may name a
 * different member index, but always one with the identical row
 * value, and the clusterer consumes only rep *coordinates* — so
 * clusterings built over an extended index are bitwise identical to
 * ones built over a fresh index (the differential tests pin this).
 */
UniqueIndex extendUniqueIndex(const UniqueIndex &base,
                              const double *pts, size_t n_base,
                              size_t n);

/**
 * K-means assignment backend (GT_KMEANS=lloyd|pruned, default
 * pruned; mirrors GT_INTERP/GT_FEATURES/GT_MEMTRACE).
 *
 * Both backends produce bitwise-identical clusterings at every
 * thread count. The pruned backend keeps Hamerly/Elkan-style
 * per-point bounds — an upper bound on the distance to the assigned
 * centroid, a lower bound on the second-nearest, per-iteration
 * centroid drift, and the half minimum inter-centroid distance per
 * cluster — and skips the k-way distance scan whenever the bounds
 * prove the assignment cannot change. Bound arithmetic is made
 * conservative under floating-point rounding (see simpoint.cc), and
 * whenever pruning fails the point runs the exact Lloyd inner loop
 * (same dist2 expression, same c = 1..k comparison order), so every
 * assignment — and everything derived from it — is identical to the
 * Lloyd oracle by construction.
 */
enum class KMeansBackend : uint8_t
{
    Lloyd,  //!< reference oracle: full n x k scan every iteration
    Pruned, //!< triangle-inequality-pruned scan (default)
};

/** Process-wide default: GT_KMEANS=lloyd|pruned, else Pruned. */
KMeansBackend defaultKMeansBackend();

/** @return "lloyd" or "pruned". */
const char *kmeansBackendName(KMeansBackend backend);

/**
 * Assignment-step work counters. Every point examined by an
 * assignment pass is counted exactly once: a prune skipped its
 * k-way scan (on the cached upper bound, or after tightening the
 * bound with one exact distance), the point shared the scan of a
 * coincident representative (the pruned backend decides once per
 * distinct value), or it ran the full Lloyd scan itself. On the
 * Lloyd backend fullScans == assignSteps and the other counters
 * stay zero.
 */
struct KMeansStats
{
    uint64_t assignSteps = 0;   //!< per-point assignment decisions
    uint64_t boundPrunes = 0;   //!< skipped on the cached bounds
    uint64_t tightenPrunes = 0; //!< skipped after one exact distance
    uint64_t memoHits = 0;      //!< reused a coincident point's scan
    uint64_t fullScans = 0;     //!< ran the exact k-way Lloyd scan

    void merge(const KMeansStats &other);

    /** Fraction of assignment decisions that skipped the k-way scan
     * (0 when no assignment step has run). */
    double pruneRate() const;
};

/** One weighted k-means run at a fixed k (what cluster() repeats per
 * candidate k). Exposed for the differential tests and the
 * clustering bench. */
struct KMeansRun
{
    std::vector<int> assignment;
    std::vector<Point> centroids;
    double distortion = 0.0; //!< weighted sum of squared distances
    /**
     * Per-cluster weight totals, emitted by the same
     * chunk-deterministic reduction that computes the distortion;
     * the BIC score consumes these instead of re-scanning the
     * population.
     */
    std::vector<double> clusterWeight;
    KMeansStats stats;
};

/**
 * Run weighted k-means++ seeding plus at most @p max_iters Lloyd
 * iterations at a fixed @p k (1 <= k <= points.size()) on @p pool
 * (null = the process-wide pool). The @p backend only changes how
 * the assignment step is computed, never its result: both backends
 * return bitwise-identical runs and advance @p rng identically.
 */
KMeansRun kmeansRun(const std::vector<Point> &points,
                    const std::vector<double> &weights, int k,
                    int max_iters, Rng &rng,
                    sched::ThreadPool *pool = nullptr,
                    KMeansBackend backend = defaultKMeansBackend());

/** Result of clustering one interval population. */
struct Clustering
{
    int k = 0;
    /** Cluster id per interval. */
    std::vector<int> assignment;
    /** Interval index chosen to represent each cluster. */
    std::vector<uint64_t> representative;
    /**
     * Representation ratio per cluster: the cluster's share of the
     * total weight (instructions), the paper's extrapolation
     * weights.
     */
    std::vector<double> weight;
    /** Bayesian information criterion of the accepted clustering. */
    double bic = 0.0;
    /** Weighted distortion of the accepted clustering. */
    double distortion = 0.0;
    /**
     * Assignment-step work counters merged over every candidate-k
     * run (1..maxK), not just the accepted one — the prune rate of
     * the whole BIC sweep.
     */
    KMeansStats stats;
};

/** Clustering options. */
struct ClusterOptions
{
    int maxK = 10;          //!< the paper's setting throughout
    int maxIters = 30;      //!< k-means iteration cap
    uint64_t seed = 0x5eedULL;
    /**
     * Accept the smallest k whose BIC reaches this fraction of the
     * best BIC's range above the worst (SimPoint's criterion).
     */
    double bicThreshold = 0.9;
    /**
     * Pool the candidate-k runs and the per-run assignment /
     * centroid-update steps execute on (null = the process-wide
     * pool). Results are bit-identical for every pool size: each
     * candidate k draws from Rng::split(k) of the seed stream, and
     * all floating-point reductions combine fixed-size chunks in
     * chunk order (see ThreadPool::parallelReduce).
     */
    sched::ThreadPool *pool = nullptr;
    /**
     * Memoized projection rows covering every key of the input
     * vectors (null = derive coefficients on the fly). selectSubset
     * fills this from its FeatureEngine; direct cluster() callers
     * normally leave it null.
     */
    const ProjectionTable *projection = nullptr;
    /**
     * Unique-value index built over exactly the input points (null =
     * build one per call). The index is a pure function of the point
     * values, so a caller that grows a population incrementally can
     * extend a cached index (extendUniqueIndex) instead of
     * re-sorting the whole population on every refresh. Consulted
     * only by the pruned backend; clusterPoints() asserts the size
     * matches.
     */
    const UniqueIndex *uniqueIndex = nullptr;
    /**
     * Assignment-step backend. Changes wall clock only: clusterings
     * are bitwise identical across backends (see KMeansBackend).
     */
    KMeansBackend backend = defaultKMeansBackend();
};

/**
 * Cluster @p vectors with instruction-count @p weights and pick
 * representatives. @p weights must be positive and the same length
 * as @p vectors. May return fewer than maxK clusters when BIC says
 * a smaller k explains the population (the paper notes SimPoint
 * "may return fewer than this maximum").
 */
Clustering cluster(const std::vector<FeatureVector> &vectors,
                   const std::vector<double> &weights,
                   const ClusterOptions &options = {});

/**
 * Cluster already-projected points. cluster() is this plus the
 * projection step; callers that can produce points directly (the
 * feature engine projects straight off its columns) skip the
 * intermediate sparse vectors. options.projection is ignored.
 */
Clustering clusterPoints(const std::vector<Point> &points,
                         const std::vector<double> &weights,
                         const ClusterOptions &options = {});

} // namespace gt::core::simpoint

#endif // GT_CORE_SIMPOINT_HH
