/**
 * @file
 * SimPoint-style clustering over interval feature vectors.
 *
 * Reimplements the pipeline of SimPoint 3.0, the tool the paper
 * feeds its feature vectors to: random linear projection of the
 * sparse vectors down to 15 dimensions, weighted k-means (intervals
 * weigh as many instructions as they contain — SimPoint 3.0's
 * variable-length-interval support), BIC-based selection of the
 * cluster count up to a user maximum (10 throughout the paper), and
 * per-cluster representative selection: the interval nearest each
 * centroid, with a representation ratio equal to the cluster's
 * share of total instructions.
 */

#ifndef GT_CORE_SIMPOINT_HH
#define GT_CORE_SIMPOINT_HH

#include <array>

#include "common/rng.hh"
#include "core/features.hh"
#include "sched/thread_pool.hh"

namespace gt::core::simpoint
{

/** Dimensionality after random projection (SimPoint's default 15). */
constexpr int projectedDims = 15;

/** A projected, dense feature point. */
using Point = std::array<double, projectedDims>;

/**
 * Memoized projection coefficients: one precomputed
 * projectedDims-wide row per sparse key. The coefficient is a pure
 * function of (key, dim), so a table built once per workload (over
 * the DispatchFeatureCache's key universe) hands every project()
 * call its rows without re-deriving a hash per (key, dim) — and the
 * result stays bitwise identical to the on-the-fly path.
 */
class ProjectionTable
{
  public:
    /** Build rows for @p keys (must be strictly ascending). */
    static ProjectionTable build(const std::vector<uint64_t> &keys);

    /** Row for @p key, or null when the key is outside the table. */
    const Point *row(uint64_t key) const;

    /**
     * Row by rank in the ascending key order the table was built
     * from. The fast path: a consumer that already knows a key's
     * rank (the feature engine's column ids are exactly these ranks)
     * skips the key search entirely.
     */
    const Point &rowAt(size_t idx) const { return rows[idx]; }

    size_t size() const { return keyIndex.size(); }

  private:
    std::vector<uint64_t> keyIndex; //!< ascending, rows[i] pairs up
    std::vector<Point> rows;
};

/**
 * Random linear projection of a sparse vector: each sparse key
 * hashes to a deterministic pseudo-random direction, so the
 * projection matrix never needs materializing over the unbounded
 * key space. When @p table is given its precomputed rows are used
 * (every key of @p vec must be present); the result is bitwise
 * identical either way.
 */
Point project(const FeatureVector &vec,
              const ProjectionTable *table = nullptr);

/** Result of clustering one interval population. */
struct Clustering
{
    int k = 0;
    /** Cluster id per interval. */
    std::vector<int> assignment;
    /** Interval index chosen to represent each cluster. */
    std::vector<uint64_t> representative;
    /**
     * Representation ratio per cluster: the cluster's share of the
     * total weight (instructions), the paper's extrapolation
     * weights.
     */
    std::vector<double> weight;
    /** Bayesian information criterion of the accepted clustering. */
    double bic = 0.0;
};

/** Clustering options. */
struct ClusterOptions
{
    int maxK = 10;          //!< the paper's setting throughout
    int maxIters = 30;      //!< k-means iteration cap
    uint64_t seed = 0x5eedULL;
    /**
     * Accept the smallest k whose BIC reaches this fraction of the
     * best BIC's range above the worst (SimPoint's criterion).
     */
    double bicThreshold = 0.9;
    /**
     * Pool the candidate-k runs and the per-run assignment /
     * centroid-update steps execute on (null = the process-wide
     * pool). Results are bit-identical for every pool size: each
     * candidate k draws from Rng::split(k) of the seed stream, and
     * all floating-point reductions combine fixed-size chunks in
     * chunk order (see ThreadPool::parallelReduce).
     */
    sched::ThreadPool *pool = nullptr;
    /**
     * Memoized projection rows covering every key of the input
     * vectors (null = derive coefficients on the fly). selectSubset
     * fills this from its FeatureEngine; direct cluster() callers
     * normally leave it null.
     */
    const ProjectionTable *projection = nullptr;
};

/**
 * Cluster @p vectors with instruction-count @p weights and pick
 * representatives. @p weights must be positive and the same length
 * as @p vectors. May return fewer than maxK clusters when BIC says
 * a smaller k explains the population (the paper notes SimPoint
 * "may return fewer than this maximum").
 */
Clustering cluster(const std::vector<FeatureVector> &vectors,
                   const std::vector<double> &weights,
                   const ClusterOptions &options = {});

/**
 * Cluster already-projected points. cluster() is this plus the
 * projection step; callers that can produce points directly (the
 * feature engine projects straight off its columns) skip the
 * intermediate sparse vectors. options.projection is ignored.
 */
Clustering clusterPoints(const std::vector<Point> &points,
                         const std::vector<double> &weights,
                         const ClusterOptions &options = {});

} // namespace gt::core::simpoint

#endif // GT_CORE_SIMPOINT_HH
