/**
 * @file
 * SimPoint-style clustering over interval feature vectors.
 *
 * Reimplements the pipeline of SimPoint 3.0, the tool the paper
 * feeds its feature vectors to: random linear projection of the
 * sparse vectors down to 15 dimensions, weighted k-means (intervals
 * weigh as many instructions as they contain — SimPoint 3.0's
 * variable-length-interval support), BIC-based selection of the
 * cluster count up to a user maximum (10 throughout the paper), and
 * per-cluster representative selection: the interval nearest each
 * centroid, with a representation ratio equal to the cluster's
 * share of total instructions.
 */

#ifndef GT_CORE_SIMPOINT_HH
#define GT_CORE_SIMPOINT_HH

#include <array>

#include "common/rng.hh"
#include "core/features.hh"
#include "sched/thread_pool.hh"

namespace gt::core::simpoint
{

/** Dimensionality after random projection (SimPoint's default 15). */
constexpr int projectedDims = 15;

/** A projected, dense feature point. */
using Point = std::array<double, projectedDims>;

/**
 * Random linear projection of a sparse vector: each sparse key
 * hashes to a deterministic pseudo-random direction, so the
 * projection matrix never needs materializing over the unbounded
 * key space.
 */
Point project(const FeatureVector &vec);

/** Result of clustering one interval population. */
struct Clustering
{
    int k = 0;
    /** Cluster id per interval. */
    std::vector<int> assignment;
    /** Interval index chosen to represent each cluster. */
    std::vector<uint64_t> representative;
    /**
     * Representation ratio per cluster: the cluster's share of the
     * total weight (instructions), the paper's extrapolation
     * weights.
     */
    std::vector<double> weight;
    /** Bayesian information criterion of the accepted clustering. */
    double bic = 0.0;
};

/** Clustering options. */
struct ClusterOptions
{
    int maxK = 10;          //!< the paper's setting throughout
    int maxIters = 30;      //!< k-means iteration cap
    uint64_t seed = 0x5eedULL;
    /**
     * Accept the smallest k whose BIC reaches this fraction of the
     * best BIC's range above the worst (SimPoint's criterion).
     */
    double bicThreshold = 0.9;
    /**
     * Pool the candidate-k runs and the per-run assignment /
     * centroid-update steps execute on (null = the process-wide
     * pool). Results are bit-identical for every pool size: each
     * candidate k draws from Rng::split(k) of the seed stream, and
     * all floating-point reductions combine fixed-size chunks in
     * chunk order (see ThreadPool::parallelReduce).
     */
    sched::ThreadPool *pool = nullptr;
};

/**
 * Cluster @p vectors with instruction-count @p weights and pick
 * representatives. @p weights must be positive and the same length
 * as @p vectors. May return fewer than maxK clusters when BIC says
 * a smaller k explains the population (the paper notes SimPoint
 * "may return fewer than this maximum").
 */
Clustering cluster(const std::vector<FeatureVector> &vectors,
                   const std::vector<double> &weights,
                   const ClusterOptions &options = {});

} // namespace gt::core::simpoint

#endif // GT_CORE_SIMPOINT_HH
