#include "core/pipeline.hh"

#include <set>

#include "common/logging.hh"
#include "gtpin/tools.hh"

namespace gt::core
{

ProfiledApp
profileApp(const workloads::Workload &workload,
           const gpu::DeviceConfig &config,
           const gpu::TrialConfig &trial)
{
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(config, jit, trial);

    gtpin::KernelProfileTool profile_tool;
    gtpin::BasicBlockCounterTool bb_tool;
    gtpin::OpcodeMixTool mix_tool;
    gtpin::MemBytesTool mem_tool;

    gtpin::GtPin pin;
    pin.addTool(&profile_tool);
    pin.addTool(&bb_tool);
    pin.addTool(&mix_tool);
    pin.addTool(&mem_tool);
    pin.attach(driver);

    ocl::ClRuntime runtime(driver);
    cfl::ApiTracer tracer;
    cfl::Recorder recorder;
    runtime.addObserver(&tracer);
    runtime.addObserver(&recorder);

    workload.run(runtime);

    ProfiledApp app;
    app.name = workload.info().name;
    app.db = TraceDatabase::build(profile_tool.takeProfiles(),
                                  tracer.kernelTimings(),
                                  tracer.callStream());
    app.recording = recorder.take();

    AppCharacterization &st = app.stats;
    st.totalApiCalls = tracer.totalCalls();
    st.fracKernel =
        tracer.categoryFraction(ocl::ApiCategory::Kernel);
    st.fracSync =
        tracer.categoryFraction(ocl::ApiCategory::Synchronization);
    st.fracOther =
        tracer.categoryFraction(ocl::ApiCategory::Other);

    std::set<std::string> names;
    for (uint32_t k = 0; k < driver.numKernels(); ++k)
        names.insert(driver.binary(k).name);
    st.uniqueKernels = names.size();
    st.uniqueBlocks = bb_tool.totalStaticBlocks();

    st.kernelInvocations = app.db.numDispatches();
    st.blockExecs = bb_tool.totalBlockExecs();
    st.dynInstrs = app.db.totalInstrs();

    st.classCounts = mix_tool.classCounts();
    st.simdCounts = mix_tool.simdCounts();
    st.bytesRead = mem_tool.totalBytesRead();
    st.bytesWritten = mem_tool.totalBytesWritten();

    pin.detach();
    return app;
}

std::vector<ProfiledApp>
profileSuite(const std::vector<const workloads::Workload *> &apps,
             const gpu::DeviceConfig &config,
             const gpu::TrialConfig &trial,
             sched::ThreadPool *pool_arg)
{
    sched::ThreadPool &pool =
        pool_arg ? *pool_arg : sched::ThreadPool::global();
    std::vector<ProfiledApp> results(apps.size());
    pool.parallelFor(
        apps.size(),
        [&](size_t i) {
            GT_ASSERT(apps[i], "null workload in profileSuite");
            results[i] = profileApp(*apps[i], config, trial);
        },
        1);
    return results;
}

TraceDatabase
replayTrial(const cfl::Recording &recording,
            const gpu::DeviceConfig &config,
            const gpu::TrialConfig &trial, TraceDbBackend backend)
{
    workloads::TemplateJit jit;
    ocl::GpuDriver driver(config, jit, trial);

    // Attach the same tool set profileApp() uses: instrumentation
    // load shifts kernels' relative SPI, so validation trials must
    // carry identical instrumentation or selections made on the
    // profiling trial are systematically biased on replays.
    gtpin::KernelProfileTool profile_tool;
    gtpin::BasicBlockCounterTool bb_tool;
    gtpin::OpcodeMixTool mix_tool;
    gtpin::MemBytesTool mem_tool;
    gtpin::GtPin pin;
    pin.addTool(&profile_tool);
    pin.addTool(&bb_tool);
    pin.addTool(&mix_tool);
    pin.addTool(&mem_tool);
    pin.attach(driver);

    ocl::ClRuntime runtime(driver);
    cfl::ApiTracer tracer;
    runtime.addObserver(&tracer);

    cfl::replay(recording, runtime);

    TraceDatabase db = TraceDatabase::build(
        profile_tool.takeProfiles(), tracer.kernelTimings(),
        tracer.callStream(), backend);
    pin.detach();
    return db;
}

} // namespace gt::core
