#include "core/detailed_validator.hh"

#include <cmath>
#include <tuple>

#include "common/logging.hh"

namespace gt::core
{

bool
DetailedValidator::PointKey::operator<(const PointKey &o) const
{
    return std::tie(numEus, threadsPerEu, fpuLanes, freqMhz, bwGBs,
                    latNs, overheadUs) <
           std::tie(o.numEus, o.threadsPerEu, o.fpuLanes, o.freqMhz,
                    o.bwGBs, o.latNs, o.overheadUs);
}

DetailedValidator::DetailedValidator(const ProfiledApp &app_,
                                     Backend backend_,
                                     sched::ThreadPool *pool_)
    : app(app_), backend(backend_), pool(pool_)
{
    // The functional stack replays on the profiling platform; the
    // machine layer is parameterized per design point instead, so
    // one replayed device serves every validate() call.
    gpu::TrialConfig trial;
    trial.noiseSigma = 0.0;
    driver = std::make_unique<ocl::GpuDriver>(
        gpu::DeviceConfig::hd4000(), jit, trial);
    runtime = std::make_unique<ocl::ClRuntime>(*driver);
    cfl::replay(app.recording, *runtime);
}

const DetailedValidator::PointCells &
DetailedValidator::cells(const DesignPoint &dp)
{
    const gpu::DeviceConfig &c = dp.config;
    PointKey key;
    key.numEus = c.numEus;
    key.threadsPerEu = c.threadsPerEu;
    key.fpuLanes = c.fpuLanesPerEu;
    key.freqMhz = dp.freqMhz > 0.0 ? dp.freqMhz : c.maxFreqMhz;
    key.bwGBs = c.memBandwidthGBs;
    key.latNs = c.memLatencyNs;
    key.overheadUs = c.dispatchOverheadUs;

    PointCells &pc = pointCache[key];
    if (pc.simulated)
        return pc;

    // Fast-forward: warm the checkpoint store serially (builds go
    // through the stateful executor). First design point pays one
    // functional pre-pass per distinct dispatch; later points hit
    // the memo table outright. Dispatches sharing a checkpoint also
    // share one replay cell — simulate() is a pure function of
    // (checkpoint, design point) — so repeated invocations of the
    // same kernel/shape/args cost one cycle-level walk, not many.
    const uint64_t num = app.db.numDispatches();
    std::map<const gpu::DetailedCheckpoint *, size_t> uniq;
    std::vector<const gpu::DetailedCheckpoint *> cps;
    std::vector<size_t> cell_of(num);
    for (size_t d = 0; d < num; ++d) {
        const gtpin::DispatchProfile &rec = app.db.profileAt(d);
        const gpu::DetailedCheckpoint *cp = &driver->checkpoint(
            rec.kernelId, rec.globalWorkSize, 16, rec.args);
        auto [it, fresh] = uniq.emplace(cp, cps.size());
        if (fresh)
            cps.push_back(cp);
        cell_of[d] = it->second;
    }

    // The machine layer: one replay cell per distinct dispatch,
    // partitioned across the pool under the parallel backend, then
    // scattered back to dispatch order.
    gpu::DetailedSimulator sim(dp.config, dp.freqMhz);
    std::vector<gpu::DetailedResult> cell_results =
        sim.simulateBatch(cps, backend, pool);
    cellCount += cps.size();
    pc.results.resize(num);
    for (size_t d = 0; d < num; ++d)
        pc.results[d] = cell_results[cell_of[d]];
    pc.simulated = true;
    return pc;
}

DetailedValidator::Report
DetailedValidator::validate(const SubsetSelection &sel,
                            const DesignPoint &dp)
{
    const uint64_t num = app.db.numDispatches();
    GT_ASSERT(num > 0, app.name, ": empty database");
    const PointCells &pc = cells(dp);

    Report r;
    // Whole-program detailed SPI, accumulated in dispatch order
    // (fixed order keeps serial and parallel backends bitwise
    // identical).
    uint64_t full_instrs = 0;
    double full_seconds = 0.0;
    for (size_t d = 0; d < num; ++d) {
        full_instrs += app.db.profileAt(d).instrs;
        full_seconds += pc.results[d].seconds;
        r.fullWalked += pc.results[d].simulatedInstrs;
    }
    r.fullSpi = full_seconds / (double)full_instrs;

    // Selection-only detailed simulation + extrapolation (Eq. 1's
    // ratio-weighted sum over per-interval SPI).
    for (size_t c = 0; c < sel.selected.size(); ++c) {
        const Interval &iv = sel.intervals[sel.selected[c]];
        GT_ASSERT(iv.lastDispatch < num, app.name,
                  ": selection does not match this database");
        uint64_t instrs = 0;
        double seconds = 0.0;
        for (uint64_t d = iv.firstDispatch; d <= iv.lastDispatch;
             ++d) {
            instrs += app.db.profileAt(d).instrs;
            seconds += pc.results[d].seconds;
            r.subsetWalked += pc.results[d].simulatedInstrs;
        }
        r.projectedSpi += sel.ratios[c] * (seconds / (double)instrs);
    }

    r.errorPct =
        std::abs(r.projectedSpi - r.fullSpi) / r.fullSpi * 100.0;
    return r;
}

uint64_t
DetailedValidator::checkpointBuilds() const
{
    return driver->checkpoints().builds();
}

} // namespace gt::core
