/**
 * @file
 * End-to-end profiling and validation pipelines.
 *
 * profileApp() performs the paper's single native profiling run:
 * the workload executes on the modeled GPU with GT-Pin attached
 * (selection tool + characterization tools) and the CoFluent-style
 * tracer and recorder observing the host API. One call yields
 * everything Sections IV and V need: the characterization numbers,
 * the joined trace database, and a replayable recording.
 *
 * replayTrial() re-executes a recording under different conditions —
 * another trial seed, another GPU frequency, another architecture
 * generation — producing a new trace database against which a
 * trial-1 selection can be validated (Fig. 8).
 */

#ifndef GT_CORE_PIPELINE_HH
#define GT_CORE_PIPELINE_HH

#include "cfl/recorder.hh"
#include "core/explorer.hh"
#include "sched/thread_pool.hh"
#include "workloads/workload.hh"

namespace gt::core
{

/** Everything Figs. 3 and 4 plot for one application. */
struct AppCharacterization
{
    // Fig. 3a: OpenCL API call breakdown.
    uint64_t totalApiCalls = 0;
    double fracKernel = 0.0;
    double fracSync = 0.0;
    double fracOther = 0.0;

    // Fig. 3b: static GPU program structures.
    uint64_t uniqueKernels = 0;
    uint64_t uniqueBlocks = 0;

    // Fig. 3c: dynamic GPU work.
    uint64_t kernelInvocations = 0;
    uint64_t blockExecs = 0;
    uint64_t dynInstrs = 0;

    // Fig. 4a/4b: instruction mixes and SIMD widths.
    std::array<uint64_t, isa::numOpClasses> classCounts{};
    std::array<uint64_t, 5> simdCounts{};

    // Fig. 4c: memory activity.
    uint64_t bytesRead = 0;
    uint64_t bytesWritten = 0;
};

/** The result of one profiled native run. All selection
 * post-processing (exploreConfigs, selectSubset, the fig5–fig8
 * studies) runs off the immutable `db`; callers doing repeated
 * extraction should build one core::FeatureEngine over it and pass
 * that engine through, so the dispatch profiles are lowered once. */
struct ProfiledApp
{
    std::string name;
    TraceDatabase db;
    cfl::Recording recording;
    AppCharacterization stats;
};

/**
 * Profile @p workload natively on @p config under @p trial with the
 * full GT-Pin tool set attached.
 */
ProfiledApp profileApp(
    const workloads::Workload &workload,
    const gpu::DeviceConfig &config = gpu::DeviceConfig::hd4000(),
    const gpu::TrialConfig &trial = {});

/**
 * Profile every workload in @p apps concurrently on @p pool (null =
 * the process-wide pool, whose size honors GT_THREADS).
 *
 * Each task builds a private driver / JIT / GT-Pin / tracer stack —
 * profileApp() shares no mutable state between calls — so
 * results[i] is bit-identical to a serial profileApp(*apps[i])
 * regardless of thread count, and results are returned in input
 * order.
 */
std::vector<ProfiledApp> profileSuite(
    const std::vector<const workloads::Workload *> &apps,
    const gpu::DeviceConfig &config = gpu::DeviceConfig::hd4000(),
    const gpu::TrialConfig &trial = {},
    sched::ThreadPool *pool = nullptr);

/**
 * Replay @p recording on @p config under @p trial with the GT-Pin
 * selection tool attached, returning the new trial's database built
 * on @p backend (defaults to the process-wide GT_TRACEDB choice;
 * the differential tests pin it to compare backends on one replay).
 */
TraceDatabase replayTrial(const cfl::Recording &recording,
                          const gpu::DeviceConfig &config,
                          const gpu::TrialConfig &trial,
                          TraceDbBackend backend =
                              defaultTraceDbBackend());

} // namespace gt::core

#endif // GT_CORE_PIPELINE_HH
