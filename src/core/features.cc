#include "core/features.hh"

#include <cmath>

#include "common/logging.hh"

namespace gt::core
{

const char *
featureKindName(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::KN: return "KN";
      case FeatureKind::KN_ARGS: return "KN-ARGS";
      case FeatureKind::KN_GWS: return "KN-GWS";
      case FeatureKind::KN_ARGS_GWS: return "KN-ARGS-GWS";
      case FeatureKind::KN_RW: return "KN-RW";
      case FeatureKind::BB: return "BB";
      case FeatureKind::BB_R: return "BB-R";
      case FeatureKind::BB_W: return "BB-W";
      case FeatureKind::BB_R_W: return "BB-R-W";
      case FeatureKind::BB_RpW: return "BB-(R+W)";
      default:
        panic("invalid feature kind ", (int)kind);
    }
}

bool
isBlockFeature(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::BB:
      case FeatureKind::BB_R:
      case FeatureKind::BB_W:
      case FeatureKind::BB_R_W:
      case FeatureKind::BB_RpW:
        return true;
      default:
        return false;
    }
}

bool
hasMemoryFeature(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::KN_RW:
      case FeatureKind::BB_R:
      case FeatureKind::BB_W:
      case FeatureKind::BB_R_W:
      case FeatureKind::BB_RpW:
        return true;
      default:
        return false;
    }
}

void
FeatureVector::add(uint64_t key, double value)
{
    if (value != 0.0)
        data[key] += value;
}

double
FeatureVector::l2norm() const
{
    double acc = 0.0;
    for (const auto &[key, v] : data)
        acc += v * v;
    return std::sqrt(acc);
}

double
FeatureVector::sum() const
{
    double acc = 0.0;
    for (const auto &[key, v] : data)
        acc += v;
    return acc;
}

void
FeatureVector::normalize()
{
    double total = sum();
    if (total == 0.0)
        return;
    for (auto &[key, v] : data)
        v /= total;
}

double
FeatureVector::dot(const FeatureVector &other) const
{
    const auto &a = data;
    const auto &b = other.data;
    double acc = 0.0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (ia->first < ib->first) {
            ++ia;
        } else if (ib->first < ia->first) {
            ++ib;
        } else {
            acc += ia->second * ib->second;
            ++ia;
            ++ib;
        }
    }
    return acc;
}

namespace
{

/** Stable 64-bit mixing of event-identity components. */
uint64_t
mixKey(uint64_t a, uint64_t b, uint64_t c = 0, uint64_t d = 0)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t x : {a, b, c, d}) {
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    }
    return h;
}

// Tag values distinguishing the dimension families within a key.
constexpr uint64_t tagBase = 1;
constexpr uint64_t tagRead = 2;
constexpr uint64_t tagWrite = 3;
constexpr uint64_t tagReadWrite = 4;

} // anonymous namespace

FeatureVector
extractFeatures(const TraceDatabase &db, const Interval &interval,
                FeatureKind kind)
{
    const auto &dispatches = db.dispatches();
    GT_ASSERT(interval.lastDispatch < dispatches.size(),
              "interval out of range");

    FeatureVector vec;
    for (uint64_t i = interval.firstDispatch;
         i <= interval.lastDispatch; ++i) {
        const gtpin::DispatchProfile &p = dispatches[i].profile;

        if (!isBlockFeature(kind)) {
            uint64_t args = 0, gws = 0;
            switch (kind) {
              case FeatureKind::KN_ARGS:
                args = p.argsHash;
                break;
              case FeatureKind::KN_GWS:
                gws = p.globalWorkSize;
                break;
              case FeatureKind::KN_ARGS_GWS:
                args = p.argsHash;
                gws = p.globalWorkSize;
                break;
              default:
                break;
            }
            uint64_t base = mixKey(p.kernelId, args, gws, tagBase);
            // Instruction-count weighting: the kernel event counts
            // for the instructions it executed.
            vec.add(base, (double)p.instrs);
            if (kind == FeatureKind::KN_RW) {
                vec.add(mixKey(p.kernelId, 0, 0, tagRead),
                        (double)p.bytesRead);
                vec.add(mixKey(p.kernelId, 0, 0, tagWrite),
                        (double)p.bytesWritten);
            }
            continue;
        }

        // Basic-block families.
        for (size_t b = 0; b < p.blockCounts.size(); ++b) {
            uint64_t count = p.blockCounts[b];
            if (count == 0)
                continue;
            double weighted = (double)count * p.blockLens[b];
            vec.add(mixKey(p.kernelId, b, 0, tagBase), weighted);

            double read =
                (double)count * p.blockReadBytes[b];
            double written =
                (double)count * p.blockWriteBytes[b];
            switch (kind) {
              case FeatureKind::BB_R:
                vec.add(mixKey(p.kernelId, b, 0, tagRead), read);
                break;
              case FeatureKind::BB_W:
                vec.add(mixKey(p.kernelId, b, 0, tagWrite), written);
                break;
              case FeatureKind::BB_R_W:
                vec.add(mixKey(p.kernelId, b, 0, tagRead), read);
                vec.add(mixKey(p.kernelId, b, 0, tagWrite), written);
                break;
              case FeatureKind::BB_RpW:
                vec.add(mixKey(p.kernelId, b, 0, tagReadWrite),
                        read + written);
                break;
              default:
                break;
            }
        }
    }
    return vec;
}

std::vector<FeatureVector>
extractAllFeatures(const TraceDatabase &db,
                   const std::vector<Interval> &intervals,
                   FeatureKind kind)
{
    std::vector<FeatureVector> vectors;
    vectors.reserve(intervals.size());
    for (const Interval &iv : intervals) {
        FeatureVector vec = extractFeatures(db, iv, kind);
        vec.normalize();
        vectors.push_back(std::move(vec));
    }
    return vectors;
}

} // namespace gt::core
