#include "core/features.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "core/feature_engine.hh"

namespace gt::core
{

const char *
featureKindName(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::KN: return "KN";
      case FeatureKind::KN_ARGS: return "KN-ARGS";
      case FeatureKind::KN_GWS: return "KN-GWS";
      case FeatureKind::KN_ARGS_GWS: return "KN-ARGS-GWS";
      case FeatureKind::KN_RW: return "KN-RW";
      case FeatureKind::BB: return "BB";
      case FeatureKind::BB_R: return "BB-R";
      case FeatureKind::BB_W: return "BB-W";
      case FeatureKind::BB_R_W: return "BB-R-W";
      case FeatureKind::BB_RpW: return "BB-(R+W)";
      default:
        panic("invalid feature kind ", (int)kind);
    }
}

bool
isBlockFeature(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::BB:
      case FeatureKind::BB_R:
      case FeatureKind::BB_W:
      case FeatureKind::BB_R_W:
      case FeatureKind::BB_RpW:
        return true;
      default:
        return false;
    }
}

bool
hasMemoryFeature(FeatureKind kind)
{
    switch (kind) {
      case FeatureKind::KN_RW:
      case FeatureKind::BB_R:
      case FeatureKind::BB_W:
      case FeatureKind::BB_R_W:
      case FeatureKind::BB_RpW:
        return true;
      default:
        return false;
    }
}

uint64_t
detail::mixFeatureKey(uint64_t a, uint64_t b, uint64_t c, uint64_t d)
{
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (uint64_t x : {a, b, c, d}) {
        h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
    }
    return h;
}

void
FeatureVector::add(uint64_t key, double value)
{
    if (value == 0.0)
        return;
    auto it = std::lower_bound(ks.begin(), ks.end(), key);
    if (it != ks.end() && *it == key) {
        vs[(size_t)(it - ks.begin())] += value;
    } else {
        vs.insert(vs.begin() + (it - ks.begin()), value);
        ks.insert(it, key);
    }
}

FeatureVector
FeatureVector::fromSorted(std::vector<uint64_t> keys,
                          std::vector<double> values)
{
    GT_ASSERT(keys.size() == values.size(),
              "feature key/value column length mismatch");
    GT_ASSERT(std::is_sorted(keys.begin(), keys.end()) &&
                  std::adjacent_find(keys.begin(), keys.end()) ==
                      keys.end(),
              "feature keys must be strictly ascending");
    FeatureVector vec;
    vec.ks = std::move(keys);
    vec.vs = std::move(values);
    return vec;
}

double
FeatureVector::l2norm() const
{
    double acc = 0.0;
    for (double v : vs)
        acc += v * v;
    return std::sqrt(acc);
}

double
FeatureVector::sum() const
{
    double acc = 0.0;
    for (double v : vs)
        acc += v;
    return acc;
}

void
FeatureVector::normalize()
{
    double total = sum();
    if (total == 0.0)
        return;
    for (double &v : vs)
        v /= total;
}

double
FeatureVector::dot(const FeatureVector &other) const
{
    // Merge over the two ascending key columns.
    double acc = 0.0;
    size_t ia = 0, ib = 0;
    while (ia < ks.size() && ib < other.ks.size()) {
        if (ks[ia] < other.ks[ib]) {
            ++ia;
        } else if (other.ks[ib] < ks[ia]) {
            ++ib;
        } else {
            acc += vs[ia] * other.vs[ib];
            ++ia;
            ++ib;
        }
    }
    return acc;
}

FeatureVector
extractFeaturesMap(const TraceDatabase &db, const Interval &interval,
                   FeatureKind kind)
{
    using detail::mixFeatureKey;
    using detail::tagBase;
    using detail::tagRead;
    using detail::tagReadWrite;
    using detail::tagWrite;

    GT_ASSERT(interval.lastDispatch < db.numDispatches(),
              "interval out of range");

    std::map<uint64_t, double> data;
    auto add = [&](uint64_t key, double value) {
        if (value != 0.0)
            data[key] += value;
    };

    for (uint64_t i = interval.firstDispatch;
         i <= interval.lastDispatch; ++i) {
        const gtpin::DispatchProfile &p = db.profileAt(i);

        if (!isBlockFeature(kind)) {
            uint64_t args = 0, gws = 0;
            switch (kind) {
              case FeatureKind::KN_ARGS:
                args = p.argsHash;
                break;
              case FeatureKind::KN_GWS:
                gws = p.globalWorkSize;
                break;
              case FeatureKind::KN_ARGS_GWS:
                args = p.argsHash;
                gws = p.globalWorkSize;
                break;
              default:
                break;
            }
            uint64_t base = mixFeatureKey(p.kernelId, args, gws,
                                          tagBase);
            // Instruction-count weighting: the kernel event counts
            // for the instructions it executed.
            add(base, (double)p.instrs);
            if (kind == FeatureKind::KN_RW) {
                add(mixFeatureKey(p.kernelId, 0, 0, tagRead),
                    (double)p.bytesRead);
                add(mixFeatureKey(p.kernelId, 0, 0, tagWrite),
                    (double)p.bytesWritten);
            }
            continue;
        }

        // Basic-block families.
        for (size_t b = 0; b < p.blockCounts.size(); ++b) {
            uint64_t count = p.blockCounts[b];
            if (count == 0)
                continue;
            double weighted = (double)count * p.blockLens[b];
            add(mixFeatureKey(p.kernelId, b, 0, tagBase), weighted);

            double read =
                (double)count * p.blockReadBytes[b];
            double written =
                (double)count * p.blockWriteBytes[b];
            switch (kind) {
              case FeatureKind::BB_R:
                add(mixFeatureKey(p.kernelId, b, 0, tagRead), read);
                break;
              case FeatureKind::BB_W:
                add(mixFeatureKey(p.kernelId, b, 0, tagWrite),
                    written);
                break;
              case FeatureKind::BB_R_W:
                add(mixFeatureKey(p.kernelId, b, 0, tagRead), read);
                add(mixFeatureKey(p.kernelId, b, 0, tagWrite),
                    written);
                break;
              case FeatureKind::BB_RpW:
                add(mixFeatureKey(p.kernelId, b, 0, tagReadWrite),
                    read + written);
                break;
              default:
                break;
            }
        }
    }

    std::vector<uint64_t> keys;
    std::vector<double> values;
    keys.reserve(data.size());
    values.reserve(data.size());
    for (const auto &[key, v] : data) {
        keys.push_back(key);
        values.push_back(v);
    }
    return FeatureVector::fromSorted(std::move(keys),
                                     std::move(values));
}

FeatureVector
extractFeatures(const TraceDatabase &db, const Interval &interval,
                FeatureKind kind)
{
    if (defaultFeatureBackend() == FeatureBackend::Map)
        return extractFeaturesMap(db, interval, kind);
    FeatureEngine engine(db, FeatureBackend::Flat);
    return engine.extract(interval, kind);
}

std::vector<FeatureVector>
extractAllFeatures(const TraceDatabase &db,
                   const std::vector<Interval> &intervals,
                   FeatureKind kind)
{
    FeatureEngine engine(db);
    return engine.extractAll(intervals, kind);
}

} // namespace gt::core
