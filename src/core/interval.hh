/**
 * @file
 * Interval construction (the paper's Table II).
 *
 * The paper explores three ways of dividing a GPU program trace into
 * candidate simulation intervals, all respecting the hardware
 * designers' constraints that an interval is at least one whole
 * kernel invocation and never spans a synchronization call:
 *
 *   - SyncBounded: split at every OpenCL synchronization call
 *     (largest intervals);
 *   - ApproxInstructions: subdivide sync epochs into roughly
 *     N-instruction chunks without splitting a kernel invocation
 *     ("approximately 100M instructions" in the paper — N scales
 *     with our scaled-down workloads);
 *   - SingleKernel: every kernel invocation is its own interval
 *     (smallest intervals).
 */

#ifndef GT_CORE_INTERVAL_HH
#define GT_CORE_INTERVAL_HH

#include "core/trace_db.hh"

namespace gt::core
{

/** Table II's three interval-division schemes. */
enum class IntervalScheme : uint8_t
{
    SyncBounded,
    ApproxInstructions,
    SingleKernel,
};

constexpr int numIntervalSchemes = 3;

/** @return display name, e.g. "sync". */
const char *intervalSchemeName(IntervalScheme scheme);

/** A contiguous run of dispatches [first, last]. */
struct Interval
{
    uint64_t firstDispatch = 0;  //!< index into db.dispatches()
    uint64_t lastDispatch = 0;   //!< inclusive
    uint64_t instrs = 0;         //!< dynamic instructions inside
    double seconds = 0.0;        //!< summed kernel time inside

    uint64_t
    numDispatches() const
    {
        return lastDispatch - firstDispatch + 1;
    }

    /** Interval seconds-per-instruction. */
    double spi() const;
};

/**
 * Divide @p db into intervals under @p scheme.
 *
 * @param target_instrs for ApproxInstructions: the chunk size. The
 *        paper uses 100M for applications averaging 308 B
 *        instructions; pass roughly totalInstrs()/1000 to match that
 *        proportion on scaled workloads (0 = that default).
 *
 * Postconditions (verified by the property tests): intervals
 * partition the dispatch sequence, never span a sync epoch, and
 * each contains at least one whole kernel invocation.
 */
std::vector<Interval> buildIntervals(const TraceDatabase &db,
                                     IntervalScheme scheme,
                                     uint64_t target_instrs = 0);

/** Min/avg/max interval statistics for Table II. */
struct IntervalStats
{
    uint64_t count = 0;
    uint64_t minInstrs = 0;
    uint64_t maxInstrs = 0;
    double avgInstrs = 0.0;
};

IntervalStats intervalStats(const std::vector<Interval> &intervals);

} // namespace gt::core

#endif // GT_CORE_INTERVAL_HH
