/**
 * @file
 * Interval construction (the paper's Table II).
 *
 * The paper explores three ways of dividing a GPU program trace into
 * candidate simulation intervals, all respecting the hardware
 * designers' constraints that an interval is at least one whole
 * kernel invocation and never spans a synchronization call:
 *
 *   - SyncBounded: split at every OpenCL synchronization call
 *     (largest intervals);
 *   - ApproxInstructions: subdivide sync epochs into roughly
 *     N-instruction chunks without splitting a kernel invocation
 *     ("approximately 100M instructions" in the paper — N scales
 *     with our scaled-down workloads);
 *   - SingleKernel: every kernel invocation is its own interval
 *     (smallest intervals).
 */

#ifndef GT_CORE_INTERVAL_HH
#define GT_CORE_INTERVAL_HH

#include "core/trace_db.hh"

namespace gt::core
{

/** Table II's three interval-division schemes. */
enum class IntervalScheme : uint8_t
{
    SyncBounded,
    ApproxInstructions,
    SingleKernel,
};

constexpr int numIntervalSchemes = 3;

/** @return display name, e.g. "sync". */
const char *intervalSchemeName(IntervalScheme scheme);

/** A contiguous run of dispatches [first, last]. */
struct Interval
{
    uint64_t firstDispatch = 0;  //!< index into db.dispatches()
    uint64_t lastDispatch = 0;   //!< inclusive
    uint64_t instrs = 0;         //!< dynamic instructions inside
    double seconds = 0.0;        //!< summed kernel time inside

    uint64_t
    numDispatches() const
    {
        return lastDispatch - firstDispatch + 1;
    }

    /** Interval seconds-per-instruction. */
    double spi() const;
};

/**
 * Divide @p db into intervals under @p scheme.
 *
 * @param target_instrs for ApproxInstructions: the chunk size. The
 *        paper uses 100M for applications averaging 308 B
 *        instructions; pass roughly totalInstrs()/1000 to match that
 *        proportion on scaled workloads (0 = that default).
 *
 * Postconditions (verified by the property tests): intervals
 * partition the dispatch sequence, never span a sync epoch, and
 * each contains at least one whole kernel invocation.
 */
std::vector<Interval> buildIntervals(const TraceDatabase &db,
                                     IntervalScheme scheme,
                                     uint64_t target_instrs = 0);

/**
 * Streaming interval division: the same boundary logic as
 * buildIntervals(), maintained one dispatch at a time as a replay
 * drains. buildIntervals() is implemented on top of this class (feed
 * every dispatch, snapshot once), so the incremental and batch paths
 * cannot drift — the differential tests pin the equivalence across
 * schemes, targets, and arrival granularities.
 *
 * Closed intervals are final the moment the boundary passes them, so
 * a snapshot() costs one vector copy plus closing the open tail —
 * O(intervals), not O(dispatches). The exception is
 * ApproxInstructions with target_instrs == 0: there the chunk size
 * is derived from the *final* total instruction count, which a
 * stream cannot know, so snapshot() re-divides from retained
 * per-dispatch columns (still bitwise equal to the batch result at
 * every prefix).
 */
class IncrementalIntervals
{
  public:
    explicit IncrementalIntervals(IntervalScheme scheme,
                                  uint64_t target_instrs = 0);

    /** Feed the next dispatch in order: its sync epoch, dynamic
     * instructions, and kernel seconds. */
    void append(uint64_t sync_epoch, uint64_t instrs, double seconds);

    /**
     * The interval division over everything appended so far —
     * bitwise identical (boundaries, instruction counts, seconds) to
     * buildIntervals() on a database sealed at this prefix.
     */
    std::vector<Interval> snapshot() const;

    uint64_t numDispatches() const { return n; }

    IntervalScheme scheme() const { return kind; }

    /**
     * Intervals already closed by a boundary. These are final — a
     * snapshot() at any later prefix returns them unchanged — which
     * is what lets the incremental selection path keep per-interval
     * points and the unique-value index for this prefix across
     * refreshes. Always 0 for ApproxInstructions with target 0,
     * where boundaries are only fixed by the final total (the
     * snapshot rescan); consumers must not treat any prefix as
     * stable there.
     */
    size_t
    numCompleted() const
    {
        if (kind == IntervalScheme::ApproxInstructions && target == 0)
            return 0;
        return completed.size();
    }

    /** Approximate resident bytes: closed intervals plus the
     * retained rescan columns (the dominant term for approx with
     * target 0). */
    uint64_t
    memoryBytes() const
    {
        return sizeof(*this) + completed.size() * sizeof(Interval) +
               epochCol.size() * sizeof(uint64_t) +
               instrCol.size() * sizeof(uint64_t) +
               secondsCol.size() * sizeof(double);
    }

  private:
    std::vector<Interval> rescan(uint64_t target) const;

    IntervalScheme kind;
    uint64_t target;  //!< 0 = derive from the running total (approx)
    uint64_t n = 0;
    uint64_t instrTotal = 0;

    std::vector<Interval> completed;
    Interval cur;
    uint64_t curEpoch = 0;
    bool open = false;

    /** Retained columns for the target-derivation rescan; kept only
     * when the scheme needs them (approx with target 0). */
    std::vector<uint64_t> epochCol;
    std::vector<uint64_t> instrCol;
    std::vector<double> secondsCol;
};

/** Min/avg/max interval statistics for Table II. */
struct IntervalStats
{
    uint64_t count = 0;
    uint64_t minInstrs = 0;
    uint64_t maxInstrs = 0;
    double avgInstrs = 0.0;
};

IntervalStats intervalStats(const std::vector<Interval> &intervals);

} // namespace gt::core

#endif // GT_CORE_INTERVAL_HH
