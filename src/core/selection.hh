/**
 * @file
 * Subset selection and SPI projection (the paper's Section V-B/V-C
 * machinery and Eq. 1).
 *
 * A SubsetSelection is the end product architects consume: a handful
 * of kernel-invocation intervals to simulate in detail plus a
 * representation ratio for each, from which whole-program
 * performance is extrapolated as the ratio-weighted sum of
 * per-interval SPI. Validation compares that projection against the
 * measured whole-program SPI:
 *
 *   Error = |measured SPI - projected SPI| / measured SPI * 100%.
 *
 * Because record/replay fixes the dispatch order, a selection built
 * from one profiled trial can be projected onto any later trial,
 * frequency, or architecture generation by re-reading the same
 * dispatch ranges in the new trial's database — exactly the paper's
 * Fig. 8 validation procedure.
 */

#ifndef GT_CORE_SELECTION_HH
#define GT_CORE_SELECTION_HH

#include "core/simpoint.hh"

namespace gt::core
{

class FeatureEngine;

/** A chosen simulation subset for one application. */
struct SubsetSelection
{
    IntervalScheme scheme = IntervalScheme::SyncBounded;
    FeatureKind feature = FeatureKind::BB;

    /** The full interval division the selection was made from. */
    std::vector<Interval> intervals;

    /** Indices (into intervals) of the selected representatives. */
    std::vector<uint64_t> selected;

    /** Representation ratio per selected interval (sums to 1). */
    std::vector<double> ratios;

    uint64_t selectedInstrs = 0;
    uint64_t totalInstrs = 0;

    /**
     * K-means assignment work behind this selection (all candidate-k
     * runs of the BIC sweep; see Clustering::stats). Lets callers
     * report the pruned backend's skip rate.
     */
    simpoint::KMeansStats clusterStats;

    /** Fraction of program instructions that must be simulated. */
    double selectionFraction() const;

    /** Simulation speedup = 1 / selectionFraction. */
    double speedup() const;
};

/**
 * Run the full selection pipeline on one profiled application:
 * build intervals under @p scheme, extract @p feature vectors,
 * cluster with SimPoint, and return representatives with ratios.
 *
 * @param target_instrs ApproxInstructions chunk size (0 = default,
 *        see buildIntervals()).
 * @param engine shared feature engine to extract through; must have
 *        been built over @p db. Null builds a private engine — fine
 *        for one-off calls, wasteful in a fan-out (the explorer
 *        passes one engine to all 30 configurations). The engine's
 *        memoized projection table is also handed to the clusterer.
 */
SubsetSelection
selectSubset(const TraceDatabase &db, IntervalScheme scheme,
             FeatureKind feature,
             const simpoint::ClusterOptions &options = {},
             uint64_t target_instrs = 0,
             const FeatureEngine *engine = nullptr);

/**
 * The selection tail shared by selectSubset() and the streaming
 * service's incremental refresh: cluster already-projected interval
 * @p points (one per interval, in interval order) and assemble the
 * SubsetSelection. Having exactly one implementation of this tail is
 * what makes an incremental refresh — intervals and points built as
 * dispatches arrived — bitwise identical to a one-shot selectSubset()
 * over the final database: both paths feed the same points, weights,
 * and options through the same code.
 *
 * @param total_instrs whole-program instruction total the selection
 *        fraction is measured against (db.totalInstrs() in the batch
 *        path).
 */
SubsetSelection
selectFromProjected(IntervalScheme scheme, FeatureKind feature,
                    std::vector<Interval> intervals,
                    const std::vector<simpoint::Point> &points,
                    uint64_t total_instrs,
                    const simpoint::ClusterOptions &options = {});

/**
 * Projected whole-program SPI of @p selection evaluated on @p db —
 * which may be the profiling trial itself (self-validation) or a
 * replayed trial on other hardware (cross validation). @p db must
 * have the same dispatch count as the trial the selection was built
 * from.
 */
double projectedSpi(const TraceDatabase &db,
                    const SubsetSelection &selection);

/** Eq. 1: percentage error of the projection against @p db. */
double selectionErrorPct(const TraceDatabase &db,
                         const SubsetSelection &selection);

} // namespace gt::core

#endif // GT_CORE_SELECTION_HH
