#include "core/simpoint.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace gt::core::simpoint
{

namespace
{

/**
 * Chunk size for every floating-point reduction in this file. The
 * chunk layout — and therefore the FP combination tree — is a
 * function of the population size alone, so results are bit-identical
 * for any thread count (including the 1-thread serial fallback).
 */
constexpr size_t reduceGrain = 256;

/** Deterministic projection coefficient for (key, dim) in [-1, 1]. */
double
projectionCoeff(uint64_t key, int dim)
{
    uint64_t h = key ^ (0x9e3779b97f4a7c15ULL * (uint64_t)(dim + 1));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return ((double)(h >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}

double
dist2(const Point &a, const Point &b)
{
    double acc = 0.0;
    for (int d = 0; d < projectedDims; ++d) {
        double diff = a[d] - b[d];
        acc += diff * diff;
    }
    return acc;
}

struct KMeansResult
{
    std::vector<int> assignment;
    std::vector<Point> centroids;
    double distortion = 0.0;  //!< weighted sum of squared distances
};

/** Weighted k-means with k-means++ seeding. */
KMeansResult
kmeans(const std::vector<Point> &points,
       const std::vector<double> &weights, int k, int max_iters,
       Rng &rng, sched::ThreadPool &pool)
{
    size_t n = points.size();
    KMeansResult result;
    result.centroids.reserve((size_t)k);

    // k-means++ initialization (weighted). The distance refresh and
    // its weighted total parallelize per chunk; the draw itself stays
    // sequential on the per-run RNG stream. The per-chunk partial
    // sums the reduction already produces are kept and reused to
    // locate the weighted draw, so only the one chunk containing the
    // crossing is rescanned instead of the whole population. The
    // chunk layout is a function of n alone, so both the total and
    // the picked index are bit-identical at every thread count.
    std::vector<double> min_d2(n,
                               std::numeric_limits<double>::max());
    size_t num_chunks = (n + reduceGrain - 1) / reduceGrain;
    std::vector<double> partials(num_chunks, 0.0);
    size_t first = rng.nextBounded(n);
    result.centroids.push_back(points[first]);
    while (result.centroids.size() < (size_t)k) {
        const Point &latest = result.centroids.back();
        pool.parallelFor(
            num_chunks,
            [&](size_t c) {
                size_t begin = c * reduceGrain;
                size_t end = std::min(n, begin + reduceGrain);
                double part = 0.0;
                for (size_t i = begin; i < end; ++i) {
                    min_d2[i] = std::min(min_d2[i],
                                         dist2(points[i], latest));
                    part += min_d2[i] * weights[i];
                }
                partials[c] = part;
            },
            1);
        // Combine in ascending chunk order, exactly as
        // parallelReduce would.
        double total = 0.0;
        for (double part : partials)
            total += part;
        if (total <= 0.0) {
            // All points coincide with chosen centers; duplicate.
            result.centroids.push_back(points[rng.nextBounded(n)]);
            continue;
        }
        double pick = rng.nextDouble() * total;
        // Walk the chunk partials to the chunk whose cumulative mass
        // reaches the draw, then rescan only that chunk. The
        // cumulative base advances by whole-chunk partials, so the
        // crossing test sees one fixed accumulation tree; if the
        // element-order rescan falls short of the partial-predicted
        // crossing by rounding, the walk continues into the next
        // chunk, still deterministically.
        double base = 0.0;
        size_t chosen = n - 1;
        bool found = false;
        for (size_t c = 0; c < num_chunks && !found; ++c) {
            double after = base + partials[c];
            if (after >= pick || c + 1 == num_chunks) {
                size_t begin = c * reduceGrain;
                size_t end = std::min(n, begin + reduceGrain);
                double acc = base;
                for (size_t i = begin; i < end; ++i) {
                    acc += min_d2[i] * weights[i];
                    if (acc >= pick) {
                        chosen = i;
                        found = true;
                        break;
                    }
                }
            }
            base = after;
        }
        result.centroids.push_back(points[chosen]);
    }

    /** Per-cluster weighted sums, reduced chunk-by-chunk. */
    struct Accum
    {
        std::vector<Point> sums;
        std::vector<double> wsum;
    };

    result.assignment.assign(n, 0);
    for (int iter = 0; iter < max_iters; ++iter) {
        // Assign: each point independently picks its nearest
        // centroid, so any chunking yields identical assignments.
        // The convergence flag only ever goes false -> true, making
        // the write order irrelevant.
        std::atomic<bool> changed{false};
        pool.parallelFor(n, [&](size_t i) {
            int best = 0;
            double best_d = dist2(points[i], result.centroids[0]);
            for (int c = 1; c < k; ++c) {
                double d = dist2(points[i], result.centroids[c]);
                if (d < best_d) {
                    best_d = d;
                    best = c;
                }
            }
            if (result.assignment[i] != best) {
                result.assignment[i] = best;
                changed.store(true, std::memory_order_relaxed);
            }
        });
        if (!changed.load() && iter > 0)
            break;
        // Update: per-chunk partial centroid sums combined in chunk
        // order (deterministic FP tree; see reduceGrain).
        Accum identity;
        identity.sums.assign((size_t)k, Point{});
        identity.wsum.assign((size_t)k, 0.0);
        Accum acc = pool.parallelReduce<Accum>(
            n, reduceGrain, identity,
            [&](size_t begin, size_t end) {
                Accum part;
                part.sums.assign((size_t)k, Point{});
                part.wsum.assign((size_t)k, 0.0);
                for (size_t i = begin; i < end; ++i) {
                    int c = result.assignment[i];
                    part.wsum[(size_t)c] += weights[i];
                    for (int d = 0; d < projectedDims; ++d)
                        part.sums[(size_t)c][d] +=
                            points[i][d] * weights[i];
                }
                return part;
            },
            [k](Accum &&a, Accum &&b) {
                for (int c = 0; c < k; ++c) {
                    a.wsum[(size_t)c] += b.wsum[(size_t)c];
                    for (int d = 0; d < projectedDims; ++d)
                        a.sums[(size_t)c][d] += b.sums[(size_t)c][d];
                }
                return std::move(a);
            });
        for (int c = 0; c < k; ++c) {
            if (acc.wsum[(size_t)c] > 0.0) {
                for (int d = 0; d < projectedDims; ++d)
                    result.centroids[(size_t)c][d] =
                        acc.sums[(size_t)c][d] / acc.wsum[(size_t)c];
            } else {
                // Re-seed an empty cluster on a random point.
                result.centroids[(size_t)c] =
                    points[rng.nextBounded(n)];
            }
        }
    }

    result.distortion = pool.parallelReduce<double>(
        n, reduceGrain, 0.0,
        [&](size_t begin, size_t end) {
            double part = 0.0;
            for (size_t i = begin; i < end; ++i) {
                part += weights[i] *
                    dist2(points[i],
                          result
                              .centroids[(size_t)result.assignment[i]]);
            }
            return part;
        },
        [](double &&a, double &&b) { return a + b; });
    return result;
}

/**
 * Spherical-Gaussian BIC of a clustering (the X-means formulation
 * SimPoint uses), computed over weighted points.
 */
double
bicScore(const KMeansResult &km, const std::vector<double> &weights,
         int k)
{
    double total_w = 0.0;
    std::vector<double> cluster_w((size_t)k, 0.0);
    for (size_t i = 0; i < weights.size(); ++i) {
        total_w += weights[i];
        cluster_w[(size_t)km.assignment[i]] += weights[i];
    }
    double d = projectedDims;
    // Pooled variance estimate; floor avoids log(0) on perfect fits.
    double denom = std::max(total_w - (double)k, 1.0);
    double sigma2 = std::max(km.distortion / (denom * d), 1e-12);

    double ll = 0.0;
    for (int c = 0; c < k; ++c) {
        double rc = cluster_w[(size_t)c];
        if (rc <= 0.0)
            continue;
        ll += rc * std::log(rc / total_w);
    }
    ll -= total_w * d / 2.0 * std::log(2.0 * M_PI * sigma2);
    ll -= (total_w - (double)k) * d / 2.0;

    double params = (double)k * (d + 1.0);
    return ll - params / 2.0 * std::log(total_w);
}

} // anonymous namespace

ProjectionTable
ProjectionTable::build(const std::vector<uint64_t> &keys)
{
    GT_ASSERT(std::is_sorted(keys.begin(), keys.end()),
              "projection table keys must be ascending");
    ProjectionTable table;
    table.keyIndex = keys;
    table.rows.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
        for (int d = 0; d < projectedDims; ++d)
            table.rows[i][d] = projectionCoeff(keys[i], d);
    }
    return table;
}

const Point *
ProjectionTable::row(uint64_t key) const
{
    auto it = std::lower_bound(keyIndex.begin(), keyIndex.end(), key);
    if (it == keyIndex.end() || *it != key)
        return nullptr;
    return &rows[(size_t)(it - keyIndex.begin())];
}

Point
project(const FeatureVector &vec, const ProjectionTable *table)
{
    Point p{};
    const std::vector<uint64_t> &keys = vec.keys();
    const std::vector<double> &values = vec.values();
    for (size_t i = 0; i < keys.size(); ++i) {
        if (table) {
            const Point *row = table->row(keys[i]);
            GT_ASSERT(row, "projection table is missing key ",
                      keys[i]);
            for (int d = 0; d < projectedDims; ++d)
                p[d] += values[i] * (*row)[d];
        } else {
            for (int d = 0; d < projectedDims; ++d)
                p[d] += values[i] * projectionCoeff(keys[i], d);
        }
    }
    return p;
}

Clustering
cluster(const std::vector<FeatureVector> &vectors,
        const std::vector<double> &weights,
        const ClusterOptions &options)
{
    GT_ASSERT(!vectors.empty(), "clustering an empty population");
    GT_ASSERT(vectors.size() == weights.size(),
              "vectors/weights size mismatch");

    sched::ThreadPool &pool =
        options.pool ? *options.pool : sched::ThreadPool::global();

    size_t n = vectors.size();
    std::vector<Point> points(n);
    pool.parallelFor(n, [&](size_t i) {
        points[i] = project(vectors[i], options.projection);
    });
    return clusterPoints(points, weights, options);
}

Clustering
clusterPoints(const std::vector<Point> &points,
              const std::vector<double> &weights,
              const ClusterOptions &options)
{
    GT_ASSERT(!points.empty(), "clustering an empty population");
    GT_ASSERT(points.size() == weights.size(),
              "points/weights size mismatch");
    for (double w : weights)
        GT_ASSERT(w > 0.0, "non-positive interval weight");

    sched::ThreadPool &pool =
        options.pool ? *options.pool : sched::ThreadPool::global();

    size_t n = points.size();
    int max_k = std::min<int>(options.maxK, (int)n);
    Rng rng(options.seed);

    // Run k-means for every candidate k and score with BIC. Each
    // candidate draws from split(k) of the seed stream, so the runs
    // are independent tasks whose results cannot depend on execution
    // order; the nested per-point loops share the same pool
    // cooperatively.
    std::vector<KMeansResult> runs((size_t)max_k);
    std::vector<double> bics((size_t)max_k);
    pool.parallelFor(
        (size_t)max_k,
        [&](size_t idx) {
            int k = (int)idx + 1;
            Rng sub = rng.split((uint64_t)k);
            runs[idx] = kmeans(points, weights, k, options.maxIters,
                               sub, pool);
            bics[idx] = bicScore(runs[idx], weights, k);
        },
        1);

    // SimPoint's acceptance: the smallest k whose BIC reaches the
    // threshold fraction of the best BIC's range above the worst.
    double best = *std::max_element(bics.begin(), bics.end());
    double worst = *std::min_element(bics.begin(), bics.end());
    double range = best - worst;
    int chosen_k = max_k;
    for (int k = 1; k <= max_k; ++k) {
        double score = range > 0.0
            ? (bics[(size_t)k - 1] - worst) / range
            : 1.0;
        if (score >= options.bicThreshold) {
            chosen_k = k;
            break;
        }
    }

    const KMeansResult &km = runs[(size_t)chosen_k - 1];

    Clustering out;
    out.k = chosen_k;
    out.assignment = km.assignment;
    out.bic = bics[(size_t)chosen_k - 1];
    out.representative.assign((size_t)chosen_k, 0);
    out.weight.assign((size_t)chosen_k, 0.0);

    // Representatives: nearest interval to each centroid; weights:
    // cluster share of total instruction weight.
    std::vector<double> best_d((size_t)chosen_k,
                               std::numeric_limits<double>::max());
    std::vector<bool> seen((size_t)chosen_k, false);
    double total_w = 0.0;
    for (size_t i = 0; i < n; ++i) {
        auto c = (size_t)km.assignment[i];
        total_w += weights[i];
        out.weight[c] += weights[i];
        double d = dist2(points[i], km.centroids[c]);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representative[c] = i;
            seen[c] = true;
        }
    }

    // Drop empty clusters (k-means can leave them on tiny inputs).
    Clustering filtered;
    filtered.bic = out.bic;
    std::vector<int> remap((size_t)chosen_k, -1);
    for (int c = 0; c < chosen_k; ++c) {
        if (!seen[(size_t)c] || out.weight[(size_t)c] <= 0.0)
            continue;
        remap[(size_t)c] = filtered.k++;
        filtered.representative.push_back(
            out.representative[(size_t)c]);
        filtered.weight.push_back(out.weight[(size_t)c] / total_w);
    }
    filtered.assignment.resize(n);
    for (size_t i = 0; i < n; ++i) {
        int m = remap[(size_t)km.assignment[i]];
        GT_ASSERT(m >= 0, "point assigned to an empty cluster");
        filtered.assignment[i] = m;
    }
    return filtered;
}

} // namespace gt::core::simpoint
