#include "core/simpoint.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/logging.hh"

namespace gt::core::simpoint
{

namespace
{

/**
 * Chunk size for every floating-point reduction in this file. The
 * chunk layout — and therefore the FP combination tree — is a
 * function of the population size alone, so results are bit-identical
 * for any thread count (including the 1-thread serial fallback).
 */
constexpr size_t reduceGrain = 256;

/** Deterministic projection coefficient for (key, dim) in [-1, 1]. */
double
projectionCoeff(uint64_t key, int dim)
{
    uint64_t h = key ^ (0x9e3779b97f4a7c15ULL * (uint64_t)(dim + 1));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return ((double)(h >> 11) * 0x1.0p-53) * 2.0 - 1.0;
}

/**
 * Squared Euclidean distance between two flat projectedDims-wide
 * rows: the same expression, in the same order, as the historical
 * dist2(const Point &, const Point &) — the fixed-trip-count loop
 * over contiguous rows is what the flat SoA storage buys the
 * vectorizer.
 */
inline double
dist2Row(const double *a, const double *b)
{
    double acc = 0.0;
    for (int d = 0; d < projectedDims; ++d) {
        double diff = a[d] - b[d];
        acc += diff * diff;
    }
    return acc;
}

static_assert(sizeof(Point) == sizeof(double) * projectedDims,
              "Point rows must be packed for the flat SoA layout");

/**
 * Conservative bound arithmetic for the pruned backend.
 *
 * The triangle-inequality bounds are exact in real arithmetic, but
 * the computed dist2/sqrt/add/sub chain rounds — and a bound that
 * rounds the wrong way could prune a point whose exact Lloyd scan
 * would have flipped its assignment, breaking bitwise equality with
 * the oracle. Every bound therefore gets a slack push in its safe
 * direction: upper bounds are inflated and lower bounds deflated by
 * a relative term that dominates the worst-case relative round-off
 * of the ~2·projectedDims-operation distance chain (~20 ulp; the
 * slack is ~4000x that) plus an absolute term that dominates any
 * subnormal-range underflow. The slack is far below any distance
 * gap worth pruning, so it costs nothing: a point inside the slack
 * margin simply falls back to the exact scan, which is always
 * correct.
 */
constexpr double boundRelSlack = 0x1.0p-40; // ~9.1e-13 relative
constexpr double boundAbsSlack = 1e-140;    // >> any underflow loss

/** Upper bound on the true Euclidean distance whose computed
 * squared distance is @p d2. */
inline double
distUpper(double d2)
{
    double d = std::sqrt(d2);
    return d + d * boundRelSlack + boundAbsSlack;
}

/** Lower bound on the true Euclidean distance whose computed
 * squared distance is @p d2 (+inf passes through for the k == 1
 * "no second centroid" case). */
inline double
distLower(double d2)
{
    double d = std::sqrt(d2);
    if (!(d < std::numeric_limits<double>::infinity()))
        return d;
    d -= d * boundRelSlack + boundAbsSlack;
    return d > 0.0 ? d : 0.0;
}

/** Upper bound on (upper bound u) + (drift upper bound d). */
inline double
boundAdd(double u, double d)
{
    double r = u + d;
    return r + r * boundRelSlack + boundAbsSlack;
}

/** Lower bound on (lower bound l) - (drift upper bound d). May go
 * negative, which simply never prunes. */
inline double
boundSub(double l, double d)
{
    double r = l - d;
    return r - std::abs(r) * boundRelSlack - boundAbsSlack;
}

/** kmeansRun with flat row-major centroid storage (the internal
 * currency; the public struct converts to Point rows at the edge). */
struct FlatRun
{
    std::vector<int> assignment;
    std::vector<double> centroids; //!< k x projectedDims, row-major
    double distortion = 0.0;
    std::vector<double> clusterWeight;
    KMeansStats stats;
};

/**
 * Weighted k-means with k-means++ seeding over flat row-major
 * points. Both backends share the seeding, the centroid update, the
 * empty-cluster re-seed draws, and the final distortion reduction;
 * the backend only decides whether the assignment step may skip
 * k-way scans that provably cannot change an assignment. See the
 * KMeansBackend doc comment for why the result is bitwise identical
 * either way.
 */
FlatRun
kmeansFlat(const double *pts, size_t n,
           const std::vector<double> &weights, int k, int max_iters,
           Rng &rng, sched::ThreadPool &pool, KMeansBackend backend,
           const UniqueIndex *uniq)
{
    constexpr int dims = projectedDims;
    const bool pruned = backend == KMeansBackend::Pruned;
    GT_ASSERT(!pruned || uniq,
              "pruned k-means needs a unique-value index");
    FlatRun run;
    run.centroids.reserve((size_t)k * dims);
    auto centroidRow = [&](int c) {
        return run.centroids.data() + (size_t)c * dims;
    };
    auto pushCentroid = [&](size_t i) {
        run.centroids.insert(run.centroids.end(), pts + i * dims,
                             pts + (i + 1) * dims);
    };

    const size_t m = pruned ? uniq->rep.size() : 0;
    auto repRow = [&](size_t u) {
        return pts + (size_t)uniq->rep[u] * dims;
    };

    // k-means++ initialization (weighted). The distance refresh and
    // its weighted total parallelize per chunk; the draw itself stays
    // sequential on the per-run RNG stream. The per-chunk partial
    // sums the reduction already produces are kept and reused to
    // locate the weighted draw, so only the one chunk containing the
    // crossing is rescanned instead of the whole population. The
    // chunk layout is a function of n alone, so both the total and
    // the picked index are bit-identical at every thread count.
    //
    // The pruned backend refreshes one distance per distinct value
    // (min_d2 is a pure function of the point's coordinates) and the
    // per-point chunk loop gathers from that table — the same values
    // in the same accumulation order, so totals and draws match the
    // per-point oracle path bitwise.
    std::vector<double> min_d2, mtab;
    if (pruned)
        mtab.assign(m, std::numeric_limits<double>::max());
    else
        min_d2.assign(n, std::numeric_limits<double>::max());
    size_t num_chunks = (n + reduceGrain - 1) / reduceGrain;
    std::vector<double> partials(num_chunks, 0.0);
    size_t first = rng.nextBounded(n);
    pushCentroid(first);
    int seeded = 1;
    while (seeded < k) {
        const double *latest = centroidRow(seeded - 1);
        if (pruned) {
            for (size_t u = 0; u < m; ++u) {
                // Exactly-coincident values (min_d2 already 0) skip
                // the recompute: dist2 is non-negative, so
                // min(0, d) == 0 — value- and bit-identical.
                if (mtab[u] != 0.0) {
                    mtab[u] = std::min(mtab[u],
                                       dist2Row(repRow(u), latest));
                }
            }
            pool.parallelFor(
                num_chunks,
                [&](size_t c) {
                    size_t begin = c * reduceGrain;
                    size_t end = std::min(n, begin + reduceGrain);
                    double part = 0.0;
                    for (size_t i = begin; i < end; ++i)
                        part += mtab[uniq->uid[i]] * weights[i];
                    partials[c] = part;
                },
                1);
        } else {
            pool.parallelFor(
                num_chunks,
                [&](size_t c) {
                    size_t begin = c * reduceGrain;
                    size_t end = std::min(n, begin + reduceGrain);
                    double part = 0.0;
                    for (size_t i = begin; i < end; ++i) {
                        if (min_d2[i] != 0.0) {
                            min_d2[i] = std::min(
                                min_d2[i],
                                dist2Row(pts + i * dims, latest));
                        }
                        part += min_d2[i] * weights[i];
                    }
                    partials[c] = part;
                },
                1);
        }
        // Combine in ascending chunk order, exactly as
        // parallelReduce would.
        double total = 0.0;
        for (double part : partials)
            total += part;
        if (total <= 0.0) {
            // All points coincide with chosen centers; duplicate.
            pushCentroid(rng.nextBounded(n));
            ++seeded;
            continue;
        }
        double pick = rng.nextDouble() * total;
        // Walk the chunk partials to the chunk whose cumulative mass
        // reaches the draw, then rescan only that chunk. The
        // cumulative base advances by whole-chunk partials, so the
        // crossing test sees one fixed accumulation tree; if the
        // element-order rescan falls short of the partial-predicted
        // crossing by rounding, the walk continues into the next
        // chunk, still deterministically.
        double base = 0.0;
        size_t chosen = n - 1;
        bool found = false;
        for (size_t c = 0; c < num_chunks && !found; ++c) {
            double after = base + partials[c];
            if (after >= pick || c + 1 == num_chunks) {
                size_t begin = c * reduceGrain;
                size_t end = std::min(n, begin + reduceGrain);
                double acc = base;
                for (size_t i = begin; i < end; ++i) {
                    acc += (pruned ? mtab[uniq->uid[i]]
                                   : min_d2[i]) *
                        weights[i];
                    if (acc >= pick) {
                        chosen = i;
                        found = true;
                        break;
                    }
                }
            }
            base = after;
        }
        pushCentroid(chosen);
        ++seeded;
    }

    /** Per-cluster weighted sums, reduced chunk-by-chunk. */
    struct Accum
    {
        std::vector<double> sums; //!< k x dims, row-major
        std::vector<double> wsum;
    };

    // The exact Lloyd inner loop — the same dist2 expression and the
    // same c = 1..k comparison order as always, so ties resolve to
    // the lowest index. The second-best tracking costs comparisons
    // only (no extra FP arithmetic) and feeds the pruned backend's
    // lower bound; the Lloyd backend ignores it.
    auto scanPoint = [&](const double *p, double &best_d,
                         double &second_d) {
        int best = 0;
        best_d = dist2Row(p, centroidRow(0));
        second_d = std::numeric_limits<double>::infinity();
        for (int c = 1; c < k; ++c) {
            double d = dist2Row(p, centroidRow(c));
            if (d < best_d) {
                second_d = best_d;
                best_d = d;
                best = c;
            } else if (d < second_d) {
                second_d = d;
            }
        }
        return best;
    };

    // Pruned-backend state, all per distinct value: the bounds, the
    // group's current assignment (members always agree: they start
    // at 0 together and every pass applies the same scan result to
    // the whole group), and the pass's scan results.
    std::vector<double> upper, lower, halfMin, drift, old_centroids;
    std::vector<int> assign_tab, best_tab;
    if (pruned) {
        upper.assign(m, std::numeric_limits<double>::infinity());
        lower.assign(m, -std::numeric_limits<double>::infinity());
        halfMin.assign((size_t)k, 0.0);
        drift.assign((size_t)k, 0.0);
        assign_tab.assign(m, 0);
        best_tab.assign(m, 0);
    }
    std::atomic<uint64_t> bound_prunes{0};
    std::atomic<uint64_t> tighten_prunes{0};
    std::atomic<uint64_t> memo_hits{0};
    std::atomic<uint64_t> full_scans{0};
    size_t u_chunks = (m + reduceGrain - 1) / reduceGrain;

    run.assignment.assign(n, 0);
    for (int iter = 0; iter < max_iters; ++iter) {
        // Assign: each point independently picks its nearest
        // centroid, so any chunking yields identical assignments.
        // The convergence flag only ever goes false -> true, making
        // the write order irrelevant.
        std::atomic<bool> changed{false};
        run.stats.assignSteps += n;
        if (!pruned) {
            pool.parallelFor(
                num_chunks,
                [&](size_t chunk) {
                    size_t begin = chunk * reduceGrain;
                    size_t end = std::min(n, begin + reduceGrain);
                    for (size_t i = begin; i < end; ++i) {
                        double best_d, second_d;
                        int best = scanPoint(pts + i * dims, best_d,
                                             second_d);
                        if (run.assignment[i] != best) {
                            run.assignment[i] = best;
                            changed.store(
                                true, std::memory_order_relaxed);
                        }
                    }
                    full_scans.fetch_add(
                        end - begin, std::memory_order_relaxed);
                },
                1);
        } else {
            // Half the minimum inter-centroid distance per cluster:
            // a point closer to its centroid than that cannot be
            // closer to any other (k <= maxK, so the O(k^2) scan is
            // noise next to the per-value loop).
            for (int c = 0; c < k; ++c) {
                double best =
                    std::numeric_limits<double>::infinity();
                for (int o = 0; o < k; ++o) {
                    if (o == c)
                        continue;
                    best = std::min(
                        best, distLower(dist2Row(centroidRow(c),
                                                 centroidRow(o))));
                }
                halfMin[c] = 0.5 * best;
            }
            // One decision per distinct value, then an integer
            // gather applies it to every member.
            pool.parallelFor(
                u_chunks,
                [&](size_t chunk) {
                    size_t begin = chunk * reduceGrain;
                    size_t end = std::min(m, begin + reduceGrain);
                    uint64_t bprune = 0, tprune = 0, memo = 0,
                             scans = 0;
                    for (size_t u = begin; u < end; ++u) {
                        int a = assign_tab[u];
                        uint64_t members = uniq->count[u];
                        // Strict < throughout: an exact tie on a
                        // bound falls through to the exact scan, so
                        // tie-breaking always happens in Lloyd
                        // order.
                        double bound =
                            std::max(halfMin[a], lower[u]);
                        if (upper[u] < bound) {
                            bprune += members;
                            best_tab[u] = a;
                            continue;
                        }
                        const double *p = repRow(u);
                        if (upper[u] <
                            std::numeric_limits<double>::infinity()) {
                            double du = distUpper(
                                dist2Row(p, centroidRow(a)));
                            upper[u] = du;
                            if (du < bound) {
                                tprune += members;
                                best_tab[u] = a;
                                continue;
                            }
                        }
                        double best_d, second_d;
                        int best = scanPoint(p, best_d, second_d);
                        ++scans;
                        memo += members - 1;
                        upper[u] = distUpper(best_d);
                        lower[u] = distLower(second_d);
                        best_tab[u] = best;
                    }
                    bound_prunes.fetch_add(
                        bprune, std::memory_order_relaxed);
                    tighten_prunes.fetch_add(
                        tprune, std::memory_order_relaxed);
                    memo_hits.fetch_add(memo,
                                        std::memory_order_relaxed);
                    full_scans.fetch_add(
                        scans, std::memory_order_relaxed);
                },
                1);
            pool.parallelFor(
                num_chunks,
                [&](size_t chunk) {
                    size_t begin = chunk * reduceGrain;
                    size_t end = std::min(n, begin + reduceGrain);
                    for (size_t i = begin; i < end; ++i) {
                        int best = best_tab[uniq->uid[i]];
                        if (run.assignment[i] != best) {
                            run.assignment[i] = best;
                            changed.store(
                                true, std::memory_order_relaxed);
                        }
                    }
                },
                1);
            assign_tab = best_tab;
        }
        if (!changed.load() && iter > 0)
            break;
        // Update: per-chunk partial centroid sums combined in chunk
        // order (deterministic FP tree; see reduceGrain).
        if (pruned)
            old_centroids = run.centroids;
        Accum identity;
        identity.sums.assign((size_t)k * dims, 0.0);
        identity.wsum.assign((size_t)k, 0.0);
        Accum acc = pool.parallelReduce<Accum>(
            n, reduceGrain, identity,
            [&](size_t begin, size_t end) {
                Accum part;
                part.sums.assign((size_t)k * dims, 0.0);
                part.wsum.assign((size_t)k, 0.0);
                for (size_t i = begin; i < end; ++i) {
                    int c = run.assignment[i];
                    part.wsum[(size_t)c] += weights[i];
                    double *sum = part.sums.data() +
                        (size_t)c * dims;
                    const double *p = pts + i * dims;
                    for (int d = 0; d < dims; ++d)
                        sum[d] += p[d] * weights[i];
                }
                return part;
            },
            [k](Accum &&a, Accum &&b) {
                for (int c = 0; c < k; ++c)
                    a.wsum[(size_t)c] += b.wsum[(size_t)c];
                for (size_t d = 0; d < a.sums.size(); ++d)
                    a.sums[d] += b.sums[d];
                return std::move(a);
            });
        for (int c = 0; c < k; ++c) {
            double *row = centroidRow(c);
            if (acc.wsum[(size_t)c] > 0.0) {
                const double *sum =
                    acc.sums.data() + (size_t)c * dims;
                for (int d = 0; d < dims; ++d)
                    row[d] = sum[d] / acc.wsum[(size_t)c];
            } else {
                // Re-seed an empty cluster on a random point.
                const double *p =
                    pts + rng.nextBounded(n) * dims;
                std::copy(p, p + dims, row);
            }
        }
        if (pruned) {
            // Centroid drift loosens every bound: the assigned
            // centroid may have moved toward the point (upper grows
            // by its drift) and any other centroid may have moved
            // closer (lower shrinks by the largest drift among
            // them — the second-largest when the assigned centroid
            // is itself the drift maximum).
            int drift_argmax = 0;
            double drift_max = -1.0, drift_second = 0.0;
            for (int c = 0; c < k; ++c) {
                drift[c] = distUpper(dist2Row(
                    old_centroids.data() + (size_t)c * dims,
                    centroidRow(c)));
                if (drift[c] > drift_max) {
                    drift_second = drift_max;
                    drift_max = drift[c];
                    drift_argmax = c;
                } else if (drift[c] > drift_second) {
                    drift_second = drift[c];
                }
            }
            if (drift_second < 0.0)
                drift_second = 0.0;
            for (size_t u = 0; u < m; ++u) {
                int a = assign_tab[u];
                upper[u] = boundAdd(upper[u], drift[a]);
                lower[u] = boundSub(lower[u], a == drift_argmax
                                        ? drift_second
                                        : drift_max);
            }
        }
    }
    run.stats.boundPrunes = bound_prunes.load();
    run.stats.tightenPrunes = tighten_prunes.load();
    run.stats.memoHits = memo_hits.load();
    run.stats.fullScans = full_scans.load();

    // Final distortion, emitting the per-cluster weight partials the
    // BIC score consumes (combined in the same chunk order, so the
    // distortion bits match the historical scalar reduction and the
    // weights are thread-count-invariant). The pruned backend
    // computes one distance per distinct value and gathers — the
    // same dist2Row value the per-point expression would produce, in
    // the same accumulation order, so the sum matches bitwise.
    std::vector<double> dtab;
    if (pruned) {
        dtab.resize(m);
        for (size_t u = 0; u < m; ++u)
            dtab[u] = dist2Row(repRow(u), centroidRow(assign_tab[u]));
    }
    struct DistAccum
    {
        double dist = 0.0;
        std::vector<double> wsum;
    };
    DistAccum identity;
    identity.wsum.assign((size_t)k, 0.0);
    DistAccum total = pool.parallelReduce<DistAccum>(
        n, reduceGrain, identity,
        [&](size_t begin, size_t end) {
            DistAccum part;
            part.wsum.assign((size_t)k, 0.0);
            for (size_t i = begin; i < end; ++i) {
                auto c = (size_t)run.assignment[i];
                part.dist += weights[i] *
                    (pruned ? dtab[uniq->uid[i]]
                            : dist2Row(pts + i * dims,
                                       centroidRow((int)c)));
                part.wsum[c] += weights[i];
            }
            return part;
        },
        [k](DistAccum &&a, DistAccum &&b) {
            a.dist += b.dist;
            for (int c = 0; c < k; ++c)
                a.wsum[(size_t)c] += b.wsum[(size_t)c];
            return std::move(a);
        });
    run.distortion = total.dist;
    run.clusterWeight = std::move(total.wsum);
    return run;
}

/**
 * Spherical-Gaussian BIC of a clustering (the X-means formulation
 * SimPoint uses), computed over weighted points. Consumes the
 * per-cluster weight partials the distortion reduction emitted
 * instead of re-scanning the population.
 */
double
bicScore(const FlatRun &km, int k)
{
    double total_w = 0.0;
    for (int c = 0; c < k; ++c)
        total_w += km.clusterWeight[(size_t)c];
    double d = projectedDims;
    // Pooled variance estimate; floor avoids log(0) on perfect fits.
    double denom = std::max(total_w - (double)k, 1.0);
    double sigma2 = std::max(km.distortion / (denom * d), 1e-12);

    double ll = 0.0;
    for (int c = 0; c < k; ++c) {
        double rc = km.clusterWeight[(size_t)c];
        if (rc <= 0.0)
            continue;
        ll += rc * std::log(rc / total_w);
    }
    ll -= total_w * d / 2.0 * std::log(2.0 * M_PI * sigma2);
    ll -= (total_w - (double)k) * d / 2.0;

    double params = (double)k * (d + 1.0);
    return ll - params / 2.0 * std::log(total_w);
}

/** Flatten Point rows into the row-major array kmeansFlat consumes
 * (one memcpy; Point is packed, see the static_assert above). */
std::vector<double>
flattenPoints(const std::vector<Point> &points)
{
    std::vector<double> flat(points.size() * projectedDims);
    if (!points.empty()) {
        std::memcpy(flat.data(), points.data(),
                    points.size() * sizeof(Point));
    }
    return flat;
}

} // anonymous namespace

UniqueIndex
buildUniqueIndex(const double *pts, size_t n)
{
    constexpr int dims = projectedDims;
    auto row = [&](uint32_t i) { return pts + (size_t)i * dims; };
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = (uint32_t)i;
    // Value order (any total order over equal-comparing rows works;
    // grouping only needs equal values adjacent).
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) {
                  return std::lexicographical_compare(
                      row(a), row(a) + dims, row(b), row(b) + dims);
              });
    UniqueIndex ui;
    ui.uid.resize(n);
    for (uint32_t i : order) {
        if (ui.rep.empty() ||
            !std::equal(row(i), row(i) + dims, row(ui.rep.back()))) {
            ui.rep.push_back(i);
            ui.count.push_back(0);
        }
        ui.uid[i] = (uint32_t)(ui.rep.size() - 1);
        ++ui.count.back();
    }
    return ui;
}

UniqueIndex
extendUniqueIndex(const UniqueIndex &base, const double *pts,
                  size_t n_base, size_t n)
{
    constexpr int dims = projectedDims;
    GT_ASSERT(base.uid.size() == n_base,
              "unique index covers ", base.uid.size(),
              " points, expected ", n_base);
    GT_ASSERT(n_base <= n, "extension shrinks the population");
    auto row = [&](uint32_t i) { return pts + (size_t)i * dims; };
    auto less = [&](const double *a, const double *b) {
        return std::lexicographical_compare(a, a + dims, b, b + dims);
    };

    // Sort only the new suffix; the base groups are already in
    // ascending value order (group ids are value ranks), so one
    // merge walk renumbers everything.
    std::vector<uint32_t> order(n - n_base);
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = (uint32_t)(n_base + i);
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) {
                  return less(row(a), row(b));
              });

    UniqueIndex out;
    out.uid.resize(n);
    std::vector<uint32_t> remap(base.rep.size());
    size_t g = 0; // next base group
    size_t j = 0; // next new point (in value order)
    while (g < base.rep.size() || j < order.size()) {
        auto gid = (uint32_t)out.rep.size();
        uint32_t members = 0;
        // Open the group on whichever side holds the smaller value;
        // on a tie the base group keeps its representative.
        if (g < base.rep.size() &&
            (j == order.size() ||
             !less(row(order[j]), row(base.rep[g])))) {
            out.rep.push_back(base.rep[g]);
            members = base.count[g];
            remap[g] = gid;
            ++g;
        } else {
            out.rep.push_back(order[j]);
        }
        // Absorb every new point equal to the group's value (the
        // representative itself included when the group is new).
        const double *grow = row(out.rep.back());
        while (j < order.size() &&
               std::equal(grow, grow + dims, row(order[j]))) {
            out.uid[order[j]] = gid;
            ++members;
            ++j;
        }
        out.count.push_back(members);
    }
    for (size_t i = 0; i < n_base; ++i)
        out.uid[i] = remap[base.uid[i]];
    return out;
}

void
KMeansStats::merge(const KMeansStats &other)
{
    assignSteps += other.assignSteps;
    boundPrunes += other.boundPrunes;
    tightenPrunes += other.tightenPrunes;
    memoHits += other.memoHits;
    fullScans += other.fullScans;
}

double
KMeansStats::pruneRate() const
{
    if (assignSteps == 0)
        return 0.0;
    return (double)(boundPrunes + tightenPrunes + memoHits) /
        (double)assignSteps;
}

KMeansBackend
defaultKMeansBackend()
{
    static const KMeansBackend selected = [] {
        KMeansBackend b = KMeansBackend::Pruned;
        if (const char *env = std::getenv("GT_KMEANS");
            env && *env != '\0') {
            std::string value(env);
            if (value == "lloyd") {
                b = KMeansBackend::Lloyd;
            } else if (value != "pruned") {
                warn("ignoring invalid GT_KMEANS value '", value,
                     "' (expected 'lloyd' or 'pruned')");
            }
        }
        inform("simpoint: ", kmeansBackendName(b),
               " k-means backend "
               "(override with GT_KMEANS=lloyd|pruned)");
        return b;
    }();
    return selected;
}

const char *
kmeansBackendName(KMeansBackend backend)
{
    return backend == KMeansBackend::Lloyd ? "lloyd" : "pruned";
}

KMeansRun
kmeansRun(const std::vector<Point> &points,
          const std::vector<double> &weights, int k, int max_iters,
          Rng &rng, sched::ThreadPool *pool, KMeansBackend backend)
{
    GT_ASSERT(!points.empty(), "k-means over an empty population");
    GT_ASSERT(points.size() == weights.size(),
              "points/weights size mismatch");
    GT_ASSERT(k >= 1 && (size_t)k <= points.size(),
              "k must be in [1, n], got ", k);
    sched::ThreadPool &p =
        pool ? *pool : sched::ThreadPool::global();
    std::vector<double> flat = flattenPoints(points);
    UniqueIndex uniq;
    if (backend == KMeansBackend::Pruned)
        uniq = buildUniqueIndex(flat.data(), points.size());
    FlatRun run = kmeansFlat(flat.data(), points.size(), weights, k,
                             max_iters, rng, p, backend, &uniq);
    KMeansRun out;
    out.assignment = std::move(run.assignment);
    out.centroids.resize((size_t)k);
    std::memcpy(out.centroids.data(), run.centroids.data(),
                (size_t)k * sizeof(Point));
    out.distortion = run.distortion;
    out.clusterWeight = std::move(run.clusterWeight);
    out.stats = run.stats;
    return out;
}

ProjectionTable
ProjectionTable::build(const std::vector<uint64_t> &keys)
{
    GT_ASSERT(std::is_sorted(keys.begin(), keys.end()),
              "projection table keys must be ascending");
    ProjectionTable table;
    table.keyIndex = keys;
    table.rows.resize(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
        for (int d = 0; d < projectedDims; ++d)
            table.rows[i][d] = projectionCoeff(keys[i], d);
    }
    return table;
}

ProjectionTable
ProjectionTable::build(const std::vector<uint64_t> &keys,
                       const ProjectionTable &previous)
{
    GT_ASSERT(std::is_sorted(keys.begin(), keys.end()),
              "projection table keys must be ascending");
    ProjectionTable table;
    table.keyIndex = keys;
    table.rows.resize(keys.size());
    // Both key lists are ascending: one merge walk copies every row
    // the previous table already computed (rows are pure per-key, so
    // copied bits equal recomputed bits) and derives only the rest.
    size_t j = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
        while (j < previous.keyIndex.size() &&
               previous.keyIndex[j] < keys[i])
            ++j;
        if (j < previous.keyIndex.size() &&
            previous.keyIndex[j] == keys[i]) {
            table.rows[i] = previous.rows[j];
            continue;
        }
        for (int d = 0; d < projectedDims; ++d)
            table.rows[i][d] = projectionCoeff(keys[i], d);
    }
    return table;
}

const Point *
ProjectionTable::row(uint64_t key) const
{
    auto it = std::lower_bound(keyIndex.begin(), keyIndex.end(), key);
    if (it == keyIndex.end() || *it != key)
        return nullptr;
    return &rows[(size_t)(it - keyIndex.begin())];
}

Point
project(const FeatureVector &vec, const ProjectionTable *table)
{
    Point p{};
    const std::vector<uint64_t> &keys = vec.keys();
    const std::vector<double> &values = vec.values();
    for (size_t i = 0; i < keys.size(); ++i) {
        if (table) {
            const Point *row = table->row(keys[i]);
            GT_ASSERT(row, "projection table is missing key ",
                      keys[i]);
            for (int d = 0; d < projectedDims; ++d)
                p[d] += values[i] * (*row)[d];
        } else {
            for (int d = 0; d < projectedDims; ++d)
                p[d] += values[i] * projectionCoeff(keys[i], d);
        }
    }
    return p;
}

Clustering
cluster(const std::vector<FeatureVector> &vectors,
        const std::vector<double> &weights,
        const ClusterOptions &options)
{
    GT_ASSERT(!vectors.empty(), "clustering an empty population");
    GT_ASSERT(vectors.size() == weights.size(),
              "vectors/weights size mismatch");

    sched::ThreadPool &pool =
        options.pool ? *options.pool : sched::ThreadPool::global();

    size_t n = vectors.size();
    std::vector<Point> points(n);
    pool.parallelFor(n, [&](size_t i) {
        points[i] = project(vectors[i], options.projection);
    });
    return clusterPoints(points, weights, options);
}

Clustering
clusterPoints(const std::vector<Point> &points,
              const std::vector<double> &weights,
              const ClusterOptions &options)
{
    GT_ASSERT(!points.empty(), "clustering an empty population");
    GT_ASSERT(points.size() == weights.size(),
              "points/weights size mismatch");
    for (double w : weights)
        GT_ASSERT(w > 0.0, "non-positive interval weight");

    sched::ThreadPool &pool =
        options.pool ? *options.pool : sched::ThreadPool::global();

    size_t n = points.size();
    int max_k = std::min<int>(options.maxK, (int)n);
    Rng rng(options.seed);

    // Flatten the population once; every candidate-k run reads the
    // same row-major array. The unique-value index (which values
    // coincide — dispatch populations repeat a handful of interval
    // signatures thousands of times) is likewise a property of the
    // population alone, so one sort serves all candidate-k runs —
    // and a caller that grows its population incrementally may hand
    // in an extended index instead (options.uniqueIndex).
    std::vector<double> flat = flattenPoints(points);
    GT_ASSERT(!options.uniqueIndex ||
                  options.uniqueIndex->uid.size() == n,
              "unique index covers ",
              options.uniqueIndex ? options.uniqueIndex->uid.size()
                                  : 0,
              " points, population has ", n);
    UniqueIndex local;
    const UniqueIndex *uniq = options.uniqueIndex;
    if (options.backend == KMeansBackend::Pruned && !uniq) {
        local = buildUniqueIndex(flat.data(), n);
        uniq = &local;
    }

    // Run k-means for every candidate k and score with BIC. Each
    // candidate draws from split(k) of the seed stream, so the runs
    // are independent tasks whose results cannot depend on execution
    // order; the nested per-point loops share the same pool
    // cooperatively.
    std::vector<FlatRun> runs((size_t)max_k);
    std::vector<double> bics((size_t)max_k);
    pool.parallelFor(
        (size_t)max_k,
        [&](size_t idx) {
            int k = (int)idx + 1;
            Rng sub = rng.split((uint64_t)k);
            runs[idx] = kmeansFlat(flat.data(), n, weights, k,
                                   options.maxIters, sub, pool,
                                   options.backend, uniq);
            bics[idx] = bicScore(runs[idx], k);
        },
        1);

    // SimPoint's acceptance: the smallest k whose BIC reaches the
    // threshold fraction of the best BIC's range above the worst.
    double best = *std::max_element(bics.begin(), bics.end());
    double worst = *std::min_element(bics.begin(), bics.end());
    double range = best - worst;
    int chosen_k = max_k;
    for (int k = 1; k <= max_k; ++k) {
        double score = range > 0.0
            ? (bics[(size_t)k - 1] - worst) / range
            : 1.0;
        if (score >= options.bicThreshold) {
            chosen_k = k;
            break;
        }
    }

    const FlatRun &km = runs[(size_t)chosen_k - 1];

    Clustering out;
    out.k = chosen_k;
    out.assignment = km.assignment;
    out.bic = bics[(size_t)chosen_k - 1];
    out.representative.assign((size_t)chosen_k, 0);
    out.weight.assign((size_t)chosen_k, 0.0);

    // Representatives: nearest interval to each centroid; weights:
    // cluster share of total instruction weight.
    std::vector<double> best_d((size_t)chosen_k,
                               std::numeric_limits<double>::max());
    std::vector<bool> seen((size_t)chosen_k, false);
    double total_w = 0.0;
    for (size_t i = 0; i < n; ++i) {
        auto c = (size_t)km.assignment[i];
        total_w += weights[i];
        out.weight[c] += weights[i];
        double d = dist2Row(flat.data() + i * projectedDims,
                            km.centroids.data() +
                                c * projectedDims);
        if (d < best_d[c]) {
            best_d[c] = d;
            out.representative[c] = i;
            seen[c] = true;
        }
    }

    // Drop empty clusters (k-means can leave them on tiny inputs).
    Clustering filtered;
    filtered.bic = out.bic;
    filtered.distortion = km.distortion;
    // Assignment work across every candidate k, merged in fixed k
    // order (the counters themselves are order-insensitive sums).
    for (const FlatRun &r : runs)
        filtered.stats.merge(r.stats);
    std::vector<int> remap((size_t)chosen_k, -1);
    for (int c = 0; c < chosen_k; ++c) {
        if (!seen[(size_t)c] || out.weight[(size_t)c] <= 0.0)
            continue;
        remap[(size_t)c] = filtered.k++;
        filtered.representative.push_back(
            out.representative[(size_t)c]);
        filtered.weight.push_back(out.weight[(size_t)c] / total_w);
    }
    filtered.assignment.resize(n);
    for (size_t i = 0; i < n; ++i) {
        int m = remap[(size_t)km.assignment[i]];
        GT_ASSERT(m >= 0, "point assigned to an empty cluster");
        filtered.assignment[i] = m;
    }
    return filtered;
}

} // namespace gt::core::simpoint
