/**
 * @file
 * Feature-vector construction (the paper's Table III).
 *
 * Each interval is summarized as a sparse (key, value) vector. Keys
 * identify a program event — a kernel, a kernel with specific
 * argument values or global work size, a basic block — and values
 * count the event's dynamic occurrences weighted by instruction
 * count, the weighting Section V-B motivates (a 20-instruction
 * block executed 5 times matters more than a 3-instruction block
 * executed 10 times). The memory-augmented variants add per-key
 * dimensions carrying the bytes read and/or written, so two
 * intervals running the same code on different data volumes
 * separate in feature space.
 */

#ifndef GT_CORE_FEATURES_HH
#define GT_CORE_FEATURES_HH

#include <map>

#include "core/interval.hh"

namespace gt::core
{

/** Table III's ten feature-vector types. */
enum class FeatureKind : uint8_t
{
    KN,          //!< kernel
    KN_ARGS,     //!< kernel + argument values
    KN_GWS,      //!< kernel + global work size
    KN_ARGS_GWS, //!< kernel + argument values + global work size
    KN_RW,       //!< kernel, plus bytes-read and bytes-written dims
    BB,          //!< basic block
    BB_R,        //!< basic block, plus bytes-read dims
    BB_W,        //!< basic block, plus bytes-written dims
    BB_R_W,      //!< basic block, plus read and written dims
    BB_RpW,      //!< basic block, plus (read + written) dims
};

constexpr int numFeatureKinds = 10;

/** @return the paper's identifier, e.g. "BB-(R+W)". */
const char *featureKindName(FeatureKind kind);

/** @return true for the five basic-block-based kinds. */
bool isBlockFeature(FeatureKind kind);

/** @return true for the kinds with memory-traffic dimensions. */
bool hasMemoryFeature(FeatureKind kind);

/**
 * A sparse feature vector. Keys are stable 64-bit identities of
 * program events; values are instruction-count-weighted occurrence
 * counts (or byte volumes for memory dimensions).
 */
class FeatureVector
{
  public:
    void add(uint64_t key, double value);

    double l2norm() const;

    /** Scale so entries sum to 1 (no-op on an all-zero vector). */
    void normalize();

    double
    dot(const FeatureVector &other) const;

    const std::map<uint64_t, double> &entries() const { return data; }

    size_t dims() const { return data.size(); }

    double sum() const;

  private:
    std::map<uint64_t, double> data;
};

/** Extract the @p kind feature vector of @p interval. */
FeatureVector extractFeatures(const TraceDatabase &db,
                              const Interval &interval,
                              FeatureKind kind);

/** Extract vectors for all intervals (normalized). */
std::vector<FeatureVector>
extractAllFeatures(const TraceDatabase &db,
                   const std::vector<Interval> &intervals,
                   FeatureKind kind);

} // namespace gt::core

#endif // GT_CORE_FEATURES_HH
