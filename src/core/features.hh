/**
 * @file
 * Feature-vector construction (the paper's Table III).
 *
 * Each interval is summarized as a sparse (key, value) vector. Keys
 * identify a program event — a kernel, a kernel with specific
 * argument values or global work size, a basic block — and values
 * count the event's dynamic occurrences weighted by instruction
 * count, the weighting Section V-B motivates (a 20-instruction
 * block executed 5 times matters more than a 3-instruction block
 * executed 10 times). The memory-augmented variants add per-key
 * dimensions carrying the bytes read and/or written, so two
 * intervals running the same code on different data volumes
 * separate in feature space.
 *
 * Two extraction backends produce these vectors (selectable with
 * GT_FEATURES=map|flat, default flat; see core/feature_engine.hh):
 * the original per-interval walk into a std::map, kept as the
 * reference oracle, and the columnar DispatchFeatureCache engine
 * that lowers each dispatch profile once and merges per-dispatch
 * contributions. Both produce bitwise-identical vectors.
 */

#ifndef GT_CORE_FEATURES_HH
#define GT_CORE_FEATURES_HH

#include <cstdint>
#include <vector>

#include "core/interval.hh"

namespace gt::core
{

/** Table III's ten feature-vector types. */
enum class FeatureKind : uint8_t
{
    KN,          //!< kernel
    KN_ARGS,     //!< kernel + argument values
    KN_GWS,      //!< kernel + global work size
    KN_ARGS_GWS, //!< kernel + argument values + global work size
    KN_RW,       //!< kernel, plus bytes-read and bytes-written dims
    BB,          //!< basic block
    BB_R,        //!< basic block, plus bytes-read dims
    BB_W,        //!< basic block, plus bytes-written dims
    BB_R_W,      //!< basic block, plus read and written dims
    BB_RpW,      //!< basic block, plus (read + written) dims
};

constexpr int numFeatureKinds = 10;

/** @return the paper's identifier, e.g. "BB-(R+W)". */
const char *featureKindName(FeatureKind kind);

/** @return true for the five basic-block-based kinds. */
bool isBlockFeature(FeatureKind kind);

/** @return true for the kinds with memory-traffic dimensions. */
bool hasMemoryFeature(FeatureKind kind);

namespace detail
{

/** Stable 64-bit mixing of event-identity components. */
uint64_t mixFeatureKey(uint64_t a, uint64_t b, uint64_t c = 0,
                       uint64_t d = 0);

// Tag values distinguishing the dimension families within a key.
constexpr uint64_t tagBase = 1;
constexpr uint64_t tagRead = 2;
constexpr uint64_t tagWrite = 3;
constexpr uint64_t tagReadWrite = 4;

} // namespace detail

/**
 * A sparse feature vector. Keys are stable 64-bit identities of
 * program events; values are instruction-count-weighted occurrence
 * counts (or byte volumes for memory dimensions).
 *
 * Representation: structure-of-arrays, keys ascending — keys()[i]
 * pairs with values()[i]. Every operation iterates in ascending-key
 * order, the same order the historical std::map representation
 * iterated in, so sums, norms, and dot products are bitwise
 * identical to that reference. add() accumulates per key in call
 * order, matching the map's per-key `operator[] +=` semantics.
 */
class FeatureVector
{
  public:
    /** Accumulate @p value into @p key (zero values are dropped,
     * matching the historical map behavior). */
    void add(uint64_t key, double value);

    double l2norm() const;

    /** Scale so entries sum to 1 (no-op on an all-zero vector). */
    void normalize();

    double
    dot(const FeatureVector &other) const;

    const std::vector<uint64_t> &keys() const { return ks; }
    const std::vector<double> &values() const { return vs; }

    size_t dims() const { return ks.size(); }

    double sum() const;

    bool operator==(const FeatureVector &other) const = default;

    /**
     * Bulk construction from pre-merged columns. @p keys must be
     * strictly ascending and pair index-wise with @p values; this is
     * the fast path the DispatchFeatureCache and the map oracle
     * (whose std::map already iterates ascending) both use.
     */
    static FeatureVector fromSorted(std::vector<uint64_t> keys,
                                    std::vector<double> values);

  private:
    std::vector<uint64_t> ks;
    std::vector<double> vs;
};

/**
 * Extract the @p kind feature vector of @p interval with the
 * process-default backend (GT_FEATURES). One-shot convenience: the
 * flat backend lowers the whole database per call, so loops over
 * many intervals should use a core::FeatureEngine (or
 * extractAllFeatures) instead.
 */
FeatureVector extractFeatures(const TraceDatabase &db,
                              const Interval &interval,
                              FeatureKind kind);

/**
 * Reference oracle: walk the interval's dispatch profiles into an
 * ordered map, exactly as the original implementation did. The flat
 * engine is differentially tested against this path
 * (tests/test_feature_engine.cc).
 */
FeatureVector extractFeaturesMap(const TraceDatabase &db,
                                 const Interval &interval,
                                 FeatureKind kind);

/** Extract vectors for all intervals (normalized), sharing one
 * engine across the loop. */
std::vector<FeatureVector>
extractAllFeatures(const TraceDatabase &db,
                   const std::vector<Interval> &intervals,
                   FeatureKind kind);

} // namespace gt::core

#endif // GT_CORE_FEATURES_HH
