/**
 * @file
 * Detailed-simulation validation driver.
 *
 * The top layer of the detailed stack (DESIGN.md §3.5): given one
 * profiled application, detail-validate any number of subset
 * selections against any number of machine design points — the
 * cross-check of Fig. 6, the replay-matrix spot checks of Fig. 8,
 * and the 30-configuration sweep of bench/detailed_validate.
 *
 * The validator owns a private driver/runtime stack, replays the
 * application's recording once to materialize kernels and device
 * memory, and then reuses two memo layers across every validate()
 * call:
 *
 *  - **checkpoints** (design-point independent): one Fast-mode
 *    functional pre-pass per *distinct dispatch*, shared by all
 *    design points via GpuDriver::checkpoint() — the fast-forward
 *    that replaces the old per-(config, dispatch) re-profiling;
 *  - **replay cells** (per design point): one cycle-level EU replay
 *    per (design point, dispatch), fanned out across the
 *    sched::ThreadPool under GT_DETAILED=parallel and cached, so 30
 *    selections over the same design point pay the machine layer
 *    once.
 *
 * Serial and parallel backends are bitwise identical at any thread
 * count: cells are pure functions of (checkpoint, design point),
 * cell results land in per-index slots, and every aggregation walks
 * dispatches in ascending order.
 */

#ifndef GT_CORE_DETAILED_VALIDATOR_HH
#define GT_CORE_DETAILED_VALIDATOR_HH

#include <map>
#include <memory>

#include "core/pipeline.hh"
#include "ocl/runtime.hh"
#include "workloads/templates.hh"

namespace gt::core
{

/** One machine design point to detail-validate under. */
struct DesignPoint
{
    gpu::DeviceConfig config = gpu::DeviceConfig::hd4000();
    double freqMhz = 0.0;  //!< clock (0 = the design's maximum)
};

/** Validates selections against cycle-level simulation. */
class DetailedValidator
{
  public:
    using Backend = gpu::DetailedSimulator::Backend;

    /**
     * @param app     the profiled application (recording + database)
     * @param backend machine-layer strategy (GT_DETAILED default)
     * @param pool    worker pool for the parallel backend (null =
     *                the process-wide pool)
     */
    explicit DetailedValidator(
        const ProfiledApp &app,
        Backend backend = gpu::DetailedSimulator::defaultBackend(),
        sched::ThreadPool *pool = nullptr);

    /** Outcome of detail-validating one selection. */
    struct Report
    {
        double fullSpi = 0.0;       //!< detailed SPI, whole program
        double projectedSpi = 0.0;  //!< ratio-weighted subset SPI
        double errorPct = 0.0;      //!< |proj - full| / full * 100
        uint64_t fullWalked = 0;    //!< instrs walked, whole program
        uint64_t subsetWalked = 0;  //!< instrs walked, subset only

        /** Detailed-simulation work avoided by subsetting. */
        double
        workReduction() const
        {
            return (double)fullWalked /
                   (double)std::max<uint64_t>(1, subsetWalked);
        }
    };

    /**
     * Detail-validate @p sel at @p dp: simulate the selected
     * intervals cycle-by-cycle, extrapolate via the selection
     * ratios, and compare against detailed simulation of every
     * dispatch. Not thread-safe (the parallelism is internal).
     */
    Report validate(const SubsetSelection &sel,
                    const DesignPoint &dp = {});

    /** Functional pre-passes executed (distinct dispatches). */
    uint64_t checkpointBuilds() const;

    /** Cycle-level replay cells executed across all validate()s. */
    uint64_t cellSims() const { return cellCount; }

  private:
    /** Per-design-point cell cache, keyed by the machine parameters
     * the cycle model reads. */
    struct PointKey
    {
        uint32_t numEus, threadsPerEu, fpuLanes;
        double freqMhz, bwGBs, latNs, overheadUs;
        bool operator<(const PointKey &o) const;
    };
    struct PointCells
    {
        std::vector<gpu::DetailedResult> results;
        bool simulated = false;
    };

    const PointCells &cells(const DesignPoint &dp);

    const ProfiledApp &app;
    Backend backend;
    sched::ThreadPool *pool;
    workloads::TemplateJit jit;
    std::unique_ptr<ocl::GpuDriver> driver;
    std::unique_ptr<ocl::ClRuntime> runtime;
    std::map<PointKey, PointCells> pointCache;
    uint64_t cellCount = 0;
};

} // namespace gt::core

#endif // GT_CORE_DETAILED_VALIDATOR_HH
