#include "core/explorer.hh"

#include "common/logging.hh"

namespace gt::core
{

const ConfigResult &
Exploration::result(IntervalScheme scheme, FeatureKind feature) const
{
    for (const ConfigResult &r : results) {
        if (r.selection.scheme == scheme &&
            r.selection.feature == feature) {
            return r;
        }
    }
    panic("configuration not present in exploration");
}

Exploration
exploreConfigs(const TraceDatabase &db,
               const simpoint::ClusterOptions &options,
               uint64_t target_instrs)
{
    Exploration ex;
    ex.results.reserve(numIntervalSchemes * numFeatureKinds);
    for (int s = 0; s < numIntervalSchemes; ++s) {
        for (int f = 0; f < numFeatureKinds; ++f) {
            ConfigResult r;
            r.selection = selectSubset(db, (IntervalScheme)s,
                                       (FeatureKind)f, options,
                                       target_instrs);
            r.errorPct = selectionErrorPct(db, r.selection);
            ex.results.push_back(std::move(r));
        }
    }
    return ex;
}

const ConfigResult &
pickMinError(const Exploration &ex)
{
    GT_ASSERT(!ex.results.empty(), "empty exploration");
    const ConfigResult *best = &ex.results[0];
    for (const ConfigResult &r : ex.results) {
        if (r.errorPct < best->errorPct)
            best = &r;
    }
    return *best;
}

const ConfigResult &
pickCoOptimized(const Exploration &ex, double threshold_pct)
{
    GT_ASSERT(!ex.results.empty(), "empty exploration");
    const ConfigResult *best = nullptr;
    for (const ConfigResult &r : ex.results) {
        if (r.errorPct > threshold_pct)
            continue;
        if (!best ||
            r.selection.selectionFraction() <
                best->selection.selectionFraction()) {
            best = &r;
        }
    }
    return best ? *best : pickMinError(ex);
}

} // namespace gt::core
