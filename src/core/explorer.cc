#include "core/explorer.hh"

#include <optional>

#include "common/logging.hh"
#include "core/feature_engine.hh"

namespace gt::core
{

const ConfigResult &
Exploration::result(IntervalScheme scheme, FeatureKind feature) const
{
    size_t idx = (size_t)scheme * numFeatureKinds + (size_t)feature;
    GT_ASSERT(idx < results.size(),
              "configuration not present in exploration");
    const ConfigResult &r = results[idx];
    GT_ASSERT(r.selection.scheme == scheme &&
                  r.selection.feature == feature,
              "exploration slot ", idx,
              " holds the wrong configuration");
    return r;
}

simpoint::KMeansStats
Exploration::clusterStats() const
{
    simpoint::KMeansStats stats;
    for (const ConfigResult &r : results)
        stats.merge(r.selection.clusterStats);
    return stats;
}

Exploration
exploreConfigs(const TraceDatabase &db,
               const simpoint::ClusterOptions &options,
               uint64_t target_instrs, const FeatureEngine *engine)
{
    sched::ThreadPool &pool = options.pool
        ? *options.pool
        : sched::ThreadPool::global();

    // One feature engine serves every evaluation: dispatch profiles
    // are lowered once and projection rows derived once, before the
    // fan-out, instead of 30 times inside it.
    std::optional<FeatureEngine> local;
    if (!engine) {
        local.emplace(db);
        engine = &*local;
    }
    GT_ASSERT(&engine->database() == &db,
              "feature engine built over a different database");

    // All 30 (scheme, feature) evaluations read the same immutable
    // TraceDatabase and FeatureEngine (const-qualified access only;
    // see their class comments) and write disjoint slots in the
    // paper's enumeration order, so the fan-out is bit-identical to
    // the serial loop.
    constexpr size_t num_configs =
        (size_t)numIntervalSchemes * numFeatureKinds;
    Exploration ex;
    ex.results.resize(num_configs);
    pool.parallelFor(
        num_configs,
        [&](size_t idx) {
            int s = (int)(idx / numFeatureKinds);
            int f = (int)(idx % numFeatureKinds);
            ConfigResult &r = ex.results[idx];
            r.selection = selectSubset(db, (IntervalScheme)s,
                                       (FeatureKind)f, options,
                                       target_instrs, engine);
            r.errorPct = selectionErrorPct(db, r.selection);
        },
        1);
    return ex;
}

const ConfigResult &
pickMinError(const Exploration &ex)
{
    GT_ASSERT(!ex.results.empty(), "empty exploration");
    const ConfigResult *best = &ex.results[0];
    for (const ConfigResult &r : ex.results) {
        if (r.errorPct < best->errorPct)
            best = &r;
    }
    return *best;
}

const ConfigResult &
pickCoOptimized(const Exploration &ex, double threshold_pct)
{
    GT_ASSERT(!ex.results.empty(), "empty exploration");
    const ConfigResult *best = nullptr;
    for (const ConfigResult &r : ex.results) {
        if (r.errorPct > threshold_pct)
            continue;
        if (!best ||
            r.selection.selectionFraction() <
                best->selection.selectionFraction()) {
            best = &r;
        }
    }
    return best ? *best : pickMinError(ex);
}

} // namespace gt::core
