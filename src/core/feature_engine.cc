#include "core/feature_engine.hh"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "common/logging.hh"

namespace gt::core
{

FeatureBackend
defaultFeatureBackend()
{
    static const FeatureBackend selected = [] {
        FeatureBackend b = FeatureBackend::Flat;
        if (const char *env = std::getenv("GT_FEATURES");
            env && *env != '\0') {
            std::string value(env);
            if (value == "map") {
                b = FeatureBackend::Map;
            } else if (value != "flat") {
                warn("ignoring invalid GT_FEATURES value '", value,
                     "' (expected 'map' or 'flat')");
            }
        }
        inform("features: ", featureBackendName(b),
               " extraction backend "
               "(override with GT_FEATURES=map|flat)");
        return b;
    }();
    return selected;
}

const char *
featureBackendName(FeatureBackend backend)
{
    return backend == FeatureBackend::Map ? "map" : "flat";
}

DispatchFeatureCache::DispatchFeatureCache(const TraceDatabase &db)
{
    for (uint64_t d = 0; d < db.numDispatches(); ++d)
        appendDispatch(db.profileAt(d));
    refreshColumns();
}

void
DispatchFeatureCache::appendDispatch(
    const gtpin::DispatchProfile &p)
{
    using detail::mixFeatureKey;
    using detail::tagBase;
    using detail::tagRead;
    using detail::tagReadWrite;
    using detail::tagWrite;

    p.checkShape();

    // Interim column ids are assigned in first-encounter order and
    // never change, so already-lowered streams stay valid as more
    // dispatches arrive; refreshColumns() re-derives the ascending-
    // key ranks queries read through. Hash-colliding keys (however
    // unlikely at 64 bits) intern to one column, matching the map
    // oracle's merge of colliding contributions.
    auto intern = [&](uint64_t key) {
        auto [it, inserted] = idOf.emplace(key, (uint32_t)idOf.size());
        if (inserted) {
            internKeys.push_back(key);
            ranksStale = true;
        }
        return it->second;
    };

    auto push = [&](Stream &stream, uint64_t key, double value) {
        // Zero contributions are dropped exactly as the oracle's
        // add() drops them.
        if (value == 0.0)
            return;
        stream.cols.push_back(intern(key));
        stream.values.push_back(value);
    };

    double instrs = (double)p.instrs;
    push(streams[knBase],
         mixFeatureKey(p.kernelId, 0, 0, tagBase), instrs);
    push(streams[knArgsBase],
         mixFeatureKey(p.kernelId, p.argsHash, 0, tagBase),
         instrs);
    push(streams[knGwsBase],
         mixFeatureKey(p.kernelId, 0, p.globalWorkSize, tagBase),
         instrs);
    push(streams[knArgsGwsBase],
         mixFeatureKey(p.kernelId, p.argsHash, p.globalWorkSize,
                       tagBase),
         instrs);
    push(streams[knRw],
         mixFeatureKey(p.kernelId, 0, 0, tagRead),
         (double)p.bytesRead);
    push(streams[knRw],
         mixFeatureKey(p.kernelId, 0, 0, tagWrite),
         (double)p.bytesWritten);

    for (size_t b = 0; b < p.blockCounts.size(); ++b) {
        uint64_t count = p.blockCounts[b];
        if (count == 0)
            continue;
        double weighted = (double)count * p.blockLens[b];
        push(streams[bbBase],
             mixFeatureKey(p.kernelId, b, 0, tagBase), weighted);
        double read = (double)count * p.blockReadBytes[b];
        double written = (double)count * p.blockWriteBytes[b];
        push(streams[bbRead],
             mixFeatureKey(p.kernelId, b, 0, tagRead), read);
        push(streams[bbWrite],
             mixFeatureKey(p.kernelId, b, 0, tagWrite), written);
        push(streams[bbReadWrite],
             mixFeatureKey(p.kernelId, b, 0, tagReadWrite),
             read + written);
    }

    for (Stream &stream : streams)
        stream.offsets.push_back(stream.cols.size());
    ++numDispatches;
}

void
DispatchFeatureCache::refreshColumns()
{
    if (!ranksStale && colKeys.size() == internKeys.size())
        return;

    // Rank columns so that ascending rank order is ascending key
    // order — the map oracle's iteration order. Interned keys are
    // distinct, so the order (and thus every rank) is deterministic.
    std::vector<uint32_t> order((uint32_t)internKeys.size());
    for (uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) {
                  return internKeys[a] < internKeys[b];
              });
    rankOf.resize(order.size());
    colKeys.resize(order.size());
    for (uint32_t rank = 0; rank < order.size(); ++rank) {
        rankOf[order[rank]] = rank;
        colKeys[rank] = internKeys[order[rank]];
    }
    ranksStale = false;
}

uint64_t
DispatchFeatureCache::memoryBytes() const
{
    uint64_t bytes = sizeof(*this);
    for (const Stream &stream : streams) {
        bytes += stream.offsets.size() * sizeof(uint64_t);
        bytes += stream.cols.size() * sizeof(uint32_t);
        bytes += stream.values.size() * sizeof(double);
    }
    // Hash-node estimate for the intern map: pair plus bucket link.
    bytes += idOf.size() * (sizeof(uint64_t) + sizeof(uint32_t) +
                            2 * sizeof(void *));
    bytes += internKeys.size() * sizeof(uint64_t);
    bytes += rankOf.size() * sizeof(uint32_t);
    bytes += colKeys.size() * sizeof(uint64_t);
    return bytes;
}

std::array<DispatchFeatureCache::StreamId, 3>
DispatchFeatureCache::streamsFor(FeatureKind kind, int &count)
{
    switch (kind) {
      case FeatureKind::KN:
        count = 1;
        return {knBase, knBase, knBase};
      case FeatureKind::KN_ARGS:
        count = 1;
        return {knArgsBase, knArgsBase, knArgsBase};
      case FeatureKind::KN_GWS:
        count = 1;
        return {knGwsBase, knGwsBase, knGwsBase};
      case FeatureKind::KN_ARGS_GWS:
        count = 1;
        return {knArgsGwsBase, knArgsGwsBase, knArgsGwsBase};
      case FeatureKind::KN_RW:
        count = 2;
        return {knBase, knRw, knRw};
      case FeatureKind::BB:
        count = 1;
        return {bbBase, bbBase, bbBase};
      case FeatureKind::BB_R:
        count = 2;
        return {bbBase, bbRead, bbRead};
      case FeatureKind::BB_W:
        count = 2;
        return {bbBase, bbWrite, bbWrite};
      case FeatureKind::BB_R_W:
        count = 3;
        return {bbBase, bbRead, bbWrite};
      case FeatureKind::BB_RpW:
        count = 2;
        return {bbBase, bbReadWrite, bbReadWrite};
      default:
        panic("invalid feature kind ", (int)kind);
    }
}

void
DispatchFeatureCache::accumulate(const Interval &interval,
                                 FeatureKind kind,
                                 Scratch &scratch) const
{
    GT_ASSERT(interval.lastDispatch < numDispatches,
              "interval out of range");
    GT_ASSERT(!ranksStale,
              "query on a stale cache: call refreshColumns() after "
              "appending dispatches");

    if (scratch.acc.size() != colKeys.size()) {
        scratch.acc.assign(colKeys.size(), 0.0);
        scratch.epoch.assign(colKeys.size(), 0);
        scratch.generation = 0;
    }
    if (++scratch.generation == 0) {
        // Generation counter wrapped: reset the epoch marks.
        std::fill(scratch.epoch.begin(), scratch.epoch.end(), 0u);
        scratch.generation = 1;
    }
    scratch.touched.clear();

    int count = 0;
    std::array<StreamId, 3> list = streamsFor(kind, count);

    // Dispatch-major accumulation: per key, contributions combine in
    // dispatch-encounter order — the map oracle's per-key `+=`
    // order — with the base stream preceding the memory streams
    // within a dispatch just as the oracle emits them.
    for (uint64_t d = interval.firstDispatch;
         d <= interval.lastDispatch; ++d) {
        for (int s = 0; s < count; ++s) {
            const Stream &stream = streams[list[(size_t)s]];
            for (uint64_t i = stream.offsets[d];
                 i < stream.offsets[d + 1]; ++i) {
                uint32_t col = rankOf[stream.cols[i]];
                if (scratch.epoch[col] != scratch.generation) {
                    scratch.epoch[col] = scratch.generation;
                    scratch.acc[col] = stream.values[i];
                    scratch.touched.push_back(col);
                } else {
                    scratch.acc[col] += stream.values[i];
                }
            }
        }
    }

    // Ascending column order is ascending key order, the map
    // oracle's iteration order.
    std::sort(scratch.touched.begin(), scratch.touched.end());
}

FeatureVector
DispatchFeatureCache::extract(const Interval &interval,
                              FeatureKind kind,
                              Scratch &scratch) const
{
    accumulate(interval, kind, scratch);
    std::vector<uint64_t> keys;
    std::vector<double> values;
    keys.reserve(scratch.touched.size());
    values.reserve(scratch.touched.size());
    for (uint32_t col : scratch.touched) {
        keys.push_back(colKeys[col]);
        values.push_back(scratch.acc[col]);
    }
    return FeatureVector::fromSorted(std::move(keys),
                                     std::move(values));
}

simpoint::Point
DispatchFeatureCache::projectInto(
    const Interval &interval, FeatureKind kind, Scratch &scratch,
    const simpoint::ProjectionTable &table) const
{
    GT_ASSERT(table.size() == colKeys.size(),
              "projection table/cache key universe mismatch");
    accumulate(interval, kind, scratch);

    // Same FP order as FeatureVector::normalize() followed by
    // simpoint::project(): one ascending pass summing, then one
    // ascending pass dividing and accumulating per dimension.
    double sum = 0.0;
    for (uint32_t col : scratch.touched)
        sum += scratch.acc[col];
    simpoint::Point p{};
    for (uint32_t col : scratch.touched) {
        double v = scratch.acc[col];
        if (sum != 0.0)
            v /= sum;
        const simpoint::Point &row = table.rowAt(col);
        for (int d = 0; d < simpoint::projectedDims; ++d)
            p[d] += v * row[d];
    }
    return p;
}

FeatureEngine::FeatureEngine(const TraceDatabase &db_,
                             FeatureBackend backend)
    : db(db_), mode(backend)
{
    if (mode == FeatureBackend::Flat) {
        cache = std::make_unique<DispatchFeatureCache>(db);
        table = std::make_unique<simpoint::ProjectionTable>(
            simpoint::ProjectionTable::build(cache->uniqueKeys()));
    }
}

FeatureVector
FeatureEngine::extract(const Interval &interval,
                       FeatureKind kind) const
{
    if (mode == FeatureBackend::Map)
        return extractFeaturesMap(db, interval, kind);
    DispatchFeatureCache::Scratch scratch;
    return cache->extract(interval, kind, scratch);
}

std::vector<FeatureVector>
FeatureEngine::extractAll(const std::vector<Interval> &intervals,
                          FeatureKind kind) const
{
    std::vector<FeatureVector> vectors;
    vectors.reserve(intervals.size());
    if (mode == FeatureBackend::Map) {
        for (const Interval &iv : intervals) {
            FeatureVector vec = extractFeaturesMap(db, iv, kind);
            vec.normalize();
            vectors.push_back(std::move(vec));
        }
        return vectors;
    }
    DispatchFeatureCache::Scratch scratch;
    for (const Interval &iv : intervals) {
        FeatureVector vec = cache->extract(iv, kind, scratch);
        vec.normalize();
        vectors.push_back(std::move(vec));
    }
    return vectors;
}

std::vector<simpoint::Point>
FeatureEngine::projectAll(const std::vector<Interval> &intervals,
                          FeatureKind kind) const
{
    std::vector<simpoint::Point> points;
    points.reserve(intervals.size());
    if (mode == FeatureBackend::Map) {
        for (const Interval &iv : intervals) {
            FeatureVector vec = extractFeaturesMap(db, iv, kind);
            vec.normalize();
            points.push_back(simpoint::project(vec));
        }
        return points;
    }
    DispatchFeatureCache::Scratch scratch;
    for (const Interval &iv : intervals)
        points.push_back(
            cache->projectInto(iv, kind, scratch, *table));
    return points;
}

} // namespace gt::core
