#include "core/trace_db.hh"

#include <cstdlib>
#include <map>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/trace_store.hh"

namespace gt::core
{

TraceDatabase::TraceDatabase() = default;
TraceDatabase::~TraceDatabase() = default;
TraceDatabase::TraceDatabase(TraceDatabase &&) noexcept = default;
TraceDatabase &
TraceDatabase::operator=(TraceDatabase &&) noexcept = default;

TraceDbBackend
defaultTraceDbBackend()
{
    static const TraceDbBackend selected = [] {
        TraceDbBackend b = TraceDbBackend::Columnar;
        if (const char *env = std::getenv("GT_TRACEDB");
            env && *env != '\0') {
            std::string value(env);
            if (value == "mem") {
                b = TraceDbBackend::Mem;
            } else if (value != "columnar") {
                fatal("GT_TRACEDB='", value,
                      "' is not a trace-database backend "
                      "(expected 'mem' or 'columnar')");
            }
        }
        inform("trace db: ", traceDbBackendName(b),
               " storage backend "
               "(override with GT_TRACEDB=mem|columnar)");
        return b;
    }();
    return selected;
}

const char *
traceDbBackendName(TraceDbBackend backend)
{
    return backend == TraceDbBackend::Mem ? "mem" : "columnar";
}

TraceDatabase
TraceDatabase::build(std::vector<gtpin::DispatchProfile> profiles,
                     const std::vector<cfl::KernelTiming> &timings,
                     const std::vector<ocl::ApiCallRecord> &call_stream,
                     TraceDbBackend backend, uint32_t block_size)
{
    GT_ASSERT(profiles.size() == timings.size(),
              "GT-Pin saw ", profiles.size(),
              " dispatches but CoFluent timed ", timings.size());

    Builder builder;
    for (const auto &call : call_stream)
        builder.observeCall(call);
    for (size_t i = 0; i < profiles.size(); ++i)
        builder.append(std::move(profiles[i]), timings[i]);
    return std::move(builder).seal(backend, block_size);
}

TraceDatabase
TraceDatabase::openColumnarFile(const std::string &path)
{
    TraceDatabase db;
    db.kind = TraceDbBackend::Columnar;
    db.store = trace_store::ColumnarStore::openFile(path);
    db.count = db.store->numDispatches();
    db.instrTotal = db.store->totalInstrs();
    // Left-to-right over the raw double column — the identical FP
    // order the builder accumulated secondsTotal in, so the reopened
    // totals (and the cached SPI quotient) carry the same bits.
    const double *col = db.store->secondsData();
    for (uint64_t i = 0; i < db.count; ++i)
        db.secondsTotal += col[i];
    if (db.count > 0)
        db.syncEpochs = db.store->syncEpoch(db.count - 1) + 1;
    if (db.instrTotal > 0)
        db.spiCached = db.secondsTotal / (double)db.instrTotal;
    return db;
}

void
TraceDatabase::Builder::observeCall(const ocl::ApiCallRecord &call)
{
    // The synchronization-epoch walk: each dispatch (by seq) gets
    // the epoch its Kernel call was issued in; the counter advances
    // at each sync call that actually separated kernel work.
    switch (ocl::apiCategory(call.id)) {
      case ocl::ApiCategory::Kernel:
        epochOf[call.dispatchSeq] = epoch;
        epochHasWork = true;
        break;
      case ocl::ApiCategory::Synchronization:
        if (epochHasWork) {
            ++epoch;
            epochHasWork = false;
        }
        break;
      default:
        break;
    }
}

void
TraceDatabase::Builder::append(gtpin::DispatchProfile profile,
                               const cfl::KernelTiming &timing)
{
    GT_ASSERT(profile.seq == timing.seq,
              "profile/timing sequence mismatch at index ",
              records.size());
    auto it = epochOf.find(profile.seq);
    GT_ASSERT(it != epochOf.end(),
              "dispatch ", profile.seq,
              " missing from the host call stream");
    uint64_t sync_epoch = it->second;
    // The entry is consumed exactly once (seqs ascend), so pruning
    // it keeps the walk map at O(in-flight dispatches) instead of
    // O(history) — what makes walkState() cheap to keep resident
    // across a session eviction.
    epochOf.erase(it);
    appendJoined(std::move(profile), timing.seconds, sync_epoch);
}

void
TraceDatabase::Builder::appendJoined(gtpin::DispatchProfile profile,
                                     double seconds,
                                     uint64_t sync_epoch)
{
    DispatchRecord rec;
    rec.profile = std::move(profile);
    rec.profile.checkShape();
    rec.seconds = seconds;
    rec.syncEpoch = sync_epoch;

    // Dispatches must arrive in order with monotone epochs.
    if (!records.empty()) {
        GT_ASSERT(rec.profile.seq > records.back().profile.seq,
                  "dispatch records out of order");
        GT_ASSERT(rec.syncEpoch >= records.back().syncEpoch,
                  "sync epochs out of order");
    }

    // The running totals accumulate in append order — the identical
    // FP order batch build() uses, which is what makes seal() at any
    // prefix bitwise equal to the batch oracle.
    instrTotal += rec.profile.instrs;
    secondsTotal += rec.seconds;
    instrPrefix.push_back(instrPrefix.back() + rec.profile.instrs);
    secondsCol.push_back(rec.seconds);
    records.push_back(std::move(rec));
}

std::vector<std::pair<uint64_t, uint64_t>>
TraceDatabase::Builder::assignEpochs(
    const std::vector<ocl::ApiCallRecord> &calls)
{
    Builder walk;
    for (const ocl::ApiCallRecord &call : calls)
        walk.observeCall(call);
    // epochOf is keyed by seq, so map order is the ascending seq
    // order appends consume assignments in.
    return {walk.epochOf.begin(), walk.epochOf.end()};
}

TraceDatabase::Builder::EpochWalk
TraceDatabase::Builder::walkState() const
{
    EpochWalk walk;
    walk.pending = epochOf;
    walk.epoch = epoch;
    walk.hasWork = epochHasWork;
    return walk;
}

void
TraceDatabase::Builder::restoreWalk(EpochWalk walk)
{
    epochOf = std::move(walk.pending);
    epoch = walk.epoch;
    epochHasWork = walk.hasWork;
}

uint64_t
TraceDatabase::Builder::memoryBytes() const
{
    uint64_t bytes = sizeof(*this);
    bytes += records.size() * sizeof(DispatchRecord);
    for (const DispatchRecord &rec : records) {
        bytes += rec.profile.footprintBytes() -
                 sizeof(gtpin::DispatchProfile);
    }
    bytes += instrPrefix.size() * sizeof(uint64_t);
    bytes += secondsCol.size() * sizeof(double);
    // Red-black tree node overhead dominates the pending walk map.
    bytes += epochOf.size() * (sizeof(std::pair<uint64_t, uint64_t>) +
                               4 * sizeof(void *));
    return bytes;
}

void
TraceDatabase::Builder::writeArchive(const std::string &path,
                                     uint32_t block_size) const
{
    trace_store::ColumnarOptions options;
    options.blockSize = block_size;
    trace_store::ColumnarStore::writeFile(records, path, options);
}

TraceDatabase
TraceDatabase::Builder::seal(TraceDbBackend backend,
                             uint32_t block_size) const &
{
    Builder copy(*this);
    return std::move(copy).seal(backend, block_size);
}

TraceDatabase
TraceDatabase::Builder::seal(TraceDbBackend backend,
                             uint32_t block_size) &&
{
    TraceDatabase db;
    db.kind = backend;
    db.records = std::move(records);
    db.instrPrefix = std::move(instrPrefix);
    db.secondsCol = std::move(secondsCol);
    db.instrTotal = instrTotal;
    db.secondsTotal = secondsTotal;

    db.count = db.records.size();
    if (!db.records.empty())
        db.syncEpochs = db.records.back().syncEpoch + 1;
    if (db.instrTotal > 0)
        db.spiCached = db.secondsTotal / (double)db.instrTotal;

    if (backend == TraceDbBackend::Columnar && !db.records.empty()) {
        trace_store::ColumnarOptions options;
        options.blockSize = block_size;
        db.store = trace_store::ColumnarStore::spill(db.records,
                                                     options);
        // Drop the resident copies; every accessor now reads the
        // mapping. An empty database keeps no store — the count
        // guards in the accessors cover it.
        db.records.clear();
        db.records.shrink_to_fit();
        db.instrPrefix.clear();
        db.instrPrefix.shrink_to_fit();
        db.secondsCol.clear();
        db.secondsCol.shrink_to_fit();
    }

    // One footprint line per process, at the first real build: the
    // paper's traces are collected once and queried many times, so
    // this is where the resident-memory story is decided.
    if (db.count > 0) {
        static const bool logged = [&db] {
            TraceDbFootprint fp = db.memoryFootprint();
            inform("trace db: ", humanCount(db.count), " dispatches, ",
                   humanBytes(fp.residentBytes), " resident (",
                   humanBytes(fp.recordBytes), " records, ",
                   humanBytes(fp.columnBytes), " columns, ",
                   humanBytes(fp.profileBytes), " profiles; spill ",
                   humanBytes(fp.fileBytes), ")");
            return true;
        }();
        (void)logged;
    }
    return db;
}

const gtpin::DispatchProfile &
TraceDatabase::profileAt(uint64_t i) const
{
    GT_ASSERT(i < count, "dispatch ", i, " out of range");
    if (store)
        return store->profileAt(i);
    return records[i].profile;
}

double
TraceDatabase::seconds(uint64_t i) const
{
    GT_ASSERT(i < count, "dispatch ", i, " out of range");
    if (store)
        return store->seconds(i);
    return records[i].seconds;
}

uint64_t
TraceDatabase::syncEpoch(uint64_t i) const
{
    GT_ASSERT(i < count, "dispatch ", i, " out of range");
    if (store)
        return store->syncEpoch(i);
    return records[i].syncEpoch;
}

uint64_t
TraceDatabase::rangeInstrs(uint64_t first, uint64_t last) const
{
    GT_ASSERT(first <= last && last < count,
              "instr range [", first, ", ", last, "] out of range");
    if (store) {
        // Exact integers: anchor + varint-delta reconstruction makes
        // these the same prefix values the mem backend stores.
        return store->instrPrefixAt(last + 1) -
               store->instrPrefixAt(first);
    }
    return instrPrefix[last + 1] - instrPrefix[first];
}

double
TraceDatabase::rangeSeconds(uint64_t first, uint64_t last) const
{
    GT_ASSERT(first <= last && last < count,
              "seconds range [", first, ", ", last, "] out of range");
    // Left-to-right over the dense column on both backends; the
    // columnar file stores the raw double bits, so the accumulation
    // is bit-for-bit the same sum.
    const double *col = secondsData();
    double acc = 0.0;
    for (uint64_t i = first; i <= last; ++i)
        acc += col[i];
    return acc;
}

const double *
TraceDatabase::secondsData() const
{
    if (store)
        return store->secondsData();
    return secondsCol.data();
}

double
TraceDatabase::measuredSpi() const
{
    GT_ASSERT(instrTotal > 0, "measured SPI of an empty database");
    return spiCached;
}

TraceDbFootprint
TraceDatabase::memoryFootprint() const
{
    TraceDbFootprint fp;
    if (store) {
        fp.columnBytes = store->residentBytes();
        fp.profileBytes = store->payloadBytes();
        fp.fileBytes = store->fileBytes();
        fp.cacheBytes = store->cacheBytesThisThread();
        fp.residentBytes = fp.columnBytes + fp.cacheBytes;
    } else {
        fp.recordBytes = records.size() * sizeof(DispatchRecord);
        for (const DispatchRecord &rec : records) {
            fp.profileBytes += rec.profile.footprintBytes() -
                               sizeof(gtpin::DispatchProfile);
        }
        fp.columnBytes = instrPrefix.size() * sizeof(uint64_t) +
                         secondsCol.size() * sizeof(double);
        fp.residentBytes =
            fp.recordBytes + fp.profileBytes + fp.columnBytes;
    }
    return fp;
}

} // namespace gt::core
