#include "core/trace_db.hh"

#include <map>

#include "common/logging.hh"

namespace gt::core
{

TraceDatabase
TraceDatabase::build(std::vector<gtpin::DispatchProfile> profiles,
                     const std::vector<cfl::KernelTiming> &timings,
                     const std::vector<ocl::ApiCallRecord> &call_stream)
{
    GT_ASSERT(profiles.size() == timings.size(),
              "GT-Pin saw ", profiles.size(),
              " dispatches but CoFluent timed ", timings.size());

    // Walk the host call stream to assign each dispatch (by seq) the
    // synchronization epoch it falls in: the epoch counter advances
    // at each sync call that actually separated kernel work.
    std::map<uint64_t, uint64_t> epoch_of;
    uint64_t epoch = 0;
    bool epoch_has_work = false;
    for (const auto &call : call_stream) {
        switch (ocl::apiCategory(call.id)) {
          case ocl::ApiCategory::Kernel:
            epoch_of[call.dispatchSeq] = epoch;
            epoch_has_work = true;
            break;
          case ocl::ApiCategory::Synchronization:
            if (epoch_has_work) {
                ++epoch;
                epoch_has_work = false;
            }
            break;
          default:
            break;
        }
    }

    TraceDatabase db;
    db.records.reserve(profiles.size());
    db.instrPrefix.reserve(profiles.size() + 1);
    db.instrPrefix.push_back(0);
    db.secondsCol.reserve(profiles.size());
    for (size_t i = 0; i < profiles.size(); ++i) {
        GT_ASSERT(profiles[i].seq == timings[i].seq,
                  "profile/timing sequence mismatch at index ", i);
        DispatchRecord rec;
        rec.profile = std::move(profiles[i]);
        rec.profile.checkShape();
        rec.seconds = timings[i].seconds;
        auto it = epoch_of.find(rec.profile.seq);
        GT_ASSERT(it != epoch_of.end(),
                  "dispatch ", rec.profile.seq,
                  " missing from the host call stream");
        rec.syncEpoch = it->second;
        db.instrTotal += rec.profile.instrs;
        db.secondsTotal += rec.seconds;
        db.instrPrefix.push_back(db.instrPrefix.back() +
                                 rec.profile.instrs);
        db.secondsCol.push_back(rec.seconds);
        db.records.push_back(std::move(rec));
    }

    // Records must arrive in dispatch order with monotone epochs.
    for (size_t i = 1; i < db.records.size(); ++i) {
        GT_ASSERT(db.records[i].profile.seq >
                      db.records[i - 1].profile.seq,
                  "dispatch records out of order");
        GT_ASSERT(db.records[i].syncEpoch >=
                      db.records[i - 1].syncEpoch,
                  "sync epochs out of order");
    }

    if (!db.records.empty())
        db.syncEpochs = db.records.back().syncEpoch + 1;
    return db;
}

uint64_t
TraceDatabase::rangeInstrs(uint64_t first, uint64_t last) const
{
    GT_ASSERT(first <= last && last < records.size(),
              "instr range [", first, ", ", last, "] out of range");
    return instrPrefix[last + 1] - instrPrefix[first];
}

double
TraceDatabase::rangeSeconds(uint64_t first, uint64_t last) const
{
    GT_ASSERT(first <= last && last < records.size(),
              "seconds range [", first, ", ", last, "] out of range");
    double acc = 0.0;
    for (uint64_t i = first; i <= last; ++i)
        acc += secondsCol[i];
    return acc;
}

double
TraceDatabase::measuredSpi() const
{
    GT_ASSERT(instrTotal > 0, "measured SPI of an empty database");
    return secondsTotal / (double)instrTotal;
}

} // namespace gt::core
