#include "core/selection_io.hh"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>

#include "common/logging.hh"

namespace gt::core
{

namespace
{

const char *magic = "gtpin-selection v1";

} // anonymous namespace

void
saveSelection(const SubsetSelection &sel, std::ostream &os)
{
    os << magic << '\n';
    os << "scheme " << (int)sel.scheme << '\n';
    os << "feature " << (int)sel.feature << '\n';
    os << "totalInstrs " << sel.totalInstrs << '\n';
    os << "intervals " << sel.intervals.size() << '\n';
    for (const Interval &iv : sel.intervals) {
        os << iv.firstDispatch << ' ' << iv.lastDispatch << ' '
           << iv.instrs << ' ' << std::setprecision(17)
           << iv.seconds << '\n';
    }
    // The SimPoint-style body: "interval cluster" then
    // "weight cluster".
    os << "simpoints " << sel.selected.size() << '\n';
    for (size_t c = 0; c < sel.selected.size(); ++c)
        os << sel.selected[c] << ' ' << c << '\n';
    os << "weights " << sel.ratios.size() << '\n';
    for (size_t c = 0; c < sel.ratios.size(); ++c)
        os << std::setprecision(17) << sel.ratios[c] << ' ' << c
           << '\n';
    os << "end\n";
}

SubsetSelection
loadSelection(std::istream &is)
{
    std::string header;
    std::getline(is, header);
    if (header != magic)
        fatal("selection: bad magic '", header, "'");

    auto expect = [&](const char *keyword) {
        std::string tok;
        if (!(is >> tok) || tok != keyword)
            fatal("selection: expected '", keyword, "', got '", tok,
                  "'");
    };

    SubsetSelection sel;
    int value;
    expect("scheme");
    if (!(is >> value) || value < 0 || value >= numIntervalSchemes)
        fatal("selection: invalid scheme");
    sel.scheme = (IntervalScheme)value;
    expect("feature");
    if (!(is >> value) || value < 0 || value >= numFeatureKinds)
        fatal("selection: invalid feature kind");
    sel.feature = (FeatureKind)value;
    expect("totalInstrs");
    if (!(is >> sel.totalInstrs))
        fatal("selection: invalid totalInstrs");

    size_t n;
    expect("intervals");
    if (!(is >> n))
        fatal("selection: invalid interval count");
    sel.intervals.resize(n);
    for (Interval &iv : sel.intervals) {
        if (!(is >> iv.firstDispatch >> iv.lastDispatch >>
              iv.instrs >> iv.seconds)) {
            fatal("selection: truncated interval list");
        }
        if (iv.firstDispatch > iv.lastDispatch)
            fatal("selection: inverted interval");
    }

    expect("simpoints");
    if (!(is >> n))
        fatal("selection: invalid simpoint count");
    sel.selected.resize(n);
    for (size_t c = 0; c < n; ++c) {
        size_t cluster;
        if (!(is >> sel.selected[c] >> cluster) || cluster != c)
            fatal("selection: malformed simpoints block");
        if (sel.selected[c] >= sel.intervals.size())
            fatal("selection: simpoint out of range");
        sel.selectedInstrs += sel.intervals[sel.selected[c]].instrs;
    }

    expect("weights");
    if (!(is >> n) || n != sel.selected.size())
        fatal("selection: weights/simpoints size mismatch");
    sel.ratios.resize(n);
    double sum = 0.0;
    for (size_t c = 0; c < n; ++c) {
        size_t cluster;
        if (!(is >> sel.ratios[c] >> cluster) || cluster != c)
            fatal("selection: malformed weights block");
        if (sel.ratios[c] <= 0.0)
            fatal("selection: non-positive weight");
        sum += sel.ratios[c];
    }
    if (sum < 0.999 || sum > 1.001)
        fatal("selection: weights sum to ", sum, ", expected 1");

    expect("end");
    return sel;
}

void
saveSelectionFile(const SubsetSelection &sel, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    saveSelection(sel, os);
    if (!os)
        fatal("write to '", path, "' failed");
}

SubsetSelection
loadSelectionFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "'");
    return loadSelection(is);
}

} // namespace gt::core
