#include "core/interval.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gt::core
{

const char *
intervalSchemeName(IntervalScheme scheme)
{
    switch (scheme) {
      case IntervalScheme::SyncBounded: return "sync";
      case IntervalScheme::ApproxInstructions: return "approx-n";
      case IntervalScheme::SingleKernel: return "kernel";
      default:
        panic("invalid interval scheme ", (int)scheme);
    }
}

double
Interval::spi() const
{
    GT_ASSERT(instrs > 0, "SPI of an instruction-free interval");
    return seconds / (double)instrs;
}

std::vector<Interval>
buildIntervals(const TraceDatabase &db, IntervalScheme scheme,
               uint64_t target_instrs)
{
    const uint64_t num = db.numDispatches();
    GT_ASSERT(num > 0, "interval build on empty trace");

    // Resolve the approx default here, where the final total is
    // known, so the streaming core below runs its O(1) fixed-target
    // path. The per-dispatch feeds read the same precomputed columns
    // the previous batch loop did: exact integer prefix deltas and
    // the dense seconds column, accumulated left-to-right.
    if (target_instrs == 0)
        target_instrs = std::max<uint64_t>(1, db.totalInstrs() / 1000);

    IncrementalIntervals inc(scheme, target_instrs);
    const double *seconds = db.secondsData();
    for (uint64_t i = 0; i < num; ++i)
        inc.append(db.syncEpoch(i), db.rangeInstrs(i, i), seconds[i]);
    return inc.snapshot();
}

IncrementalIntervals::IncrementalIntervals(IntervalScheme scheme,
                                           uint64_t target_instrs)
    : kind(scheme), target(target_instrs)
{
}

void
IncrementalIntervals::append(uint64_t sync_epoch, uint64_t instrs,
                             double seconds)
{
    // The retained columns exist only to re-derive the approx chunk
    // size from the final total at snapshot time.
    const bool derive_target =
        kind == IntervalScheme::ApproxInstructions && target == 0;
    if (derive_target) {
        epochCol.push_back(sync_epoch);
        instrCol.push_back(instrs);
        secondsCol.push_back(seconds);
    }

    if (open && !derive_target) {
        bool boundary = false;
        switch (kind) {
          case IntervalScheme::SyncBounded:
            boundary = sync_epoch != curEpoch;
            break;
          case IntervalScheme::ApproxInstructions:
            // Close at sync epochs always; otherwise once the chunk
            // has reached the target. A kernel invocation is never
            // split, so chunks may overshoot — that is the
            // "approximately" in the paper's name. cur.instrs is the
            // exact count of everything before this dispatch, the
            // same value the batch loop reads off the prefix sums.
            boundary = sync_epoch != curEpoch ||
                cur.instrs >= target;
            break;
          case IntervalScheme::SingleKernel:
            boundary = true;
            break;
        }
        if (boundary) {
            completed.push_back(cur);
            open = false;
        }
    }

    if (!open) {
        cur = Interval{};
        cur.firstDispatch = n;
        curEpoch = sync_epoch;
        open = true;
    }

    // Left-to-right accumulation per interval — the identical FP
    // order rangeSeconds() uses when the batch loop closes the same
    // interval, so the seconds match bitwise.
    cur.lastDispatch = n;
    cur.instrs += instrs;
    cur.seconds += seconds;
    instrTotal += instrs;
    ++n;
}

std::vector<Interval>
IncrementalIntervals::snapshot() const
{
    if (kind == IntervalScheme::ApproxInstructions && target == 0) {
        return rescan(std::max<uint64_t>(1, instrTotal / 1000));
    }
    std::vector<Interval> out = completed;
    if (open)
        out.push_back(cur);
    return out;
}

std::vector<Interval>
IncrementalIntervals::rescan(uint64_t resolved_target) const
{
    IncrementalIntervals inc(kind, resolved_target);
    for (uint64_t i = 0; i < n; ++i)
        inc.append(epochCol[i], instrCol[i], secondsCol[i]);
    return inc.snapshot();
}

IntervalStats
intervalStats(const std::vector<Interval> &intervals)
{
    IntervalStats stats;
    stats.count = intervals.size();
    if (intervals.empty())
        return stats;
    stats.minInstrs = intervals[0].instrs;
    stats.maxInstrs = intervals[0].instrs;
    double sum = 0.0;
    for (const Interval &iv : intervals) {
        stats.minInstrs = std::min(stats.minInstrs, iv.instrs);
        stats.maxInstrs = std::max(stats.maxInstrs, iv.instrs);
        sum += (double)iv.instrs;
    }
    stats.avgInstrs = sum / (double)intervals.size();
    return stats;
}

} // namespace gt::core
