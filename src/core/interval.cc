#include "core/interval.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gt::core
{

const char *
intervalSchemeName(IntervalScheme scheme)
{
    switch (scheme) {
      case IntervalScheme::SyncBounded: return "sync";
      case IntervalScheme::ApproxInstructions: return "approx-n";
      case IntervalScheme::SingleKernel: return "kernel";
      default:
        panic("invalid interval scheme ", (int)scheme);
    }
}

double
Interval::spi() const
{
    GT_ASSERT(instrs > 0, "SPI of an instruction-free interval");
    return seconds / (double)instrs;
}

std::vector<Interval>
buildIntervals(const TraceDatabase &db, IntervalScheme scheme,
               uint64_t target_instrs)
{
    const uint64_t num = db.numDispatches();
    GT_ASSERT(num > 0, "interval build on empty trace");

    if (target_instrs == 0)
        target_instrs = std::max<uint64_t>(1, db.totalInstrs() / 1000);

    std::vector<Interval> intervals;
    Interval cur;
    bool open = false;

    // Interval accounting rides the database's precomputed columns:
    // the instruction prefix sums make both the boundary check and
    // the closed interval's count O(1) (exact — integer), and the
    // dense seconds column keeps the per-interval time the same
    // left-to-right accumulation as before, bitwise.
    auto close = [&](uint64_t last) {
        cur.lastDispatch = last;
        cur.instrs = db.rangeInstrs(cur.firstDispatch, last);
        cur.seconds = db.rangeSeconds(cur.firstDispatch, last);
        intervals.push_back(cur);
        open = false;
    };

    for (uint64_t i = 0; i < num; ++i) {
        const uint64_t epoch = db.syncEpoch(i);

        if (open) {
            bool boundary = false;
            switch (scheme) {
              case IntervalScheme::SyncBounded:
                boundary = epoch != db.syncEpoch(cur.firstDispatch);
                break;
              case IntervalScheme::ApproxInstructions:
                // Close at sync epochs always; otherwise once the
                // chunk has reached the target. A kernel invocation
                // is never split, so chunks may overshoot — that is
                // the "approximately" in the paper's name.
                boundary = epoch !=
                        db.syncEpoch(cur.firstDispatch) ||
                    db.rangeInstrs(cur.firstDispatch, i - 1) >=
                        target_instrs;
                break;
              case IntervalScheme::SingleKernel:
                boundary = true;
                break;
            }
            if (boundary)
                close(i - 1);
        }

        if (!open) {
            cur = Interval{};
            cur.firstDispatch = i;
            open = true;
        }
    }
    if (open)
        close(num - 1);

    return intervals;
}

IntervalStats
intervalStats(const std::vector<Interval> &intervals)
{
    IntervalStats stats;
    stats.count = intervals.size();
    if (intervals.empty())
        return stats;
    stats.minInstrs = intervals[0].instrs;
    stats.maxInstrs = intervals[0].instrs;
    double sum = 0.0;
    for (const Interval &iv : intervals) {
        stats.minInstrs = std::min(stats.minInstrs, iv.instrs);
        stats.maxInstrs = std::max(stats.maxInstrs, iv.instrs);
        sum += (double)iv.instrs;
    }
    stats.avgInstrs = sum / (double)intervals.size();
    return stats;
}

} // namespace gt::core
