/**
 * @file
 * The 30-configuration exploration and the paper's two selection
 * policies.
 *
 * Section V-C's key observation: profiling an application once is
 * enough to evaluate all 3 interval schemes x 10 feature kinds with
 * no additional native runs and no simulation, because both interval
 * construction and feature extraction are post-processing over the
 * same trace database. The explorer does exactly that, and the two
 * policies pick from the 30 results:
 *
 *  - pickMinError: the per-application error-minimizing
 *    configuration (Fig. 6: 0.3% average error, 35x average
 *    speedup);
 *  - pickCoOptimized: the smallest selection with error below a
 *    threshold, falling back to minimum error when nothing
 *    qualifies (Fig. 7: e.g. 223x average speedup at the 10%
 *    threshold).
 */

#ifndef GT_CORE_EXPLORER_HH
#define GT_CORE_EXPLORER_HH

#include "core/selection.hh"

namespace gt::core
{

/** One evaluated (interval scheme, feature kind) configuration. */
struct ConfigResult
{
    SubsetSelection selection;
    double errorPct = 0.0;
};

/** All 30 configurations for one application. */
struct Exploration
{
    /** Indexed scheme-major: slot scheme * numFeatureKinds +
     * feature, the order exploreConfigs fills. */
    std::vector<ConfigResult> results;

    const ConfigResult &result(IntervalScheme scheme,
                               FeatureKind feature) const;

    /** K-means assignment work summed over all 30 configurations
     * (the exploration-wide prune rate). */
    simpoint::KMeansStats clusterStats() const;
};

/**
 * Evaluate all 30 configurations on one profiled application.
 *
 * @param engine shared feature engine over @p db; null builds one
 *        up front. Either way a single engine (one dispatch-profile
 *        lowering, one projection table) serves all 30 evaluations.
 */
Exploration exploreConfigs(
    const TraceDatabase &db,
    const simpoint::ClusterOptions &options = {},
    uint64_t target_instrs = 0,
    const FeatureEngine *engine = nullptr);

/** Fig. 6 policy: minimize error. */
const ConfigResult &pickMinError(const Exploration &exploration);

/**
 * Fig. 7 policy: smallest selection with error <= @p threshold_pct;
 * if none qualifies, the minimum-error configuration.
 */
const ConfigResult &pickCoOptimized(const Exploration &exploration,
                                    double threshold_pct);

} // namespace gt::core

#endif // GT_CORE_EXPLORER_HH
