#include "core/trace_store.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/varint.hh"

namespace gt::core::trace_store
{

namespace
{

// --- On-disk layout ---------------------------------------------

constexpr char storeMagic[8] = {'G', 'T', 'C', 'O', 'L', 'D', 'B',
                                '\0'};
constexpr uint32_t storeVersion = 1;

enum Section : int
{
    SecSeconds, //!< raw double[numDispatches]
    SecInstr,   //!< per-dispatch instr varints, grouped by block
    SecEpochs,  //!< sync epochs, run-length encoded
    SecNames,   //!< interned kernel-name table
    SecIndex,   //!< (payloadOff, instrOff, instrAnchor) per block
    SecPayload, //!< varint-packed profiles, grouped by block
    numSections,
};

/** Fixed-size little-endian header; fileBytes is the truncation
 * check (a short file can never pass it). */
struct FileHeader
{
    char magic[8];
    uint32_t version;
    uint32_t blockSize;
    uint64_t numDispatches;
    uint64_t fileBytes;
    uint64_t sectionOff[numSections];
    uint64_t sectionLen[numSections];
};

static_assert(sizeof(FileHeader) == 8 + 4 + 4 + 8 + 8 +
                                        2 * 8 * numSections,
              "FileHeader must have no padding surprises");

uint64_t
padTo8(uint64_t off)
{
    return (off + 7) & ~(uint64_t)7;
}

/** Encode @p records into one self-contained file image. */
std::vector<uint8_t>
encodeFile(const std::vector<DispatchRecord> &records,
           const ColumnarOptions &options)
{
    const uint64_t block = options.blockSize;
    GT_ASSERT(block > 0, "columnar block size must be positive");
    const uint64_t n = records.size();
    const uint64_t num_blocks = (n + block - 1) / block;

    std::vector<uint8_t> seconds, instr, epochs, names_sec, index,
        payload;
    seconds.reserve(n * sizeof(double));

    // Kernel names intern to first-encounter ids: dispatches repeat
    // a handful of kernels thousands of times.
    std::map<std::string, uint32_t> name_id;
    std::vector<const std::string *> name_order;

    std::vector<uint64_t> payload_off, instr_off, anchor;
    payload_off.reserve(num_blocks + 1);
    instr_off.reserve(num_blocks + 1);
    anchor.reserve(num_blocks + 1);

    uint64_t prefix = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const DispatchRecord &rec = records[i];
        if (i % block == 0) {
            payload_off.push_back(payload.size());
            instr_off.push_back(instr.size());
            anchor.push_back(prefix);
        }
        putBytes(seconds, &rec.seconds, sizeof(double));
        putVarint(instr, rec.profile.instrs);
        prefix += rec.profile.instrs;

        auto [it, fresh] = name_id.emplace(
            rec.profile.kernelName, (uint32_t)name_id.size());
        if (fresh)
            name_order.push_back(&it->first);
        gtpin::encodeProfilePayload(rec.profile, it->second,
                                    payload);
    }
    // Sentinel entry: closes the last block's byte ranges and
    // carries the total-instruction anchor.
    payload_off.push_back(payload.size());
    instr_off.push_back(instr.size());
    anchor.push_back(prefix);

    putVarint(names_sec, name_order.size());
    for (const std::string *name : name_order) {
        putVarint(names_sec, name->size());
        putBytes(names_sec, name->data(), name->size());
    }

    // Sync epochs change at a tiny fraction of dispatches: store
    // (run length, epoch) pairs.
    std::vector<std::pair<uint64_t, uint64_t>> runs;
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t epoch = records[i].syncEpoch;
        if (runs.empty() || runs.back().second != epoch)
            runs.emplace_back(0, epoch);
        ++runs.back().first;
    }
    putVarint(epochs, runs.size());
    for (const auto &[len, epoch] : runs) {
        putVarint(epochs, len);
        putVarint(epochs, epoch);
    }

    index.reserve((num_blocks + 1) * 3 * sizeof(uint64_t));
    for (uint64_t b = 0; b <= num_blocks; ++b) {
        putBytes(index, &payload_off[b], sizeof(uint64_t));
        putBytes(index, &instr_off[b], sizeof(uint64_t));
        putBytes(index, &anchor[b], sizeof(uint64_t));
    }

    FileHeader header{};
    std::memcpy(header.magic, storeMagic, sizeof(header.magic));
    header.version = storeVersion;
    header.blockSize = (uint32_t)block;
    header.numDispatches = n;

    const std::vector<uint8_t> *sections[numSections] = {};
    sections[SecSeconds] = &seconds;
    sections[SecInstr] = &instr;
    sections[SecEpochs] = &epochs;
    sections[SecNames] = &names_sec;
    sections[SecIndex] = &index;
    sections[SecPayload] = &payload;

    uint64_t off = sizeof(FileHeader);
    for (int s = 0; s < numSections; ++s) {
        off = padTo8(off);
        header.sectionOff[s] = off;
        header.sectionLen[s] = sections[s]->size();
        off += sections[s]->size();
    }
    header.fileBytes = off;

    std::vector<uint8_t> file(off, 0);
    std::memcpy(file.data(), &header, sizeof(header));
    for (int s = 0; s < numSections; ++s) {
        std::memcpy(file.data() + header.sectionOff[s],
                    sections[s]->data(), sections[s]->size());
    }
    return file;
}

std::string
spillDirectory(const ColumnarOptions &options)
{
    if (!options.spillDir.empty())
        return options.spillDir;
    if (const char *env = std::getenv("GT_TRACEDB_DIR");
        env && *env != '\0')
        return env;
    if (const char *env = std::getenv("TMPDIR"); env && *env != '\0')
        return env;
    return "/tmp";
}

// --- The per-thread decoded-block cache -------------------------

/**
 * A handful of decoded blocks per thread. Thread-local, so cache
 * fills never synchronize — concurrent readers of one shared store
 * each decode into their own slots (bounded duplicated work, zero
 * contention), which is what keeps the "const => freely shareable"
 * database contract intact under the 30-config fan-out.
 */
constexpr size_t numCacheSlots = 8;

struct CacheSlot
{
    uint64_t store = 0; //!< 0 = empty/invalidated
    uint64_t block = 0;
    bool profiles = false;
    uint64_t lastUse = 0;
    uint64_t bytes = 0;
    std::vector<uint64_t> prefix;
    std::vector<gtpin::DispatchProfile> profs;
};

struct ThreadCache
{
    std::array<CacheSlot, numCacheSlots> slots;
    uint64_t tick = 0;
    /** Last store-close generation this thread swept at. */
    uint64_t sweptGen = 0;
};

thread_local ThreadCache tlsCache;

/**
 * Live-store registry: ids of every mapped store, plus a generation
 * counter bumped at each destruction. Threads compare the counter
 * (one relaxed atomic load per cache access) and only take the
 * registry mutex when a store died since their last sweep, dropping
 * slots whose owner is gone — stale slots would otherwise pin freed
 * mappings' decoded blocks for the thread's lifetime.
 */
std::mutex registryMutex;
std::vector<uint64_t> liveStores;
std::atomic<uint64_t> closeGeneration{0};

void
registerStore(uint64_t id)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    liveStores.push_back(id);
}

void
deregisterStore(uint64_t id)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    liveStores.erase(
        std::remove(liveStores.begin(), liveStores.end(), id),
        liveStores.end());
    closeGeneration.fetch_add(1, std::memory_order_release);
}

/** Drop this thread's slots owned by destroyed stores. Cheap when
 * nothing died: one relaxed load, no lock. */
void
sweepDeadSlots(ThreadCache &tc)
{
    if (closeGeneration.load(std::memory_order_acquire) ==
        tc.sweptGen)
        return;
    std::lock_guard<std::mutex> lock(registryMutex);
    for (CacheSlot &slot : tc.slots) {
        if (slot.store == 0)
            continue;
        bool alive = std::find(liveStores.begin(), liveStores.end(),
                               slot.store) != liveStores.end();
        if (!alive) {
            slot.store = 0;
            slot.bytes = 0;
            slot.lastUse = 0;
            slot.prefix.clear();
            slot.prefix.shrink_to_fit();
            slot.profs.clear();
            slot.profs.shrink_to_fit();
        }
    }
    // Read under the same lock the destructor bumps it under, so a
    // sweep can never record a generation it has not acted on.
    tc.sweptGen = closeGeneration.load(std::memory_order_relaxed);
}

CacheSlot *
findSlot(uint64_t store, uint64_t block, bool profiles)
{
    ThreadCache &tc = tlsCache;
    sweepDeadSlots(tc);
    ++tc.tick;
    for (CacheSlot &slot : tc.slots) {
        if (slot.store == store && slot.block == block &&
            slot.profiles == profiles) {
            slot.lastUse = tc.tick;
            return &slot;
        }
    }
    return nullptr;
}

/** Evict the least-recently-used slot and hand it back cleared and
 * *unkeyed* — the caller keys it only after a successful decode, so
 * a decode that throws can never leave a poisoned hit behind. */
CacheSlot &
evictSlot()
{
    ThreadCache &tc = tlsCache;
    CacheSlot *victim = &tc.slots[0];
    for (CacheSlot &slot : tc.slots) {
        if (slot.lastUse < victim->lastUse)
            victim = &slot;
    }
    victim->store = 0;
    victim->bytes = 0;
    victim->prefix.clear();
    victim->profs.clear();
    return *victim;
}

std::atomic<uint64_t> nextStoreId{1};
std::atomic<uint64_t> nextSpillSerial{0};

} // anonymous namespace

// --- Building and opening ---------------------------------------

std::shared_ptr<const ColumnarStore>
ColumnarStore::spill(const std::vector<DispatchRecord> &records,
                     const ColumnarOptions &options)
{
    std::vector<uint8_t> file = encodeFile(records, options);

    std::string path = spillDirectory(options) + "/gt-tracedb-" +
                       std::to_string((uint64_t)::getpid()) + "-" +
                       std::to_string(nextSpillSerial.fetch_add(1)) +
                       ".gtcol";
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
        fatal("trace store: cannot create spill file '", path,
              "': ", std::strerror(errno),
              " (set GT_TRACEDB_DIR to a writable directory or "
              "GT_TRACEDB=mem)");
    }
    size_t written = 0;
    while (written < file.size()) {
        ssize_t w = ::write(fd, file.data() + written,
                            file.size() - written);
        if (w <= 0) {
            int err = errno;
            ::close(fd);
            ::unlink(path.c_str());
            fatal("trace store: write to '", path,
                  "' failed: ", std::strerror(err));
        }
        written += (size_t)w;
    }
    void *mapped = ::mmap(nullptr, file.size(), PROT_READ,
                          MAP_PRIVATE, fd, 0);
    int map_err = errno;
    ::close(fd);
    // Unlink immediately: the mapping keeps the data alive, and the
    // spill can never outlive the process, even on a crash.
    ::unlink(path.c_str());
    if (mapped == MAP_FAILED) {
        fatal("trace store: mmap of '", path,
              "' failed: ", std::strerror(map_err));
    }

    std::shared_ptr<ColumnarStore> store(new ColumnarStore);
    store->map = (const uint8_t *)mapped;
    store->mapLen = file.size();
    store->load("trace store spill '" + path + "'");
    return store;
}

void
ColumnarStore::writeFile(const std::vector<DispatchRecord> &records,
                         const std::string &path,
                         const ColumnarOptions &options)
{
    std::vector<uint8_t> file = encodeFile(records, options);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        fatal("trace store: cannot open '", path, "' for writing");
    os.write((const char *)file.data(),
             (std::streamsize)file.size());
    if (!os)
        fatal("trace store: write to '", path, "' failed");
}

std::shared_ptr<const ColumnarStore>
ColumnarStore::openFile(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        fatal("trace store: cannot open '", path,
              "': ", std::strerror(errno));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        fatal("trace store: stat of '", path,
              "' failed: ", std::strerror(err));
    }
    if (st.st_size < (off_t)sizeof(FileHeader)) {
        ::close(fd);
        fatal("trace store: '", path, "' is truncated (",
              st.st_size, " bytes, header needs ",
              sizeof(FileHeader), ")");
    }
    void *mapped = ::mmap(nullptr, (size_t)st.st_size, PROT_READ,
                          MAP_PRIVATE, fd, 0);
    int map_err = errno;
    ::close(fd);
    if (mapped == MAP_FAILED) {
        fatal("trace store: mmap of '", path,
              "' failed: ", std::strerror(map_err));
    }

    std::shared_ptr<ColumnarStore> store(new ColumnarStore);
    store->map = (const uint8_t *)mapped;
    store->mapLen = (uint64_t)st.st_size;
    store->load("trace store '" + path + "'");
    return store;
}

ColumnarStore::~ColumnarStore()
{
    if (storeId != 0)
        deregisterStore(storeId);
    if (map)
        ::munmap((void *)map, mapLen);
}

void
ColumnarStore::load(const std::string &what)
{
    storeId = nextStoreId.fetch_add(1);
    registerStore(storeId);

    GT_ASSERT(mapLen >= sizeof(FileHeader),
              what, ": mapping smaller than the header");
    FileHeader header;
    std::memcpy(&header, map, sizeof(header));
    if (std::memcmp(header.magic, storeMagic,
                    sizeof(storeMagic)) != 0)
        fatal(what, ": bad magic (not a columnar trace file)");
    if (header.version != storeVersion) {
        fatal(what, ": unsupported format version ", header.version,
              " (this build reads version ", storeVersion, ")");
    }
    if (header.fileBytes != mapLen) {
        fatal(what, ": truncated or padded file: header records ",
              header.fileBytes, " bytes, file has ", mapLen);
    }
    if (header.blockSize == 0)
        fatal(what, ": zero block size");

    count = header.numDispatches;
    blockLen = header.blockSize;
    numBlocks = (count + blockLen - 1) / blockLen;

    const uint8_t *section[numSections];
    for (int s = 0; s < numSections; ++s) {
        uint64_t off = header.sectionOff[s];
        uint64_t len = header.sectionLen[s];
        if (off > mapLen || len > mapLen - off) {
            fatal(what, ": section ", s, " [", off, ", +", len,
                  ") exceeds the ", mapLen, "-byte file");
        }
        section[s] = map + off;
    }

    if (header.sectionLen[SecSeconds] != count * sizeof(double)) {
        fatal(what, ": seconds column holds ",
              header.sectionLen[SecSeconds] / sizeof(double),
              " entries for ", count, " dispatches");
    }
    if (header.sectionOff[SecSeconds] % alignof(double) != 0)
        fatal(what, ": misaligned seconds column");
    secondsPtr = (const double *)section[SecSeconds];
    instrBase = section[SecInstr];
    payloadBase = section[SecPayload];
    payloadLen = header.sectionLen[SecPayload];

    // Block index: numBlocks + 1 raw (payloadOff, instrOff, anchor)
    // triplets, all monotone and closed by the sentinel.
    uint64_t entries = numBlocks + 1;
    if (header.sectionLen[SecIndex] !=
        entries * 3 * sizeof(uint64_t)) {
        fatal(what, ": block index holds ",
              header.sectionLen[SecIndex] / (3 * sizeof(uint64_t)),
              " entries, expected ", entries);
    }
    blockPayloadOff.resize(entries);
    blockInstrOff.resize(entries);
    blockAnchor.resize(entries);
    {
        ByteReader reader(section[SecIndex],
                          section[SecIndex] +
                              header.sectionLen[SecIndex],
                          "trace store block index");
        for (uint64_t b = 0; b < entries; ++b) {
            reader.getBytes(&blockPayloadOff[b], sizeof(uint64_t));
            reader.getBytes(&blockInstrOff[b], sizeof(uint64_t));
            reader.getBytes(&blockAnchor[b], sizeof(uint64_t));
        }
        reader.expectDone();
    }
    for (uint64_t b = 0; b < entries; ++b) {
        bool monotone =
            b == 0 || (blockPayloadOff[b] >= blockPayloadOff[b - 1] &&
                       blockInstrOff[b] >= blockInstrOff[b - 1] &&
                       blockAnchor[b] >= blockAnchor[b - 1]);
        if (!monotone || blockPayloadOff[b] > payloadLen ||
            blockInstrOff[b] > header.sectionLen[SecInstr]) {
            fatal(what, ": corrupt block index entry ", b);
        }
    }
    if (blockPayloadOff.back() != payloadLen ||
        blockInstrOff.back() != header.sectionLen[SecInstr]) {
        fatal(what,
              ": block index does not close its data sections");
    }
    instrTotal = blockAnchor.back();

    {
        ByteReader reader(section[SecNames],
                          section[SecNames] +
                              header.sectionLen[SecNames],
                          "trace store name table");
        uint64_t num_names = reader.getCount(1u << 22);
        names.resize(num_names);
        for (uint64_t i = 0; i < num_names; ++i) {
            uint64_t len = reader.getCount(1u << 16);
            names[i].resize(len);
            reader.getBytes(names[i].data(), len);
        }
        reader.expectDone();
    }

    {
        ByteReader reader(section[SecEpochs],
                          section[SecEpochs] +
                              header.sectionLen[SecEpochs],
                          "trace store epoch runs");
        uint64_t num_runs = reader.getCount(count);
        epochRuns.reserve(num_runs);
        uint64_t first = 0;
        uint64_t prev_epoch = 0;
        for (uint64_t r = 0; r < num_runs; ++r) {
            uint64_t len = reader.getVarint();
            uint64_t epoch = reader.getVarint();
            if (len == 0)
                fatal(what, ": empty epoch run ", r);
            if (r > 0 && epoch <= prev_epoch)
                fatal(what, ": epoch runs not increasing at ", r);
            epochRuns.emplace_back(first, epoch);
            first += len;
            prev_epoch = epoch;
        }
        reader.expectDone();
        if (first != count) {
            fatal(what, ": epoch runs cover ", first, " of ", count,
                  " dispatches");
        }
    }
}

// --- Queries ----------------------------------------------------

uint64_t
ColumnarStore::blockCount(uint64_t block) const
{
    GT_ASSERT(block < numBlocks, "block ", block, " out of range");
    return std::min<uint64_t>(blockLen, count - block * blockLen);
}

double
ColumnarStore::seconds(uint64_t i) const
{
    GT_ASSERT(i < count, "dispatch ", i, " out of range");
    return secondsPtr[i];
}

uint64_t
ColumnarStore::syncEpoch(uint64_t i) const
{
    GT_ASSERT(i < count, "dispatch ", i, " out of range");
    // Last run starting at or before i.
    auto it = std::upper_bound(
        epochRuns.begin(), epochRuns.end(), i,
        [](uint64_t value, const auto &run) {
            return value < run.first;
        });
    GT_ASSERT(it != epochRuns.begin(), "dispatch ", i,
              " precedes every epoch run");
    return std::prev(it)->second;
}

uint64_t
ColumnarStore::instrPrefixAt(uint64_t i) const
{
    GT_ASSERT(i <= count, "prefix index ", i, " out of range");
    if (i == count)
        return instrTotal;
    uint64_t block = blockOf(i);
    uint64_t idx = i - block * blockLen;
    if (idx == 0)
        return blockAnchor[block];

    if (CacheSlot *slot = findSlot(storeId, block, false))
        return slot->prefix[idx];

    CacheSlot &slot = evictSlot();
    uint64_t cnt = blockCount(block);
    ByteReader reader(instrBase + blockInstrOff[block],
                      instrBase + blockInstrOff[block + 1],
                      "trace store instr block");
    slot.prefix.resize(cnt);
    uint64_t acc = blockAnchor[block];
    for (uint64_t j = 0; j < cnt; ++j) {
        slot.prefix[j] = acc;
        acc += reader.getVarint();
    }
    reader.expectDone();
    if (acc != blockAnchor[block + 1]) {
        fatal("trace store: instr deltas of block ", block,
              " do not reach the next anchor");
    }
    slot.bytes = cnt * sizeof(uint64_t);
    slot.store = storeId;
    slot.block = block;
    slot.profiles = false;
    // Key the decode as used *now*: a fresh slot left at lastUse 0
    // would tie with the empty slots and be the next eviction
    // victim, evicting the hottest block instead of the coldest.
    slot.lastUse = tlsCache.tick;
    return slot.prefix[idx];
}

const gtpin::DispatchProfile &
ColumnarStore::profileAt(uint64_t i) const
{
    GT_ASSERT(i < count, "dispatch ", i, " out of range");
    uint64_t block = blockOf(i);
    uint64_t idx = i - block * blockLen;

    if (CacheSlot *slot = findSlot(storeId, block, true))
        return slot->profs[idx];

    CacheSlot &slot = evictSlot();
    uint64_t cnt = blockCount(block);
    ByteReader reader(payloadBase + blockPayloadOff[block],
                      payloadBase + blockPayloadOff[block + 1],
                      "trace store profile block");
    slot.profs.reserve(cnt);
    uint64_t bytes = 0;
    for (uint64_t j = 0; j < cnt; ++j) {
        slot.profs.push_back(
            gtpin::decodeProfilePayload(reader, names));
        bytes += slot.profs.back().footprintBytes();
    }
    reader.expectDone();
    slot.bytes = bytes;
    slot.store = storeId;
    slot.block = block;
    slot.profiles = true;
    slot.lastUse = tlsCache.tick;
    return slot.profs[idx];
}

// --- Accounting -------------------------------------------------

uint64_t
ColumnarStore::payloadBytes() const
{
    return payloadLen;
}

uint64_t
ColumnarStore::residentBytes() const
{
    uint64_t bytes = sizeof(*this);
    bytes += (blockPayloadOff.size() + blockInstrOff.size() +
              blockAnchor.size()) *
             sizeof(uint64_t);
    for (const std::string &name : names)
        bytes += sizeof(std::string) + name.size();
    bytes += epochRuns.size() * sizeof(epochRuns[0]);
    return bytes;
}

uint64_t
ColumnarStore::cacheBytesThisThread() const
{
    uint64_t bytes = 0;
    for (const CacheSlot &slot : tlsCache.slots) {
        if (slot.store == storeId)
            bytes += slot.bytes;
    }
    return bytes;
}

uint64_t
threadCacheResidentBytes()
{
    ThreadCache &tc = tlsCache;
    sweepDeadSlots(tc);
    uint64_t bytes = 0;
    for (const CacheSlot &slot : tc.slots)
        bytes += slot.bytes;
    return bytes;
}

} // namespace gt::core::trace_store
