/**
 * @file
 * The on-disk compressed columnar backend behind TraceDatabase.
 *
 * The paper's workflow collects profiles once and re-queries them
 * many times — interval building, the 30-configuration exploration,
 * fig6/fig8 error replays — which is exactly the access pattern an
 * immutable columnar store serves best. Instead of keeping every
 * DispatchProfile resident for the whole run (the old all-in-memory
 * TraceDatabase), build() lowers the joined records into one spill
 * file of per-column sections mirroring the in-memory SoA:
 *
 *  - per-dispatch kernel seconds as a raw dense double column
 *    (queried through the mapping, so range sums read the exact
 *    bits the in-memory column held);
 *  - the monotone instruction prefix sums delta+varint encoded,
 *    with an absolute anchor per block so prefix lookups decode at
 *    most one block;
 *  - sync epochs run-length encoded (they change rarely);
 *  - per-dispatch profile payloads (args, basic-block count/len/
 *    read/write vectors, bytes R/W) varint-packed in dispatch order
 *    with kernel names interned into one table;
 *  - a block index every blockSize dispatches, so random profile
 *    access decodes only the touched block.
 *
 * Reads go through an mmap'd immutable view plus a small per-thread
 * decoded-block cache (thread_local, so a fully built store stays
 * shareable across scheduler tasks with no locks — the same
 * "fully built => const" contract trace_db.hh documents). Every
 * accessor returns values bitwise identical to the in-memory
 * oracle: integers round-trip exactly through varints, doubles are
 * stored raw, and strings round-trip through the name table.
 *
 * The file begins with a versioned magic header that records the
 * total file size; a short, truncated, or corrupt file fails with a
 * clear FatalError (never a wild read — all section offsets are
 * bounds-checked and every block decode must consume its indexed
 * byte range exactly).
 */

#ifndef GT_CORE_TRACE_STORE_HH
#define GT_CORE_TRACE_STORE_HH

#include <memory>
#include <string>
#include <vector>

#include "core/trace_db.hh"

namespace gt::core::trace_store
{

// defaultBlockSize (dispatches per indexed block, the decode
// granularity) lives in trace_db.hh so build() can default to it
// without this header.

struct ColumnarOptions
{
    uint32_t blockSize = defaultBlockSize;
    /** Spill directory; empty means GT_TRACEDB_DIR, then TMPDIR,
     * then /tmp. */
    std::string spillDir;
};

/**
 * Decoded-block bytes currently held by the *calling thread's* cache
 * for stores that are still alive. Dead stores' slots are swept
 * first (see the invalidation note on ColumnarStore), so the figure
 * never counts pinned garbage — the profiling service's footprint
 * accounting and the eviction tests read this.
 */
uint64_t threadCacheResidentBytes();

/**
 * One immutable columnar trace file, mapped read-only.
 *
 * Thread safety: all accessors are const and touch only the
 * immutable mapping plus the calling thread's thread-local decode
 * cache, so any number of scheduler tasks may query one store
 * concurrently with no synchronization.
 *
 * Reference lifetime: profileAt() returns a reference into the
 * calling thread's decoded-block cache; it stays valid until that
 * thread accesses several (>= the cache's slot count) *other*
 * blocks. Copy the profile to hold it longer.
 *
 * Cache invalidation: destroying a store bumps a process-wide close
 * generation; every thread's next cache access sweeps slots whose
 * owning store died. Without the sweep, a service creating many
 * short-lived sealed databases would leave each thread's 8 slots
 * pinning decoded blocks (and keys) of freed mappings indefinitely.
 */
class ColumnarStore
{
  public:
    /** Encode @p records into a fresh spill file (created, mapped,
     * then immediately unlinked, so it can never leak), and return
     * the opened store. */
    static std::shared_ptr<const ColumnarStore>
    spill(const std::vector<DispatchRecord> &records,
          const ColumnarOptions &options = {});

    /** Encode @p records to @p path and keep the file — the
     * persistent-artifact entry point (tests, post-hoc analysis). */
    static void
    writeFile(const std::vector<DispatchRecord> &records,
              const std::string &path,
              const ColumnarOptions &options = {});

    /** Map and validate an existing columnar trace file. Fatal on
     * bad magic, version, truncation, or a corrupt index. */
    static std::shared_ptr<const ColumnarStore>
    openFile(const std::string &path);

    ~ColumnarStore();
    ColumnarStore(const ColumnarStore &) = delete;
    ColumnarStore &operator=(const ColumnarStore &) = delete;

    uint64_t numDispatches() const { return count; }
    uint32_t blockSize() const { return blockLen; }
    uint64_t totalInstrs() const { return instrTotal; }

    /** The dense per-dispatch seconds column, straight off the
     * mapping (count entries). */
    const double *secondsData() const { return secondsPtr; }

    double seconds(uint64_t i) const;

    uint64_t syncEpoch(uint64_t i) const;

    /** Instructions of all dispatches before @p i (i in [0,
     * count]); equals the in-memory backend's instrPrefix[i]. */
    uint64_t instrPrefixAt(uint64_t i) const;

    /** Decode (or fetch from the calling thread's cache) dispatch
     * @p i's full profile; see the class comment for the returned
     * reference's lifetime. */
    const gtpin::DispatchProfile &profileAt(uint64_t i) const;

    /** Total bytes of the backing file. */
    uint64_t fileBytes() const { return mapLen; }

    /** Encoded profile-payload section bytes (on disk, not
     * resident). */
    uint64_t payloadBytes() const;

    /** Resident metadata: block index, name table, epoch runs, and
     * the store object itself. Excludes the file-backed mapping and
     * per-thread caches. */
    uint64_t residentBytes() const;

    /** Decoded-block bytes the *calling thread's* cache currently
     * holds for this store. */
    uint64_t cacheBytesThisThread() const;

  private:
    ColumnarStore() = default;

    /** Validate the mapping and load resident metadata. */
    void load(const std::string &what);

    uint64_t blockOf(uint64_t i) const { return i / blockLen; }
    uint64_t blockCount(uint64_t block) const;

    const uint8_t *map = nullptr; //!< whole-file mapping
    uint64_t mapLen = 0;
    uint64_t count = 0;     //!< dispatches
    uint32_t blockLen = 0;  //!< dispatches per block
    uint64_t numBlocks = 0;
    uint64_t instrTotal = 0;
    uint64_t storeId = 0;   //!< per-process unique cache key

    const double *secondsPtr = nullptr;
    const uint8_t *instrBase = nullptr;   //!< instr-delta section
    const uint8_t *payloadBase = nullptr; //!< profile payloads
    uint64_t payloadLen = 0;

    /** Block index (numBlocks + 1 entries; the sentinel closes the
     * last block's byte ranges and carries instrTotal). */
    std::vector<uint64_t> blockPayloadOff;
    std::vector<uint64_t> blockInstrOff;
    std::vector<uint64_t> blockAnchor;

    std::vector<std::string> names; //!< interned kernel names

    /** Sync-epoch runs: (first dispatch, epoch), ascending. */
    std::vector<std::pair<uint64_t, uint64_t>> epochRuns;

    friend struct StoreAccess;
};

} // namespace gt::core::trace_store

#endif // GT_CORE_TRACE_STORE_HH
