/**
 * @file
 * The joined profiling database the selection pipeline runs on.
 *
 * Subset selection needs two independent data sources the paper
 * collects in one native profiling run: the GT-Pin custom tool's
 * per-invocation device profiles (instruction counts, basic-block
 * vectors, bytes read/written) and the CoFluent host trace (API call
 * stream with synchronization points, per-kernel wall times).
 * TraceDatabase joins them by dispatch sequence number and marks
 * which dispatches begin a new synchronization epoch — the only
 * places a GPU simulation interval may legally start or stop.
 */

#ifndef GT_CORE_TRACE_DB_HH
#define GT_CORE_TRACE_DB_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "cfl/tracer.hh"
#include "gtpin/kernel_profile.hh"

namespace gt::core
{

/** One kernel invocation, fully joined. */
struct DispatchRecord
{
    gtpin::DispatchProfile profile;  //!< GT-Pin device profile
    double seconds = 0.0;            //!< CoFluent invocation time
    /** Index of the synchronization epoch this dispatch belongs to
     * (increments at every sync call that separated dispatches). */
    uint64_t syncEpoch = 0;
};

/**
 * The whole profiled execution of one application.
 *
 * **Thread safety:** a fully built TraceDatabase is immutable — the
 * only mutating operation is build(), which returns by value — and
 * every public accessor is const and touches no hidden caches or
 * mutable members. Any number of scheduler tasks may therefore read
 * one instance concurrently with no synchronization; the 30-config
 * explorer and the fig8 validation fan-out rely on exactly this.
 * Keep it that way: adding lazily-computed (mutable) state to this
 * class requires revisiting every parallel caller. The per-dispatch
 * prefix sums and the dense seconds column below are computed
 * eagerly by build() for the same reason.
 */
class TraceDatabase
{
  public:
    /**
     * Join GT-Pin profiles with CoFluent timings and the API call
     * stream. @p profiles and @p timings must cover the same
     * dispatches (matched by sequence number, in order).
     */
    static TraceDatabase
    build(std::vector<gtpin::DispatchProfile> profiles,
          const std::vector<cfl::KernelTiming> &timings,
          const std::vector<ocl::ApiCallRecord> &call_stream);

    const std::vector<DispatchRecord> &dispatches() const
    {
        return records;
    }

    uint64_t numDispatches() const { return records.size(); }

    /** Total dynamic application instructions across dispatches. */
    uint64_t totalInstrs() const { return instrTotal; }

    /** Total kernel execution seconds across dispatches. */
    double totalSeconds() const { return secondsTotal; }

    /** Number of synchronization epochs containing dispatches. */
    uint64_t numSyncEpochs() const { return syncEpochs; }

    /**
     * Dynamic instructions of dispatches [first, last], both
     * inclusive. O(1): integer prefix sums are exact, so the
     * subtraction equals the ordered sum the interval builder and
     * error replays used to re-accumulate.
     */
    uint64_t rangeInstrs(uint64_t first, uint64_t last) const;

    /**
     * Kernel seconds of dispatches [first, last], both inclusive.
     * Accumulated left-to-right over the dense seconds column — NOT
     * a prefix-sum subtraction, which would not be bitwise identical
     * to the ordered sum for doubles.
     */
    double rangeSeconds(uint64_t first, uint64_t last) const;

    /** Per-dispatch kernel seconds as one dense column (same values
     * as dispatches()[i].seconds, cache-friendly to scan). */
    const std::vector<double> &secondsColumn() const
    {
        return secondsCol;
    }

    /**
     * Whole-program measured seconds-per-instruction: the left side
     * of the paper's Eq. 1.
     */
    double measuredSpi() const;

  private:
    std::vector<DispatchRecord> records;
    std::vector<uint64_t> instrPrefix; //!< numDispatches + 1 entries
    std::vector<double> secondsCol;    //!< per-dispatch seconds
    uint64_t instrTotal = 0;
    double secondsTotal = 0.0;
    uint64_t syncEpochs = 0;
};

// Compile-time spot checks of the concurrent-reader contract: const
// access must hand out const views, never copies of hidden state.
static_assert(
    std::is_same_v<decltype(std::declval<const TraceDatabase &>()
                                .dispatches()),
                   const std::vector<DispatchRecord> &>,
    "TraceDatabase::dispatches() must expose const storage");

} // namespace gt::core

#endif // GT_CORE_TRACE_DB_HH
