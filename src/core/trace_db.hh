/**
 * @file
 * The joined profiling database the selection pipeline runs on.
 *
 * Subset selection needs two independent data sources the paper
 * collects in one native profiling run: the GT-Pin custom tool's
 * per-invocation device profiles (instruction counts, basic-block
 * vectors, bytes read/written) and the CoFluent host trace (API call
 * stream with synchronization points, per-kernel wall times).
 * TraceDatabase joins them by dispatch sequence number and marks
 * which dispatches begin a new synchronization epoch — the only
 * places a GPU simulation interval may legally start or stop.
 *
 * Two storage backends sit behind one accessor API (GT_TRACEDB):
 *
 *  - `columnar` (default): build() lowers the joined records into an
 *    on-disk compressed columnar spill (core/trace_store) and keeps
 *    only block-index metadata resident; profiles decode on demand
 *    through per-thread block caches.
 *  - `mem`: the original fully-resident record vector — the bitwise
 *    oracle the columnar backend is differentially tested against.
 *
 * Every accessor returns bitwise-identical values on both backends:
 * both run the same join (so totals accumulate in the same FP
 * order), seconds are stored as raw doubles and range sums always
 * accumulate left-to-right over the dense column, and the integer
 * columns round-trip exactly.
 */

#ifndef GT_CORE_TRACE_DB_HH
#define GT_CORE_TRACE_DB_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cfl/tracer.hh"
#include "gtpin/kernel_profile.hh"

namespace gt::core
{

namespace trace_store
{
class ColumnarStore;
constexpr uint32_t defaultBlockSize = 256;
} // namespace trace_store

/** One kernel invocation, fully joined. */
struct DispatchRecord
{
    gtpin::DispatchProfile profile;  //!< GT-Pin device profile
    double seconds = 0.0;            //!< CoFluent invocation time
    /** Index of the synchronization epoch this dispatch belongs to
     * (increments at every sync call that separated dispatches). */
    uint64_t syncEpoch = 0;
};

enum class TraceDbBackend
{
    Mem,      //!< fully-resident record vector (the oracle)
    Columnar, //!< on-disk compressed columnar spill
};

/** Process-wide backend from GT_TRACEDB (columnar unless overridden;
 * fatal on an unknown value). Logged once. */
TraceDbBackend defaultTraceDbBackend();

const char *traceDbBackendName(TraceDbBackend backend);

/** Where one database's bytes live; see memoryFootprint(). */
struct TraceDbFootprint
{
    /** Resident joined-record storage: the DispatchRecord structs
     * (mem backend only; the columnar backend drops them). */
    uint64_t recordBytes = 0;
    /** Resident column/index metadata: prefix sums and the seconds
     * column (mem), or the block index, name table, and epoch runs
     * (columnar). */
    uint64_t columnBytes = 0;
    /** Profile payload bytes: heap behind the resident profiles
     * (mem), or the encoded on-disk payload section (columnar). */
    uint64_t profileBytes = 0;
    /** Spill-file bytes backing the mapping (columnar only). */
    uint64_t fileBytes = 0;
    /** Decoded-block bytes in the *calling thread's* cache
     * (columnar only). */
    uint64_t cacheBytes = 0;
    /** Total bytes resident in memory for this database (records +
     * columns + resident profiles + this thread's cache). */
    uint64_t residentBytes = 0;
};

/**
 * The whole profiled execution of one application.
 *
 * **Thread safety:** a fully built TraceDatabase is immutable — the
 * only mutating operation is build(), which returns by value — and
 * every public accessor is const and touches no shared mutable
 * state (the columnar backend's decode caches are thread_local).
 * Any number of scheduler tasks may therefore read one instance
 * concurrently with no synchronization; the 30-config explorer and
 * the fig8 validation fan-out rely on exactly this. Keep it that
 * way: adding lazily-computed shared (mutable) state to this class
 * requires revisiting every parallel caller. The totals, prefix
 * sums, and measured SPI below are computed eagerly by build() for
 * the same reason.
 *
 * **Reference lifetime:** on the columnar backend profileAt()
 * returns a reference into the calling thread's decoded-block
 * cache, valid until that thread touches several (>= the cache's
 * slot count) other blocks. Copy the profile to hold it longer.
 */
class TraceDatabase
{
  public:
    class Builder;

    TraceDatabase();
    ~TraceDatabase();
    TraceDatabase(TraceDatabase &&) noexcept;
    TraceDatabase &operator=(TraceDatabase &&) noexcept;

    /**
     * Join GT-Pin profiles with CoFluent timings and the API call
     * stream. @p profiles and @p timings must cover the same
     * dispatches (matched by sequence number, in order).
     * Implemented as a Builder fed everything then sealed, so the
     * batch and incremental paths are one code path and bitwise
     * equality between them holds by construction.
     */
    static TraceDatabase
    build(std::vector<gtpin::DispatchProfile> profiles,
          const std::vector<cfl::KernelTiming> &timings,
          const std::vector<ocl::ApiCallRecord> &call_stream,
          TraceDbBackend backend = defaultTraceDbBackend(),
          uint32_t block_size = trace_store::defaultBlockSize);

    /**
     * Open a persistent columnar archive written by
     * Builder::writeArchive(). The totals are recomputed from the
     * mapped columns in the same left-to-right order build()
     * accumulated them, so the result is bitwise identical to the
     * database that was archived.
     */
    static TraceDatabase openColumnarFile(const std::string &path);

    TraceDbBackend backend() const { return kind; }

    uint64_t numDispatches() const { return count; }

    /** Dispatch @p i's device profile (see the class comment for
     * the columnar backend's reference lifetime). */
    const gtpin::DispatchProfile &profileAt(uint64_t i) const;

    /** Dispatch @p i's CoFluent kernel seconds. */
    double seconds(uint64_t i) const;

    /** Synchronization epoch dispatch @p i belongs to. */
    uint64_t syncEpoch(uint64_t i) const;

    /** Total dynamic application instructions across dispatches. */
    uint64_t totalInstrs() const { return instrTotal; }

    /** Total kernel execution seconds across dispatches. */
    double totalSeconds() const { return secondsTotal; }

    /** Number of synchronization epochs containing dispatches. */
    uint64_t numSyncEpochs() const { return syncEpochs; }

    /**
     * Dynamic instructions of dispatches [first, last], both
     * inclusive. O(1): integer prefix sums are exact, so the
     * subtraction equals the ordered sum the interval builder and
     * error replays used to re-accumulate.
     */
    uint64_t rangeInstrs(uint64_t first, uint64_t last) const;

    /**
     * Kernel seconds of dispatches [first, last], both inclusive.
     * Accumulated left-to-right over the dense seconds column — NOT
     * a prefix-sum subtraction, which would not be bitwise identical
     * to the ordered sum for doubles.
     */
    double rangeSeconds(uint64_t first, uint64_t last) const;

    /** The dense per-dispatch seconds column (numDispatches()
     * entries; resident for mem, mapped for columnar — same bits
     * either way). */
    const double *secondsData() const;

    /**
     * Whole-program measured seconds-per-instruction: the left side
     * of the paper's Eq. 1. Cached at build() — fig6/fig8 replay
     * loops call this per interval set.
     */
    double measuredSpi() const;

    /** Where this database's bytes live (records, columns, profile
     * payloads, spill file, this thread's decode cache). */
    TraceDbFootprint memoryFootprint() const;

  private:
    TraceDbBackend kind = TraceDbBackend::Mem;
    uint64_t count = 0;
    uint64_t instrTotal = 0;
    double secondsTotal = 0.0;
    uint64_t syncEpochs = 0;
    double spiCached = 0.0; //!< secondsTotal / instrTotal at build

    // Mem backend: the fully-resident oracle.
    std::vector<DispatchRecord> records;
    std::vector<uint64_t> instrPrefix; //!< numDispatches + 1 entries
    std::vector<double> secondsCol;    //!< per-dispatch seconds

    // Columnar backend: the mapped spill (null for mem / empty).
    std::shared_ptr<const trace_store::ColumnarStore> store;
};

/**
 * Streaming construction of a TraceDatabase, one dispatch at a time.
 *
 * The batch join consumes three complete streams; the profiling
 * service sees the same data trickle in as a replay progresses: API
 * calls at issue time, then the matching (profile, timing) pair when
 * the dispatch drains. The builder accepts exactly that order —
 * observeCall() advances the synchronization-epoch walk, append()
 * joins one dispatch — and maintains the same running totals, prefix
 * sums, and dense seconds column build() computes, in the same
 * left-to-right FP order, so seal() at any point yields a database
 * bitwise identical to build() over the prefix fed so far. A
 * dispatch's epoch depends only on calls issued before its own
 * Kernel call, which is why assignment at append time matches the
 * batch walk at any arrival granularity.
 *
 * The prefix accessors mirror the TraceDatabase query API so the
 * incremental interval builder can run against an unsealed prefix.
 * Builders are copyable (cheap relative to a replay) — tests seal
 * copies mid-stream to compare against batch oracles.
 */
class TraceDatabase::Builder
{
  public:
    /**
     * The synchronization-epoch walk's restart state: the epoch
     * counter, whether the open epoch saw kernel work, and the
     * pending (observed Kernel call, dispatch not yet drained)
     * assignments. Appended dispatches consume their entry, so this
     * stays O(in-flight dispatches), not O(history) — it is the only
     * builder state an evicted session must keep resident to resume
     * its call stream after rehydration.
     */
    struct EpochWalk
    {
        std::map<uint64_t, uint64_t> pending;
        uint64_t epoch = 0;
        bool hasWork = false;
    };

    /** Advance the epoch walk over one host API call. Kernel calls
     * must be observed before the dispatch they issue is appended. */
    void observeCall(const ocl::ApiCallRecord &call);

    /** Join one drained dispatch (profile + CoFluent timing). Must
     * arrive in dispatch order with its Kernel call observed. */
    void append(gtpin::DispatchProfile profile,
                const cfl::KernelTiming &timing);

    /**
     * Join one already-epoch-assigned dispatch, bypassing the epoch
     * walk. The totals accumulate exactly as append() does, so a
     * builder re-fed from an archived database (rehydration) or from
     * a cached replay artifact (the warm admission path) is bitwise
     * identical to one that joined the live stream.
     */
    void appendJoined(gtpin::DispatchProfile profile, double seconds,
                      uint64_t sync_epoch);

    /**
     * Run the epoch walk over a complete call stream once, returning
     * (dispatch seq, epoch) pairs in ascending seq order — the
     * assignments append() would have produced. Computed once per
     * replay artifact so warm submissions skip the per-dispatch walk
     * entirely.
     */
    static std::vector<std::pair<uint64_t, uint64_t>>
    assignEpochs(const std::vector<ocl::ApiCallRecord> &calls);

    /** Snapshot the epoch walk (see EpochWalk). */
    EpochWalk walkState() const;

    /** Restore a walk snapshot taken by walkState(). */
    void restoreWalk(EpochWalk walk);

    /** Dispatches appended so far. */
    uint64_t numAppended() const { return records.size(); }

    const gtpin::DispatchProfile &
    profileAt(uint64_t i) const
    {
        return records[i].profile;
    }

    double seconds(uint64_t i) const { return records[i].seconds; }

    uint64_t
    syncEpoch(uint64_t i) const
    {
        return records[i].syncEpoch;
    }

    uint64_t totalInstrs() const { return instrTotal; }

    double totalSeconds() const { return secondsTotal; }

    /** Dynamic instructions of appended dispatches [first, last],
     * both inclusive (exact prefix-sum subtraction). */
    uint64_t
    rangeInstrs(uint64_t first, uint64_t last) const
    {
        return instrPrefix[last + 1] - instrPrefix[first];
    }

    /** Kernel seconds of [first, last], accumulated left-to-right
     * like TraceDatabase::rangeSeconds. */
    double
    rangeSeconds(uint64_t first, uint64_t last) const
    {
        double acc = 0.0;
        for (uint64_t i = first; i <= last; ++i)
            acc += secondsCol[i];
        return acc;
    }

    /** Resident bytes of the builder: joined records (including the
     * profiles' heap), the prefix/seconds columns, and the pending
     * epoch walk. What session eviction reclaims. */
    uint64_t memoryBytes() const;

    /**
     * Write everything appended so far to a persistent named
     * columnar archive at @p path (same format as the spill files,
     * but kept). TraceDatabase::openColumnarFile() reopens it;
     * re-feeding a builder from the reopened archive reproduces this
     * builder's joined state bit for bit.
     */
    void writeArchive(const std::string &path,
                      uint32_t block_size =
                          trace_store::defaultBlockSize) const;

    /**
     * Produce the database for everything appended so far; the
     * builder keeps streaming. Bitwise identical to build() over the
     * same prefix on both backends.
     */
    TraceDatabase seal(TraceDbBackend backend = defaultTraceDbBackend(),
                       uint32_t block_size =
                           trace_store::defaultBlockSize) const &;

    /** Destructive seal (what build() uses): no copy of the joined
     * records. */
    TraceDatabase seal(TraceDbBackend backend = defaultTraceDbBackend(),
                       uint32_t block_size =
                           trace_store::defaultBlockSize) &&;

  private:
    std::vector<DispatchRecord> records;
    std::vector<uint64_t> instrPrefix{0};
    std::vector<double> secondsCol;
    uint64_t instrTotal = 0;
    double secondsTotal = 0.0;

    // Incremental synchronization-epoch walk.
    std::map<uint64_t, uint64_t> epochOf;
    uint64_t epoch = 0;
    bool epochHasWork = false;
};

} // namespace gt::core

#endif // GT_CORE_TRACE_DB_HH
