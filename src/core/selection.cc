#include "core/selection.hh"

#include <cmath>
#include <optional>

#include "common/logging.hh"
#include "core/feature_engine.hh"

namespace gt::core
{

double
SubsetSelection::selectionFraction() const
{
    GT_ASSERT(totalInstrs > 0, "selection over empty program");
    return (double)selectedInstrs / (double)totalInstrs;
}

double
SubsetSelection::speedup() const
{
    double fraction = selectionFraction();
    GT_ASSERT(fraction > 0.0, "empty selection has no speedup");
    return 1.0 / fraction;
}

SubsetSelection
selectSubset(const TraceDatabase &db, IntervalScheme scheme,
             FeatureKind feature,
             const simpoint::ClusterOptions &options,
             uint64_t target_instrs, const FeatureEngine *engine)
{
    std::optional<FeatureEngine> local;
    if (!engine) {
        local.emplace(db);
        engine = &*local;
    }
    GT_ASSERT(&engine->database() == &db,
              "feature engine built over a different database");

    std::vector<Interval> intervals =
        buildIntervals(db, scheme, target_instrs);

    // The engine projects straight off its columns; the clusterer
    // never sees the sparse vectors.
    std::vector<simpoint::Point> points =
        engine->projectAll(intervals, feature);

    return selectFromProjected(scheme, feature, std::move(intervals),
                               points, db.totalInstrs(), options);
}

SubsetSelection
selectFromProjected(IntervalScheme scheme, FeatureKind feature,
                    std::vector<Interval> intervals,
                    const std::vector<simpoint::Point> &points,
                    uint64_t total_instrs,
                    const simpoint::ClusterOptions &options)
{
    GT_ASSERT(intervals.size() == points.size(),
              "one projected point per interval, got ",
              points.size(), " points for ", intervals.size(),
              " intervals");

    SubsetSelection sel;
    sel.scheme = scheme;
    sel.feature = feature;
    sel.intervals = std::move(intervals);

    std::vector<double> weights;
    weights.reserve(sel.intervals.size());
    for (const Interval &iv : sel.intervals)
        weights.push_back(std::max<double>(1.0, (double)iv.instrs));

    simpoint::Clustering clustering =
        simpoint::clusterPoints(points, weights, options);

    sel.selected = clustering.representative;
    sel.ratios = clustering.weight;
    sel.clusterStats = clustering.stats;
    sel.totalInstrs = total_instrs;
    for (uint64_t idx : sel.selected)
        sel.selectedInstrs += sel.intervals[idx].instrs;
    return sel;
}

namespace
{

/** Re-evaluate one interval's instrs/seconds on (possibly) another
 * trial's database. */
void
intervalOn(const TraceDatabase &db, const Interval &iv,
           uint64_t &instrs, double &seconds)
{
    GT_ASSERT(iv.lastDispatch < db.numDispatches(),
              "selection does not fit this trial's trace (",
              db.numDispatches(), " dispatches)");
    instrs = db.rangeInstrs(iv.firstDispatch, iv.lastDispatch);
    seconds = db.rangeSeconds(iv.firstDispatch, iv.lastDispatch);
}

} // anonymous namespace

double
projectedSpi(const TraceDatabase &db, const SubsetSelection &sel)
{
    GT_ASSERT(!sel.selected.empty(), "projection from empty selection");
    GT_ASSERT(sel.selected.size() == sel.ratios.size(),
              "selection/ratio size mismatch");
    double spi = 0.0;
    for (size_t c = 0; c < sel.selected.size(); ++c) {
        const Interval &iv = sel.intervals[sel.selected[c]];
        uint64_t instrs;
        double seconds;
        intervalOn(db, iv, instrs, seconds);
        GT_ASSERT(instrs > 0, "selected interval has no instructions");
        spi += sel.ratios[c] * (seconds / (double)instrs);
    }
    return spi;
}

double
selectionErrorPct(const TraceDatabase &db, const SubsetSelection &sel)
{
    double measured = db.measuredSpi();
    double projected = projectedSpi(db, sel);
    return std::abs(measured - projected) / measured * 100.0;
}

} // namespace gt::core
