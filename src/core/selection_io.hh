/**
 * @file
 * SimPoint-style selection artifacts on disk.
 *
 * SimPoint 3.0 — the tool the paper drives — emits its results as a
 * `.simpoints` file (one "interval-id cluster-id" pair per line) and
 * a `.weights` file (one "weight cluster-id" pair per line), which
 * downstream simulators consume to know what to fast-forward to and
 * how to extrapolate. This module writes and reads the same shape of
 * artifact for our SubsetSelection, extended with a header capturing
 * the interval division so a selection can be re-applied to a
 * replayed trial in another process.
 */

#ifndef GT_CORE_SELECTION_IO_HH
#define GT_CORE_SELECTION_IO_HH

#include <iosfwd>
#include <string>

#include "core/selection.hh"

namespace gt::core
{

/** Write @p selection in the simpoints/weights-style format. */
void saveSelection(const SubsetSelection &selection,
                   std::ostream &os);

/**
 * Parse a selection written by saveSelection(). Throws FatalError on
 * malformed input.
 */
SubsetSelection loadSelection(std::istream &is);

/** Convenience file wrappers. @{ */
void saveSelectionFile(const SubsetSelection &selection,
                       const std::string &path);
SubsetSelection loadSelectionFile(const std::string &path);
/** @} */

} // namespace gt::core

#endif // GT_CORE_SELECTION_IO_HH
