/**
 * @file
 * The columnar feature engine: one lowering of a workload's dispatch
 * profiles serves every feature extraction and projection.
 *
 * The paper's headline claim is that subset selection needs no
 * simulation in the loop — its cost is building 3 interval schemes x
 * 10 feature-vector types from one profiling run. The original path
 * re-walked every dispatch profile (including the full basic-block
 * arrays) into a std::map once per interval per configuration, i.e.
 * 30 full passes over the database, and re-derived every random
 * projection coefficient by hashing per (key, dim). This engine
 * removes both redundancies:
 *
 *  - DispatchFeatureCache lowers each DispatchProfile exactly once
 *    into per-component sparse contribution columns (CSR over
 *    dispatches). The block-family kinds share their base columns —
 *    BB, BB-R, BB-W, BB-R-W, and BB-(R+W) all read the same lowered
 *    base stream and add only their memory stream on top — so
 *    extracting a vector is an ascending-key merge of a dispatch
 *    range's precomputed columns, not a re-walk of raw profiles.
 *  - simpoint::ProjectionTable memoizes each unique key's
 *    coefficient row, built once from the cache's key universe.
 *
 * Sharing contract with the scheduler fan-out: a fully constructed
 * FeatureEngine is immutable; extract()/extractAll() are const, keep
 * all mutable scratch on the caller's stack, and may therefore be
 * called concurrently from any number of exploreConfigs tasks — the
 * 30-configuration explorer builds one engine up front and hands it
 * to every task.
 *
 * Determinism: results are bitwise identical to the map oracle
 * (extractFeaturesMap). Per key, contributions accumulate in
 * dispatch-encounter order — the same order the map's `operator[]
 * +=` applied them — and the final columns iterate in ascending-key
 * order, the map's iteration order. Selection with GT_FEATURES=
 * map|flat (default flat), mirroring GT_INTERP.
 */

#ifndef GT_CORE_FEATURE_ENGINE_HH
#define GT_CORE_FEATURE_ENGINE_HH

#include <array>
#include <memory>
#include <unordered_map>

#include "core/simpoint.hh"

namespace gt::core
{

/** Feature-extraction backend (see the file comment). */
enum class FeatureBackend : uint8_t
{
    Map,  //!< reference oracle: per-interval std::map walk
    Flat, //!< columnar DispatchFeatureCache + memoized projection
};

/** Process-wide default: GT_FEATURES=map|flat, else Flat. */
FeatureBackend defaultFeatureBackend();

/** @return "map" or "flat". */
const char *featureBackendName(FeatureBackend backend);

/**
 * Per-workload lowering of every DispatchProfile into sparse
 * feature-contribution columns. Immutable once built; see the file
 * comment for the sharing and determinism contracts.
 */
class DispatchFeatureCache
{
  public:
    /** Empty cache for streaming construction: appendDispatch() one
     * dispatch at a time, refreshColumns() before querying. */
    DispatchFeatureCache() = default;

    /** Batch construction: appends every dispatch of @p db, then
     * refreshes — one code path with the streaming form, so the two
     * are bitwise identical by construction. */
    explicit DispatchFeatureCache(const TraceDatabase &db);

    /**
     * Lower one dispatch profile into the contribution streams.
     * Dispatches must arrive in order (dispatch d is the d-th call).
     * Interning assigns interim column ids in first-encounter order;
     * queries read them through a rank indirection refreshed by
     * refreshColumns(), so appending never rewrites lowered streams.
     */
    void appendDispatch(const gtpin::DispatchProfile &profile);

    /**
     * Recompute the ascending-key column order after a batch of
     * appends. Cheap no-op when no new key was interned. Queries
     * (extract / projectInto) require fresh ranks; the service calls
     * this once per refresh, not per dispatch.
     *
     * Ranks shift as the key universe grows, but an interval's
     * extracted vector and projected point depend only on its own
     * dispatches' *keys*, whose projection rows are pure per-key
     * functions — so points computed before a refresh stay bitwise
     * valid after it. That invariant is what lets the incremental
     * selection path cache prefix points across refreshes.
     */
    void refreshColumns();

    /** All distinct feature keys of the workload, ascending. */
    const std::vector<uint64_t> &uniqueKeys() const { return colKeys; }

    size_t numKeys() const { return colKeys.size(); }

    /** Approximate resident bytes of the lowered streams and intern
     * tables — what session eviction reclaims (deterministic element
     * sums, not allocator truth). */
    uint64_t memoryBytes() const;

    /**
     * Reusable per-caller accumulation state for extract(). One
     * Scratch may be reused across many extract() calls (that is the
     * point) but never shared between concurrent callers.
     */
    struct Scratch
    {
        std::vector<double> acc;
        std::vector<uint32_t> epoch;
        std::vector<uint32_t> touched;
        uint32_t generation = 0;
    };

    /** Merge the lowered contributions of @p interval's dispatch
     * range into one @p kind feature vector. */
    FeatureVector extract(const Interval &interval, FeatureKind kind,
                          Scratch &scratch) const;

    /**
     * Normalize-and-project @p interval's @p kind vector straight
     * off the accumulation columns: column ids are ranks into
     * @p table (built over uniqueKeys()), so each dimension's
     * coefficient row is a direct index — no per-key search, no
     * intermediate FeatureVector. Bitwise identical to extract() +
     * normalize() + simpoint::project().
     */
    simpoint::Point
    projectInto(const Interval &interval, FeatureKind kind,
                Scratch &scratch,
                const simpoint::ProjectionTable &table) const;

  private:
    /** The nine lowered contribution streams. The four KN base
     * streams differ only in which identity components are mixed
     * into the key; KN-RW layers knRw over knBase, and the five
     * block kinds all layer over the shared bbBase. */
    enum StreamId : int
    {
        knBase,
        knArgsBase,
        knGwsBase,
        knArgsGwsBase,
        knRw,
        bbBase,
        bbRead,
        bbWrite,
        bbReadWrite,
        numStreams,
    };

    /** One contribution stream: CSR over dispatches. Column ids are
     * interim intern ids (first-encounter order, append-stable);
     * rankOf maps them to ascending-key ranks at query time, so
     * ascending rank order equals ascending key order. */
    struct Stream
    {
        std::vector<uint64_t> offsets = {0}; //!< numDispatches + 1
        std::vector<uint32_t> cols;
        std::vector<double> values;
    };

    /** The streams @p kind merges, in the oracle's per-dispatch
     * emission order (base first, then memory dims). */
    static std::array<StreamId, 3> streamsFor(FeatureKind kind,
                                              int &count);

    /** Shared accumulate step of extract()/projectInto(): fill
     * @p scratch with @p interval's per-column sums, touched columns
     * sorted ascending. */
    void accumulate(const Interval &interval, FeatureKind kind,
                    Scratch &scratch) const;

    std::array<Stream, numStreams> streams;
    std::unordered_map<uint64_t, uint32_t> idOf; //!< key -> interim id
    std::vector<uint64_t> internKeys; //!< key per interim id
    std::vector<uint32_t> rankOf;     //!< interim id -> key rank
    std::vector<uint64_t> colKeys;    //!< ascending
    uint64_t numDispatches = 0;
    bool ranksStale = false;
};

/**
 * Facade the selection pipeline extracts features through: binds a
 * TraceDatabase to a backend, owns the flat backend's cache and
 * memoized projection table, and hides the choice from callers.
 * Build one per workload and share it (const) across tasks.
 */
class FeatureEngine
{
  public:
    explicit FeatureEngine(
        const TraceDatabase &db,
        FeatureBackend backend = defaultFeatureBackend());

    FeatureBackend backend() const { return mode; }

    const TraceDatabase &database() const { return db; }

    /** Extract one interval's @p kind vector (unnormalized). */
    FeatureVector extract(const Interval &interval,
                          FeatureKind kind) const;

    /** Extract vectors for all intervals (normalized), reusing one
     * merge scratch across the loop. */
    std::vector<FeatureVector>
    extractAll(const std::vector<Interval> &intervals,
               FeatureKind kind) const;

    /**
     * Projected points of all intervals' normalized @p kind vectors
     * — what the clusterer actually consumes. The flat backend
     * projects straight off its columns (see
     * DispatchFeatureCache::projectInto); the map backend extracts,
     * normalizes, and projects with on-the-fly coefficients. Both
     * produce bitwise-identical points.
     */
    std::vector<simpoint::Point>
    projectAll(const std::vector<Interval> &intervals,
               FeatureKind kind) const;

    /** Memoized projection rows over the workload's key universe
     * (null on the map backend, which derives coefficients on the
     * fly as the oracle always did). */
    const simpoint::ProjectionTable *projection() const
    {
        return table.get();
    }

  private:
    const TraceDatabase &db;
    FeatureBackend mode;
    std::unique_ptr<DispatchFeatureCache> cache; //!< flat only
    std::unique_ptr<simpoint::ProjectionTable> table; //!< flat only
};

} // namespace gt::core

#endif // GT_CORE_FEATURE_ENGINE_HH
