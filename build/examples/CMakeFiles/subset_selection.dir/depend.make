# Empty dependencies file for subset_selection.
# This may be replaced when dependencies are built.
