file(REMOVE_RECURSE
  "CMakeFiles/subset_selection.dir/subset_selection.cpp.o"
  "CMakeFiles/subset_selection.dir/subset_selection.cpp.o.d"
  "subset_selection"
  "subset_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subset_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
