# Empty compiler generated dependencies file for overhead_gtpin.
# This may be replaced when dependencies are built.
