file(REMOVE_RECURSE
  "CMakeFiles/overhead_gtpin.dir/overhead_gtpin.cc.o"
  "CMakeFiles/overhead_gtpin.dir/overhead_gtpin.cc.o.d"
  "overhead_gtpin"
  "overhead_gtpin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_gtpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
