file(REMOVE_RECURSE
  "CMakeFiles/table3_features.dir/table3_features.cc.o"
  "CMakeFiles/table3_features.dir/table3_features.cc.o.d"
  "table3_features"
  "table3_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
