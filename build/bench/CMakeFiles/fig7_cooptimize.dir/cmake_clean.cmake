file(REMOVE_RECURSE
  "CMakeFiles/fig7_cooptimize.dir/fig7_cooptimize.cc.o"
  "CMakeFiles/fig7_cooptimize.dir/fig7_cooptimize.cc.o.d"
  "fig7_cooptimize"
  "fig7_cooptimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cooptimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
