# Empty compiler generated dependencies file for fig7_cooptimize.
# This may be replaced when dependencies are built.
