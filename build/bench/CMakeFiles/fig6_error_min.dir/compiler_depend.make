# Empty compiler generated dependencies file for fig6_error_min.
# This may be replaced when dependencies are built.
