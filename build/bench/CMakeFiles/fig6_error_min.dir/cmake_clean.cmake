file(REMOVE_RECURSE
  "CMakeFiles/fig6_error_min.dir/fig6_error_min.cc.o"
  "CMakeFiles/fig6_error_min.dir/fig6_error_min.cc.o.d"
  "fig6_error_min"
  "fig6_error_min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_error_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
