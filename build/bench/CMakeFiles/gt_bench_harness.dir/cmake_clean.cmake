file(REMOVE_RECURSE
  "../lib/libgt_bench_harness.a"
  "../lib/libgt_bench_harness.pdb"
  "CMakeFiles/gt_bench_harness.dir/harness.cc.o"
  "CMakeFiles/gt_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
