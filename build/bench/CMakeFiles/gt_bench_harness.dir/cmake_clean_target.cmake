file(REMOVE_RECURSE
  "../lib/libgt_bench_harness.a"
)
