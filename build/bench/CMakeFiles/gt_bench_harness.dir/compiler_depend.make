# Empty compiler generated dependencies file for gt_bench_harness.
# This may be replaced when dependencies are built.
