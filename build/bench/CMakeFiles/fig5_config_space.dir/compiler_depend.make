# Empty compiler generated dependencies file for fig5_config_space.
# This may be replaced when dependencies are built.
