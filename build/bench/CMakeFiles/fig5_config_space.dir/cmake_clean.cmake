file(REMOVE_RECURSE
  "CMakeFiles/fig5_config_space.dir/fig5_config_space.cc.o"
  "CMakeFiles/fig5_config_space.dir/fig5_config_space.cc.o.d"
  "fig5_config_space"
  "fig5_config_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_config_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
