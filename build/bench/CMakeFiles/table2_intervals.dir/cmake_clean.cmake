file(REMOVE_RECURSE
  "CMakeFiles/table2_intervals.dir/table2_intervals.cc.o"
  "CMakeFiles/table2_intervals.dir/table2_intervals.cc.o.d"
  "table2_intervals"
  "table2_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
