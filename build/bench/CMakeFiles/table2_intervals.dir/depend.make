# Empty dependencies file for table2_intervals.
# This may be replaced when dependencies are built.
