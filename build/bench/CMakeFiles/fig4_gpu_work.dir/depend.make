# Empty dependencies file for fig4_gpu_work.
# This may be replaced when dependencies are built.
