file(REMOVE_RECURSE
  "CMakeFiles/fig4_gpu_work.dir/fig4_gpu_work.cc.o"
  "CMakeFiles/fig4_gpu_work.dir/fig4_gpu_work.cc.o.d"
  "fig4_gpu_work"
  "fig4_gpu_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gpu_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
