# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_slice[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_detailed_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ocl[1]_include.cmake")
include("/root/repo/build/tests/test_gtpin[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cfl[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_template_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_selection_io[1]_include.cmake")
include("/root/repo/build/tests/test_model_consistency[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_trace_db[1]_include.cmake")
include("/root/repo/build/tests/test_interval[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_simpoint[1]_include.cmake")
include("/root/repo/build/tests/test_selection[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
