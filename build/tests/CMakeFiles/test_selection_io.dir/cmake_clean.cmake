file(REMOVE_RECURSE
  "CMakeFiles/test_selection_io.dir/test_selection_io.cc.o"
  "CMakeFiles/test_selection_io.dir/test_selection_io.cc.o.d"
  "test_selection_io"
  "test_selection_io.pdb"
  "test_selection_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
