# Empty dependencies file for test_selection_io.
# This may be replaced when dependencies are built.
