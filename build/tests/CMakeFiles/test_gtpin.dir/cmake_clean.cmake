file(REMOVE_RECURSE
  "CMakeFiles/test_gtpin.dir/test_gtpin.cc.o"
  "CMakeFiles/test_gtpin.dir/test_gtpin.cc.o.d"
  "test_gtpin"
  "test_gtpin.pdb"
  "test_gtpin[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtpin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
