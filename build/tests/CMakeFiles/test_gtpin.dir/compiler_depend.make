# Empty compiler generated dependencies file for test_gtpin.
# This may be replaced when dependencies are built.
