
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gtpin.cc" "tests/CMakeFiles/test_gtpin.dir/test_gtpin.cc.o" "gcc" "tests/CMakeFiles/test_gtpin.dir/test_gtpin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gtpin/CMakeFiles/gt_gtpin.dir/DependInfo.cmake"
  "/root/repo/build/src/cfl/CMakeFiles/gt_cfl.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ocl/CMakeFiles/gt_ocl.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gt_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/gt_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
