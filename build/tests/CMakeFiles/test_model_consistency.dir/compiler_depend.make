# Empty compiler generated dependencies file for test_model_consistency.
# This may be replaced when dependencies are built.
