file(REMOVE_RECURSE
  "CMakeFiles/test_trace_db.dir/test_trace_db.cc.o"
  "CMakeFiles/test_trace_db.dir/test_trace_db.cc.o.d"
  "test_trace_db"
  "test_trace_db.pdb"
  "test_trace_db[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
